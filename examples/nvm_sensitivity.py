"""What-if: how do Ohm-GPU's conclusions change with NVM technology?

The paper's XPoint numbers come from first-generation Optane DC PMM
(190 ns reads, 763 ns writes).  This example sweeps the read latency
from an optimistic next-generation device (95 ns) to a pessimistic one
(760 ns) and checks whether the dual-route design still pays off —
i.e. whether the paper's conclusion is robust to the NVM substrate.

Run:  python examples/nvm_sensitivity.py
(set REPRO_SMOKE=1 for a fast CI-sized run)
"""

import os

from repro.harness.runner import RunConfig
from repro.harness.sweeps import sweep_xpoint_read_latency

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
SIZING = RunConfig(num_warps=16, accesses_per_warp=12) if SMOKE else RunConfig(
    num_warps=96, accesses_per_warp=64
)
LATENCIES = (95.0, 190.0, 380.0, 760.0)


def main() -> None:
    print("XPoint read-latency sensitivity (pagerank, planar mode)\n")
    print(f"{'read_ns':>8s} {'Ohm-base':>12s} {'Ohm-BW':>12s} {'BW speedup':>11s}")
    base_points = sweep_xpoint_read_latency(
        "Ohm-base", latencies_ns=LATENCIES, sizing=SIZING
    )
    bw_points = sweep_xpoint_read_latency(
        "Ohm-BW", latencies_ns=LATENCIES, sizing=SIZING
    )
    for base, bw in zip(base_points, bw_points):
        speedup = base.result.exec_time_ps / bw.result.exec_time_ps
        print(
            f"{base.value:8.0f} {base.result.exec_time_ps / 1e6:10.1f}us "
            f"{bw.result.exec_time_ps / 1e6:10.1f}us {speedup:10.2f}x"
        )
    print(
        "\nThe dual routes keep paying off across the NVM range: migration "
        "traffic is off\nthe data route regardless of how fast the media "
        "underneath happens to be."
    )


if __name__ == "__main__":
    main()
