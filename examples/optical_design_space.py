"""Explore the optical design space: link budgets, BER, MRR layouts and
waveguide scaling.

This example uses only the analytic optical models (no GPU simulation),
so it runs instantly.  It reproduces the reasoning of Sections IV-C, V-B
and V-C: how much laser power each dual-route trick needs, what BER it
achieves, and how many micro-ring resonators each operating mode buys.

Run:  python examples/optical_design_space.py
"""

from repro import MemoryMode, default_config
from repro.cost.model import CostModel
from repro.optical.ber import RELIABILITY_REQUIREMENT, figure20b_budgets
from repro.optical.layout import GENERAL_LAYOUT, layout_for_mode, mode_reduction
from repro.optical.power import OpticalPowerModel
from repro.optical.wom import WomCodec, two_writers_roundtrip


def link_budgets() -> None:
    cfg = default_config().optical
    print("== Link budgets and BER (Fig. 20b) ==")
    for budget in figure20b_budgets(cfg):
        status = "OK " if budget.reliable else "FAIL"
        print(
            f"  {status} {budget.label:16s} laser x{budget.laser_scale:<3.0f} "
            f"recv {budget.received_power_mw:.4f} mW  BER {budget.ber:.2e}"
        )
    print(f"  reliability requirement: {RELIABILITY_REQUIREMENT:.0e}\n")
    model = OpticalPowerModel(cfg)
    path = model.swap_bw_path()
    print("  Ohm-BW swap path losses:")
    for name, db in path.losses:
        print(f"    {name:18s} {db:5.2f} dB")
    print()


def wom_demo() -> None:
    print("== WOM coding (Fig. 14) ==")
    codec = WomCodec()
    d1, d2 = 0b10, 0b01
    light = codec.encode_first(d1)
    print(f"  memory controller sends {d1:02b} -> light {light:03b}")
    light2 = codec.encode_second(d2, light)
    print(f"  XPoint controller overlays {d2:02b} -> light {light2:03b} "
          f"(only sets bits: {light:03b} -> {light2:03b})")
    print(f"  receivers decode: {two_writers_roundtrip(d1, d2)}")
    print(f"  bandwidth cost: {1 - 2 / 3:.0%} (3 light bits carry 2 data bits)\n")


def mrr_layouts() -> None:
    print("== MRR layout optimization (Fig. 15) ==")
    print(f"  general design: {GENERAL_LAYOUT.total} MRRs per device pair per lane")
    for mode in MemoryMode:
        layout = layout_for_mode(mode)
        print(
            f"  {mode.value:9s}: {layout.total} MRRs "
            f"({mode_reduction(mode):.0%} fewer than general)"
        )
    print()


def cost_summary() -> None:
    print("== Cost (Table III) ==")
    for mode in MemoryMode:
        cost = CostModel(mode)
        for platform in ("Ohm-base", "Ohm-BW", "Oracle"):
            print(
                f"  {mode.value:9s} {platform:9s} "
                f"${cost.platform_cost(platform):7.0f} "
                f"(+{cost.cost_increase_fraction(platform):.1%} over the K80)"
            )


def main() -> None:
    link_budgets()
    wom_demo()
    mrr_layouts()
    cost_summary()


if __name__ == "__main__":
    main()
