"""The capacity wall: why a DRAM-only GPU loses to heterogeneous memory.

Reproduces the motivation of Sections I-II end to end:

1. the Fig. 3 phase model — on a GPU+SSD system, data movement dominates
   execution time for large workloads;
2. the Origin-vs-heterogeneous comparison — when the footprint exceeds
   GPU DRAM, host page traffic on PCIe costs far more than serving the
   cold tail from XPoint ever does.

Run:  python examples/capacity_wall.py
(set REPRO_SMOKE=1 for a fast CI-sized run)
"""

import os

from repro import MemoryMode, RunConfig, Runner, default_config
from repro.hoststorage.gpudirect import GpuSsdSystem
from repro.workloads.registry import WORKLOADS, get_workload

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
SIZING = RunConfig(num_warps=16, accesses_per_warp=12) if SMOKE else RunConfig(
    num_warps=192, accesses_per_warp=96
)


def fig3_motivation() -> None:
    print("== GPU+SSD system: where does time go? (Fig. 3a) ==")
    system = GpuSsdSystem(default_config())
    print(f"  {'workload':9s} {'data move':>10s} {'storage':>8s} {'GPU':>6s}")
    for name in WORKLOADS:
        b = system.phase_breakdown(get_workload(name))
        print(
            f"  {name:9s} {b.data_move_frac:>9.0%} "
            f"{b.storage_frac:>8.0%} {b.gpu_frac:>6.0%}"
        )
    print()


def origin_vs_hetero() -> None:
    print("== Origin (DRAM-only + host paging) vs Ohm-GPU ==")
    runner = Runner(SIZING)
    print(f"  {'workload':9s} {'Origin':>10s} {'Ohm-BW':>10s} {'speedup':>8s} {'faults':>7s}")
    for name in ("backp", "GRAMS", "pagerank", "sssp"):
        origin = runner.run("Origin", name, MemoryMode.PLANAR)
        ohm = runner.run("Ohm-BW", name, MemoryMode.PLANAR)
        print(
            f"  {name:9s} {origin.exec_time_ps / 1e6:8.1f}us "
            f"{ohm.exec_time_ps / 1e6:8.1f}us "
            f"{origin.exec_time_ps / ohm.exec_time_ps:7.2f}x "
            f"{origin.counters.get('host.faults', 0):7.0f}"
        )
    print(
        "\nOhm-GPU keeps the whole footprint on-board (DRAM + XPoint over "
        "the optical\nchannel), so the host link never throttles the kernels."
    )


def main() -> None:
    fig3_motivation()
    origin_vs_hetero()


if __name__ == "__main__":
    main()
