"""Graph analytics on heterogeneous GPU memory.

The motivating workloads of the paper are large-graph kernels whose
footprints exceed GPU DRAM.  This example compares both heterogeneous
memory modes (planar vs two-level) across all six GraphBIG workloads on
the full Ohm-GPU design, and shows where each mode wins.

Run:  python examples/graph_analytics.py
(set REPRO_SMOKE=1 for a fast CI-sized run)
"""

import os

from repro import MemoryMode, RunConfig, Runner
from repro.workloads.registry import WORKLOADS, get_workload

GRAPH_APPS = [name for name, spec in WORKLOADS.items() if spec.is_graph]

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
SIZING = RunConfig(num_warps=16, accesses_per_warp=12) if SMOKE else RunConfig(
    num_warps=96, accesses_per_warp=64
)


def main() -> None:
    runner = Runner(SIZING)

    print("Ohm-BW on GraphBIG workloads — planar vs two-level memory mode\n")
    print(f"{'workload':9s} {'APKI':>5s} {'planar_lat':>11s} {'2lvl_lat':>9s} "
          f"{'planar_migbw':>13s} {'2lvl_migbw':>11s} {'faster_mode':>12s}")
    for name in GRAPH_APPS:
        spec = get_workload(name)
        planar = runner.run("Ohm-BW", name, MemoryMode.PLANAR)
        two = runner.run("Ohm-BW", name, MemoryMode.TWO_LEVEL)
        faster = "planar" if planar.exec_time_ps < two.exec_time_ps else "two-level"
        print(
            f"{name:9s} {spec.apki:5.0f} "
            f"{planar.mean_mem_latency_ps / 1000:9.1f}ns "
            f"{two.mean_mem_latency_ps / 1000:7.1f}ns "
            f"{planar.migration_bandwidth_fraction:13.1%} "
            f"{two.migration_bandwidth_fraction:11.1%} "
            f"{faster:>12s}"
        )

    print(
        "\nPlanar mode maximizes capacity (1:8 DRAM:XPoint) and swaps hot "
        "pages;\ntwo-level mode (1:64) runs DRAM as a direct-mapped cache "
        "with tag-in-ECC metadata."
    )


if __name__ == "__main__":
    main()
