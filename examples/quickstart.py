"""Quickstart: the public workload-registry API end to end.

Everything goes through the registry — the same path the CLI and the
experiment service use — so this tutorial cannot drift from the code:

1. resolve a workload by name (`get_workload_def`) and read its spec;
2. simulate it on several GPU platforms with a `Runner`;
3. declare a *new* scenario (a two-tenant mix) with `make_multi_tenant`
   + `register_workload`, and read its per-tenant attribution.

Run:  python examples/quickstart.py
(set REPRO_SMOKE=1 for a fast CI-sized run)
"""

import os

from repro import MemoryMode, RunConfig, Runner
from repro.workloads import (
    get_workload_def,
    make_multi_tenant,
    register_workload,
)

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
SIZING = RunConfig(num_warps=16, accesses_per_warp=12) if SMOKE else RunConfig(
    num_warps=96, accesses_per_warp=64
)


def solo_run(runner: Runner) -> None:
    defn = get_workload_def("pagerank")
    print(f"workload: {defn.name} [{defn.family}] — {defn.summary}")
    print(f"  APKI {defn.spec.apki:.0f}, {defn.spec.read_ratio:.0%} reads\n")

    print(f"{'platform':10s} {'perf(rel)':>9s} {'mem latency':>12s} {'migration bw':>13s}")
    base = None
    for platform in ("Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW", "Oracle"):
        result = runner.run(platform, defn.name, MemoryMode.PLANAR)
        if base is None:
            base = result.performance
        print(
            f"{platform:10s} {result.performance / base:9.3f} "
            f"{result.mean_mem_latency_ps / 1000:10.1f}ns "
            f"{result.migration_bandwidth_fraction:12.1%}"
        )

    print(
        "\nThe dual-route platforms (Ohm-WOM / Ohm-BW) serve migrations on "
        "the memory route,\nso their migration share of the data route "
        "collapses — that is the paper's key result.\n"
    )


def declare_and_mix(runner: Runner) -> None:
    # A new scenario is a registration, not new simulation code.
    mix = register_workload(
        make_multi_tenant(
            "quickstart_mix",
            [
                ("ml", get_workload_def("gemm_reuse"), 0.5),
                ("graph", get_workload_def("pagerank"), 0.5),
            ],
            summary="a dense ML kernel co-located with a graph kernel",
        ),
        replace=True,  # idempotent across repeated runs
    )
    result = runner.run("Ohm-BW", mix.name, MemoryMode.PLANAR)
    print(f"multi-tenant mix '{mix.name}' on Ohm-BW:")
    for tenant in ("ml", "graph"):
        c = result.counters
        print(
            f"  tenant {tenant:6s}: {c[f'tenant.{tenant}.warps']:.0f} warps, "
            f"{c[f'tenant.{tenant}.instructions']:.0f} instructions, "
            f"finished at {c[f'tenant.{tenant}.finish_ps'] / 1e6:.2f} us"
        )
    print(
        "\nPer-tenant counters come from the warps' tenant labels — "
        "see docs/WORKLOADS.md\nfor the full authoring tutorial "
        "(families, composition, trace record/replay)."
    )


def main() -> None:
    runner = Runner(SIZING)
    solo_run(runner)
    declare_and_mix(runner)


if __name__ == "__main__":
    main()
