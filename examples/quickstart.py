"""Quickstart: simulate one workload on two GPU platforms.

Runs the `pagerank` GraphBIG workload on the baseline optical
heterogeneous memory (Ohm-base) and on the full Ohm-GPU design (Ohm-BW)
in planar mode, then prints IPC, memory latency and how much channel
bandwidth migrations consumed.

Run:  python examples/quickstart.py
"""

from repro import MemoryMode, RunConfig, Runner


def main() -> None:
    runner = Runner(RunConfig(num_warps=96, accesses_per_warp=64))

    print(f"{'platform':10s} {'IPC(rel)':>9s} {'mem latency':>12s} {'migration bw':>13s}")
    base = None
    for platform in ("Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW", "Oracle"):
        result = runner.run(platform, "pagerank", MemoryMode.PLANAR)
        if base is None:
            base = result.performance
        print(
            f"{platform:10s} {result.performance / base:9.3f} "
            f"{result.mean_mem_latency_ps / 1000:10.1f}ns "
            f"{result.migration_bandwidth_fraction:12.1%}"
        )

    print(
        "\nThe dual-route platforms (Ohm-WOM / Ohm-BW) serve migrations on "
        "the memory route,\nso their migration share of the data route "
        "collapses — that is the paper's key result."
    )


if __name__ == "__main__":
    main()
