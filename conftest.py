"""Root conftest (shared pytest configuration lives in pyproject.toml;
benchmark-specific capture handling lives in benchmarks/conftest.py)."""
