"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, freq_ghz_to_period_ps, ns, us


class TestTimeHelpers:
    def test_ns_converts_to_ps(self):
        assert ns(1) == 1_000
        assert ns(0.5) == 500

    def test_us_converts_to_ps(self):
        assert us(2) == 2_000_000

    def test_period_of_1ghz_is_1000ps(self):
        assert freq_ghz_to_period_ps(1.0) == 1000

    def test_period_of_30ghz_rounds(self):
        assert freq_ghz_to_period_ps(30.0) == 33

    def test_period_never_zero(self):
        assert freq_ghz_to_period_ps(5000.0) == 1

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ValueError):
            freq_ghz_to_period_ps(0.0)


class TestEngine:
    def test_events_run_in_time_order(self):
        eng = Engine()
        seen = []
        eng.schedule(50, lambda: seen.append("late"))
        eng.schedule(10, lambda: seen.append("early"))
        eng.run()
        assert seen == ["early", "late"]

    def test_equal_timestamps_run_in_schedule_order(self):
        eng = Engine()
        seen = []
        for i in range(5):
            eng.schedule(7, lambda i=i: seen.append(i))
        eng.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_now_advances_with_events(self):
        eng = Engine()
        stamps = []
        eng.schedule(5, lambda: stamps.append(eng.now))
        eng.schedule(9, lambda: stamps.append(eng.now))
        eng.run()
        assert stamps == [5, 9]

    def test_nested_scheduling(self):
        eng = Engine()
        seen = []

        def outer():
            seen.append(("outer", eng.now))
            eng.schedule(3, lambda: seen.append(("inner", eng.now)))

        eng.schedule(2, outer)
        eng.run()
        assert seen == [("outer", 2), ("inner", 5)]

    def test_run_until_stops_before_later_events(self):
        eng = Engine()
        seen = []
        eng.schedule(5, lambda: seen.append(5))
        eng.schedule(15, lambda: seen.append(15))
        eng.run(until_ps=10)
        assert seen == [5]
        assert eng.pending() == 1

    def test_max_events_cap(self):
        eng = Engine()
        seen = []
        for i in range(10):
            eng.schedule(i + 1, lambda i=i: seen.append(i))
        eng.run(max_events=3)
        assert len(seen) == 3

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            eng.schedule(-1, lambda: None)

    def test_scheduling_into_the_past_rejected(self):
        eng = Engine()
        eng.schedule(100, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.at(50, lambda: None)

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_peek_time(self):
        eng = Engine()
        assert eng.peek_time() is None
        eng.schedule(42, lambda: None)
        assert eng.peek_time() == 42

    def test_events_processed_counter(self):
        eng = Engine()
        for _ in range(4):
            eng.schedule(1, lambda: None)
        eng.run()
        assert eng.events_processed == 4


class TestEngineEdgeCases:
    def test_event_exactly_at_until_ps_still_runs(self):
        eng = Engine()
        seen = []
        eng.schedule(10, lambda: seen.append(10))
        eng.schedule(11, lambda: seen.append(11))
        eng.run(until_ps=10)
        assert seen == [10]
        assert eng.now == 10

    def test_run_resumes_after_until_ps(self):
        eng = Engine()
        seen = []
        eng.schedule(5, lambda: seen.append(5))
        eng.schedule(15, lambda: seen.append(15))
        eng.run(until_ps=10)
        eng.run()
        assert seen == [5, 15]
        assert eng.pending() == 0

    def test_until_ps_in_the_past_runs_nothing(self):
        eng = Engine()
        eng.schedule(5, lambda: None)
        eng.run()
        eng.schedule(5, lambda: None)  # now at t=10
        eng.run(until_ps=7)
        assert eng.pending() == 1

    def test_max_events_counts_events_spawned_mid_run(self):
        eng = Engine()
        seen = []

        def spawner():
            seen.append(eng.now)
            eng.schedule(1, spawner)

        eng.schedule(0, spawner)
        eng.run(max_events=5)  # would otherwise loop forever
        assert len(seen) == 5
        assert eng.pending() == 1

    def test_max_events_zero_processes_nothing(self):
        eng = Engine()
        eng.schedule(1, lambda: None)
        eng.run(max_events=0)
        assert eng.pending() == 1
        assert eng.events_processed == 0

    def test_until_and_max_events_combine(self):
        eng = Engine()
        seen = []
        for t in (1, 2, 3, 4):
            eng.schedule(t, lambda t=t: seen.append(t))
        eng.run(until_ps=3, max_events=2)
        assert seen == [1, 2]

    def test_zero_delay_runs_at_current_time(self):
        eng = Engine()
        eng.schedule(3, lambda: None)
        eng.run()
        seen = []
        eng.schedule(0, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [3]

    def test_past_scheduling_rejected_after_time_advances(self):
        eng = Engine()
        eng.schedule(100, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.schedule(-1, lambda: None)
        with pytest.raises(ValueError):
            eng.at(99, lambda: None)
        eng.at(100, lambda: None)  # the current instant is still legal
        eng.run()
        assert eng.now == 100

    def test_callback_scheduling_into_its_own_past_rejected(self):
        eng = Engine()
        failures = []

        def cb():
            try:
                eng.at(eng.now - 1, lambda: None)
            except ValueError:
                failures.append(eng.now)

        eng.schedule(10, cb)
        eng.run()
        assert failures == [10]


class TestWarpLane:
    """The typed warp lane merged against the generic heap."""

    def _lane_engine(self, num_warps=4):
        eng = Engine()
        seen = []

        def step(warp, phase):
            seen.append((eng.now, warp, phase))

        eng.attach_warp_lane(num_warps, step)
        return eng, seen

    def test_lane_event_exactly_at_until_ps_still_runs(self):
        eng, seen = self._lane_engine()
        eng.lane_schedule(0, 100, 1)
        eng.lane_schedule(1, 101, 2)
        eng.run(until_ps=100)
        assert seen == [(100, 0, 1)]
        assert eng.events_processed == 1
        assert eng.lane_pending() == 1
        eng.run()
        assert seen == [(100, 0, 1), (101, 1, 2)]

    def test_max_events_caps_merged_lane_and_generic(self):
        eng, seen = self._lane_engine()
        order = []
        eng.lane_schedule(0, 10, 1)          # seq 0
        eng.at(20, lambda: order.append("g20"))   # seq 1
        eng.lane_schedule(1, 30, 2)          # seq 2
        eng.at(40, lambda: order.append("g40"))   # seq 3
        eng.run(max_events=3)
        assert eng.events_processed == 3
        assert seen == [(10, 0, 1), (30, 1, 2)]
        assert order == ["g20"]
        assert eng.pending() == 1
        eng.run()
        assert order == ["g20", "g40"]
        assert eng.events_processed == 4

    def test_equal_time_merge_follows_schedule_order(self):
        eng, seen = self._lane_engine()
        order = []
        eng.at(50, lambda: order.append(("g", 50)))  # seq 0
        eng.lane_schedule(0, 50, 7)                  # seq 1
        eng.at(50, lambda: order.append(("g2", 50)))  # seq 2
        eng.run()
        # The lane event (seq 1) lands between the two generic events.
        assert order == [("g", 50), ("g2", 50)]
        assert seen == [(50, 0, 7)]
        assert eng.events_processed == 3

    def test_one_pending_event_per_warp_enforced(self):
        eng, _ = self._lane_engine()
        eng.lane_schedule(0, 10, 1)
        with pytest.raises(RuntimeError):
            eng.lane_schedule(0, 20, 2)

    def test_lane_scheduling_into_the_past_rejected(self):
        eng, _ = self._lane_engine()
        eng.lane_schedule(0, 10, 1)
        eng.run()
        with pytest.raises(ValueError):
            eng.lane_schedule(0, 5, 1)


class TestEventsProcessedOnRaise:
    """A raising callback still counts as processed, on every drain path."""

    def test_generic_full_drain(self):
        eng = Engine()
        eng.schedule(1, lambda: None)

        def boom():
            raise RuntimeError("boom")

        eng.schedule(2, boom)
        eng.schedule(3, lambda: None)
        with pytest.raises(RuntimeError):
            eng.run()
        assert eng.events_processed == 2  # the raising event is counted
        assert eng.pending() == 1
        eng.run()
        assert eng.events_processed == 3

    def test_lane_full_drain(self):
        eng = Engine()

        def step(warp, phase):
            if phase == 9:
                raise RuntimeError("boom")

        eng.attach_warp_lane(2, step)
        eng.lane_schedule(0, 10, 1)
        eng.lane_schedule(1, 20, 9)
        with pytest.raises(RuntimeError):
            eng.run()
        assert eng.events_processed == 2
        assert eng.lane_pending() == 0

    def test_guarded_drain_matches_full_drain_count(self):
        def build():
            eng = Engine()

            def boom():
                raise RuntimeError("boom")

            eng.schedule(1, lambda: None)
            eng.schedule(2, boom)
            return eng

        full = build()
        with pytest.raises(RuntimeError):
            full.run()
        guarded = build()
        with pytest.raises(RuntimeError):
            guarded.run(max_events=10)
        assert guarded.events_processed == full.events_processed == 2


class TestAtErrorMessage:
    def test_includes_requested_and_current_timestamps(self):
        eng = Engine()
        eng.schedule(100, lambda: None)
        eng.run()
        with pytest.raises(ValueError) as exc:
            eng.at(50, lambda: None)
        message = str(exc.value)
        assert "50" in message  # requested
        assert "100" in message  # current
