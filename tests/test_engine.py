"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, freq_ghz_to_period_ps, ns, us


class TestTimeHelpers:
    def test_ns_converts_to_ps(self):
        assert ns(1) == 1_000
        assert ns(0.5) == 500

    def test_us_converts_to_ps(self):
        assert us(2) == 2_000_000

    def test_period_of_1ghz_is_1000ps(self):
        assert freq_ghz_to_period_ps(1.0) == 1000

    def test_period_of_30ghz_rounds(self):
        assert freq_ghz_to_period_ps(30.0) == 33

    def test_period_never_zero(self):
        assert freq_ghz_to_period_ps(5000.0) == 1

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ValueError):
            freq_ghz_to_period_ps(0.0)


class TestEngine:
    def test_events_run_in_time_order(self):
        eng = Engine()
        seen = []
        eng.schedule(50, lambda: seen.append("late"))
        eng.schedule(10, lambda: seen.append("early"))
        eng.run()
        assert seen == ["early", "late"]

    def test_equal_timestamps_run_in_schedule_order(self):
        eng = Engine()
        seen = []
        for i in range(5):
            eng.schedule(7, lambda i=i: seen.append(i))
        eng.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_now_advances_with_events(self):
        eng = Engine()
        stamps = []
        eng.schedule(5, lambda: stamps.append(eng.now))
        eng.schedule(9, lambda: stamps.append(eng.now))
        eng.run()
        assert stamps == [5, 9]

    def test_nested_scheduling(self):
        eng = Engine()
        seen = []

        def outer():
            seen.append(("outer", eng.now))
            eng.schedule(3, lambda: seen.append(("inner", eng.now)))

        eng.schedule(2, outer)
        eng.run()
        assert seen == [("outer", 2), ("inner", 5)]

    def test_run_until_stops_before_later_events(self):
        eng = Engine()
        seen = []
        eng.schedule(5, lambda: seen.append(5))
        eng.schedule(15, lambda: seen.append(15))
        eng.run(until_ps=10)
        assert seen == [5]
        assert eng.pending() == 1

    def test_max_events_cap(self):
        eng = Engine()
        seen = []
        for i in range(10):
            eng.schedule(i + 1, lambda i=i: seen.append(i))
        eng.run(max_events=3)
        assert len(seen) == 3

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            eng.schedule(-1, lambda: None)

    def test_scheduling_into_the_past_rejected(self):
        eng = Engine()
        eng.schedule(100, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.at(50, lambda: None)

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_peek_time(self):
        eng = Engine()
        assert eng.peek_time() is None
        eng.schedule(42, lambda: None)
        assert eng.peek_time() == 42

    def test_events_processed_counter(self):
        eng = Engine()
        for _ in range(4):
            eng.schedule(1, lambda: None)
        eng.run()
        assert eng.events_processed == 4
