"""SECDED ECC codec tests (including property-based bit-flip tests)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xpoint.ecc import CODE_BITS, DATA_BITS, SecDedCodec

codec = SecDedCodec()
words = st.integers(min_value=0, max_value=(1 << DATA_BITS) - 1)


class TestRoundTrip:
    @given(words)
    @settings(max_examples=60)
    def test_clean_roundtrip(self, word):
        result = codec.decode(codec.encode(word))
        assert result.data == word
        assert not result.corrected
        assert not result.double_error

    @given(words, st.integers(min_value=0, max_value=CODE_BITS - 1))
    @settings(max_examples=80)
    def test_single_bit_flip_corrected(self, word, bit):
        corrupted = codec.encode(word) ^ (1 << bit)
        result = codec.decode(corrupted)
        assert result.data == word
        assert result.corrected
        assert not result.double_error

    @given(
        words,
        st.integers(min_value=0, max_value=CODE_BITS - 1),
        st.integers(min_value=0, max_value=CODE_BITS - 1),
    )
    @settings(max_examples=80)
    def test_double_bit_flip_detected(self, word, b1, b2):
        if b1 == b2:
            return
        corrupted = codec.encode(word) ^ (1 << b1) ^ (1 << b2)
        result = codec.decode(corrupted)
        assert result.double_error
        assert not result.corrected


class TestBounds:
    def test_encode_rejects_oversized(self):
        with pytest.raises(ValueError):
            codec.encode(1 << DATA_BITS)

    def test_decode_rejects_oversized(self):
        with pytest.raises(ValueError):
            codec.decode(1 << CODE_BITS)

    def test_codeword_is_72_bits(self):
        assert CODE_BITS == 72
        assert codec.encode((1 << DATA_BITS) - 1) < (1 << CODE_BITS)
