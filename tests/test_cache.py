"""Persistent result cache: fingerprint stability, round-trips, reuse."""

from dataclasses import replace

import pytest

from repro import MemoryMode, ResultCache, RunConfig, Runner, SimulationJob
from repro.config import default_config
from repro.gpu.gpu import RunResult
from repro.harness.cache import job_fingerprint
from repro.harness.executor import SerialExecutor, execute_job

TINY = RunConfig(num_warps=8, accesses_per_warp=8)


def tiny_job(platform="Ohm-base", workload="backp", mode=MemoryMode.PLANAR,
             run_cfg=TINY, cfg=None):
    return SimulationJob(platform, workload, mode, run_cfg, cfg)


class TestFingerprint:
    def test_stable_across_instances(self):
        assert job_fingerprint(tiny_job()) == job_fingerprint(tiny_job())

    def test_platform_changes_fingerprint(self):
        assert job_fingerprint(tiny_job()) != job_fingerprint(
            tiny_job(platform="Oracle")
        )

    def test_workload_changes_fingerprint(self):
        assert job_fingerprint(tiny_job()) != job_fingerprint(
            tiny_job(workload="pagerank")
        )

    def test_mode_changes_fingerprint(self):
        assert job_fingerprint(tiny_job()) != job_fingerprint(
            tiny_job(mode=MemoryMode.TWO_LEVEL)
        )

    def test_run_config_changes_fingerprint(self):
        assert job_fingerprint(tiny_job()) != job_fingerprint(
            tiny_job(run_cfg=replace(TINY, accesses_per_warp=16))
        )

    def test_waveguides_change_fingerprint(self):
        assert job_fingerprint(tiny_job()) != job_fingerprint(
            tiny_job(run_cfg=replace(TINY, waveguides=4))
        )

    def test_explicit_cfg_override_changes_fingerprint(self):
        cfg = default_config(MemoryMode.PLANAR)
        hot = replace(cfg, hetero=replace(cfg.hetero, hot_threshold=99))
        assert job_fingerprint(tiny_job()) != job_fingerprint(tiny_job(cfg=hot))

    def test_equivalent_cfg_override_matches_default(self):
        # An explicit override identical to the mode-derived config is
        # the same simulation, so it must share a fingerprint.
        cfg = default_config(MemoryMode.PLANAR)
        assert job_fingerprint(tiny_job()) == job_fingerprint(tiny_job(cfg=cfg))


class TestSerialization:
    def test_run_result_round_trip(self):
        result = execute_job(tiny_job())
        assert RunResult.from_dict(result.to_dict()) == result

    def test_system_config_round_trip(self):
        from repro.config import SystemConfig

        cfg = default_config(MemoryMode.TWO_LEVEL).with_waveguides(4)
        assert SystemConfig.from_dict(cfg.to_dict()) == cfg

    def test_run_config_round_trip(self):
        assert RunConfig.from_dict(TINY.to_dict()) == TINY


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = tiny_job()
        assert cache.get(job) is None
        result = execute_job(job)
        cache.put(job, result)
        assert cache.get(job) == result
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_persists_across_instances(self, tmp_path):
        job = tiny_job()
        result = execute_job(job)
        ResultCache(tmp_path).put(job, result)
        fresh = ResultCache(tmp_path)
        assert fresh.get(job) == result

    def test_changed_run_config_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = tiny_job()
        cache.put(job, execute_job(job))
        assert cache.get(tiny_job(run_cfg=replace(TINY, accesses_per_warp=16))) is None

    def test_changed_waveguides_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = tiny_job()
        cache.put(job, execute_job(job))
        assert cache.get(tiny_job(run_cfg=replace(TINY, waveguides=8))) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = tiny_job()
        cache.put(job, execute_job(job))
        cache.path_for(job).write_text("{not json")
        assert cache.get(job) is None

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(tiny_job(), execute_job(tiny_job()))
        assert len(cache) == 1


class _CountingExecutor(SerialExecutor):
    """Serial executor that counts how many jobs actually simulate."""

    def __init__(self):
        self.executed = 0

    def run_jobs(self, jobs):
        self.executed += len(jobs)
        return super().run_jobs(jobs)


class TestRunnerCacheIntegration:
    def test_second_runner_never_simulates(self, tmp_path):
        warm = Runner(TINY, cache=ResultCache(tmp_path))
        a = warm.run("Ohm-base", "backp", MemoryMode.PLANAR)

        counting = _CountingExecutor()
        cold = Runner(TINY, executor=counting, cache=ResultCache(tmp_path))
        b = cold.run("Ohm-base", "backp", MemoryMode.PLANAR)
        assert counting.executed == 0
        assert cold.cache.hits == 1
        assert a == b

    def test_memo_shields_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(TINY, cache=cache)
        runner.run("Ohm-base", "backp", MemoryMode.PLANAR)
        runner.run("Ohm-base", "backp", MemoryMode.PLANAR)
        # The in-memory memo answers the repeat; the cache sees one miss.
        assert cache.misses == 1 and cache.hits == 0

    def test_cache_serves_identical_results_to_serial_path(self, tmp_path):
        plain = Runner(TINY).run("Auto-rw", "pagerank", MemoryMode.TWO_LEVEL)
        cached_runner = Runner(TINY, cache=ResultCache(tmp_path))
        first = cached_runner.run("Auto-rw", "pagerank", MemoryMode.TWO_LEVEL)
        again = Runner(TINY, cache=ResultCache(tmp_path)).run(
            "Auto-rw", "pagerank", MemoryMode.TWO_LEVEL
        )
        assert first == plain
        # JSON round-trip preserves every metric the figures consume.
        assert again.exec_time_ps == plain.exec_time_ps
        assert again.counters == pytest.approx(plain.counters)
        assert again.mean_mem_latency_ps == pytest.approx(plain.mean_mem_latency_ps)
