"""Persistent result cache: fingerprint stability, round-trips, reuse,
and the shared-directory concurrency stress test."""

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro import MemoryMode, ResultCache, RunConfig, Runner, SimulationJob
from repro.config import default_config
from repro.gpu.gpu import RunResult
from repro.harness.cache import SCHEMA_VERSION, job_fingerprint
from repro.harness.executor import SerialExecutor, execute_job

TINY = RunConfig(num_warps=8, accesses_per_warp=8)


def tiny_job(platform="Ohm-base", workload="backp", mode=MemoryMode.PLANAR,
             run_cfg=TINY, cfg=None):
    return SimulationJob(platform, workload, mode, run_cfg, cfg)


class TestFingerprint:
    def test_stable_across_instances(self):
        assert job_fingerprint(tiny_job()) == job_fingerprint(tiny_job())

    def test_platform_changes_fingerprint(self):
        assert job_fingerprint(tiny_job()) != job_fingerprint(
            tiny_job(platform="Oracle")
        )

    def test_workload_changes_fingerprint(self):
        assert job_fingerprint(tiny_job()) != job_fingerprint(
            tiny_job(workload="pagerank")
        )

    def test_mode_changes_fingerprint(self):
        assert job_fingerprint(tiny_job()) != job_fingerprint(
            tiny_job(mode=MemoryMode.TWO_LEVEL)
        )

    def test_run_config_changes_fingerprint(self):
        assert job_fingerprint(tiny_job()) != job_fingerprint(
            tiny_job(run_cfg=replace(TINY, accesses_per_warp=16))
        )

    def test_waveguides_change_fingerprint(self):
        assert job_fingerprint(tiny_job()) != job_fingerprint(
            tiny_job(run_cfg=replace(TINY, waveguides=4))
        )

    def test_explicit_cfg_override_changes_fingerprint(self):
        cfg = default_config(MemoryMode.PLANAR)
        hot = replace(cfg, hetero=replace(cfg.hetero, hot_threshold=99))
        assert job_fingerprint(tiny_job()) != job_fingerprint(tiny_job(cfg=hot))

    def test_equivalent_cfg_override_matches_default(self):
        # An explicit override identical to the mode-derived config is
        # the same simulation, so it must share a fingerprint.
        cfg = default_config(MemoryMode.PLANAR)
        assert job_fingerprint(tiny_job()) == job_fingerprint(tiny_job(cfg=cfg))


class TestSerialization:
    def test_run_result_round_trip(self):
        result = execute_job(tiny_job())
        assert RunResult.from_dict(result.to_dict()) == result

    def test_system_config_round_trip(self):
        from repro.config import SystemConfig

        cfg = default_config(MemoryMode.TWO_LEVEL).with_waveguides(4)
        assert SystemConfig.from_dict(cfg.to_dict()) == cfg

    def test_run_config_round_trip(self):
        assert RunConfig.from_dict(TINY.to_dict()) == TINY


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = tiny_job()
        assert cache.get(job) is None
        result = execute_job(job)
        cache.put(job, result)
        assert cache.get(job) == result
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_persists_across_instances(self, tmp_path):
        job = tiny_job()
        result = execute_job(job)
        ResultCache(tmp_path).put(job, result)
        fresh = ResultCache(tmp_path)
        assert fresh.get(job) == result

    def test_changed_run_config_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = tiny_job()
        cache.put(job, execute_job(job))
        assert cache.get(tiny_job(run_cfg=replace(TINY, accesses_per_warp=16))) is None

    def test_changed_waveguides_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = tiny_job()
        cache.put(job, execute_job(job))
        assert cache.get(tiny_job(run_cfg=replace(TINY, waveguides=8))) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = tiny_job()
        cache.put(job, execute_job(job))
        cache.path_for(job).write_text("{not json")
        assert cache.get(job) is None

    def test_len_counts_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        cache.put(tiny_job(), execute_job(tiny_job()))
        assert len(cache) == 1


class _CountingExecutor(SerialExecutor):
    """Serial executor that counts how many jobs actually simulate."""

    def __init__(self):
        self.executed = 0

    def run_jobs(self, jobs):
        self.executed += len(jobs)
        return super().run_jobs(jobs)


class TestRunnerCacheIntegration:
    def test_second_runner_never_simulates(self, tmp_path):
        warm = Runner(TINY, cache=ResultCache(tmp_path))
        a = warm.run("Ohm-base", "backp", MemoryMode.PLANAR)

        counting = _CountingExecutor()
        cold = Runner(TINY, executor=counting, cache=ResultCache(tmp_path))
        b = cold.run("Ohm-base", "backp", MemoryMode.PLANAR)
        assert counting.executed == 0
        assert cold.cache.hits == 1
        assert a == b

    def test_memo_shields_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = Runner(TINY, cache=cache)
        runner.run("Ohm-base", "backp", MemoryMode.PLANAR)
        runner.run("Ohm-base", "backp", MemoryMode.PLANAR)
        # The in-memory memo answers the repeat; the cache sees one miss.
        assert cache.misses == 1 and cache.hits == 0

    def test_cache_serves_identical_results_to_serial_path(self, tmp_path):
        plain = Runner(TINY).run("Auto-rw", "pagerank", MemoryMode.TWO_LEVEL)
        cached_runner = Runner(TINY, cache=ResultCache(tmp_path))
        first = cached_runner.run("Auto-rw", "pagerank", MemoryMode.TWO_LEVEL)
        again = Runner(TINY, cache=ResultCache(tmp_path)).run(
            "Auto-rw", "pagerank", MemoryMode.TWO_LEVEL
        )
        assert first == plain
        # JSON round-trip preserves every metric the figures consume.
        assert again.exec_time_ps == plain.exec_time_ps
        assert again.counters == pytest.approx(plain.counters)
        assert again.mean_mem_latency_ps == pytest.approx(plain.mean_mem_latency_ps)


class TestCacheEntryShape:
    def test_entry_carries_schema_and_job_facets(self, tmp_path):
        """v4 entries are self-describing: the result store indexes them
        without re-deriving anything from the fingerprint."""
        cache = ResultCache(tmp_path)
        job = tiny_job()
        cache.put(job, execute_job(job))
        data = json.loads(cache.path_for(job).read_text())
        assert data["schema"] == SCHEMA_VERSION
        assert data["job"] == job.to_dict()
        assert RunResult.from_dict(data["result"]) == execute_job(job)


# Driver for the concurrency stress test: one journaled BatchRun over
# the shared directory, fanned out over a 2-worker ParallelExecutor.
# Both contenders run the *same* batch, so every layer races: journal
# appends, cache writes, and shard claims.
_RACE_DRIVER = """
import sys
from repro.config import MemoryMode
from repro.harness.batch import BatchRun
from repro.harness.cache import ResultCache
from repro.harness.executor import ParallelExecutor, RunConfig, SimulationJob

root = sys.argv[1]
jobs = [
    SimulationJob("Ohm-base", "backp", MemoryMode.PLANAR,
                  RunConfig(num_warps=8, accesses_per_warp=8, seed=s))
    for s in range(6)
]
batch = BatchRun.open(root, jobs, shard_size=2)
batch.run(ParallelExecutor(2), ResultCache(root + "/cache"))
"""


@pytest.mark.slow
class TestConcurrentCacheRace:
    def test_two_parallel_batches_share_one_store(self, tmp_path):
        """Two ParallelExecutor batches race on the same jobs and the
        same cache/store directory: no corrupt or partial JSON may
        survive, and every job's stored content is exactly the one
        deterministic result."""
        driver = tmp_path / "driver.py"
        driver.write_text(_RACE_DRIVER)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(
            os.environ,
            PYTHONPATH=src + os.pathsep + os.environ.get("PYTHONPATH", ""),
        )
        root = tmp_path / "shared"
        procs = [
            subprocess.Popen(
                [sys.executable, str(driver), str(root)],
                env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            )
            for _ in range(2)
        ]
        for p in procs:
            _, err = p.communicate(timeout=300)
            assert p.returncode == 0, err.decode()

        jobs = [
            SimulationJob(
                "Ohm-base", "backp", MemoryMode.PLANAR,
                RunConfig(num_warps=8, accesses_per_warp=8, seed=s),
            )
            for s in range(6)
        ]
        cache_dir = root / "cache"
        # Exactly one file per unique job; no strays, no temp leftovers.
        files = sorted(cache_dir.glob("*"))
        assert sorted(f.name for f in files) == sorted(
            f"{job_fingerprint(j)}.json" for j in jobs
        )
        # Every entry parses cleanly and holds exactly-once content:
        # the racing writers can interleave, but each file is one
        # atomic rename of one complete, deterministic result.
        cache = ResultCache(cache_dir)
        for job in jobs:
            data = json.loads(cache.path_for(job).read_text())
            assert data["schema"] == SCHEMA_VERSION
            assert cache.get(job) == execute_job(job)
        # The store indexes the shared directory without skipping.
        from repro.harness.store import ResultStore

        store = ResultStore(cache_dir)
        assert len(store.entries()) == len(jobs)
        assert store.skipped == 0
        # The shared journal survived concurrent appenders: every
        # parseable record is a whole, valid shard completion.
        from repro.harness.batch import BatchRun, read_jsonl

        (batch,) = BatchRun.discover(root)
        recs = read_jsonl(batch.journal_path)
        assert {r["shard"] for r in recs} == {0, 1, 2}
        assert all(r["digest"] for r in recs)
        assert batch.status().done
