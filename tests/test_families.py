"""Workload subsystem v2: parametric families, composition, registry
edge cases and golden family fingerprints."""

import json
import pathlib

import numpy as np
import pytest

from repro.config import MB, MemoryMode
from repro.harness.executor import RunConfig, SimulationJob, execute_job
from repro.workloads.compose import (
    _split_accesses,
    make_multi_tenant,
    make_phased,
    tenant_assignment,
)
from repro.workloads.families import (
    PointerChaseGenerator,
    StreamingScanGenerator,
    TiledGemmGenerator,
)
from repro.workloads.registry import (
    FAMILIES,
    REGISTRY,
    build_traces,
    get_workload,
    get_workload_def,
    register_workload,
)
from repro.workloads.spec import WorkloadSpec, make_def

FOOTPRINT = 8 * MB
NEW_FAMILY_WORKLOADS = (
    "gemm_reuse",
    "pointer_chase",
    "stream_scan",
    "mix_gemm_chase",
    "phased_scan_gemm",
)
GOLDEN = pathlib.Path(__file__).parent / "data" / "workload_fingerprints.json"

#: Canonical sizing the golden digests are frozen at.
GOLDEN_ARGS = dict(
    footprint_bytes=FOOTPRINT,
    num_warps=4,
    accesses_per_warp=64,
    line_bytes=128,
    page_bytes=2048,
    seed=7,
)


def workload_fingerprint(name: str) -> str:
    """One digest per workload: SHA-256 chain over its warp digests."""
    import hashlib

    h = hashlib.sha256()
    for trace in build_traces(name, **GOLDEN_ARGS):
        h.update(trace.digest().encode())
    return h.hexdigest()


class TestFamilyGenerators:
    @pytest.mark.parametrize("name", NEW_FAMILY_WORKLOADS)
    def test_deterministic(self, name):
        a = build_traces(name, **GOLDEN_ARGS)
        b = build_traces(name, **GOLDEN_ARGS)
        assert [t.digest() for t in a] == [t.digest() for t in b]

    @pytest.mark.parametrize("name", NEW_FAMILY_WORKLOADS)
    def test_addresses_in_footprint_and_aligned(self, name):
        for t in build_traces(name, **GOLDEN_ARGS):
            assert (t.addrs >= 0).all()
            assert (t.addrs < FOOTPRINT).all()
            assert (t.addrs % 128 == 0).all()

    @pytest.mark.parametrize("name", NEW_FAMILY_WORKLOADS)
    def test_shapes(self, name):
        traces = build_traces(name, **GOLDEN_ARGS)
        assert len(traces) == 4
        assert all(len(t) == 64 for t in traces)

    def test_warps_differ(self):
        traces = build_traces("pointer_chase", **GOLDEN_ARGS)
        assert not np.array_equal(traces[0].addrs, traces[1].addrs)

    def test_gemm_reuses_lines(self):
        spec = get_workload("gemm_reuse")
        gen = TiledGemmGenerator(spec, FOOTPRINT, tile_lines=8, passes=3)
        t = gen.warp_trace(0, 256)
        # passes=3 sweeps each input tile: strong temporal reuse.
        assert len(np.unique(t.addrs)) < len(t.addrs) / 2

    def test_stream_scan_has_no_reuse(self):
        spec = get_workload("stream_scan")
        gen = StreamingScanGenerator(spec, FOOTPRINT)
        t = gen.warp_trace(0, 200)
        assert len(np.unique(t.addrs)) == len(t.addrs)

    @pytest.mark.parametrize("rf", (0.0, 0.5, 1.0))
    def test_stream_read_fraction_tracked(self, rf):
        spec = get_workload("stream_scan")
        gen = StreamingScanGenerator(spec, FOOTPRINT, read_fraction=rf)
        writes = np.concatenate(
            [gen.warp_trace(w, 400).writes for w in range(4)]
        )
        assert writes.mean() == pytest.approx(1.0 - rf, abs=0.06)

    def test_pointer_chase_is_irregular(self):
        spec = get_workload("pointer_chase")
        gen = PointerChaseGenerator(spec, FOOTPRINT, frontier_fraction=0.0)
        t = gen.warp_trace(0, 300)
        # Dependent chasing: successive deltas are all over the arena.
        deltas = np.abs(np.diff(t.addrs))
        assert np.median(deltas) > 64 * 128  # far beyond any stride run

    def test_apki_tracks_spec(self):
        for name in ("gemm_reuse", "pointer_chase", "stream_scan"):
            spec = get_workload(name)
            traces = build_traces(name, FOOTPRINT, 8, 300, 128, 2048, 7)
            insts = sum(t.total_instructions for t in traces)
            accesses = sum(len(t) for t in traces)
            assert 1000.0 * accesses / insts == pytest.approx(
                spec.apki, rel=0.15
            ), name

    @pytest.mark.parametrize(
        "cls,bad",
        [
            (TiledGemmGenerator, {"tile_lines": 0}),
            (TiledGemmGenerator, {"passes": 0}),
            (TiledGemmGenerator, {"update_writes": 1.5}),
            (PointerChaseGenerator, {"chain_length": 0}),
            (PointerChaseGenerator, {"frontier_fraction": 1.0}),
            (StreamingScanGenerator, {"read_fraction": -0.1}),
            (StreamingScanGenerator, {"num_streams": 0}),
            (StreamingScanGenerator, {"stride_lines": 0}),
        ],
    )
    def test_invalid_params_rejected(self, cls, bad):
        spec = get_workload("stream_scan")
        with pytest.raises(ValueError):
            cls(spec, FOOTPRINT, **bad)


class TestGoldenFamilyFingerprints:
    @pytest.mark.parametrize("name", NEW_FAMILY_WORKLOADS)
    def test_fingerprint_stable(self, name):
        golden = json.loads(GOLDEN.read_text())
        assert name in golden, f"no golden fingerprint for {name}; run --regen"
        assert workload_fingerprint(name) == golden[name], (
            f"trace stream changed for {name} — family generators must be "
            "fingerprint-stable; if the change is intentional, regenerate "
            "tests/data/workload_fingerprints.json (python tests/test_families.py --regen)"
        )


class TestComposition:
    def test_multi_tenant_interleaves_and_labels(self):
        traces = build_traces("mix_gemm_chase", **GOLDEN_ARGS)
        labels = [t.tenant for t in traces]
        assert set(labels) == {"gemm", "chase"}
        assert labels[0] != labels[1]  # interleaved, not blocked

    def test_tenant_assignment_proportional(self):
        out = tenant_assignment([0.75, 0.25], 16)
        assert out.count(0) == 12 and out.count(1) == 4

    def test_phased_concatenates(self):
        traces = build_traces("phased_scan_gemm", **GOLDEN_ARGS)
        assert all(len(t) == 64 for t in traces)
        # The leading streaming phase is sequential per stream; the GEMM
        # tail revisits tile lines.
        t = traces[0]
        head, tail = t.addrs[:19], t.addrs[19:]
        assert len(np.unique(head)) == len(head)
        assert len(np.unique(tail)) < len(tail)

    def test_tenant_counters_in_result(self):
        result = execute_job(
            SimulationJob(
                "Ohm-base", "mix_gemm_chase", MemoryMode.PLANAR,
                RunConfig(num_warps=8, accesses_per_warp=10),
            )
        )
        for tenant in ("gemm", "chase"):
            assert result.counters[f"tenant.{tenant}.warps"] == 4
            assert result.counters[f"tenant.{tenant}.accesses"] == 40
            assert result.counters[f"tenant.{tenant}.instructions"] > 0
            assert 0 < result.counters[f"tenant.{tenant}.finish_ps"] <= result.exec_time_ps

    def test_zero_warp_tenant_rejected(self):
        gemm = get_workload_def("gemm_reuse")
        chase = get_workload_def("pointer_chase")
        skewed = make_multi_tenant(
            "skewed_mix_test", [("big", gemm, 0.9), ("small", chase, 0.1)]
        )
        # 4 warps at 90/10: the small tenant would get zero warps and
        # silently vanish from the counters — must fail loudly instead.
        with pytest.raises(ValueError, match="received 0"):
            build_traces(skewed, FOOTPRINT, 4, 8, 128, 2048, 7)

    def test_split_declared_zero_stays_zero(self):
        # Regression: the minimum-one floor used to donate an access to
        # phases whose fraction was *declared* 0.0, not just to positive
        # fractions rounded down to zero.
        assert _split_accesses([0.0, 1.0], 10) == [0, 10]
        assert _split_accesses([0.0, 0.25, 0.75], 8) == [0, 2, 6]
        # A tiny-but-positive fraction still gets its floor access.
        assert _split_accesses([0.001, 0.999], 10) == [1, 9]

    def test_phased_accepts_zero_fraction_phase(self):
        # A disabled phase (fraction 0.0) is a legal declaration — the
        # scenario layer toggles phases off this way — and contributes
        # no accesses.
        gemm = get_workload_def("gemm_reuse")
        chase = get_workload_def("pointer_chase")
        defn = make_phased("zero_phase_test", [(gemm, 0.0), (chase, 1.0)])
        traces = build_traces(defn, FOOTPRINT, 2, 16, 128, 2048, 7)
        solo = build_traces("pointer_chase", FOOTPRINT, 2, 16, 128, 2048, 7)
        for t, s in zip(traces, solo):
            assert np.array_equal(t.addrs, s.addrs)
        with pytest.raises(ValueError, match="positive fraction"):
            make_phased("all_zero", [(gemm, 0.0), (chase, 0.0)])

    def test_compose_validation(self):
        gemm = get_workload_def("gemm_reuse")
        with pytest.raises(ValueError):
            make_phased("bad", [])
        with pytest.raises(ValueError):
            make_phased("bad", [(gemm, -1.0)])
        with pytest.raises(ValueError):
            make_multi_tenant("bad", [("a", gemm, 0.5), ("a", gemm, 0.5)])
        with pytest.raises(ValueError):
            make_multi_tenant("bad", [("a", gemm, 0.0)])


class TestRegistryEdgeCases:
    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload_def("doom")

    def test_duplicate_registration_rejected(self):
        defn = get_workload_def("gemm_reuse")
        with pytest.raises(ValueError, match="already registered"):
            register_workload(defn)

    def test_replace_allows_reregistration(self):
        defn = get_workload_def("gemm_reuse")
        assert register_workload(defn, replace=True) is defn
        assert REGISTRY["gemm_reuse"] is defn

    def test_unknown_family_rejected(self):
        spec = WorkloadSpec("x", 100, 0.5, "dense")
        with pytest.raises(ValueError, match="unknown family"):
            register_workload(make_def("x", "quantum", spec))

    def test_invalid_family_params_surface_at_build(self):
        spec = WorkloadSpec("bad_gemm", 100, 0.5, "dense")
        defn = make_def("bad_gemm", "gemm", spec, params={"tile_lines": 0})
        with pytest.raises(ValueError):
            build_traces(defn, **GOLDEN_ARGS)

    def test_unknown_param_name_surfaces_at_build(self):
        spec = WorkloadSpec("bad_gemm2", 100, 0.5, "dense")
        defn = make_def("bad_gemm2", "gemm", spec, params={"tiles": 4})
        with pytest.raises(TypeError):
            build_traces(defn, **GOLDEN_ARGS)

    def test_every_family_documented(self):
        for family in FAMILIES.values():
            assert family.doc.strip(), family.name

    def test_every_registered_def_resolves_and_builds(self):
        for name in REGISTRY:
            traces = build_traces(name, FOOTPRINT, 2, 8, 128, 2048, 7)
            assert len(traces) == 2

    def test_reregistration_invalidates_trace_memo(self):
        sizing = RunConfig(num_warps=4, accesses_per_warp=16)
        job = SimulationJob("Ohm-base", "memo_probe", MemoryMode.PLANAR, sizing)
        spec = WorkloadSpec("memo_probe", 160, 0.5, "stream")
        register_workload(
            make_def("memo_probe", "stream", spec, params={"read_fraction": 1.0}),
            replace=True,
        )
        all_reads = execute_job(job)
        register_workload(
            make_def("memo_probe", "stream", spec, params={"read_fraction": 0.0}),
            replace=True,
        )
        all_writes = execute_job(job)
        # Same job key, different resolved def: the trace memo must not
        # serve the stale all-reads traces.
        assert all_reads.to_dict() != all_writes.to_dict()

    def test_new_families_run_through_executor(self):
        sizing = RunConfig(num_warps=4, accesses_per_warp=8)
        for name in ("gemm_reuse", "pointer_chase", "stream_scan"):
            result = execute_job(
                SimulationJob("Ohm-BW", name, MemoryMode.PLANAR, sizing)
            )
            assert result.workload == name
            assert result.exec_time_ps > 0


def _regen() -> None:
    out = {name: workload_fingerprint(name) for name in NEW_FAMILY_WORKLOADS}
    GOLDEN.write_text(json.dumps(out, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
