"""WOM coding tests (Fig. 14)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.optical.wom import (
    EFFECTIVE_BANDWIDTH_FRACTION,
    WomCodec,
    two_writers_roundtrip,
)

codec = WomCodec()
symbols = st.integers(min_value=0, max_value=3)


class TestCodeProperties:
    @given(symbols)
    def test_first_generation_decodes(self, d):
        assert codec.decode(codec.encode_first(d)) == d

    @given(symbols, symbols)
    def test_second_write_only_sets_bits(self, d1, d2):
        """The WOM constraint: the second writer can only add light."""
        first = codec.encode_first(d1)
        second = codec.encode_second(d2, first)
        assert second & first == first  # no bit cleared

    @given(symbols, symbols)
    def test_second_generation_decodes(self, d1, d2):
        first = codec.encode_first(d1)
        second = codec.encode_second(d2, first)
        assert codec.decode(second) == d2

    @given(symbols, symbols)
    def test_roundtrip_both_receivers(self, d1, d2):
        assert two_writers_roundtrip(d1, d2) == (d1, d2)

    def test_first_codes_have_weight_le_1(self):
        for d in range(4):
            assert bin(codec.encode_first(d)).count("1") <= 1

    def test_rewrite_same_data_is_identity(self):
        first = codec.encode_first(2)
        assert codec.encode_second(2, first) == first


class TestBandwidth:
    def test_effective_fraction_is_two_thirds(self):
        assert EFFECTIVE_BANDWIDTH_FRACTION == pytest.approx(2 / 3)

    def test_overhead_bits(self):
        assert codec.overhead_bits(1024) == 1536
        assert codec.overhead_bits(3) == 6  # rounds up to whole symbols

    def test_stream_encoding_length(self):
        out = codec.encode_stream_first([1, 0, 1, 1, 0])
        assert len(out) == 9  # 3 symbols x 3 light bits


class TestValidation:
    def test_data_range_checked(self):
        with pytest.raises(ValueError):
            codec.encode_first(4)

    def test_code_range_checked(self):
        with pytest.raises(ValueError):
            codec.decode(8)
