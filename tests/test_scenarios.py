"""Open-loop scenario tests: arrivals, queueing, SLOs, degradation.

Pins the scenario tier's contract (DESIGN.md section 14):

- seeded arrival processes are deterministic, sorted and horizon-bounded;
- a scenario result is a pure function of ``(spec, RunConfig)`` —
  bit-identical fingerprints across serial/parallel executors and
  streamed/materialized trace paths;
- conservation audits pass on every built-in scenario and catch real
  state, not tautologies;
- per-tenant p50/p99 come from :meth:`Histogram.percentile`
  (nearest-rank goldens below);
- :class:`ArrivalTraceSource` staggers warp start times without touching
  anything but the first gap.
"""

import json

import pytest

from repro.cli import main
from repro.harness.executor import ParallelExecutor, RunConfig
from repro.harness.runner import Runner
from repro.scenarios import (
    ARRIVAL_KINDS,
    SCENARIOS,
    ArrivalProcess,
    DegradationSpec,
    ScenarioSpec,
    TenantClass,
    arrival_times_ps,
    build_schedule,
    get_scenario,
    run_scenario,
)
from repro.sim.stats import Histogram
from repro.workloads.compose import ArrivalTraceSource
from repro.workloads.registry import build_source, get_workload_def
from repro.workloads.source import materialize

QUICK = RunConfig(num_warps=24, accesses_per_warp=24)

#: A deliberately small scenario so the queueing loop stays fast.
SMALL = ScenarioSpec(
    name="small",
    title="test mix",
    arrivals=ArrivalProcess(kind="poisson", offered_load=0.8),
    tenants=(
        TenantClass("a", workload="stream_scan", weight=1.0, slots=1,
                    slo_multiplier=2.0),
        TenantClass("b", workload="pointer_chase", weight=1.0, slots=2,
                    slo_multiplier=3.0),
    ),
    horizon_services=60.0,
    capacity_slots=4,
    queue_limit=8,
)


# ---------------------------------------------------------------------------
# Arrival processes
# ---------------------------------------------------------------------------


class TestArrivals:
    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_deterministic_sorted_bounded(self, kind):
        proc = ArrivalProcess(kind=kind, offered_load=0.7)
        horizon = 1_000_000
        a = arrival_times_ps(proc, 1e-4, horizon, seed=42)
        b = arrival_times_ps(proc, 1e-4, horizon, seed=42)
        assert a == b
        assert a == sorted(a)
        assert all(0 <= t <= horizon for t in a)
        assert a, "expected ~100 arrivals at this rate"

    def test_seed_changes_arrivals(self):
        proc = ArrivalProcess(kind="poisson")
        a = arrival_times_ps(proc, 1e-4, 1_000_000, seed=1)
        b = arrival_times_ps(proc, 1e-4, 1_000_000, seed=2)
        assert a != b

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            ArrivalProcess(kind="fractal")

    def test_bad_load_rejected(self):
        with pytest.raises(ValueError):
            ArrivalProcess(kind="poisson", offered_load=0.0)


# ---------------------------------------------------------------------------
# Degradation schedules
# ---------------------------------------------------------------------------


class TestDegradation:
    @pytest.mark.parametrize("spec", [
        DegradationSpec("ber_drift", (("end_power_frac", 0.3),)),
        DegradationSpec("xpoint_wear", (("writes_per_epoch", 500_000.0),)),
        DegradationSpec("channel_flap", (("fail_prob", 0.3),)),
        DegradationSpec("wavelength_drift", ()),
    ])
    def test_states_are_sane(self, spec):
        sched = build_schedule(spec, num_epochs=6, seed=9)
        for e in range(6):
            st = sched.state(e)
            assert st.service_scale >= 1.0
            assert 0.0 < st.capacity_scale <= 1.0
        assert sched.report()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DegradationSpec("entropy", ())

    def test_none_spec_builds_no_schedule(self):
        assert build_schedule(None, num_epochs=4, seed=0) is None


# ---------------------------------------------------------------------------
# The open-loop runner
# ---------------------------------------------------------------------------


class TestRunScenario:
    def test_conservation_and_audit(self):
        res = run_scenario(SMALL, Runner(QUICK), validate=True)
        assert res.checks_run > 0
        t = res.totals
        assert t["arrivals"] == t["admitted"] + t["rejected"]
        assert t["admitted"] == t["completed"] + t["in_flight"]
        assert t["max_slots_used"] <= SMALL.capacity_slots
        assert t["completed"] > 0
        for m in res.tenants.values():
            assert m["arrivals"] == m["admitted"] + m["rejected"]
            assert m["admitted"] == m["completed"] + m["in_flight"]

    def test_fingerprint_identical_across_executors(self):
        serial = run_scenario(SMALL, Runner(QUICK))
        par = run_scenario(
            SMALL, Runner(QUICK, executor=ParallelExecutor(max_workers=2))
        )
        assert serial.fingerprint() == par.fingerprint()

    def test_fingerprint_identical_streamed_vs_materialized(self, monkeypatch):
        base = run_scenario(SMALL, Runner(QUICK))
        monkeypatch.setenv("REPRO_STREAM_OPS_THRESHOLD", "0")
        streamed = run_scenario(SMALL, Runner(QUICK))
        assert base.fingerprint() == streamed.fingerprint()

    def test_validate_does_not_change_fingerprint(self):
        plain = run_scenario(SMALL, Runner(QUICK))
        audited = run_scenario(SMALL, Runner(QUICK), validate=True)
        assert plain.fingerprint() == audited.fingerprint()
        assert audited.checks_run > 0 and plain.checks_run == 0

    def test_run_seed_changes_fingerprint(self):
        a = run_scenario(SMALL, Runner(QUICK))
        other = RunConfig(num_warps=24, accesses_per_warp=24, seed=11)
        b = run_scenario(SMALL, Runner(other))
        assert a.fingerprint() != b.fingerprint()

    def test_tiny_queue_rejects(self):
        from dataclasses import replace

        cramped = replace(
            SMALL, name="cramped", queue_limit=1, capacity_slots=2,
            arrivals=ArrivalProcess(kind="bursty", offered_load=1.5,
                                    on_fraction=0.2),
        )
        res = run_scenario(cramped, Runner(QUICK), validate=True)
        assert res.totals["rejected"] > 0
        assert res.totals["max_queued"] <= 1

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_builtin_scenarios_audit_clean(self, name):
        res = run_scenario(get_scenario(name), Runner(QUICK), validate=True)
        assert res.checks_run > 0
        assert res.totals["completed"] > 0

    def test_degradation_stretches_latency(self):
        from dataclasses import replace

        base = run_scenario(SMALL, Runner(QUICK))
        aged = run_scenario(
            replace(SMALL, name="aged", degradation=DegradationSpec(
                "ber_drift", (("end_power_frac", 0.2),))),
            Runner(QUICK),
        )
        assert aged.degradation  # schedule reported something
        # same arrivals, but stretched service must not finish more jobs
        assert aged.totals["completed"] <= base.totals["completed"]

    def test_unknown_scenario_name(self):
        with pytest.raises(KeyError, match="steady_poisson"):
            get_scenario("nope")


# ---------------------------------------------------------------------------
# Percentile goldens (nearest-rank on bin starts)
# ---------------------------------------------------------------------------


class TestPercentile:
    def test_nearest_rank_goldens(self):
        h = Histogram(bin_width=10)
        for v in range(100):  # bins 0,10,...,90 with 10 samples each
            h.record(v)
        assert h.percentile(50) == 40  # rank 50 -> 50th sample -> bin 40
        assert h.percentile(99) == 90
        assert h.percentile(100) == 90
        assert h.percentile(0) == 0
        assert h.percentile(1) == 0

    def test_single_sample(self):
        h = Histogram(bin_width=5)
        h.record(17)
        for p in (0, 50, 99, 100):
            assert h.percentile(p) == 15  # bin start of 17

    def test_empty_is_zero(self):
        assert Histogram(bin_width=1).percentile(99) == 0

    def test_out_of_range_raises(self):
        h = Histogram(bin_width=1)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)


# ---------------------------------------------------------------------------
# ArrivalTraceSource
# ---------------------------------------------------------------------------


def _member(num_warps=4):
    defn = get_workload_def("stream_scan")
    return build_source(defn, 1 << 16, num_warps=num_warps,
                        accesses_per_warp=12)


class TestArrivalTraceSource:
    def test_zero_offsets_identical_to_member(self):
        member = _member()
        staggered = ArrivalTraceSource(_member(), [0, 0, 0, 0])
        want = [t.digest() for t in materialize(member)]
        got = [t.digest() for t in materialize(staggered)]
        assert want == got

    def test_offset_prepends_to_first_gap_only(self):
        member = _member()
        src = ArrivalTraceSource(_member(), [100, 0, 7, 0])
        for w in range(4):
            base = list(member.blocks(w))
            shifted = list(src.blocks(w))
            offs = [100, 0, 7, 0][w]
            assert shifted[0][0][0] == base[0][0][0] + offs
            assert shifted[0][0][1:] == list(base[0][0][1:])
            assert shifted[0][1:] == base[0][1:]
            assert shifted[1:] == base[1:]

    def test_tenant_relabel(self):
        src = ArrivalTraceSource(_member(), [0] * 4,
                                 tenants=["t0", "t0", "t1", None])
        assert [src.tenant_of(w) for w in range(4)] == ["t0", "t0", "t1", None]

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalTraceSource(_member(), [0, 0])  # wrong length
        with pytest.raises(ValueError):
            ArrivalTraceSource(_member(), [0, -1, 0, 0])  # negative
        with pytest.raises(ValueError):
            ArrivalTraceSource(_member(), [0] * 4, tenants=["x"])


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestScenarioCli:
    def test_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "steady_poisson" in out and "xpoint_wear" in out

    def test_describe(self, capsys):
        assert main(["scenario", "describe", "rush_hour"]) == 0
        out = capsys.readouterr().out
        assert "bursty" in out and "tenants" in out

    def test_describe_unknown_exits(self):
        with pytest.raises(SystemExit):
            main(["scenario", "describe", "nope"])

    def test_run_quick_validate(self, capsys):
        assert main(
            ["scenario", "run", "steady_poisson", "--quick", "--validate"]
        ) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out and "checks passed" in out

    def test_run_json_output(self, tmp_path, capsys):
        out_path = tmp_path / "scn.json"
        assert main(
            ["scenario", "run", "rush_hour", "--quick", "--validate",
             "--format", "json", "-o", str(out_path)]
        ) == 0
        data = json.loads(out_path.read_text())
        assert data["scenario"] == "rush_hour"
        assert "fingerprint" in data and data["checks_run"] > 0
        assert set(data["tenants"]) == {"batch", "latency", "stream"}
