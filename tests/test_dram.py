"""DRAM substrate tests: timing, bank state machine, device decode."""

import pytest

from repro.config import DramTimingConfig
from repro.dram.bank import Bank, BankState
from repro.dram.device import DramDevice
from repro.dram.timing import AccessOutcome, DramTiming
from repro.sim.engine import ns
from repro.sim.stats import Stats


@pytest.fixture
def timing():
    return DramTiming.from_config(DramTimingConfig())


class TestTiming:
    def test_row_hit_latency(self, timing):
        assert timing.access_latency_ps(AccessOutcome.ROW_HIT) == ns(11)

    def test_row_closed_latency(self, timing):
        assert timing.access_latency_ps(AccessOutcome.ROW_CLOSED) == ns(36)

    def test_row_conflict_latency(self, timing):
        assert timing.access_latency_ps(AccessOutcome.ROW_CONFLICT) == ns(46)

    def test_hit_occupancy_is_burst_rate(self, timing):
        assert timing.access_occupancy_ps(AccessOutcome.ROW_HIT) == ns(2)

    def test_occupancy_below_latency_for_hits(self, timing):
        assert timing.access_occupancy_ps(
            AccessOutcome.ROW_HIT
        ) < timing.access_latency_ps(AccessOutcome.ROW_HIT)


class TestBank:
    def test_first_access_is_row_closed(self, timing):
        bank = Bank(timing)
        finish, outcome = bank.access(row=3, now_ps=0)
        assert outcome is AccessOutcome.ROW_CLOSED
        assert finish == timing.t_rcd_ps + timing.t_cl_ps

    def test_same_row_hits(self, timing):
        bank = Bank(timing)
        bank.access(3, 0)
        _, outcome = bank.access(3, ns(100))
        assert outcome is AccessOutcome.ROW_HIT

    def test_different_row_conflicts(self, timing):
        bank = Bank(timing)
        bank.access(3, 0)
        _, outcome = bank.access(4, ns(100))
        assert outcome is AccessOutcome.ROW_CONFLICT

    def test_back_to_back_hits_stream_at_burst_rate(self, timing):
        bank = Bank(timing)
        bank.access(1, 0)
        f1, _ = bank.access(1, 0)
        f2, _ = bank.access(1, 0)
        # Both are hits; data availability is tCL after their start, and
        # starts are spaced by the burst occupancy.
        assert f2 - f1 == timing.t_burst_ps

    def test_precharge_closes_row(self, timing):
        bank = Bank(timing)
        bank.access(3, 0)
        bank.precharge(ns(200))
        assert bank.state is BankState.IDLE
        assert bank.open_row is None

    def test_activate_for_swap_latches_row(self, timing):
        bank = Bank(timing)
        t = bank.activate(row=9, now_ps=0)
        assert bank.state is BankState.ACTIVE
        assert bank.open_row == 9
        assert t == timing.t_rcd_ps

    def test_activate_same_row_is_free(self, timing):
        bank = Bank(timing)
        bank.activate(9, 0)
        busy = bank.busy_until_ps
        t = bank.activate(9, busy)
        assert t == busy

    def test_occupy_reserves_window(self, timing):
        bank = Bank(timing)
        start, end = bank.occupy(now_ps=100, duration_ps=500)
        assert (start, end) == (100, 600)
        assert bank.busy_until_ps == 600

    def test_counters(self, timing):
        bank = Bank(timing)
        bank.access(1, 0)
        bank.access(1, 0)
        bank.access(2, 0)
        assert bank.accesses == 3
        assert bank.row_hits == 1
        assert bank.activations == 2


class TestDevice:
    def make(self, capacity=1 << 20, refresh=False):
        return DramDevice(
            DramTimingConfig(), capacity, Stats(), name="d", enable_refresh=refresh
        )

    def test_decode_spreads_rows_over_banks(self):
        dev = self.make()
        cfg = DramTimingConfig()
        a = dev.decode(0)
        b = dev.decode(cfg.row_bytes)  # next row
        assert a.bank != b.bank

    def test_decode_same_row_same_bank(self):
        dev = self.make()
        a = dev.decode(0)
        b = dev.decode(64)
        assert (a.bank, a.row) == (b.bank, b.row)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            self.make().decode(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            DramDevice(DramTimingConfig(), 0)

    def test_access_counts_stats(self):
        dev = self.make()
        dev.access(0, False, 0)
        dev.access(0, True, ns(100))
        assert dev.stats.get("d.accesses") == 2
        assert dev.stats.get("d.reads") == 1
        assert dev.stats.get("d.writes") == 1

    def test_refresh_stalls_accesses_in_window(self):
        dev = self.make(refresh=True)
        # Time 0 is inside the refresh window (offset 0 < tRFC).
        finish = dev.access(0, False, 0)
        t = DramTiming.from_config(DramTimingConfig())
        assert finish >= t.refresh_latency_ps

    def test_occupy_bank_blocks_later_access(self):
        dev = self.make()
        dev.occupy_bank(0, 0, ns(1000))
        finish = dev.access(0, False, 0)
        assert finish > ns(1000)

    def test_total_counters_aggregate_banks(self):
        dev = self.make()
        for i in range(8):
            dev.access(i * 4096, False, 0)
        assert dev.total_accesses == 8
        assert dev.total_activations >= 1

    def test_swap_preset_accounting(self):
        """Regression for the audit-flushed bug: swap presets are row
        activations too, but the demand-path stats counter must exclude
        them — the bank ledger keeps both reconciled."""
        dev = self.make()
        dev.access(0, False, 0)  # demand: counter + bank agree
        dev.activate_for_swap(4096, 0)  # preset: bank-only
        dev.occupy_bank(4096, 0, 500)
        assert dev.total_preset_activations == 1
        assert dev.total_occupancies == 1
        counted = dev.stats.get(f"{dev.name}.activations")
        assert counted == dev.total_activations - dev.total_preset_activations
        for bank in dev.banks:
            assert bank.activations <= bank.accesses + bank.occupancies

    def test_occupy_counts_no_demand_access(self):
        dev = self.make()
        dev.occupy_bank(0, 0, 1000)
        assert dev.total_accesses == 0
        assert dev.stats.get(f"{dev.name}.accesses") == 0
        assert dev.total_occupancies == 1
