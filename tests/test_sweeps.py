"""Tests for the design-space sweep utilities."""

from repro.harness.runner import RunConfig
from repro.harness.sweeps import (
    sweep_hot_threshold,
    sweep_waveguides,
    sweep_xpoint_read_latency,
)

TINY = RunConfig(num_warps=12, accesses_per_warp=16)


class TestSweeps:
    def test_hot_threshold_sweep_monotone_swaps(self):
        points = sweep_hot_threshold(thresholds=(6, 48), sizing=TINY)
        swaps = [p.result.counters.get("mem.swaps", 0) for p in points]
        assert swaps[0] >= swaps[1]

    def test_waveguide_sweep_never_slows(self):
        points = sweep_waveguides(counts=(1, 8), sizing=TINY)
        assert points[1].result.exec_time_ps <= points[0].result.exec_time_ps

    def test_xpoint_latency_sweep_monotone(self):
        points = sweep_xpoint_read_latency(latencies_ns=(95.0, 760.0), sizing=TINY)
        assert points[0].result.exec_time_ps <= points[1].result.exec_time_ps

    def test_points_carry_values(self):
        points = sweep_waveguides(counts=(2,), sizing=TINY)
        assert points[0].value == 2
        assert points[0].result.demand_requests == 12 * 16
