"""Harness tests: runner memoization, report formatting, experiment
functions on a tiny matrix."""

import pytest

from repro import MemoryMode, RunConfig, Runner
from repro.harness.experiments import (
    figure3,
    figure8,
    figure15,
    figure16,
    figure17,
    figure18,
    figure19,
    figure20b,
    figure21,
    headline,
    table3,
)
from repro.harness.report import format_table
from repro.sim.records import MemRequest, RequestKind

TINY = RunConfig(num_warps=12, accesses_per_warp=16)
APPS = ("backp", "pagerank")


@pytest.fixture(scope="module")
def runner():
    return Runner(TINY)


class TestRunner:
    def test_scaled_run_config(self):
        cfg = RunConfig(accesses_per_warp=100).scaled(0.5)
        assert cfg.accesses_per_warp == 50

    def test_scaled_floor(self):
        assert RunConfig(accesses_per_warp=10).scaled(0.01).accesses_per_warp == 8

    def test_scaled_identity(self):
        # scaled(1.0) is the identity for any config at/above the floor.
        cfg = RunConfig(num_warps=32, accesses_per_warp=64, seed=3, waveguides=2)
        assert cfg.scaled(1.0) == cfg
        at_floor = RunConfig(accesses_per_warp=RunConfig.MIN_SCALED_ACCESSES)
        assert at_floor.scaled(1.0) == at_floor

    def test_scaled_floor_boundary(self):
        # Landing exactly on the floor is allowed; one below clamps up.
        assert RunConfig(accesses_per_warp=16).scaled(0.5).accesses_per_warp == 8
        assert RunConfig(accesses_per_warp=15).scaled(0.5).accesses_per_warp == 8
        assert RunConfig.MIN_SCALED_ACCESSES == 8

    def test_scaled_pulls_sub_floor_config_up(self):
        # The documented exception: a config already below the floor is
        # raised to it even at factor 1.0 (scaled() never emits < 8).
        assert RunConfig(accesses_per_warp=4).scaled(1.0).accesses_per_warp == 8

    def test_matrix_shape(self, runner):
        m = runner.matrix(("Oracle", "Ohm-base"), APPS, MemoryMode.PLANAR)
        assert set(m) == {(p, w) for p in ("Oracle", "Ohm-base") for w in APPS}

    def test_waveguide_config_isolated(self):
        r1 = Runner(RunConfig(num_warps=8, accesses_per_warp=8, waveguides=1))
        r2 = Runner(RunConfig(num_warps=8, accesses_per_warp=8, waveguides=8))
        a = r1.run("Ohm-base", "backp", MemoryMode.PLANAR)
        b = r2.run("Ohm-base", "backp", MemoryMode.PLANAR)
        assert a.exec_time_ps >= b.exec_time_ps


class TestReport:
    def test_basic_table(self):
        out = format_table(["a", "b"], [(1, 2.5), ("x", 0.001)])
        assert "a" in out and "x" in out
        assert "2.500" in out

    def test_scientific_for_tiny_values(self):
        out = format_table(["v"], [(7.2e-16,)])
        assert "7.20e-16" in out

    def test_title(self):
        out = format_table(["v"], [(1,)], title="T")
        assert out.startswith("T\n")

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])


class TestRecords:
    def test_latency_requires_completion(self):
        req = MemRequest(addr=0, is_write=False, size_bytes=128, sm_id=0, warp_id=0)
        with pytest.raises(ValueError):
            _ = req.latency_ps
        req.complete_ps = req.issue_ps + 10
        assert req.latency_ps == 10

    def test_request_ids_unique(self):
        a = MemRequest(addr=0, is_write=False, size_bytes=128, sm_id=0, warp_id=0)
        b = MemRequest(addr=0, is_write=False, size_bytes=128, sm_id=0, warp_id=0)
        assert a.req_id != b.req_id

    def test_request_kinds(self):
        assert {k.value for k in RequestKind} == {"demand", "migration", "host_dma"}


class TestExperimentFunctions:
    """Each figure function returns well-formed data on a tiny matrix."""

    def test_figure3_rows(self):
        rows = figure3(APPS)
        assert len(rows) == 2
        for r in rows:
            assert r["data_move_frac"] + r["storage_frac"] + r["gpu_frac"] == pytest.approx(1.0)

    def test_figure8_keys(self, runner):
        data = figure8(runner, APPS)
        assert set(data) == {"planar", "two_level"}
        assert ("backp", "migration_bw_frac") in data["planar"].values

    def test_figure16_normalized_to_base(self, runner):
        data = figure16(runner, APPS)
        for mode in data.values():
            for w in APPS:
                assert mode.values[(w, "Ohm-base")] == pytest.approx(1.0)

    def test_figure17_oracle_below_base(self, runner):
        data = figure17(runner, APPS)
        for mode in data.values():
            assert mode.mean_over_workloads("Oracle") <= 1.0

    def test_figure18_fractions_bounded(self, runner):
        data = figure18(runner, APPS)
        for mode in data.values():
            assert all(0.0 <= v <= 1.0 for v in mode.values.values())

    def test_figure19_breakdowns_positive(self, runner):
        data = figure19(runner, APPS)
        for mode_rows in data.values():
            for b in mode_rows.values():
                assert b.total_j > 0

    def test_figure20b_has_seven_links(self):
        assert len(figure20b()) == 7

    def test_figure15_has_four_layouts(self):
        labels = {r["layout"] for r in figure15()}
        assert labels == {"general", "ohm-base", "planar", "two-level"}

    def test_table3_rows(self):
        rows = table3()
        assert len(rows) == 4  # 2 modes x {Ohm-base, Ohm-BW}

    def test_figure21_positive(self, runner):
        data = figure21(runner, APPS)
        for mode in data.values():
            assert all(v > 0 for v in mode.values.values())

    def test_headline_keys(self, runner):
        h = headline(runner, APPS)
        assert h["speedup_vs_origin"] > 0
        assert h["speedup_vs_ohm_base"] > 0


class TestBarChart:
    def test_basic_chart(self):
        from repro.harness.report import format_bar_chart

        out = format_bar_chart([("a", 2.0), ("b", 1.0)], width=4)
        assert "a 2.000 ####" in out
        assert "b 1.000 ##" in out

    def test_title_and_unit(self):
        from repro.harness.report import format_bar_chart

        out = format_bar_chart([("x", 1.0)], width=2, title="T", unit="x")
        assert out.startswith("T\n")
        assert "1.000x" in out

    def test_zero_peak(self):
        from repro.harness.report import format_bar_chart

        out = format_bar_chart([("x", 0.0)], width=10)
        assert "#" not in out

    def test_validation(self):
        import pytest

        from repro.harness.report import format_bar_chart

        with pytest.raises(ValueError):
            format_bar_chart([])
        with pytest.raises(ValueError):
            format_bar_chart([("a", -1.0)])
