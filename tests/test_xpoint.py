"""XPoint substrate tests: device, controller, Start-Gap, translation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import XPointConfig
from repro.sim.engine import ns
from repro.sim.stats import Stats
from repro.xpoint.controller import XPointController
from repro.xpoint.device import XPointDevice
from repro.xpoint.translation import RegionTranslator
from repro.xpoint.wear_leveling import StartGap


class TestDevice:
    def make(self):
        return XPointDevice(XPointConfig(), 1 << 20, Stats(), name="x")

    def test_read_latency(self):
        dev = self.make()
        assert dev.access(0, False, 0) == ns(190)

    def test_write_latency(self):
        dev = self.make()
        assert dev.access(0, True, 0) == ns(763)

    def test_same_bank_serializes(self):
        dev = self.make()
        dev.access(0, False, 0)
        finish = dev.access(0, False, 0)
        assert finish == 2 * ns(190)

    def test_different_banks_parallel(self):
        dev = self.make()
        dev.access(0, False, 0)
        finish = dev.access(XPointConfig().row_bytes, False, 0)
        assert finish == ns(190)

    def test_write_counts_tracked(self):
        dev = self.make()
        dev.access(0, True, 0)
        dev.access(0, True, 0)
        assert dev.max_row_writes == 2
        assert dev.total_writes == 2


class TestStartGap:
    def test_initial_mapping_is_identity(self):
        sg = StartGap(8, period=4)
        assert sg.mapping() == list(range(8))

    def test_translation_is_injective_after_moves(self):
        sg = StartGap(8, period=1)
        for _ in range(30):
            sg.record_write()
            mapping = sg.mapping()
            assert len(set(mapping)) == len(mapping)
            assert sg.gap not in mapping

    def test_gap_moves_once_per_period(self):
        sg = StartGap(8, period=5)
        moved = [sg.record_write() for _ in range(10)]
        assert moved.count(True) == 2

    def test_full_rotation_advances_start(self):
        sg = StartGap(4, period=1)
        for _ in range(5):  # gap walks 4 -> 0, then wraps
            sg.record_write()
        assert sg.start == 1

    @given(
        num_lines=st.integers(min_value=1, max_value=32),
        writes=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=50)
    def test_mapping_always_a_permutation(self, num_lines, writes):
        sg = StartGap(num_lines, period=3)
        for _ in range(writes):
            sg.record_write()
        mapping = sg.mapping()
        assert len(set(mapping)) == num_lines
        assert all(0 <= p <= num_lines for p in mapping)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            StartGap(0)
        with pytest.raises(ValueError):
            StartGap(4, period=0)
        with pytest.raises(ValueError):
            StartGap(4).translate(4)
        with pytest.raises(ValueError):
            StartGap(4).advance(-1)

    @given(
        num_lines=st.integers(min_value=1, max_value=24),
        period=st.integers(min_value=1, max_value=7),
        chunks=st.lists(st.integers(min_value=0, max_value=300), max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_advance_matches_sequential_writes(self, num_lines, period, chunks):
        """advance(k) lands every register exactly where k record_write
        calls would — the closed form the wear scenarios rely on."""
        seq = StartGap(num_lines, period=period)
        bulk = StartGap(num_lines, period=period)
        for k in chunks:
            moves = sum(seq.record_write() for _ in range(k))
            assert bulk.advance(k) == moves
            assert (bulk.start, bulk.gap, bulk.gap_moves) == (
                seq.start, seq.gap, seq.gap_moves
            )
            assert bulk.mapping() == seq.mapping()

    @given(
        num_lines=st.integers(min_value=1, max_value=64),
        period=st.integers(min_value=1, max_value=100),
        writes=st.integers(min_value=0, max_value=10_000_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_multi_rotation_registers_reconcile(self, num_lines, period, writes):
        """Millions of writes: the map stays a permutation and the
        registers reconcile with the write count in closed form."""
        sg = StartGap(num_lines, period=period)
        moves = sg.advance(writes)
        assert moves == writes // period == sg.gap_moves
        cycle = num_lines + 1
        assert sg.start == (moves // cycle) % num_lines
        assert sg.gap == num_lines - (moves % cycle)
        mapping = sg.mapping()
        assert len(set(mapping)) == num_lines
        assert sg.gap not in mapping

    def test_rotation_copy_tracks_physical_contents(self):
        """rotation_copy_slots names the slots each gap move actually
        copies: simulate the physical array and check translate() agrees
        with the contents after every move."""
        sg = StartGap(6, period=1)
        phys = list(range(6)) + [None]  # slot -> logical line
        for _ in range(50):
            assert sg.record_write()
            read_slot, write_slot = sg.rotation_copy_slots()
            assert phys[write_slot] is None  # copies *into* the old gap
            phys[write_slot] = phys[read_slot]
            phys[read_slot] = None
            for logical in range(6):
                assert phys[sg.translate(logical)] == logical


class TestRegionTranslator:
    def test_translation_distinct_within_region(self):
        tr = RegionTranslator(64 * 256, 256, region_rows=16)
        media = {tr.translate(i * 256) for i in range(64)}
        assert len(media) == 64

    def test_offsets_preserved(self):
        tr = RegionTranslator(1 << 16, 256)
        assert tr.translate(7) % 256 == 7

    def test_gap_rotation_counted(self):
        tr = RegionTranslator(1 << 14, 256, start_gap_period=2)
        rotations = sum(tr.record_write(0) for _ in range(10))
        assert rotations == 5
        assert tr.total_gap_moves == 5

    def test_capacity_check(self):
        with pytest.raises(ValueError):
            RegionTranslator(100, 256)

    def test_bulk_record_writes_matches_loop(self):
        a = RegionTranslator(1 << 14, 256, start_gap_period=3)
        b = RegionTranslator(1 << 14, 256, start_gap_period=3)
        loop_moves = sum(a.record_write(512) for _ in range(1000))
        assert b.record_writes(512, 1000) == loop_moves
        assert a.total_gap_moves == b.total_gap_moves
        assert a.translate(512) == b.translate(512)

    def test_rotation_copy_addrs_in_region(self):
        tr = RegionTranslator(64 * 256, 256, region_rows=16, start_gap_period=1)
        addr = 20 * 256  # region 1 (rows 16..31)
        assert tr.record_write(addr)
        read_addr, write_addr = tr.rotation_copy_addrs(addr)
        # Region 1's slots occupy media rows 17..33; the first move
        # reads slot 15 (media row 17 + 15) and writes slot 16.
        assert read_addr == (17 + 15) * 256
        assert write_addr == (17 + 16) * 256


class TestController:
    def make(self, **kw):
        return XPointController(XPointConfig(), 1 << 20, Stats(), name="x", **kw)

    def test_read_includes_media_latency(self):
        c = self.make()
        assert c.read(0, 0) >= ns(190)

    def test_write_is_buffered_fast(self):
        c = self.make()
        # Acceptance is controller latency, not the 763 ns media write.
        assert c.write(0, 0) < ns(100)
        assert c.write_buffer_occupancy == 1

    def test_read_hits_write_buffer(self):
        c = self.make()
        c.write(4096, 0)
        t = c.read(4096, ns(10))
        assert t < ns(100)
        assert c.stats.get("x.wbuf_hits") == 1

    def test_full_buffer_stalls(self):
        c = self.make(write_buffer_entries=2)
        c.write(0, 0)
        c.write(256, 0)
        c.write(512, 0)  # forces a drain
        assert c.stats.get("x.wbuf_stalls") == 1
        assert c.write_buffer_occupancy == 2

    def test_flush_empties_buffer(self):
        c = self.make()
        for i in range(5):
            c.write(i * 256, 0)
        c.flush(0)
        assert c.write_buffer_occupancy == 0
        assert c.stats.get("x.media.writes") >= 5

    def test_snarf_counts(self):
        c = self.make()
        c.snarf_write(0, 0)
        assert c.stats.get("x.snarfs") == 1

    def test_ecc_accounting(self):
        c = self.make()
        c.read(0, 0)
        c.write(0, 0)
        assert c.stats.get("x.ecc_decodes") == 1
        assert c.stats.get("x.ecc_encodes") == 1

    def test_rotation_wear_lands_on_gap_slot(self):
        # Regression: the Start-Gap rotation's extra read+write used to
        # be charged to the *triggering* write's media row — double-
        # counting that row's wear and never recording the gap slot's.
        # The physical copy moves the line adjacent to the gap into the
        # gap slot, two different rows entirely.
        cfg = XPointConfig(start_gap_period=1)
        c = XPointController(cfg, 1 << 20, Stats(), name="x")
        c.write(0, 0)
        c.flush(0)
        # Fresh registers: logical row 0 -> media row 0 (the demand
        # write).  The rotation moves region 0's gap from slot 256 to
        # 255, copying slot 255 into slot 256.
        assert c.stats.get("x.gap_rotations") == 1
        assert c.device.write_counts[0] == 1  # pre-fix: 2
        assert c.device.write_counts[256] == 1  # pre-fix: missing

    def test_stall_path_rotation_wear_matches_drain_path(self):
        # The fused buffer-full branch in write() must attribute
        # rotation wear identically to _drain_one_write.
        cfg = XPointConfig(start_gap_period=1)
        a = XPointController(cfg, 1 << 20, Stats(), name="x",
                             write_buffer_entries=1)
        a.write(0, 0)
        a.write(256, 0)  # full buffer: fused stall-drain of addr 0
        b = XPointController(cfg, 1 << 20, Stats(), name="x")
        b.write(0, 0)
        b.flush(0)  # _drain_one_write of addr 0
        assert dict(a.device.write_counts) == dict(b.device.write_counts)
        assert a.stats.get("x.gap_rotations") == 1
