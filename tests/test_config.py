"""Table I configuration tests."""

import pytest

from repro.config import GB, MemoryMode, SystemConfig, default_config


class TestTable1Values:
    """Pin the paper's Table I constants."""

    def test_gpu_config(self):
        cfg = SystemConfig()
        assert cfg.gpu.num_sms == 16
        assert cfg.gpu.sm_freq_ghz == 1.2

    def test_dram_timing(self):
        t = SystemConfig().dram_timing
        assert t.t_rcd_ns == 25.0
        assert t.t_rp_ns == 10.0
        assert t.t_cl_ns == 11.0
        assert t.t_rrd_ns == 5.0

    def test_xpoint_latencies(self):
        x = SystemConfig().xpoint
        assert x.read_ns == 190.0
        assert x.write_ns == 763.0

    def test_electrical_channels(self):
        e = SystemConfig().electrical
        assert e.num_channels == 6
        assert e.lane_bits == 32
        assert e.freq_ghz == 15.0

    def test_optical_channel(self):
        o = SystemConfig().optical
        assert o.channel_width_bits == 96
        assert o.freq_ghz == 30.0
        assert o.num_virtual_channels == 6
        assert o.vchannel_width_bits == 16

    def test_optical_power_model(self):
        o = SystemConfig().optical
        assert o.mrr_tuning_fj_per_bit == 200.0
        assert o.filter_drop_db == 1.5
        assert o.waveguide_loss_db_per_cm == 0.3
        assert o.splitter_loss_db == 0.2
        assert o.laser_power_mw == 0.73

    def test_electrical_equals_optical_bandwidth(self):
        """Table I: the optical channel provides the same bandwidth as
        the six 32-bit 15 GHz electrical channels."""
        cfg = SystemConfig()
        assert (
            cfg.electrical.total_bandwidth_bits_per_ns
            == cfg.optical.total_bandwidth_bits_per_ns
        )

    def test_base_capacity_is_k80(self):
        assert SystemConfig().base_dram_capacity == 24 * GB


class TestModeSwitch:
    def test_planar_ratio(self):
        cfg = default_config(MemoryMode.PLANAR)
        assert cfg.hetero.dram_to_xpoint_ratio == 8

    def test_two_level_ratio(self):
        cfg = default_config(MemoryMode.TWO_LEVEL)
        assert cfg.hetero.dram_to_xpoint_ratio == 64

    def test_capacity_scaling_preserves_ratio(self):
        cfg = default_config(MemoryMode.PLANAR)
        assert cfg.xpoint_capacity == 8 * cfg.dram_capacity
        assert cfg.hetero_capacity == 9 * cfg.dram_capacity

    def test_with_waveguides(self):
        cfg = SystemConfig().with_waveguides(4)
        assert cfg.optical.num_waveguides == 4
        assert cfg.optical.total_bandwidth_bits_per_ns == 4 * 96 * 30

    def test_with_waveguides_rejects_zero(self):
        with pytest.raises(ValueError):
            SystemConfig().with_waveguides(0)

    def test_configs_are_immutable(self):
        cfg = SystemConfig()
        with pytest.raises(Exception):
            cfg.scale_down = 1
