"""End-to-end integration tests: the paper's qualitative claims hold on
small but realistic runs."""

import pytest

from repro import MemoryMode, RunConfig, Runner

# One shared runner keeps the suite fast: results are memoized.
SMALL = RunConfig(num_warps=48, accesses_per_warp=48)


@pytest.fixture(scope="module")
def runner():
    return Runner(SMALL)


class TestPlatformOrdering:
    """Fig. 16's qualitative ordering on a representative workload."""

    @pytest.mark.parametrize("mode", [MemoryMode.PLANAR, MemoryMode.TWO_LEVEL])
    def test_oracle_is_fastest_hetero_platform(self, runner, mode):
        oracle = runner.run("Oracle", "backp", mode)
        for p in ("Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW"):
            assert oracle.exec_time_ps <= runner.run(p, "backp", mode).exec_time_ps

    @pytest.mark.parametrize("mode", [MemoryMode.PLANAR, MemoryMode.TWO_LEVEL])
    def test_migration_functions_never_hurt(self, runner, mode):
        base = runner.run("Ohm-base", "backp", mode).exec_time_ps
        for p in ("Auto-rw", "Ohm-WOM", "Ohm-BW"):
            assert runner.run(p, "backp", mode).exec_time_ps <= base * 1.02

    def test_ohm_bw_at_least_as_fast_as_wom_planar(self, runner):
        wom = runner.run("Ohm-WOM", "backp", MemoryMode.PLANAR)
        bw = runner.run("Ohm-BW", "backp", MemoryMode.PLANAR)
        # Small runs carry scheduling noise; allow 2 %.
        assert bw.exec_time_ps <= wom.exec_time_ps * 1.02

    def test_hetero_and_ohm_base_similar(self, runner):
        """Table I gives both channels identical bandwidth, so the paper
        reports similar performance for Hetero and Ohm-base."""
        h = runner.run("Hetero", "backp", MemoryMode.PLANAR).exec_time_ps
        o = runner.run("Ohm-base", "backp", MemoryMode.PLANAR).exec_time_ps
        assert abs(h - o) / o < 0.1


class TestMigrationTraffic:
    def test_dual_routes_remove_migration_from_data_route(self, runner):
        """Fig. 18: Ohm-WOM/BW migration share of the data route ~0."""
        base = runner.run("Ohm-base", "backp", MemoryMode.PLANAR)
        bw = runner.run("Ohm-BW", "backp", MemoryMode.PLANAR)
        assert base.migration_bandwidth_fraction > 0.1
        assert bw.migration_bandwidth_fraction < 0.05

    def test_auto_rw_reduces_migration_share(self, runner):
        base = runner.run("Ohm-base", "backp", MemoryMode.PLANAR)
        auto = runner.run("Auto-rw", "backp", MemoryMode.PLANAR)
        assert auto.migration_bandwidth_fraction < base.migration_bandwidth_fraction

    def test_two_level_reverse_write_eliminates_fill_traffic(self, runner):
        base = runner.run("Ohm-base", "backp", MemoryMode.TWO_LEVEL)
        bw = runner.run("Ohm-BW", "backp", MemoryMode.TWO_LEVEL)
        assert bw.migration_bandwidth_fraction < base.migration_bandwidth_fraction


class TestLatency:
    def test_migration_functions_reduce_mean_latency(self, runner):
        """Fig. 17 direction: Ohm-BW latency below Ohm-base."""
        base = runner.run("Ohm-base", "backp", MemoryMode.PLANAR)
        bw = runner.run("Ohm-BW", "backp", MemoryMode.PLANAR)
        assert bw.mean_mem_latency_ps < base.mean_mem_latency_ps

    def test_oracle_latency_lowest(self, runner):
        oracle = runner.run("Oracle", "backp", MemoryMode.PLANAR)
        base = runner.run("Ohm-base", "backp", MemoryMode.PLANAR)
        assert oracle.mean_mem_latency_ps < base.mean_mem_latency_ps


class TestAccounting:
    @pytest.mark.parametrize("p", ["Origin", "Hetero", "Ohm-base", "Ohm-BW", "Oracle"])
    def test_all_requests_complete(self, runner, p):
        res = runner.run(p, "backp", MemoryMode.PLANAR)
        assert res.demand_requests == SMALL.num_warps * SMALL.accesses_per_warp

    def test_results_are_cached(self, runner):
        a = runner.run("Oracle", "backp", MemoryMode.PLANAR)
        b = runner.run("Oracle", "backp", MemoryMode.PLANAR)
        assert a is b

    def test_xpoint_wear_levelling_active(self, runner):
        res = runner.run("Ohm-base", "backp", MemoryMode.PLANAR)
        writes = sum(
            v for k, v in res.counters.items() if k.endswith(".media.writes")
        )
        assert writes > 0


class TestWaveguideSweep:
    def test_more_waveguides_do_not_hurt(self):
        r1 = Runner(RunConfig(num_warps=24, accesses_per_warp=24, waveguides=1))
        r8 = Runner(RunConfig(num_warps=24, accesses_per_warp=24, waveguides=8))
        t1 = r1.run("Ohm-base", "GRAMS", MemoryMode.PLANAR).exec_time_ps
        t8 = r8.run("Ohm-base", "GRAMS", MemoryMode.PLANAR).exec_time_ps
        assert t8 <= t1
