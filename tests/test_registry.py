"""Executor and experiment-registry tests on a tiny matrix."""

import json

import pytest

from repro import MemoryMode, RunConfig, Runner, SimulationJob
from repro.harness.executor import (
    ParallelExecutor,
    SerialExecutor,
    execute_job,
    make_executor,
)
from repro.harness.registry import (
    EXPERIMENTS,
    experiment_names,
    get_experiment,
    run_experiment,
    run_spec,
)
from repro.harness import experiments as E
from repro.harness.report import emit_csv, emit_json

TINY = RunConfig(num_warps=8, accesses_per_warp=8)
APPS = ("backp", "pagerank")

JOBS = [
    SimulationJob("Ohm-base", "backp", MemoryMode.PLANAR, TINY),
    SimulationJob("Oracle", "backp", MemoryMode.PLANAR, TINY),
    SimulationJob("Ohm-base", "pagerank", MemoryMode.TWO_LEVEL, TINY),
]


class TestExecutors:
    def test_serial_matches_execute_job(self):
        results = SerialExecutor().run_jobs(JOBS)
        assert results[0] == execute_job(JOBS[0])

    def test_serial_preserves_order_and_duplicates(self):
        results = SerialExecutor().run_jobs([JOBS[0], JOBS[1], JOBS[0]])
        assert results[0] == results[2]
        assert results[0].platform == "Ohm-base"
        assert results[1].platform == "Oracle"

    def test_parallel_identical_to_serial(self):
        serial = SerialExecutor().run_jobs(JOBS)
        parallel = ParallelExecutor(2).run_jobs(JOBS)
        assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]

    def test_parallel_single_job_falls_back(self):
        assert ParallelExecutor(4).run_jobs([JOBS[0]])[0] == execute_job(JOBS[0])

    def test_make_executor(self):
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor(3), ParallelExecutor)
        assert make_executor(3).max_workers == 3

    def test_parallel_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)

    def test_job_is_hashable_key(self):
        assert len({JOBS[0], JOBS[0], JOBS[1]}) == 2


class TestRunnerBatching:
    def test_run_jobs_memoizes_across_batches(self):
        calls = []

        class Spy(SerialExecutor):
            def run_jobs(self, jobs):
                calls.append(len(jobs))
                return super().run_jobs(jobs)

        runner = Runner(TINY, executor=Spy())
        runner.run_jobs(JOBS)
        runner.run_jobs(JOBS)  # fully memoized: executor not re-entered
        assert calls == [3]

    def test_matrix_is_one_batch(self):
        calls = []

        class Spy(SerialExecutor):
            def run_jobs(self, jobs):
                calls.append(len(jobs))
                return super().run_jobs(jobs)

        runner = Runner(TINY, executor=Spy())
        m = runner.matrix(("Ohm-base", "Oracle"), APPS, MemoryMode.PLANAR)
        assert calls == [4]
        assert set(m) == {(p, w) for p in ("Ohm-base", "Oracle") for w in APPS}


class TestRegistry:
    def test_all_figures_registered(self):
        assert {
            "fig3", "fig8", "fig15", "fig16", "fig17", "fig18", "fig19",
            "fig20a", "fig20b", "fig21", "table3", "headline",
        } <= set(experiment_names())

    def test_get_experiment_unknown(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_specs_declare_schema(self):
        for spec in EXPERIMENTS.values():
            assert spec.columns, spec.name

    def test_run_experiment_analytic(self):
        result = run_experiment("fig15")
        assert {r["layout"] for r in result.payload} == {
            "general", "ohm-base", "planar", "two-level"
        }
        assert set(result.rows[0]) == set(result.spec.columns)

    def test_spec_rows_match_columns(self):
        runner = Runner(TINY)
        result = run_spec(E.make_fig16_spec(APPS), runner)
        for row in result.rows:
            assert set(row) == set(result.spec.columns)

    def test_spec_payload_matches_wrapper(self):
        runner = Runner(TINY)
        via_spec = run_spec(E.make_fig16_spec(APPS), runner).payload
        via_wrapper = E.figure16(runner, APPS)
        for mode in ("planar", "two_level"):
            assert via_spec[mode].values == via_wrapper[mode].values

    def test_fig20a_spec_uses_waveguide_jobs(self):
        spec = E.make_fig20a_spec(("backp",), (1, 4))
        jobs = spec.jobs(TINY)
        waveguides = {j.run_cfg.waveguides for j in jobs}
        assert waveguides == {1, 4}
        # Sizing fields other than waveguides survive the sweep
        # (regression: fig20a used to hand-copy RunConfig fields).
        assert all(j.run_cfg.accesses_per_warp == TINY.accesses_per_warp for j in jobs)

    def test_fig20a_rows(self):
        rows = E.figure20a(("backp",), (1, 2), run_cfg=TINY)
        assert len(rows) == 4  # 2 counts x {Ohm-base, Ohm-BW}
        assert {r["platform"] for r in rows} == {"Ohm-base", "Ohm-BW"}


class TestEmitters:
    ROWS = [
        {"mode": "planar", "workload": "backp", "platform": "Oracle", "value": 1.25},
        {"mode": "planar", "workload": "backp", "platform": "Ohm-BW", "value": 1.1},
    ]

    def test_emit_json_round_trips(self):
        data = json.loads(emit_json(self.ROWS))
        assert data == self.ROWS

    def test_emit_json_column_selection(self):
        data = json.loads(emit_json(self.ROWS, columns=("platform", "value")))
        assert data[0] == {"platform": "Oracle", "value": 1.25}

    def test_emit_csv_header_and_rows(self):
        text = emit_csv(self.ROWS)
        lines = text.strip().split("\n")
        assert lines[0].split(",") == ["mode", "workload", "platform", "value"]
        assert len(lines) == 3
        assert "Oracle" in lines[1]

    def test_emit_csv_empty(self):
        assert emit_csv([]) == ""

    def test_emit_csv_fixed_columns(self):
        text = emit_csv(self.ROWS, columns=("value", "platform"))
        assert text.splitlines()[0] == "value,platform"
