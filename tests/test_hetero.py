"""Heterogeneous-memory tests: hotness, planar mapper, two-level cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hetero.hotness import HotnessTracker
from repro.hetero.planar import PlanarMapper
from repro.hetero.two_level import DramCacheDirectory


class TestHotness:
    def test_turns_hot_at_threshold(self):
        h = HotnessTracker(threshold=3)
        assert not h.record("p")
        assert not h.record("p")
        assert h.record("p")  # exactly at threshold

    def test_only_fires_once(self):
        h = HotnessTracker(threshold=2)
        h.record("p")
        assert h.record("p")
        assert not h.record("p")  # already hot, no re-trigger

    def test_reset_forgets(self):
        h = HotnessTracker(threshold=2)
        h.record("p")
        h.reset("p")
        assert h.count("p") == 0

    def test_decay_halves_counts(self):
        h = HotnessTracker(threshold=100, decay_accesses=4)
        for _ in range(4):
            h.record("p")
        h.record("q")  # triggers decay first
        assert h.count("p") == 2

    def test_decay_drops_cold_keys(self):
        h = HotnessTracker(threshold=100, decay_accesses=2)
        h.record("p")
        h.record("q")
        h.record("r")
        assert h.count("p") == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HotnessTracker(0)
        with pytest.raises(ValueError):
            HotnessTracker(1, decay_accesses=0)


class TestPlanarMapper:
    def test_slot0_starts_in_dram(self):
        m = PlanarMapper(num_groups=4, slots_per_group=3)
        assert m.lookup(0).in_dram  # page 0 -> group 0, slot 0
        assert m.lookup(4).in_dram is False  # page 4 -> group 0, slot 1

    def test_pages_interleave_across_groups(self):
        m = PlanarMapper(num_groups=4, slots_per_group=3)
        assert m.lookup(0).group == 0
        assert m.lookup(1).group == 1

    def test_swap_moves_hot_page_to_dram(self):
        m = PlanarMapper(4, 3)
        hot_page = 4  # group 0, slot 1
        plan = m.plan_swap(hot_page)
        assert plan is not None
        m.commit_swap(plan)
        assert m.lookup(hot_page).in_dram
        assert not m.lookup(0).in_dram  # victim went to XPoint

    def test_swap_for_dram_resident_is_none(self):
        m = PlanarMapper(4, 3)
        assert m.plan_swap(0) is None

    def test_victim_inherits_hot_pages_xpoint_slot(self):
        m = PlanarMapper(4, 3)
        plan = m.plan_swap(4)
        m.commit_swap(plan)
        victim = m.lookup(0)
        assert victim.device_page == plan.xpoint_page

    def test_stale_plan_rejected(self):
        m = PlanarMapper(4, 3)
        plan1 = m.plan_swap(4)
        m.commit_swap(plan1)
        with pytest.raises(ValueError):
            m.commit_swap(plan1)  # resident changed since the plan

    def test_out_of_capacity_page_rejected(self):
        m = PlanarMapper(4, 3)
        with pytest.raises(ValueError):
            m.lookup(12)  # slot 3 >= slots_per_group

    @given(st.lists(st.integers(min_value=0, max_value=11), max_size=30))
    @settings(max_examples=40)
    def test_exactly_one_dram_page_per_group(self, hot_pages):
        """Invariant: each group always has exactly one DRAM-resident
        slot, and all XPoint placements within a group are distinct."""
        m = PlanarMapper(4, 3)
        for page in hot_pages:
            plan = m.plan_swap(page)
            if plan is not None:
                m.commit_swap(plan)
        for group in range(4):
            placements = [m.lookup(group + 4 * s) for s in range(3)]
            in_dram = [p for p in placements if p.in_dram]
            assert len(in_dram) == 1
            xp_pages = [p.device_page for p in placements if not p.in_dram]
            assert len(set(xp_pages)) == len(xp_pages)

    def test_validation(self):
        with pytest.raises(ValueError):
            PlanarMapper(0, 3)
        with pytest.raises(ValueError):
            PlanarMapper(4, 1)


class TestDramCacheDirectory:
    def test_cold_miss(self):
        d = DramCacheDirectory(8)
        assert not d.lookup(3).hit

    def test_hit_after_fill(self):
        d = DramCacheDirectory(8)
        d.fill(3)
        assert d.lookup(3).hit

    def test_conflict_same_set_different_tag(self):
        d = DramCacheDirectory(8)
        d.fill(3)
        lookup = d.lookup(11)  # same set (11 % 8 == 3), different tag
        assert not lookup.hit
        assert lookup.victim_valid
        assert d.victim_line_index(lookup) == 3

    def test_dirty_tracking(self):
        d = DramCacheDirectory(8)
        d.fill(3)
        d.mark_dirty(3)
        assert d.lookup(11).victim_dirty

    def test_mark_dirty_nonresident_raises(self):
        d = DramCacheDirectory(8)
        with pytest.raises(ValueError):
            d.mark_dirty(3)

    def test_hit_rate(self):
        d = DramCacheDirectory(8)
        d.fill(1)
        d.lookup(1)
        d.lookup(2)
        assert d.hit_rate == pytest.approx(0.5)

    def test_metadata_roundtrip_through_real_ecc(self):
        """Section III-B: valid/dirty/tag live in the ECC region."""
        d = DramCacheDirectory(64)
        d.fill(5, dirty=True)
        word = d.metadata_word(5)
        valid, dirty, tag = d.parse_metadata(word)
        assert valid and dirty
        assert tag == 0

    def test_metadata_survives_single_bit_flip(self):
        d = DramCacheDirectory(64)
        d.fill(70)  # tag 1
        word = d.metadata_word(70) ^ (1 << 13)
        valid, dirty, tag = d.parse_metadata(word)
        assert valid and not dirty and tag == 1

    def test_metadata_tag_limited_to_6_bits(self):
        d = DramCacheDirectory(2)
        d.fill(2 * 64)  # tag 64 exceeds 6 bits
        with pytest.raises(ValueError):
            d.metadata_word(2 * 64)
