"""Workload tests: Table II specs, synthetic and graph trace shapes."""

import numpy as np
import pytest

from repro.config import MB
from repro.workloads.graphs import GraphTraceGenerator, build_scale_free_csr
from repro.workloads.registry import WORKLOADS, generate_traces, get_workload, make_generator
from repro.workloads.spec import TABLE2, WorkloadSpec
from repro.workloads.synthetic import SyntheticTraceGenerator, WarpTrace, zipf_pmf

FOOTPRINT = 8 * MB


class TestTable2:
    def test_ten_workloads(self):
        assert len(TABLE2) == 10

    @pytest.mark.parametrize(
        "name,apki,read_ratio",
        [
            ("backp", 30, 0.53),
            ("lud", 20, 0.52),
            ("GRAMS", 266, 0.70),
            ("FDTD", 86, 0.70),
            ("betw", 193, 0.99),
            ("bfsdata", 84, 0.95),
            ("bfstopo", 25, 0.97),
            ("gctopo", 93, 0.99),
            ("pagerank", 599, 0.99),
            ("sssp", 103, 0.98),
        ],
    )
    def test_table2_values(self, name, apki, read_ratio):
        spec = get_workload(name)
        assert spec.apki == apki
        assert spec.read_ratio == read_ratio

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec("bad", -1, 0.5, "rodinia")
        with pytest.raises(ValueError):
            WorkloadSpec("bad", 10, 1.5, "rodinia")

    def test_scaled_footprint_preserves_ratio(self):
        spec = get_workload("backp")
        assert spec.scaled_footprint(12 * 1024) == spec.footprint_bytes // 1024

    def test_mean_gap(self):
        assert get_workload("pagerank").mean_gap_instructions == pytest.approx(1000 / 599)


class TestZipf:
    def test_pmf_sums_to_one(self):
        assert zipf_pmf(100, 0.9).sum() == pytest.approx(1.0)

    def test_pmf_is_decreasing(self):
        pmf = zipf_pmf(50, 1.1)
        assert all(pmf[i] >= pmf[i + 1] for i in range(49))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            zipf_pmf(0, 1.0)


class TestSyntheticTraces:
    def gen(self, name="backp"):
        return SyntheticTraceGenerator(get_workload(name), FOOTPRINT, 128, 2048)

    def test_deterministic_per_warp(self):
        g = self.gen()
        t1 = g.warp_trace(3, 50)
        t2 = g.warp_trace(3, 50)
        assert np.array_equal(t1.addrs, t2.addrs)
        assert np.array_equal(t1.gaps, t2.gaps)

    def test_warps_differ(self):
        g = self.gen()
        assert not np.array_equal(g.warp_trace(0, 50).addrs, g.warp_trace(1, 50).addrs)

    def test_addresses_within_footprint(self):
        t = self.gen().warp_trace(0, 200)
        assert (t.addrs >= 0).all()
        assert (t.addrs < FOOTPRINT).all()

    def test_addresses_line_aligned(self):
        t = self.gen().warp_trace(0, 200)
        assert (t.addrs % 128 == 0).all()

    def test_apki_tracks_table2(self):
        """Instructions per access (gap + the memory inst) must give the
        Table II APKI."""
        for name in ("pagerank", "backp", "lud"):
            spec = get_workload(name)
            g = SyntheticTraceGenerator(spec, FOOTPRINT)
            traces = [g.warp_trace(w, 300) for w in range(8)]
            insts = sum(t.total_instructions for t in traces)
            accesses = sum(len(t) for t in traces)
            measured_apki = 1000.0 * accesses / insts
            assert measured_apki == pytest.approx(spec.apki, rel=0.15), name

    def test_write_ratio_tracks_spec(self):
        spec = get_workload("backp")  # read ratio 0.53
        g = SyntheticTraceGenerator(spec, FOOTPRINT)
        writes = np.concatenate([g.warp_trace(w, 300).writes for w in range(8)])
        assert writes.mean() == pytest.approx(1 - spec.read_ratio, abs=0.08)

    def test_total_instructions(self):
        t = self.gen().warp_trace(0, 40)
        assert t.total_instructions == int(t.gaps.sum()) + 40

    def test_footprint_too_small_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(get_workload("backp"), 100, page_bytes=4096)


class TestGraphTraces:
    def test_csr_structure(self):
        csr = build_scale_free_csr(256, FOOTPRINT, 128, seed=3)
        assert csr.num_vertices == 256
        assert csr.indptr[-1] == len(csr.indices)
        # All neighbour ids valid.
        assert (csr.indices >= 0).all() and (csr.indices < 256).all()

    def test_csr_capacity_check(self):
        with pytest.raises(ValueError):
            build_scale_free_csr(10_000, 1 * MB, 128)

    def test_trace_addresses_in_footprint(self):
        g = GraphTraceGenerator(get_workload("pagerank"), FOOTPRINT, num_vertices=512)
        t = g.warp_trace(0, 200)
        assert (t.addrs >= 0).all()
        assert (t.addrs < FOOTPRINT).all()

    def test_trace_deterministic(self):
        g = GraphTraceGenerator(get_workload("sssp"), FOOTPRINT, num_vertices=512)
        assert np.array_equal(g.warp_trace(1, 100).addrs, g.warp_trace(1, 100).addrs)

    def test_graph_workloads_get_graph_generator(self):
        gen = make_generator(get_workload("pagerank"), FOOTPRINT)
        assert isinstance(gen, GraphTraceGenerator)

    def test_synthetic_workloads_get_synthetic_generator(self):
        gen = make_generator(get_workload("backp"), FOOTPRINT)
        assert isinstance(gen, SyntheticTraceGenerator)

    def test_generate_traces_shape(self):
        traces = generate_traces(get_workload("bfsdata"), FOOTPRINT, 8, 30)
        assert len(traces) == 8
        assert all(len(t) == 30 for t in traces)

    def test_all_workloads_generate(self):
        for name in WORKLOADS:
            traces = generate_traces(get_workload(name), FOOTPRINT, 2, 20)
            assert len(traces) == 2


class TestTraceWellFormed:
    """WarpTrace.well_formed: the workload layer's half of the audit
    contract (sim/audit.py checks it per warp at model construction)."""

    def test_generated_traces_are_well_formed(self):
        g = SyntheticTraceGenerator(get_workload("backp"), FOOTPRINT, 128, 2048)
        for w in range(4):
            assert g.warp_trace(w, 60).well_formed() == []

    def test_misaligned_arrays_reported(self):
        t = WarpTrace(
            gaps=np.array([1, 2], dtype=np.int64),
            addrs=np.array([0], dtype=np.int64),
            writes=np.array([False]),
        )
        problems = t.well_formed()
        assert len(problems) == 1 and "misaligned" in problems[0]

    def test_negative_gap_and_address_reported(self):
        t = WarpTrace(
            gaps=np.array([-1], dtype=np.int64),
            addrs=np.array([-128], dtype=np.int64),
            writes=np.array([True]),
        )
        problems = t.well_formed()
        assert any("gap" in p for p in problems)
        assert any("address" in p for p in problems)

    def test_empty_trace_reported(self):
        t = WarpTrace(
            gaps=np.array([], dtype=np.int64),
            addrs=np.array([], dtype=np.int64),
            writes=np.array([], dtype=bool),
        )
        assert any("empty" in p for p in t.well_formed())
