"""Host/storage substrate tests: PCIe, SSD, Fig. 3 phase model."""

import pytest

from repro.config import HostConfig, default_config
from repro.hoststorage.gpudirect import GpuSsdSystem
from repro.hoststorage.pcie import HostLink
from repro.hoststorage.ssd import Ssd
from repro.sim.engine import us
from repro.workloads.registry import WORKLOADS, get_workload


class TestHostLink:
    def test_transfer_includes_latency(self):
        link = HostLink(HostConfig())
        t = link.transfer(0, 4096)
        assert t >= us(HostConfig().pcie_latency_us)

    def test_link_serializes_occupancy(self):
        link = HostLink(HostConfig())
        t1 = link.transfer(0, 1 << 20)
        t2 = link.transfer(0, 1 << 20)
        assert t2 > t1

    def test_bandwidth_scaling(self):
        fast = HostLink(HostConfig())
        slow = HostLink(HostConfig(), bandwidth_scale_down=8)
        assert slow.transfer(0, 1 << 20) > fast.transfer(0, 1 << 20)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            HostLink(HostConfig()).transfer(0, 0)


class TestSsd:
    def test_write_slower_than_read(self):
        ssd = Ssd(HostConfig())
        assert ssd.access(0, 4096, True) > ssd.access(0, 4096, False)

    def test_bandwidth_occupancy(self):
        ssd = Ssd(HostConfig())
        ssd.access(0, 1 << 24, False)
        t = ssd.access(0, 4096, False)
        assert t > ssd.read_latency_ps  # queued behind the big read


class TestFig3Model:
    def test_fractions_sum_to_one(self):
        system = GpuSsdSystem(default_config())
        for name in WORKLOADS:
            b = system.phase_breakdown(get_workload(name))
            total = b.data_move_frac + b.storage_frac + b.gpu_frac
            assert total == pytest.approx(1.0)

    def test_average_matches_paper_shape(self):
        """Fig. 3a: storage ~21 %, data movement ~45 % on average, and
        movement+storage exceeds GPU compute by >= 1.9x."""
        system = GpuSsdSystem(default_config())
        rows = [system.phase_breakdown(get_workload(n)) for n in WORKLOADS]
        move = sum(r.data_move_frac for r in rows) / len(rows)
        storage = sum(r.storage_frac for r in rows) / len(rows)
        assert 0.30 <= move <= 0.60
        assert 0.10 <= storage <= 0.35
        mean_ratio = sum(r.movement_over_compute for r in rows) / len(rows)
        assert mean_ratio > 1.5

    def test_compute_heavy_apps_have_larger_gpu_share(self):
        system = GpuSsdSystem(default_config())
        lud = system.phase_breakdown(get_workload("lud"))  # APKI 20
        pr = system.phase_breakdown(get_workload("pagerank"))  # APKI 599
        assert lud.gpu_frac > pr.gpu_frac

    def test_memory_breakdown_fractions(self):
        system = GpuSsdSystem(default_config())
        for name in WORKLOADS:
            b = system.memory_breakdown(get_workload(name))
            assert b.dma_time_frac + b.dram_time_frac == pytest.approx(1.0)
            assert 0.0 < b.dma_energy_frac < 1.0

    def test_dma_energy_fraction_near_paper(self):
        """Fig. 3b: DMA is ~19 % of memory-subsystem energy on average."""
        system = GpuSsdSystem(default_config())
        vals = [
            system.memory_breakdown(get_workload(n)).dma_energy_frac for n in WORKLOADS
        ]
        mean = sum(vals) / len(vals)
        assert 0.08 <= mean <= 0.40
