"""Tests for the dynamic wavelength-allocation extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optical.dynamic import DynamicWavelengthAllocator
from repro.optical.mrr import FULL_TUNE_PS


class TestInitialState:
    def test_even_initial_split(self):
        a = DynamicWavelengthAllocator(96, 6)
        assert all(a.share(i) == 16 for i in range(6))

    def test_uneven_total_distributes_remainder(self):
        a = DynamicWavelengthAllocator(97, 6)
        assert sum(a.share(i) for i in range(6)) == 97

    def test_minimum_guarantee_validated(self):
        with pytest.raises(ValueError):
            DynamicWavelengthAllocator(10, 6, min_per_controller=4)


class TestRebalance:
    def test_skewed_demand_shifts_wavelengths(self):
        a = DynamicWavelengthAllocator(96, 6)
        decision = a.rebalance([100, 0, 0, 0, 0, 0])
        assert decision.wavelengths_per_controller[0] > 16
        assert decision.retuned_wavelengths > 0
        assert decision.retune_latency_ps == FULL_TUNE_PS

    def test_minimum_never_violated(self):
        a = DynamicWavelengthAllocator(96, 6, min_per_controller=4)
        decision = a.rebalance([1000, 0, 0, 0, 0, 0])
        assert all(v >= 4 for v in decision.wavelengths_per_controller.values())

    def test_hysteresis_suppresses_churn(self):
        a = DynamicWavelengthAllocator(96, 6, hysteresis=4)
        decision = a.rebalance([1.02, 1.0, 1.0, 1.0, 1.0, 1.0])
        assert decision.retuned_wavelengths == 0
        assert a.rebalances == 0

    def test_retunes_count_both_gained_and_detuned_rings(self):
        # Regression: retuned_wavelengths used to count only the rings
        # tuned *onto* newly gained wavelengths; every moved wavelength
        # also detunes a ring on the losing controller (HPCA'13), so
        # the count is the sum of |delta| — twice the wavelengths moved.
        a = DynamicWavelengthAllocator(96, 6)
        decision = a.rebalance([10, 0, 0, 0, 0, 0])
        gains = sum(
            max(0, decision.wavelengths_per_controller[i] - 16) for i in range(6)
        )
        losses = sum(
            max(0, 16 - decision.wavelengths_per_controller[i]) for i in range(6)
        )
        assert gains == losses  # total conserved
        assert decision.retuned_wavelengths == gains + losses
        assert decision.retuned_wavelengths == 2 * gains

    def test_repeated_identical_demand_does_not_churn(self):
        # Once a rebalance lands on the ideal split, replaying the same
        # demand vector must be a no-op (current == ideal), no matter
        # how skewed the demand or how tight the hysteresis.
        a = DynamicWavelengthAllocator(96, 6, hysteresis=0)
        first = a.rebalance([7, 3, 0, 0, 0, 1])
        assert first.retuned_wavelengths > 0
        for _ in range(5):
            again = a.rebalance([7, 3, 0, 0, 0, 1])
            assert again.retuned_wavelengths == 0
            assert again.retune_latency_ps == 0
        assert a.rebalances == 1

    def test_idle_system_returns_even_split(self):
        a = DynamicWavelengthAllocator(96, 6)
        a.rebalance([100, 0, 0, 0, 0, 0])
        decision = a.rebalance([0, 0, 0, 0, 0, 0])
        assert all(v == 16 for v in decision.wavelengths_per_controller.values())

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            DynamicWavelengthAllocator(96, 6).rebalance([-1, 0, 0, 0, 0, 0])

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            DynamicWavelengthAllocator(96, 6).rebalance([1.0])

    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False),
            min_size=6,
            max_size=6,
        )
    )
    @settings(max_examples=60)
    def test_shares_always_sum_to_total(self, demands):
        a = DynamicWavelengthAllocator(96, 6)
        decision = a.rebalance(demands)
        assert sum(decision.wavelengths_per_controller.values()) == 96
        assert all(v >= 4 for v in decision.wavelengths_per_controller.values())
