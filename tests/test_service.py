"""Service tier tests: lease protocol (unit + hypothesis interleavings),
NDJSON wire protocol edge cases against an in-process daemon, worker
drain semantics — and the tier-2 fault-injection suite (``slow``):
SIGKILL a worker mid-shard, SIGKILL the daemon, a four-worker stress
drain, and the end-to-end serve+workers+kill acceptance run."""

from __future__ import annotations

import io
import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MemoryMode
from repro.harness.batch import BatchRun, read_jsonl
from repro.harness.cache import ResultCache, job_fingerprint
from repro.harness.executor import (
    RunConfig,
    SerialExecutor,
    SimulationJob,
    execute_job,
)
from repro.harness.service import (
    EXECUTIONS_NAME,
    LeaseLost,
    LeaseManager,
    ReproService,
    ServiceClient,
    make_server,
    parse_address,
    run_worker,
    service_status,
    wait_for_service,
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

TTL = 10.0


def tiny_job(seed=7, platform="Ohm-base", workload="backp"):
    return SimulationJob(
        platform,
        workload,
        MemoryMode.PLANAR,
        RunConfig(num_warps=8, accesses_per_warp=8, seed=seed),
    )


def seeded_jobs(n):
    return [tiny_job(seed=s) for s in range(n)]


class FakeClock:
    """Injectable clock: lease mtimes and expiry both read from here."""

    def __init__(self, t=1_000_000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# --------------------------------------------------------------------
# Addresses
# --------------------------------------------------------------------

class TestParseAddress:
    def test_unix_prefix(self):
        assert parse_address("unix:/tmp/x.sock") == ("unix", Path("/tmp/x.sock"))

    def test_tcp_prefix(self):
        assert parse_address("tcp:10.0.0.1:9000") == ("tcp", ("10.0.0.1", 9000))

    def test_tcp_default_host(self):
        assert parse_address("tcp::9000") == ("tcp", ("127.0.0.1", 9000))

    def test_bare_host_port(self):
        assert parse_address("localhost:8123") == ("tcp", ("localhost", 8123))

    def test_plain_path(self):
        assert parse_address("/var/run/repro.sock") == (
            "unix", Path("/var/run/repro.sock")
        )

    def test_relative_path_with_colon_dir(self):
        # A path separator anywhere forces the Unix interpretation.
        assert parse_address("./odd:name/s.sock")[0] == "unix"


# --------------------------------------------------------------------
# Lease protocol (unit)
# --------------------------------------------------------------------

class TestLeaseManager:
    def test_acquire_is_exclusive(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(tmp_path, "a", ttl_s=TTL, clock=clock)
        b = LeaseManager(tmp_path, "b", ttl_s=TTL, clock=clock)
        assert a.acquire(0)
        assert not b.acquire(0)
        assert a.owner_of(0) == "a"
        assert b.owner_of(0) == "a"

    def test_release_frees_for_reacquire(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(tmp_path, "a", ttl_s=TTL, clock=clock)
        b = LeaseManager(tmp_path, "b", ttl_s=TTL, clock=clock)
        assert a.acquire(0)
        a.release(0)
        assert a.owner_of(0) is None
        assert b.acquire(0)

    def test_release_of_foreign_lease_is_a_noop(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(tmp_path, "a", ttl_s=TTL, clock=clock)
        b = LeaseManager(tmp_path, "b", ttl_s=TTL, clock=clock)
        assert a.acquire(0)
        b.release(0)  # not b's to free
        assert a.owner_of(0) == "a"

    def test_heartbeat_refreshes_expiry(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(tmp_path, "a", ttl_s=TTL, clock=clock)
        assert a.acquire(0)
        clock.advance(TTL - 1)
        assert a.heartbeat(0)
        clock.advance(TTL - 1)
        assert not a.expired(0)  # refreshed at TTL-1, only TTL-1 since
        clock.advance(2)
        assert a.expired(0)

    def test_heartbeat_fails_after_reclaim(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(tmp_path, "a", ttl_s=TTL, clock=clock)
        b = LeaseManager(tmp_path, "b", ttl_s=TTL, clock=clock)
        assert a.acquire(0)
        clock.advance(TTL + 1)
        assert b.reclaim(0)
        assert b.acquire(0)
        assert not a.heartbeat(0)  # a discovers the loss
        assert b.owner_of(0) == "b"

    def test_reclaim_requires_expiry(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(tmp_path, "a", ttl_s=TTL, clock=clock)
        b = LeaseManager(tmp_path, "b", ttl_s=TTL, clock=clock)
        assert a.acquire(0)
        clock.advance(TTL / 2)
        assert not b.reclaim(0)
        assert a.owner_of(0) == "a"

    def test_reclaim_race_has_one_winner(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(tmp_path, "a", ttl_s=TTL, clock=clock)
        b = LeaseManager(tmp_path, "b", ttl_s=TTL, clock=clock)
        c = LeaseManager(tmp_path, "c", ttl_s=TTL, clock=clock)
        assert a.acquire(0)
        clock.advance(TTL + 1)
        won = [m.reclaim(0) for m in (b, c)]
        assert won.count(True) == 1  # the loser saw FileNotFoundError
        assert b.crash_count() == 1

    def test_state_machine(self, tmp_path):
        clock = FakeClock()
        a = LeaseManager(tmp_path, "a", ttl_s=TTL, clock=clock)
        assert a.state(0) == ("free", None)
        assert a.acquire(0)
        assert a.state(0) == ("leased", "a")
        clock.advance(TTL + 1)
        assert a.state(0) == ("expired", "a")
        assert a.reclaim(0)
        assert a.state(0) == ("free", None)

    def test_rejects_nonpositive_ttl(self, tmp_path):
        with pytest.raises(ValueError):
            LeaseManager(tmp_path, "a", ttl_s=0)


# --------------------------------------------------------------------
# Lease protocol (hypothesis: arbitrary interleavings, simulated clock)
# --------------------------------------------------------------------

N_WORKERS = 3
N_SHARDS = 2

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("acquire"),
                  st.integers(0, N_WORKERS - 1), st.integers(0, N_SHARDS - 1)),
        st.tuples(st.just("heartbeat"),
                  st.integers(0, N_WORKERS - 1), st.integers(0, N_SHARDS - 1)),
        st.tuples(st.just("release"),
                  st.integers(0, N_WORKERS - 1), st.integers(0, N_SHARDS - 1)),
        st.tuples(st.just("reclaim"),
                  st.integers(0, N_WORKERS - 1), st.integers(0, N_SHARDS - 1)),
        st.tuples(st.just("advance"),
                  st.integers(1, int(1.5 * TTL)), st.just(0)),
    ),
    max_size=50,
)


class TestLeaseProperties:
    """The protocol's two guarantees under arbitrary op interleavings.

    A worker's claim on a shard is *live* when its last successful
    acquire/heartbeat happened within the TTL.  Safety: no two workers
    ever hold live claims on the same shard, and the lease file always
    names the live claimant.  Liveness: whatever state an interleaving
    leaves behind, every shard can still be leased (expired leases are
    reclaimable, free shards acquirable).
    """

    def _drive(self, base, ops):
        clock = FakeClock()
        mgrs = [
            LeaseManager(base, f"w{i}", ttl_s=TTL, clock=clock)
            for i in range(N_WORKERS)
        ]
        believed = [dict() for _ in range(N_WORKERS)]  # shard -> confirm t
        for kind, a, b in ops:
            if kind == "advance":
                clock.advance(a)
            elif kind == "acquire":
                if mgrs[a].acquire(b):
                    believed[a][b] = clock.t
            elif kind == "heartbeat":
                if mgrs[a].heartbeat(b):
                    believed[a][b] = clock.t
                else:
                    believed[a].pop(b, None)
            elif kind == "release":
                mgrs[a].release(b)
                believed[a].pop(b, None)
            elif kind == "reclaim":
                if mgrs[a].reclaim(b) and mgrs[a].acquire(b):
                    believed[a][b] = clock.t
            for s in range(N_SHARDS):
                live = [
                    w for w in range(N_WORKERS)
                    if s in believed[w] and clock.t - believed[w][s] <= TTL
                ]
                assert len(live) <= 1, (kind, a, b, live)
                if live:
                    assert mgrs[0].owner_of(s) == f"w{live[0]}"
        return clock, mgrs

    @given(ops=_ops)
    @settings(max_examples=60, deadline=None)
    def test_never_two_live_owners(self, ops):
        base = Path(tempfile.mkdtemp(prefix="lease-prop-"))
        try:
            self._drive(base, ops)
        finally:
            shutil.rmtree(base, ignore_errors=True)

    @given(ops=_ops)
    @settings(max_examples=60, deadline=None)
    def test_every_shard_eventually_leasable(self, ops):
        base = Path(tempfile.mkdtemp(prefix="lease-prop-"))
        try:
            clock, mgrs = self._drive(base, ops)
            for s in range(N_SHARDS):
                if mgrs[0].owner_of(s) is not None:
                    clock.advance(TTL + 1)
                    assert mgrs[0].reclaim(s)
                assert mgrs[0].acquire(s)
                assert mgrs[0].owner_of(s) == "w0"
        finally:
            shutil.rmtree(base, ignore_errors=True)


# --------------------------------------------------------------------
# Status counts
# --------------------------------------------------------------------

class TestServiceStatus:
    def test_counts_partition_the_shards(self, tmp_path):
        clock = FakeClock()
        jobs = seeded_jobs(8)
        batch = BatchRun.open(tmp_path, jobs, shard_size=2)  # 4 shards
        cache = ResultCache(tmp_path / "cache")
        batch.run_shard(0, SerialExecutor(), cache)  # done
        lm = LeaseManager(batch.batch_dir, "w", ttl_s=TTL, clock=clock)
        assert lm.acquire(1)  # leased
        lm2 = LeaseManager(batch.batch_dir, "dead", ttl_s=TTL, clock=clock)
        assert lm2.acquire(2)
        clock.advance(TTL + 1)  # ...but shard 1's lease expired too now
        assert lm.heartbeat(1)  # refresh it back to leased
        status = service_status(batch, ttl_s=TTL, clock=clock)
        assert status["done"] == 1
        assert status["leased"] == 1
        assert status["crashed"] == 1
        assert status["queued"] == 1
        total = (status["queued"] + status["leased"]
                 + status["done"] + status["crashed"])
        assert total == status["shards"] == 4
        assert not status["complete"]


# --------------------------------------------------------------------
# Worker (in-process)
# --------------------------------------------------------------------

class TestWorker:
    def test_drain_completes_batch_and_matches_serial(self, tmp_path):
        jobs = seeded_jobs(6)
        batch = BatchRun.open(tmp_path, jobs, shard_size=2)
        stats = run_worker(tmp_path, "w1", drain=True, poll_s=0.01)
        assert stats.shards_done == 3
        assert stats.jobs_executed == 6
        assert batch.status().done
        merged = batch.results()
        for job in jobs:
            assert merged[job].fingerprint() == execute_job(job).fingerprint()
        # Lease files are all released; journal carries the worker id.
        assert list((batch.batch_dir / "leases").glob("*.lease")) == []
        recs = read_jsonl(batch.journal_path)
        assert all(r["worker"] == "w1" for r in recs)

    def test_execution_log_has_no_duplicates(self, tmp_path):
        jobs = seeded_jobs(6)
        batch = BatchRun.open(tmp_path, jobs, shard_size=2)
        run_worker(tmp_path, "w1", drain=True, poll_s=0.01)
        fps = [r["fp"] for r in read_jsonl(batch.batch_dir / EXECUTIONS_NAME)]
        assert len(fps) == len(set(fps)) == 6

    def test_two_workers_split_the_batch(self, tmp_path):
        jobs = seeded_jobs(8)
        batch = BatchRun.open(tmp_path, jobs, shard_size=2)
        a = run_worker(tmp_path, "a", drain=True, poll_s=0.01, max_shards=2)
        b = run_worker(tmp_path, "b", drain=True, poll_s=0.01)
        assert a.shards_done == 2
        assert b.shards_done == 2
        assert batch.status().done
        workers = {r["worker"] for r in read_jsonl(batch.journal_path)}
        assert workers == {"a", "b"}

    def test_worker_reclaims_expired_lease_and_annotates(self, tmp_path):
        clock = FakeClock(time.time())
        jobs = seeded_jobs(2)
        batch = BatchRun.open(tmp_path, jobs, shard_size=2)
        dead = LeaseManager(batch.batch_dir, "dead", ttl_s=1.0,
                            clock=lambda: clock.t - 5)  # acquired "long ago"
        assert dead.acquire(0)
        stats = run_worker(
            tmp_path, "alive", drain=True, poll_s=0.01, ttl_s=1.0,
            clock=clock,
        )
        assert stats.reclaims == 1
        assert stats.shards_done == 1
        rec = read_jsonl(batch.journal_path)[0]
        assert rec["worker"] == "alive"
        assert rec["reclaimed"] is True
        lm = LeaseManager(batch.batch_dir, "x", ttl_s=1.0, clock=clock)
        assert lm.crash_count() == 1

    def test_worker_skips_validly_leased_shards(self, tmp_path):
        jobs = seeded_jobs(4)
        batch = BatchRun.open(tmp_path, jobs, shard_size=2)
        other = LeaseManager(batch.batch_dir, "other", ttl_s=60.0)
        assert other.acquire(0)
        stats = run_worker(tmp_path, "w", poll_s=0.01, max_shards=1)
        assert stats.shards_done == 1
        assert {r["shard"] for r in read_jsonl(batch.journal_path)} == {1}
        assert other.owner_of(0) == "other"

    def test_lost_lease_aborts_shard_before_journal(self, tmp_path):
        jobs = seeded_jobs(2)
        batch = BatchRun.open(tmp_path, jobs, shard_size=2)
        cache = ResultCache(tmp_path / "cache")

        calls = []

        def lose_lease(job, result):
            calls.append(job)
            raise LeaseLost("simulated reclaim")

        with pytest.raises(LeaseLost):
            batch.run_shard(0, SerialExecutor(), cache, on_result=lose_lease)
        assert len(calls) == 1
        assert read_jsonl(batch.journal_path) == []  # never marked done
        assert not batch.status().done

    def test_drain_with_no_batches_returns_immediately(self, tmp_path):
        stats = run_worker(tmp_path, "w", drain=True, poll_s=0.01)
        assert stats.shards_done == 0
        assert stats.batches_seen == 0


# --------------------------------------------------------------------
# Wire protocol (in-process daemon on a loopback socket)
# --------------------------------------------------------------------

@pytest.fixture()
def daemon(tmp_path):
    service = ReproService(tmp_path / "root", ttl_s=5.0, poll_s=0.02)
    server = make_server(service, "127.0.0.1:0")
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.02},
        daemon=True,
    )
    thread.start()
    host, port = server.server_address
    ns = SimpleNamespace(
        service=service,
        server=server,
        address=f"{host}:{port}",
        root=service.root,
        client=ServiceClient(f"{host}:{port}", timeout_s=30.0),
    )
    yield ns
    service.stopping.set()
    server.shutdown()
    server.server_close()


def _raw_connection(address):
    kind, target = parse_address(address)
    sock = socket.create_connection(target, timeout=10.0)
    return sock, sock.makefile("rwb")


class TestProtocol:
    def test_ping(self, daemon):
        pong = daemon.client.ping()
        assert pong["ok"] and pong["op"] == "ping"

    def test_unknown_op_is_structured_error(self, daemon):
        resp = daemon.client.request({"op": "frobnicate"})
        assert resp["ok"] is False
        assert resp["error"]["type"] == "unknown-op"

    def test_malformed_line_keeps_connection_serving(self, daemon):
        sock, fh = _raw_connection(daemon.address)
        try:
            fh.write(b"{not json at all\n")
            fh.flush()
            err = json.loads(fh.readline())
            assert err["ok"] is False
            assert err["error"]["type"] == "protocol"
            # Same connection, next line: still served.
            fh.write(json.dumps({"op": "ping"}).encode() + b"\n")
            fh.flush()
            assert json.loads(fh.readline())["ok"] is True
        finally:
            sock.close()

    def test_non_object_request_is_rejected(self, daemon):
        sock, fh = _raw_connection(daemon.address)
        try:
            fh.write(b"[1, 2, 3]\n")
            fh.flush()
            err = json.loads(fh.readline())
            assert err["ok"] is False and err["error"]["type"] == "protocol"
        finally:
            sock.close()

    def test_submit_and_duplicate_returns_existing_batch(self, daemon):
        jobs = seeded_jobs(4)
        first = daemon.client.submit(jobs, shard_size=2, label="t")
        assert first["ok"] and first["existing"] is False
        assert first["shards"] == 2 and first["jobs"] == 4
        # Same job *set*, different order: attaches, never duplicates.
        again = daemon.client.submit(list(reversed(jobs)), shard_size=2)
        assert again["ok"] and again["existing"] is True
        assert again["batch"] == first["batch"]
        assert len(BatchRun.discover(daemon.root)) == 1

    def test_submit_rejects_bad_job_payloads(self, daemon):
        resp = daemon.client.request({"op": "submit", "jobs": []})
        assert resp["ok"] is False and resp["error"]["type"] == "submit"
        resp = daemon.client.request({"op": "submit", "jobs": "nope"})
        assert resp["ok"] is False and resp["error"]["type"] == "submit"
        resp = daemon.client.request(
            {"op": "submit", "jobs": [{"platform": "Ohm-base"}]}
        )
        assert resp["ok"] is False and resp["error"]["type"] == "bad-job"
        resp = daemon.client.request(
            {"op": "submit", "jobs": [tiny_job().to_dict()], "shard_size": 0}
        )
        assert resp["ok"] is False and resp["error"]["type"] == "submit"

    def test_submit_unknown_workload_is_error_not_crash(self, daemon):
        bad = tiny_job().to_dict()
        bad["workload"] = "no_such_workload"
        resp = daemon.client.request({"op": "submit", "jobs": [bad]})
        assert resp["ok"] is False and resp["error"]["type"] == "submit"
        assert daemon.client.ping()["ok"]  # daemon survived

    def test_status_counts(self, daemon):
        sub = daemon.client.submit(seeded_jobs(4), shard_size=2)
        status = daemon.client.status(sub["batch"][:12])
        assert status["ok"]
        row = status["batches"][0]
        assert row["queued"] == 2 and row["done"] == 0
        assert row["shards"] == 2 and not row["complete"]

    def test_status_unknown_batch(self, daemon):
        resp = daemon.client.status("feedfeed")
        assert resp["ok"] is False
        assert resp["error"]["type"] == "unknown-batch"

    def test_watch_timeout_on_idle_batch(self, daemon):
        sub = daemon.client.submit(seeded_jobs(2), shard_size=1)
        events = list(daemon.client.watch(sub["batch"], timeout_s=0.2))
        assert events[0]["ok"] and events[0]["op"] == "watch"
        assert events[-1]["event"] == "timeout"

    def test_watch_streams_shards_and_results_live(self, daemon):
        sub = daemon.client.submit(seeded_jobs(4), shard_size=2)
        worker = threading.Thread(
            target=run_worker, args=(daemon.root, "w1"),
            kwargs={"drain": True, "poll_s": 0.01}, daemon=True,
        )
        worker.start()
        events = list(daemon.client.watch(sub["batch"], timeout_s=60))
        worker.join(timeout=60)
        kinds = [e.get("event") for e in events]
        assert kinds.count("shard") == 2
        assert kinds.count("result") == 4
        assert kinds[-1] == "done"
        shard_events = [e for e in events if e.get("event") == "shard"]
        assert all(e["worker"] == "w1" for e in shard_events)
        result_events = [e for e in events if e.get("event") == "result"]
        assert all("exec_time_ps" in e for e in result_events)

    def test_watch_without_results(self, daemon):
        sub = daemon.client.submit(seeded_jobs(2), shard_size=1)
        run_worker(daemon.root, "w1", drain=True, poll_s=0.01)
        events = list(
            daemon.client.watch(sub["batch"], results=False, timeout_s=30)
        )
        kinds = [e.get("event") for e in events]
        assert kinds.count("shard") == 2
        assert kinds.count("result") == 0
        assert kinds[-1] == "done"

    def test_client_disconnect_mid_watch_leaves_daemon_serving(self, daemon):
        sub = daemon.client.submit(seeded_jobs(4), shard_size=2)
        sock, fh = _raw_connection(daemon.address)
        fh.write(json.dumps(
            {"op": "watch", "batch": sub["batch"]}
        ).encode() + b"\n")
        fh.flush()
        header = json.loads(fh.readline())
        assert header["ok"]
        sock.close()  # hang up mid-stream, daemon still polling for us
        time.sleep(0.1)
        assert daemon.client.ping()["ok"]
        assert daemon.client.status()["ok"]

    def test_cli_submit_and_watch_against_daemon(self, daemon, monkeypatch, capsys):
        from repro.cli import main

        lines = "".join(
            json.dumps(j.to_dict()) + "\n" for j in seeded_jobs(2)
        )
        monkeypatch.setattr(sys, "stdin", io.StringIO(lines))
        assert main([
            "submit", "--stdin-jobs", "--connect", daemon.address,
            "--shard-size", "1",
        ]) == 0
        batch_id_line = capsys.readouterr().out.strip()
        assert len(batch_id_line) == 64
        run_worker(daemon.root, "w1", drain=True, poll_s=0.01)
        assert main([
            "watch", batch_id_line, "--connect", daemon.address,
            "--timeout", "30",
        ]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert json.loads(out[-1])["event"] == "done"

    def test_cli_watch_times_out_nonzero(self, daemon, capsys):
        from repro.cli import main

        sub = daemon.client.submit(seeded_jobs(2), shard_size=1)
        assert main([
            "watch", sub["batch"], "--connect", daemon.address,
            "--timeout", "0.2",
        ]) == 1


# --------------------------------------------------------------------
# Tier-2 fault injection (slow): SIGKILL workers/daemon, stress.
# --------------------------------------------------------------------

def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn(*args, log_to=None):
    out = open(log_to, "wb") if log_to else subprocess.DEVNULL
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env=_env(), stdout=out, stderr=out,
    )


def _wait_for_owned_lease(root: Path, owner: str, timeout_s=60.0) -> Path:
    """Poll until ``owner`` holds some lease; return the lease path."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        for lease in root.glob("b-*/leases/*.lease"):
            try:
                data = json.loads(lease.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # mid-create; next poll sees it whole
            if data.get("owner") == owner:
                return lease
        time.sleep(0.005)
    raise AssertionError(f"worker {owner!r} never held a lease")


def _assert_exactly_once_and_serial_identical(root: Path, jobs):
    """The ISSUE's acceptance bar, shared by every kill/stress test."""
    batches = BatchRun.discover(root)
    assert len(batches) == 1
    batch = batches[0]
    assert batch.status().done

    # Exactly-once: no job fingerprint was ever executed twice, across
    # every worker that touched the batch (the reclaimed shard re-ran
    # only work its dead owner never persisted).
    exec_recs = read_jsonl(batch.batch_dir / EXECUTIONS_NAME)
    fps = [r["fp"] for r in exec_recs]
    assert len(fps) == len(set(fps)), "a job was executed twice"

    # The journal covers every shard exactly once and every line is
    # whole (no torn concurrent appends).
    recs = read_jsonl(batch.journal_path)
    raw_lines = [
        ln for ln in
        batch.journal_path.read_text().splitlines() if ln.strip()
    ]
    assert len(raw_lines) == len(recs), "torn journal line"
    assert sorted(r["shard"] for r in recs) == list(range(len(batch.shards)))

    # Merged results are RunResult-fingerprint-identical to a serial,
    # single-process run of the same job list.
    merged = batch.results()
    serial = dict(zip(jobs, SerialExecutor().run_jobs(jobs)))
    for job in jobs:
        assert merged[job].fingerprint() == serial[job].fingerprint()
        assert merged[job] == serial[job]
    return batch


@pytest.mark.slow
class TestWorkerKill:
    def test_sigkilled_worker_lease_reclaimed_exactly_once(self, tmp_path):
        """Kill a worker mid-shard: lease expiry -> reclaim -> re-run,
        merged results bit-identical, zero duplicate executions."""
        root = tmp_path / "svc"
        jobs = seeded_jobs(16)
        BatchRun.open(root, jobs, shard_size=1)

        victim = _spawn(
            "worker", "--root", str(root), "--owner", "victim",
            "--lease-ttl", "1.0", "--throttle", "0.25", "--poll", "0.05",
            "--drain", log_to=tmp_path / "victim.log",
        )
        survivor = None
        try:
            lease = _wait_for_owned_lease(root, "victim")
            shard_idx = int(lease.name.split("-")[1].split(".")[0])
            victim.kill()  # SIGKILL: no release, no cleanup
            victim.wait()
            journaled_at_kill = {
                r["shard"]
                for r in read_jsonl(lease.parent.parent / "journal.jsonl")
            }
            survivor = _spawn(
                "worker", "--root", str(root), "--owner", "survivor",
                "--lease-ttl", "1.0", "--poll", "0.05", "--drain",
                log_to=tmp_path / "survivor.log",
            )
            assert survivor.wait(timeout=300) == 0
        finally:
            victim.kill()
            if survivor is not None:
                survivor.kill()

        batch = _assert_exactly_once_and_serial_identical(root, jobs)

        if shard_idx not in journaled_at_kill:
            # The common case: the kill landed mid-shard, so the
            # orphaned lease had to be reclaimed and the shard is
            # journaled with reclaim provenance by the survivor.
            lm = LeaseManager(batch.batch_dir, "x", ttl_s=1.0)
            assert lm.crash_count() >= 1
            recs = {r["shard"]: r for r in read_jsonl(batch.journal_path)}
            assert recs[shard_idx]["worker"] == "survivor"
            assert recs[shard_idx].get("reclaimed") is True


@pytest.mark.slow
class TestDaemonKill:
    def test_sigkilled_daemon_restart_resumes_from_wal(self, tmp_path):
        """SIGKILL `repro serve`; a restart serves the same WAL state:
        nothing lost, nothing re-run, duplicate submit attaches."""
        root = tmp_path / "svc"
        sock = str(tmp_path / "serve.sock")
        jobs = seeded_jobs(8)
        client = ServiceClient(sock)

        daemon = _spawn(
            "serve", "--root", str(root), "--socket", sock,
            "--poll", "0.05", log_to=tmp_path / "serve1.log",
        )
        try:
            wait_for_service(sock, timeout_s=30)
            sub = client.submit(jobs, shard_size=1, label="restart")
            assert sub["ok"] and sub["shards"] == 8

            # Partially drain, then SIGKILL the daemon mid-service.
            worker = _spawn(
                "worker", "--root", str(root), "--max-shards", "3",
                "--poll", "0.05", log_to=tmp_path / "worker1.log",
            )
            assert worker.wait(timeout=300) == 0
            before = client.status(sub["batch"])["batches"][0]
            assert before["done"] == 3
        finally:
            daemon.kill()
            daemon.wait()

        batch_dir = next(root.glob("b-*"))
        journal_before = read_jsonl(batch_dir / "journal.jsonl")

        daemon = _spawn(
            "serve", "--root", str(root), "--socket", sock,
            "--poll", "0.05", log_to=tmp_path / "serve2.log",
        )
        try:
            wait_for_service(sock, timeout_s=30)  # stale socket rebound
            after = client.status(sub["batch"])["batches"][0]
            assert after["done"] == 3  # no lost shards
            again = client.submit(jobs, shard_size=1)
            assert again["existing"] is True
            assert again["batch"] == sub["batch"]

            worker = _spawn(
                "worker", "--root", str(root), "--drain", "--poll", "0.05",
                log_to=tmp_path / "worker2.log",
            )
            assert worker.wait(timeout=300) == 0
            events = list(client.watch(sub["batch"], results=False,
                                       timeout_s=60))
            assert events[-1]["event"] == "done"
        finally:
            daemon.kill()
            daemon.wait()

        # The pre-kill journal prefix is preserved verbatim and no
        # shard was re-run: 8 records, one per shard.
        journal_after = read_jsonl(batch_dir / "journal.jsonl")
        assert journal_after[: len(journal_before)] == journal_before
        _assert_exactly_once_and_serial_identical(root, jobs)


@pytest.mark.slow
class TestStress:
    def test_four_workers_drain_64_shards_exactly_once(self, tmp_path):
        """4 worker processes race one 64-shard batch over a shared
        cache dir: no torn WAL lines, exactly-once execution, and the
        status counts partition the shard total at every poll."""
        root = tmp_path / "svc"
        jobs = seeded_jobs(64)
        batch = BatchRun.open(root, jobs, shard_size=1)

        workers = [
            _spawn(
                "worker", "--root", str(root), "--owner", f"w{i}",
                "--poll", "0.02", "--drain",
                log_to=tmp_path / f"w{i}.log",
            )
            for i in range(4)
        ]
        try:
            deadline = time.monotonic() + 300
            while any(w.poll() is None for w in workers):
                status = service_status(batch)
                total = (status["queued"] + status["leased"]
                         + status["done"] + status["crashed"])
                assert total == status["shards"] == 64
                assert time.monotonic() < deadline, "workers never drained"
                time.sleep(0.05)
            assert all(w.wait() == 0 for w in workers)
        finally:
            for w in workers:
                w.kill()

        _assert_exactly_once_and_serial_identical(root, jobs)
        # All four workers actually participated (not one hog): with 64
        # one-job shards and a 20ms poll this is deterministic enough.
        owners = {r["worker"] for r in read_jsonl(batch.journal_path)}
        assert len(owners) >= 2


@pytest.mark.slow
class TestEndToEnd:
    def test_serve_two_workers_one_sigkilled_mid_run(self, tmp_path):
        """The acceptance run: `repro serve` + 2 `repro worker`
        processes complete a 64-shard batch with one worker SIGKILLed
        mid-run; merged results are fingerprint-identical to
        SerialExecutor with zero duplicate executions."""
        root = tmp_path / "svc"
        sock = str(tmp_path / "serve.sock")
        jobs = seeded_jobs(64)
        client = ServiceClient(sock)

        daemon = _spawn(
            "serve", "--root", str(root), "--socket", sock,
            "--poll", "0.05", log_to=tmp_path / "serve.log",
        )
        victim = survivor = None
        try:
            wait_for_service(sock, timeout_s=30)
            sub = client.submit(jobs, shard_size=1, label="e2e")
            assert sub["ok"] and sub["shards"] == 64

            victim = _spawn(
                "worker", "--root", str(root), "--owner", "victim",
                "--lease-ttl", "1.0", "--throttle", "0.15",
                "--poll", "0.02", "--drain", log_to=tmp_path / "victim.log",
            )
            survivor = _spawn(
                "worker", "--root", str(root), "--owner", "survivor",
                "--lease-ttl", "1.0", "--poll", "0.02", "--drain",
                log_to=tmp_path / "survivor.log",
            )

            # Let the victim work a while, then SIGKILL it while it
            # provably holds a lease (mid-shard).
            _wait_for_owned_lease(root, "victim")
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                done = {r["shard"] for r in read_jsonl(
                    next(root.glob("b-*")) / "journal.jsonl")}
                if len(done) >= 8:
                    break
                time.sleep(0.02)
            lease = _wait_for_owned_lease(root, "victim")
            victim.kill()
            victim.wait()

            # Stream the rest of the batch to completion over the wire.
            events = list(client.watch(sub["batch"], results=False,
                                       timeout_s=300))
            assert events[-1]["event"] == "done"
            assert survivor.wait(timeout=300) == 0

            status = client.status(sub["batch"])["batches"][0]
            assert status["complete"] and status["done"] == 64
        finally:
            daemon.kill()
            for proc in (victim, survivor):
                if proc is not None:
                    proc.kill()

        batch = _assert_exactly_once_and_serial_identical(root, jobs)
        # The orphaned lease was reclaimed (not silently forgotten):
        # the survivor's journal record carries the reclaim provenance.
        shard_idx = int(lease.name.split("-")[1].split(".")[0])
        recs = {r["shard"]: r for r in read_jsonl(batch.journal_path)}
        if recs[shard_idx]["worker"] == "survivor":
            lm = LeaseManager(batch.batch_dir, "x", ttl_s=1.0)
            assert lm.crash_count() >= 1
        # Every job result really is in the shared cache, addressable
        # by fingerprint through the store surface.
        cache = ResultCache(root / "cache")
        for job in jobs:
            assert cache.get(job) is not None
        assert {r["fp"] for r in read_jsonl(
            batch.batch_dir / EXECUTIONS_NAME
        )} == {job_fingerprint(j) for j in jobs}
