"""GPU substrate tests: caches, interconnect, SM issue, warps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.config import MemoryMode, default_config
from repro.core.platforms import PLATFORMS
from repro.gpu.cache import SetAssocCache
from repro.gpu.gpu import GpuModel
from repro.gpu.interconnect import Interconnect
from repro.sim.records import MemRequest
from repro.workloads.registry import get_workload
from repro.workloads.synthetic import WarpTrace


def tiny_traces(n_warps=4, n_acc=6, line=128):
    return [
        WarpTrace(
            gaps=np.full(n_acc, 3, dtype=np.int64),
            addrs=np.arange(n_acc, dtype=np.int64) * line * (w + 1),
            writes=np.zeros(n_acc, dtype=bool),
        )
        for w in range(n_warps)
    ]


class TestCache:
    def test_miss_then_hit(self):
        c = SetAssocCache(1024, 2, 64)
        hit, _ = c.access(0, False)
        assert not hit
        hit, _ = c.access(0, False)
        assert hit

    def test_lru_eviction(self):
        c = SetAssocCache(2 * 64, 2, 64)  # one set, two ways
        c.access(0, False)
        c.access(64, False)
        c.access(0, False)  # refresh line 0
        _, evicted = c.access(128, False)  # evicts line 64 (LRU)
        assert evicted is not None
        assert evicted.addr == 64

    def test_dirty_eviction_flagged(self):
        c = SetAssocCache(2 * 64, 2, 64)
        c.access(0, True)
        c.access(64, False)
        _, evicted = c.access(128, False)
        assert evicted.dirty
        assert c.stats.writebacks == 1

    def test_write_hit_marks_dirty(self):
        c = SetAssocCache(2 * 64, 2, 64)
        c.access(0, False)
        c.access(0, True)
        c.access(64, False)
        _, evicted = c.access(128, False)
        assert evicted.dirty

    def test_flush_returns_dirty_lines(self):
        c = SetAssocCache(1024, 2, 64)
        c.access(0, True)
        c.access(64, False)
        dirty = c.flush()
        assert [e.addr for e in dirty] == [0]
        assert not c.contains(0)

    def test_hit_rate(self):
        c = SetAssocCache(1024, 2, 64)
        c.access(0, False)
        c.access(0, False)
        assert c.stats.hit_rate == pytest.approx(0.5)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssocCache(1000, 3, 64)

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    @settings(max_examples=30)
    def test_occupancy_never_exceeds_ways(self, lines):
        c = SetAssocCache(4 * 64, 2, 64)  # 2 sets x 2 ways
        for line in lines:
            c.access(line * 64, False)
        for set_index in range(c.num_sets):
            assert c.set_occupancy(set_index) <= 2


class TestInterconnect:
    def test_latency_added(self):
        noc = Interconnect(latency_ns=20.0, bandwidth_bits_per_ns=1024.0)
        t = noc.traverse(0, 1024)
        assert t == 1000 + 20_000  # 1 ns occupancy + 20 ns latency

    def test_bandwidth_serializes(self):
        noc = Interconnect(latency_ns=0.0, bandwidth_bits_per_ns=1.0)
        noc.traverse(0, 1000)
        t = noc.traverse(0, 1000)
        assert t == 2_000_000

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Interconnect(bandwidth_bits_per_ns=0)
        with pytest.raises(ValueError):
            Interconnect().traverse(0, 0)


class TestGpuModel:
    def test_run_completes_all_warps(self):
        cfg = default_config(MemoryMode.PLANAR)
        model = GpuModel(PLATFORMS["Oracle"], cfg, get_workload("backp"), tiny_traces())
        result = model.run()
        assert result.demand_requests == 4 * 6
        assert result.exec_time_ps > 0

    def test_instruction_accounting(self):
        cfg = default_config(MemoryMode.PLANAR)
        model = GpuModel(PLATFORMS["Oracle"], cfg, get_workload("backp"), tiny_traces())
        result = model.run()
        # Each access: 3 compute insts + 1 memory inst.
        assert result.instructions == 4 * 6 * 4

    def test_caches_absorb_repeats(self):
        cfg = default_config(MemoryMode.PLANAR)
        n = 8
        traces = [
            WarpTrace(
                gaps=np.ones(n, dtype=np.int64),
                addrs=np.zeros(n, dtype=np.int64),  # same line repeatedly
                writes=np.zeros(n, dtype=bool),
            )
        ]
        model = GpuModel(
            PLATFORMS["Oracle"], cfg, get_workload("backp"), traces, model_caches=True
        )
        result = model.run()
        assert result.counters.get("gpu.l1_hits", 0) >= n - 1

    def test_empty_traces_rejected(self):
        cfg = default_config()
        with pytest.raises(ValueError):
            GpuModel(PLATFORMS["Oracle"], cfg, get_workload("backp"), [])

    def test_deterministic(self):
        cfg = default_config(MemoryMode.PLANAR)
        r1 = GpuModel(PLATFORMS["Ohm-BW"], cfg, get_workload("backp"), tiny_traces()).run()
        r2 = GpuModel(PLATFORMS["Ohm-BW"], cfg, get_workload("backp"), tiny_traces()).run()
        assert r1.exec_time_ps == r2.exec_time_ps
        assert r1.counters == r2.counters

    def test_migration_bandwidth_fraction_bounds(self):
        cfg = default_config(MemoryMode.TWO_LEVEL)
        model = GpuModel(PLATFORMS["Ohm-base"], cfg, get_workload("backp"), tiny_traces())
        result = model.run()
        assert 0.0 <= result.migration_bandwidth_fraction <= 1.0


class TestStreamingMultiprocessor:
    def test_submit_memory_request_wrapper(self):
        # The request-object API must agree with the bare-pair fast path
        # and record the completion on the request.
        cfg = default_config(MemoryMode.PLANAR)
        model = GpuModel(PLATFORMS["Oracle"], cfg, get_workload("backp"), tiny_traces())
        sm = model.sms[0]
        req = MemRequest(addr=0, is_write=False, size_bytes=128, sm_id=0, warp_id=0)
        complete = sm.submit_memory_request(req)
        assert req.complete_ps == complete
        assert complete > 0
        twin = GpuModel(
            PLATFORMS["Oracle"], cfg, get_workload("backp"), tiny_traces()
        )
        assert twin.sms[0].access_memory(0, False) == complete
