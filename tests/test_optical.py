"""Optical substrate tests: MRR, waveguide, wavelengths, power, BER,
layout, SerDes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MemoryMode, default_config
from repro.optical.ber import (
    ANCHOR_BER,
    RELIABILITY_REQUIREMENT,
    BerModel,
    ber_to_q,
    figure20b_budgets,
    q_to_ber,
)
from repro.optical.layout import (
    BASELINE_LAYOUT,
    GENERAL_LAYOUT,
    PLANAR_LAYOUT,
    TWO_LEVEL_LAYOUT,
    layout_for_mode,
    mode_reduction,
)
from repro.optical.mrr import FINE_TUNE_PS, FULL_TUNE_PS, CouplingState, MicroRingResonator
from repro.optical.power import OpticalPowerModel
from repro.optical.serdes import SerDes
from repro.optical.waveguide import Waveguide, db_to_fraction
from repro.optical.wavelength import WavelengthAllocator


class TestMrr:
    def test_full_tune_latency(self):
        mrr = MicroRingResonator()
        assert mrr.tune(CouplingState.FULLY_COUPLED) == FULL_TUNE_PS

    def test_fine_tune_into_half_coupled(self):
        mrr = MicroRingResonator()
        assert mrr.tune(CouplingState.HALF_COUPLED) == FINE_TUNE_PS

    def test_tune_to_same_state_is_free(self):
        mrr = MicroRingResonator()
        mrr.tune(CouplingState.FULLY_COUPLED)
        assert mrr.tune(CouplingState.FULLY_COUPLED) == 0

    def test_pass_power_by_state(self):
        mrr = MicroRingResonator()
        assert mrr.pass_power(1.0) == 1.0
        mrr.tune(CouplingState.HALF_COUPLED)
        assert mrr.pass_power(1.0) == 0.5
        mrr.tune(CouplingState.FULLY_COUPLED)
        assert mrr.pass_power(1.0) == 0.0

    def test_absorbed_plus_passed_conserves_power(self):
        mrr = MicroRingResonator()
        mrr.tune(CouplingState.HALF_COUPLED)
        assert mrr.pass_power(0.8) + mrr.absorbed_power(0.8) == pytest.approx(0.8)

    def test_half_coupled_tx_keeps_half_power_on_zero(self):
        mrr = MicroRingResonator()
        assert mrr.modulate_bit(0, 1.0, half_coupled_tx=True) == 0.5
        assert mrr.modulate_bit(0, 1.0, half_coupled_tx=False) == 0.0
        assert mrr.modulate_bit(1, 1.0, half_coupled_tx=True) == 1.0

    def test_invalid_bit_rejected(self):
        with pytest.raises(ValueError):
            MicroRingResonator().modulate_bit(2, 1.0, False)


class TestWaveguide:
    def test_db_to_fraction(self):
        assert db_to_fraction(10.0) == pytest.approx(0.1)
        assert db_to_fraction(0.0) == 1.0

    def test_propagation_loss(self):
        wg = Waveguide(length_cm=10.0, loss_db_per_cm=0.3)
        assert wg.loss_db == pytest.approx(3.0)
        assert wg.propagate(1.0) == pytest.approx(db_to_fraction(3.0))

    def test_partial_propagation(self):
        wg = Waveguide(4.0)
        assert wg.propagate_partial(1.0, 2.0) > wg.propagate(1.0)

    def test_partial_bounds_checked(self):
        with pytest.raises(ValueError):
            Waveguide(4.0).propagate_partial(1.0, 5.0)


class TestWavelengthAllocation:
    def test_six_by_sixteen(self):
        groups = WavelengthAllocator(96, 6).allocate()
        assert len(groups) == 6
        assert all(g.width_bits == 16 for g in groups)
        assert WavelengthAllocator.verify_disjoint(groups)

    @given(
        total=st.integers(min_value=1, max_value=256),
        vcs=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=50)
    def test_allocation_covers_all_wavelengths_disjointly(self, total, vcs):
        if total < vcs:
            return
        groups = WavelengthAllocator(total, vcs).allocate()
        assert WavelengthAllocator.verify_disjoint(groups)
        assert sum(g.width_bits for g in groups) == total

    def test_too_few_wavelengths_rejected(self):
        with pytest.raises(ValueError):
            WavelengthAllocator(4, 6)


class TestPowerAndBer:
    def test_anchor_calibration(self):
        cfg = default_config().optical
        model = BerModel.calibrated(cfg)
        path = OpticalPowerModel(cfg).demand_path()
        assert model.ber_for_path(path) == pytest.approx(ANCHOR_BER, rel=1e-3)

    def test_q_ber_inverse(self):
        for ber in (1e-9, 1e-12, 1e-15):
            assert q_to_ber(ber_to_q(ber)) == pytest.approx(ber, rel=1e-3)

    def test_more_power_means_lower_ber(self):
        model = BerModel(sensitivity_q_per_sqrt_mw=14.0)
        assert model.ber(0.6) < model.ber(0.3)

    def test_no_light_is_coin_flip(self):
        assert BerModel(14.0).ber(0.0) == 0.5

    def test_figure20b_matches_paper(self):
        """Pin the four BER values the paper reports in Section VI-B."""
        budgets = {b.label: b.ber for b in figure20b_budgets(default_config().optical)}
        assert budgets["Ohm-base rd/wr"] == pytest.approx(7.2e-16, rel=0.02)
        assert budgets["Ohm-WOM auto"] == pytest.approx(6.1e-16, rel=0.02)
        assert budgets["Ohm-WOM swap"] == pytest.approx(9.9e-16, rel=0.02)
        assert budgets["Ohm-BW swap"] == pytest.approx(9.3e-16, rel=0.02)

    def test_all_platforms_meet_reliability(self):
        for b in figure20b_budgets(default_config().optical):
            assert b.ber <= RELIABILITY_REQUIREMENT, b.label

    def test_laser_scales(self):
        budgets = {b.label: b.laser_scale for b in figure20b_budgets(default_config().optical)}
        assert budgets["Ohm-base rd/wr"] == 1.0
        assert budgets["Ohm-WOM swap"] == 2.0
        assert budgets["Ohm-BW swap"] == 4.0


class TestLayout:
    def test_planar_reduction_near_58_percent(self):
        assert mode_reduction(MemoryMode.PLANAR) == pytest.approx(0.58, abs=0.02)

    def test_two_level_reduction_near_42_percent(self):
        assert mode_reduction(MemoryMode.TWO_LEVEL) == pytest.approx(0.42, abs=0.02)

    def test_customized_layouts_smaller_than_general(self):
        assert PLANAR_LAYOUT.total < GENERAL_LAYOUT.total
        assert TWO_LEVEL_LAYOUT.total < GENERAL_LAYOUT.total

    def test_baseline_is_smallest(self):
        assert BASELINE_LAYOUT.total < PLANAR_LAYOUT.total

    def test_layout_for_mode(self):
        assert layout_for_mode(MemoryMode.PLANAR) is PLANAR_LAYOUT
        assert layout_for_mode(MemoryMode.TWO_LEVEL) is TWO_LEVEL_LAYOUT


class TestSerDes:
    def test_push_pop(self):
        s = SerDes()
        lat = s.push(1024)
        assert lat > 0
        assert s.occupied_bytes == 1024
        s.pop(1024)
        assert s.occupied_bytes == 0

    def test_overflow_raises(self):
        s = SerDes(buffer_bytes=1024)
        s.push(1024)
        with pytest.raises(BufferError):
            s.push(1)

    def test_pop_more_than_buffered(self):
        with pytest.raises(ValueError):
            SerDes().pop(1)
