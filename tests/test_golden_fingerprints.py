"""Golden-fingerprint regression: simulation results are bit-identical.

One small job per platform (plus one two-level case) is simulated from
scratch and the SHA-256 of its canonical ``RunResult.to_dict()`` JSON is
compared against checked-in values.  Any change to the simulated
timeline, stat accounting or result serialization — however small —
shows up here, which is what lets hot-path optimization PRs prove they
changed *nothing* about the modelled system.

The checked-in hashes were captured together with a pre-optimization
capture (``tests/data/pre_opt_baseline.json``, taken at the PR-1 code
state): the optimized simulator was verified field-for-field identical
to that baseline (modulo the deliberately added ``.min``/``.max``
latency keys) before these fingerprints were frozen.

If you change simulation *behavior on purpose*, regenerate with::

    PYTHONPATH=src python tests/test_golden_fingerprints.py --regen
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import pytest

from repro.config import MemoryMode
from repro.harness.executor import RunConfig, SimulationJob, execute_job

DATA = pathlib.Path(__file__).parent / "data" / "golden_fingerprints.json"
PRE_OPT_BASELINE = pathlib.Path(__file__).parent / "data" / "pre_opt_baseline.json"

#: Small but platform-exercising sizing: big enough that every slice
#: type migrates/faults, small enough that the whole matrix runs in a
#: few seconds.
GOLDEN_RUN = RunConfig(num_warps=24, accesses_per_warp=24)

GOLDEN_JOBS = [
    ("Origin", "pagerank", "planar"),
    ("Hetero", "pagerank", "planar"),
    ("Ohm-base", "pagerank", "planar"),
    ("Auto-rw", "pagerank", "planar"),
    ("Ohm-WOM", "pagerank", "planar"),
    ("Ohm-BW", "pagerank", "planar"),
    ("Oracle", "pagerank", "planar"),
    ("Ohm-BW", "backp", "two_level"),
]


def fingerprint(platform: str, workload: str, mode: str) -> str:
    result = execute_job(
        SimulationJob(platform, workload, MemoryMode(mode), GOLDEN_RUN)
    )
    canon = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


@pytest.mark.parametrize("platform,workload,mode", GOLDEN_JOBS)
def test_results_match_pre_optimization_baseline(platform, workload, mode):
    """The optimized simulator equals the PR-1 code state field-for-field.

    ``pre_opt_baseline.json`` stores full ``RunResult.to_dict()``
    payloads captured *before* the hot-path overhaul; the only permitted
    delta is the deliberately added ``.min``/``.max`` latency snapshot
    keys.  Unlike the golden hashes (which ``--regen`` can refresh),
    this baseline is frozen — it is the actual bit-identity proof.
    """
    baseline = json.loads(PRE_OPT_BASELINE.read_text())
    expected = baseline[f"{platform}/{workload}/{mode}"]["dict"]
    result = execute_job(
        SimulationJob(platform, workload, MemoryMode(mode), GOLDEN_RUN)
    )
    got = result.to_dict()
    got["counters"] = {
        k: v
        for k, v in got["counters"].items()
        if not (k.endswith(".min") or k.endswith(".max"))
    }
    assert got == expected


@pytest.mark.parametrize("platform,workload,mode", GOLDEN_JOBS)
def test_run_result_fingerprint_matches_golden(platform, workload, mode):
    golden = json.loads(DATA.read_text())
    key = f"{platform}/{workload}/{mode}"
    assert key in golden, f"no golden fingerprint for {key}; run --regen"
    assert fingerprint(platform, workload, mode) == golden[key], (
        f"simulation results changed for {key} — if intentional, "
        "regenerate tests/data/golden_fingerprints.json (see module docstring)"
    )


def _regen() -> None:
    out = {
        f"{p}/{w}/{m}": fingerprint(p, w, m) for p, w, m in GOLDEN_JOBS
    }
    DATA.write_text(json.dumps(out, indent=1, sort_keys=True) + "\n")
    print(f"wrote {DATA}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
