"""Tests for counters, latency stats and histograms."""

import pytest

from repro.sim.stats import Histogram, LatencyStat, Stats


class TestLatencyStat:
    def test_empty_mean_is_zero(self):
        assert LatencyStat().mean == 0.0

    def test_single_sample(self):
        s = LatencyStat()
        s.record(7)
        assert (s.count, s.total, s.min_value, s.max_value) == (1, 7, 7, 7)

    def test_min_max_tracking(self):
        s = LatencyStat()
        for v in (5, 2, 9, 3):
            s.record(v)
        assert s.min_value == 2
        assert s.max_value == 9
        assert s.mean == pytest.approx(4.75)

    def test_merge(self):
        a, b = LatencyStat(), LatencyStat()
        a.record(1)
        a.record(3)
        b.record(10)
        a.merge(b)
        assert a.count == 3
        assert a.max_value == 10

    def test_merge_empty_into_nonempty(self):
        a, b = LatencyStat(), LatencyStat()
        a.record(4)
        a.merge(b)
        assert a.count == 1

    def test_merge_into_empty(self):
        a, b = LatencyStat(), LatencyStat()
        b.record(4)
        a.merge(b)
        assert (a.min_value, a.max_value) == (4, 4)


class TestHistogram:
    def test_binning(self):
        h = Histogram(10)
        for v in (0, 5, 9, 10, 25):
            h.record(v)
        assert dict(h.items()) == {0: 3, 10: 1, 20: 1}

    def test_count(self):
        h = Histogram(5)
        for v in range(12):
            h.record(v)
        assert h.count == 12

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            Histogram(0)


class TestStats:
    def test_add_and_get(self):
        s = Stats()
        s.add("x")
        s.add("x", 2.5)
        assert s.get("x") == pytest.approx(3.5)

    def test_get_default(self):
        assert Stats().get("missing", -1.0) == -1.0

    def test_record_latency_creates_stat(self):
        s = Stats()
        s.record_latency("lat", 100)
        s.record_latency("lat", 200)
        assert s.latency("lat").mean == pytest.approx(150.0)

    def test_latency_missing_returns_empty(self):
        assert Stats().latency("nope").count == 0

    def test_snapshot_includes_latency_means(self):
        s = Stats()
        s.add("c", 2)
        s.record_latency("lat", 10)
        snap = s.snapshot()
        assert snap["c"] == 2
        assert snap["lat.mean"] == 10
        assert snap["lat.count"] == 1
