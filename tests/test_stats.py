"""Tests for counters, latency stats, histograms and bound handles."""

import pytest

from repro.sim.stats import Counter, Histogram, LatencyStat, Stats


class TestLatencyStat:
    def test_empty_mean_is_zero(self):
        assert LatencyStat().mean == 0.0

    def test_single_sample(self):
        s = LatencyStat()
        s.record(7)
        assert (s.count, s.total, s.min_value, s.max_value) == (1, 7, 7, 7)

    def test_min_max_tracking(self):
        s = LatencyStat()
        for v in (5, 2, 9, 3):
            s.record(v)
        assert s.min_value == 2
        assert s.max_value == 9
        assert s.mean == pytest.approx(4.75)

    def test_merge(self):
        a, b = LatencyStat(), LatencyStat()
        a.record(1)
        a.record(3)
        b.record(10)
        a.merge(b)
        assert a.count == 3
        assert a.max_value == 10

    def test_merge_empty_into_nonempty(self):
        a, b = LatencyStat(), LatencyStat()
        a.record(4)
        a.merge(b)
        assert a.count == 1

    def test_merge_into_empty(self):
        a, b = LatencyStat(), LatencyStat()
        b.record(4)
        a.merge(b)
        assert (a.min_value, a.max_value) == (4, 4)


class TestHistogram:
    def test_binning(self):
        h = Histogram(10)
        for v in (0, 5, 9, 10, 25):
            h.record(v)
        assert dict(h.items()) == {0: 3, 10: 1, 20: 1}

    def test_count(self):
        h = Histogram(5)
        for v in range(12):
            h.record(v)
        assert h.count == 12

    def test_count_is_running_total(self):
        # The running total must agree with summing the bins at every
        # step (it used to be recomputed from the bins on each call).
        h = Histogram(3)
        assert h.count == 0
        for i, v in enumerate((0, 1, 100, 2, 50), start=1):
            h.record(v)
            assert h.count == i == sum(h.bins.values())

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            Histogram(0)

    def test_negative_bin_width_rejected(self):
        with pytest.raises(ValueError):
            Histogram(-5)

    def test_float_bin_width_rejected(self):
        # A float width would leak float bin keys and fuzzy boundaries.
        with pytest.raises(TypeError):
            Histogram(2.5)

    def test_bool_bin_width_rejected(self):
        # bool is an int subclass; Histogram(True) is a bug, not width 1.
        with pytest.raises(TypeError):
            Histogram(True)

    def test_negative_values_bin_with_floor_semantics(self):
        # Bin k covers [k*w, (k+1)*w) for negatives too: -1 belongs to
        # the bin starting at -10, not to the zero bin.
        h = Histogram(10)
        for v in (-1, -10, -11, 0, 9):
            h.record(v)
        assert dict(h.items()) == {-20: 1, -10: 2, 0: 2}

    def test_bin_of_matches_record(self):
        h = Histogram(7)
        for v in (-15, -7, -1, 0, 6, 7, 20):
            assert h.bin_of(v) <= v < h.bin_of(v) + h.bin_width
            h.record(v)
            assert h.bins[h.bin_of(v) // h.bin_width] >= 1

    def test_items_sorted_with_negatives_first(self):
        h = Histogram(5)
        for v in (12, -3, 4):
            h.record(v)
        assert [start for start, _ in h.items()] == [-5, 0, 10]


class TestStats:
    def test_add_and_get(self):
        s = Stats()
        s.add("x")
        s.add("x", 2.5)
        assert s.get("x") == pytest.approx(3.5)

    def test_get_default(self):
        assert Stats().get("missing", -1.0) == -1.0

    def test_record_latency_creates_stat(self):
        s = Stats()
        s.record_latency("lat", 100)
        s.record_latency("lat", 200)
        assert s.latency("lat").mean == pytest.approx(150.0)

    def test_latency_missing_returns_empty(self):
        assert Stats().latency("nope").count == 0

    def test_snapshot_includes_latency_means(self):
        s = Stats()
        s.add("c", 2)
        s.record_latency("lat", 10)
        snap = s.snapshot()
        assert snap["c"] == 2
        assert snap["lat.mean"] == 10
        assert snap["lat.count"] == 1

    def test_snapshot_includes_latency_extremes(self):
        s = Stats()
        for v in (40, 10, 90):
            s.record_latency("lat", v)
        snap = s.snapshot()
        assert snap["lat.min"] == 10
        assert snap["lat.max"] == 90
        assert snap["lat.mean"] == pytest.approx(140 / 3)

    def test_snapshot_single_sample_extremes(self):
        s = Stats()
        s.record_latency("lat", 7)
        snap = s.snapshot()
        assert snap["lat.min"] == 7
        assert snap["lat.max"] == 7

    def test_snapshot_skips_empty_latency_stats(self):
        s = Stats()
        s.latency_handle("bound.but.unused")
        assert "bound.but.unused.mean" not in s.snapshot()
        assert "bound.but.unused.count" not in s.snapshot()


class TestCounterHandles:
    def test_counter_adds_into_shared_dict(self):
        s = Stats()
        h = s.counter("x")
        h.add()
        h.add(2.5)
        assert s.get("x") == pytest.approx(3.5)
        assert h.value == pytest.approx(3.5)

    def test_counter_handle_is_cached(self):
        s = Stats()
        assert s.counter("x") is s.counter("x")

    def test_handle_and_add_share_the_same_counter(self):
        s = Stats()
        h = s.counter("x")
        s.add("x", 1.0)
        h.add(1.0)
        assert s.get("x") == pytest.approx(2.0)

    def test_binding_does_not_create_an_entry(self):
        s = Stats()
        s.counter("never.touched")
        assert "never.touched" not in s.snapshot()

    def test_counter_is_slotted(self):
        with pytest.raises(AttributeError):
            Counter({}, "x").surprise = 1

    def test_latency_handle_records(self):
        s = Stats()
        h = s.latency_handle("lat")
        h.record(5)
        h.record(15)
        assert s.latency("lat").mean == pytest.approx(10.0)
        assert s.latency_handle("lat") is h
