"""Core-package tests: capabilities, handshake protocols, platform
builders, memory-system routing and slice behaviours."""

import pytest

from repro.config import MemoryMode, default_config
from repro.core.functions import (
    CAPS_AUTO_RW,
    CAPS_BW,
    CAPS_NONE,
    CAPS_WOM,
    FunctionKind,
)
from repro.core.handshake import DdrMonitor, DdrSequenceGenerator, SwapState
from repro.core.platforms import PLATFORMS, build_memory_system
from repro.core.slices import PlanarSlice, TwoLevelSlice
from repro.sim.records import MemRequest
from repro.sim.stats import Stats


class TestCaps:
    def test_dual_routes_derived(self):
        assert not CAPS_NONE.dual_routes
        assert CAPS_AUTO_RW.dual_routes
        assert CAPS_WOM.dual_routes

    def test_laser_scales_match_paper(self):
        """Section VI: 2x for Auto-rw and Ohm-WOM, 4x for Ohm-BW."""
        assert CAPS_NONE.laser_scale == 1.0
        assert CAPS_AUTO_RW.laser_scale == 2.0
        assert CAPS_WOM.laser_scale == 2.0
        assert CAPS_BW.laser_scale == 4.0

    def test_supports(self):
        assert CAPS_WOM.supports(FunctionKind.SWAP)
        assert not CAPS_AUTO_RW.supports(FunctionKind.REVERSE_WRITE)


class TestHandshake:
    def test_swap_protocol_sequence(self):
        gen = DdrSequenceGenerator()
        gen.preset(0x1000)
        gen.start(0x1000)
        assert gen.busy
        gen.finish()
        gen.confirm()
        assert gen.state is SwapState.IDLE
        assert gen.swaps_completed == 1

    def test_swap_without_preset_rejected(self):
        with pytest.raises(RuntimeError):
            DdrSequenceGenerator().start(0x1000)

    def test_swap_wrong_address_rejected(self):
        gen = DdrSequenceGenerator()
        gen.preset(0x1000)
        with pytest.raises(RuntimeError):
            gen.start(0x2000)

    def test_double_preset_rejected(self):
        gen = DdrSequenceGenerator()
        gen.preset(0x1000)
        gen.start(0x1000)
        with pytest.raises(RuntimeError):
            gen.preset(0x2000)

    def test_confirm_before_finish_rejected(self):
        gen = DdrSequenceGenerator()
        gen.preset(0)
        gen.start(0)
        with pytest.raises(RuntimeError):
            gen.confirm()

    def test_monitor_protocol(self):
        mon = DdrMonitor()
        mon.arm()
        mon.snarf()
        mon.complete()
        assert mon.snarfed_lines == 1

    def test_snarf_without_arming_rejected(self):
        with pytest.raises(RuntimeError):
            DdrMonitor().snarf()

    def test_double_arm_rejected(self):
        mon = DdrMonitor()
        mon.arm()
        with pytest.raises(RuntimeError):
            mon.arm()


class TestPlatformBuilders:
    def test_all_seven_platforms_defined(self):
        assert set(PLATFORMS) == {
            "Origin", "Hetero", "Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW", "Oracle",
        }

    def test_channel_types(self):
        assert PLATFORMS["Origin"].channel == "electrical"
        assert PLATFORMS["Hetero"].channel == "electrical"
        assert all(
            PLATFORMS[p].channel == "optical"
            for p in ("Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW", "Oracle")
        )

    @pytest.mark.parametrize("name", list(PLATFORMS))
    def test_build_each_platform(self, name):
        cfg = default_config(MemoryMode.PLANAR)
        ms = build_memory_system(PLATFORMS[name], cfg, Stats())
        assert len(ms.slices) == cfg.electrical.num_channels

    def test_origin_slices_share_one_pcie_link(self):
        cfg = default_config()
        ms = build_memory_system(PLATFORMS["Origin"], cfg, Stats())
        links = {id(s.host) for s in ms.slices}
        assert len(links) == 1

    def test_hetero_slice_types_by_mode(self):
        for mode, cls in ((MemoryMode.PLANAR, PlanarSlice), (MemoryMode.TWO_LEVEL, TwoLevelSlice)):
            ms = build_memory_system(PLATFORMS["Ohm-base"], default_config(mode), Stats())
            assert all(isinstance(s, cls) for s in ms.slices)

    def test_oracle_has_full_capacity_dram(self):
        cfg = default_config(MemoryMode.PLANAR)
        ms = build_memory_system(PLATFORMS["Oracle"], cfg, Stats())
        total = sum(s.dram.capacity_bytes for s in ms.slices)
        assert total >= cfg.hetero_capacity * 0.99

    def test_wom_platform_gets_wom_channels(self):
        ms = build_memory_system(PLATFORMS["Ohm-WOM"], default_config(), Stats())
        assert all(s.chan.wom_coded for s in ms.slices)
        assert all(s.chan.dual_routes for s in ms.slices)

    def test_bw_platform_dual_routes_without_wom(self):
        ms = build_memory_system(PLATFORMS["Ohm-BW"], default_config(), Stats())
        assert all(not s.chan.wom_coded for s in ms.slices)
        assert all(s.chan.dual_routes for s in ms.slices)

    def test_base_platform_no_dual_routes(self):
        ms = build_memory_system(PLATFORMS["Ohm-base"], default_config(), Stats())
        assert all(not s.chan.dual_routes for s in ms.slices)


class TestMemorySystemRouting:
    def make(self):
        cfg = default_config(MemoryMode.PLANAR)
        return build_memory_system(PLATFORMS["Oracle"], cfg, Stats()), cfg

    def test_pages_interleave_over_slices(self):
        ms, cfg = self.make()
        page = cfg.hetero.page_bytes
        s0, _ = ms.route(0)
        s1, _ = ms.route(page)
        assert s0 is not s1

    def test_offsets_preserved(self):
        ms, cfg = self.make()
        _, local = ms.route(cfg.hetero.page_bytes * 6 + 100)
        assert local % cfg.hetero.page_bytes == 100

    def test_local_addresses_compact(self):
        ms, cfg = self.make()
        page = cfg.hetero.page_bytes
        _, local = ms.route(page * 6)  # second page on slice 0
        assert local == page

    def test_negative_address_rejected(self):
        ms, _ = self.make()
        with pytest.raises(ValueError):
            ms.route(-1)

    def test_serve_sets_completion(self):
        ms, _ = self.make()
        req = MemRequest(addr=0, is_write=False, size_bytes=128, sm_id=0, warp_id=0)
        done = ms.serve(req, 0)
        assert req.complete_ps == done
        assert req.latency_ps >= 0


class TestSliceBehaviours:
    def _planar(self, caps=CAPS_NONE, mode=MemoryMode.PLANAR, platform="Ohm-base"):
        cfg = default_config(mode)
        return build_memory_system(PLATFORMS[platform], cfg, Stats()), cfg

    def test_planar_xpoint_read_slower_than_dram(self):
        ms, cfg = self._planar()
        s = ms.slices[0]
        t_dram = s.serve(0, False, 0)  # slot 0: DRAM
        # A slot-1 page lives in XPoint.
        xp_addr = cfg.hetero.page_bytes * s.mapper.num_groups
        t_xp = s.serve(xp_addr, False, 0) - 0
        assert t_xp > t_dram

    def test_planar_hot_page_migrates_to_dram(self):
        ms, cfg = self._planar()
        s = ms.slices[0]
        xp_addr = cfg.hetero.page_bytes * s.mapper.num_groups
        page = xp_addr // cfg.hetero.page_bytes
        assert not s.mapper.lookup(page).in_dram
        t = 0
        for _ in range(cfg.hetero.hot_threshold + 1):
            t = s.serve(xp_addr, False, t) + 1
        assert s.mapper.lookup(page).in_dram
        assert s.stats.get("mem.swaps") == 1

    def test_swap_function_uses_memory_route(self):
        ms, cfg = self._planar(platform="Ohm-BW")
        s = ms.slices[0]
        xp_addr = cfg.hetero.page_bytes * s.mapper.num_groups
        t = 0
        for _ in range(cfg.hetero.hot_threshold + 1):
            t = s.serve(xp_addr, False, t) + 1
        # Migration page data rode the memory route, not the data route.
        assert s.stats.get("ochan0.busy_ps.route.memory") > 0
        assert s.seq_gen.swaps_completed == 1

    def test_baseline_swap_occupies_data_route_only(self):
        ms, cfg = self._planar(platform="Ohm-base")
        s = ms.slices[0]
        xp_addr = cfg.hetero.page_bytes * s.mapper.num_groups
        t = 0
        for _ in range(cfg.hetero.hot_threshold + 1):
            t = s.serve(xp_addr, False, t) + 1
        assert s.stats.get("mem.swaps") == 1
        assert s.stats.get("ochan0.busy_ps.route.memory", 0) == 0
        assert s.stats.get("ochan0.busy_ps.migration") > 0

    def test_two_level_miss_then_hit(self):
        ms, cfg = self._planar(mode=MemoryMode.TWO_LEVEL)
        s = ms.slices[0]
        t1 = s.serve(0, False, 0)
        t2 = s.serve(0, False, t1 + 1) - (t1 + 1)
        assert s.stats.get("mem.dram_cache_misses") == 1
        assert s.stats.get("mem.dram_cache_hits") == 1
        assert t2 < t1  # hit is faster than the cold miss

    def test_two_level_reverse_write_keeps_fill_off_data_route(self):
        ms_base, cfg = self._planar(mode=MemoryMode.TWO_LEVEL, platform="Ohm-base")
        ms_bw, _ = self._planar(mode=MemoryMode.TWO_LEVEL, platform="Ohm-BW")
        for s in (ms_base.slices[0], ms_bw.slices[0]):
            s.serve(0, False, 0)
        base_mig = ms_base.slices[0].stats.get("ochan0.busy_ps.migration")
        bw_route = ms_bw.slices[0].stats.get("ochan0.busy_ps.route.memory")
        assert base_mig > 0  # baseline fill write occupies the channel
        assert bw_route > 0  # reverse write moved it to the memory route

    def test_two_level_auto_rw_snarfs_dirty_eviction(self):
        ms, cfg = self._planar(mode=MemoryMode.TWO_LEVEL, platform="Auto-rw")
        s = ms.slices[0]
        s.serve(0, True, 0)  # fill set 0, dirty
        conflict = s.num_sets * s.line_bytes  # same set, different tag
        s.serve(conflict, False, 10_000_000)
        assert s.stats.get("mc0.xp.snarfs") == 1

    def test_origin_faults_after_capacity(self):
        cfg = default_config(MemoryMode.PLANAR)
        ms = build_memory_system(PLATFORMS["Origin"], cfg, Stats())
        s = ms.slices[0]
        t = 0
        for page in range(s.num_frames + 5):
            t = s.serve(page * s.page_bytes, False, t) + 1
        # Staged pages are free; the 5 extra pages fault.
        assert s.stats.get("host.faults") == 5

    def test_origin_dirty_writeback(self):
        cfg = default_config(MemoryMode.PLANAR)
        ms = build_memory_system(PLATFORMS["Origin"], cfg, Stats())
        s = ms.slices[0]
        t = s.serve(0, True, 0)  # dirty page 0
        for page in range(1, s.num_frames + 1):  # evict page 0
            t = s.serve(page * s.page_bytes, False, t) + 1
        assert s.stats.get("host.writebacks") == 1
