"""Trace record/replay: format round-trip and bit-identical replay."""

import gzip
import json

import numpy as np
import pytest

from repro.config import MemoryMode
from repro.harness.cache import job_fingerprint
from repro.harness.executor import (
    RunConfig,
    SimulationJob,
    execute_job,
    execute_job_recorded,
)
from repro.workloads.registry import get_workload, get_workload_def
from repro.workloads.synthetic import WarpTrace
from repro.workloads.trace import (
    TraceFormatError,
    TraceMeta,
    TraceRecorder,
    load_traces,
    save_traces,
    trace_path_of,
)

SIZING = RunConfig(num_warps=8, accesses_per_warp=12)


def small_traces(n=3, accesses=5):
    rng = np.random.default_rng(0)
    return [
        WarpTrace(
            gaps=rng.integers(0, 50, accesses).astype(np.int64),
            addrs=(rng.integers(0, 1000, accesses) * 128).astype(np.int64),
            writes=rng.random(accesses) < 0.3,
            tenant="t0" if w == 0 else None,
        )
        for w in range(n)
    ]


def meta_for(traces, workload="backp"):
    return TraceMeta(
        workload=workload,
        platform="Ohm-BW",
        mode="planar",
        line_bytes=128,
        num_warps=len(traces),
        spec=get_workload(workload),
    )


class TestFormatRoundTrip:
    @pytest.mark.parametrize("suffix", [".jsonl", ".jsonl.gz"])
    def test_save_load_round_trip(self, tmp_path, suffix):
        traces = small_traces()
        path = tmp_path / f"t{suffix}"
        save_traces(path, meta_for(traces), traces)
        meta, loaded = load_traces(path)
        assert meta.workload == "backp"
        assert meta.spec == get_workload("backp")
        assert len(loaded) == len(traces)
        for a, b in zip(traces, loaded):
            assert np.array_equal(a.gaps, b.gaps)
            assert np.array_equal(a.addrs, b.addrs)
            assert np.array_equal(a.writes, b.writes)
            assert a.tenant == b.tenant
            assert a.digest() == b.digest()
            assert b.gaps.dtype == np.int64 and b.writes.dtype == np.bool_

    def test_gzip_is_actually_compressed(self, tmp_path):
        traces = small_traces()
        path = tmp_path / "t.jsonl.gz"
        save_traces(path, meta_for(traces), traces)
        with gzip.open(path, "rt") as fh:
            header = json.loads(fh.readline())
        assert header["format"] == "repro-trace"

    def test_warp_count_mismatch_rejected_on_save(self, tmp_path):
        traces = small_traces(3)
        meta = meta_for(traces[:2])
        with pytest.raises(ValueError):
            save_traces(tmp_path / "t.jsonl", meta, traces)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            load_traces(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"format": "other"}\n')
        with pytest.raises(TraceFormatError):
            load_traces(path)

    def test_bad_version_rejected(self, tmp_path):
        traces = small_traces()
        path = tmp_path / "t.jsonl"
        save_traces(path, meta_for(traces), traces)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 99
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(TraceFormatError):
            load_traces(path)

    def test_truncated_file_rejected(self, tmp_path):
        traces = small_traces()
        path = tmp_path / "t.jsonl"
        save_traces(path, meta_for(traces), traces)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TraceFormatError):
            load_traces(path)


class TestRecorder:
    def test_records_in_order(self):
        rec = TraceRecorder(2)
        rec.record(0, 3, 128, False)
        rec.record(1, 0, 256, True)
        rec.record(0, 1, 384, True)
        t0, t1 = rec.to_traces()
        assert t0.gaps.tolist() == [3, 1]
        assert t0.addrs.tolist() == [128, 384]
        assert t0.writes.tolist() == [False, True]
        assert t1.addrs.tolist() == [256]

    def test_empty_warp_rejected(self):
        rec = TraceRecorder(2)
        rec.record(0, 0, 128, False)
        with pytest.raises(ValueError):
            rec.to_traces()

    def test_tenant_labels_preserved(self):
        rec = TraceRecorder(1)
        rec.record(0, 0, 128, False)
        (t,) = rec.to_traces(tenants=["gemm"])
        assert t.tenant == "gemm"


class TestRecordReplay:
    @pytest.mark.parametrize(
        "platform,workload",
        [("Ohm-BW", "pagerank"), ("Origin", "backp"), ("Ohm-base", "mix_gemm_chase")],
    )
    def test_replay_reproduces_fingerprint_bit_identically(
        self, tmp_path, platform, workload
    ):
        job = SimulationJob(platform, workload, MemoryMode.PLANAR, SIZING)
        result, recorded = execute_job_recorded(job)
        defn = get_workload_def(workload)
        path = tmp_path / "t.jsonl.gz"
        save_traces(
            path,
            TraceMeta(
                workload=defn.spec.name,
                platform=platform,
                mode="planar",
                line_bytes=128,
                num_warps=len(recorded),
                spec=defn.spec,
            ),
            recorded,
        )
        replay = execute_job(
            SimulationJob(platform, f"trace:{path}", MemoryMode.PLANAR, SIZING)
        )
        assert replay.fingerprint() == result.fingerprint()
        assert replay.to_dict() == result.to_dict()

    def test_recorded_run_equals_unrecorded_run(self):
        job = SimulationJob("Ohm-BW", "pagerank", MemoryMode.PLANAR, SIZING)
        plain = execute_job(job)
        recorded_result, _traces = execute_job_recorded(job)
        assert recorded_result.to_dict() == plain.to_dict()

    def test_trace_def_resolution(self, tmp_path):
        traces = small_traces()
        path = tmp_path / "t.jsonl"
        save_traces(path, meta_for(traces), traces)
        defn = get_workload_def(f"trace:{path}")
        assert defn.family == "trace"
        assert defn.spec.name == "backp"  # replay keeps the recorded name
        assert dict(defn.params)["path"] == str(path)

    def test_trace_path_of(self):
        assert trace_path_of("trace:/x/y.jsonl") == "/x/y.jsonl"
        assert trace_path_of("pagerank") is None

    def test_missing_trace_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            get_workload_def(f"trace:{tmp_path / 'nope.jsonl'}")

    def test_rerecorded_file_invalidates_trace_memo(self, tmp_path):
        path = tmp_path / "t.jsonl"
        a = small_traces(2, 6)
        save_traces(path, meta_for(a), a)
        job = SimulationJob("Ohm-base", f"trace:{path}", MemoryMode.PLANAR, SIZING)
        first = execute_job(job)
        b = small_traces(2, 9)
        save_traces(path, meta_for(b), b)
        second = execute_job(job)
        # Same path, new bytes -> new digest in the def -> fresh traces.
        assert first.to_dict() != second.to_dict()

    def test_corrupt_gzip_rejected_cleanly(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        path.write_bytes(b"this is not gzip data")
        with pytest.raises(OSError):  # gzip.BadGzipFile
            load_traces(path)

    def test_cache_fingerprint_tracks_file_bytes(self, tmp_path):
        traces = small_traces()
        path = tmp_path / "t.jsonl"
        save_traces(path, meta_for(traces), traces)
        job = SimulationJob(
            "Ohm-BW", f"trace:{path}", MemoryMode.PLANAR, SIZING
        )
        fp1 = job_fingerprint(job)
        # Same name, different recorded bytes -> different cache key.
        save_traces(path, meta_for(traces[:2]), traces[:2])
        assert job_fingerprint(job) != fp1
