"""Batch scheduler tests: shard planning, journaling, resume, and the
tier-2 crash/resume integration test (subprocess + SIGKILL, marked
``slow``)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MemoryMode
from repro.harness.batch import (
    BatchError,
    BatchRun,
    append_jsonl,
    batch_id,
    plan_shards,
    read_jsonl,
)
from repro.harness.cache import ResultCache
from repro.harness.executor import (
    RunConfig,
    SerialExecutor,
    SimulationJob,
    execute_job,
)
from repro.harness.runner import Runner

TINY = RunConfig(num_warps=8, accesses_per_warp=8)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def tiny_job(seed=7, platform="Ohm-base", workload="backp"):
    return SimulationJob(
        platform,
        workload,
        MemoryMode.PLANAR,
        RunConfig(num_warps=8, accesses_per_warp=8, seed=seed),
    )


def seeded_jobs(n):
    """n distinct cheap jobs (seed varies, everything else fixed)."""
    return [tiny_job(seed=s) for s in range(n)]


class RecordingExecutor(SerialExecutor):
    """Serial executor that remembers every job it actually evaluated."""

    def __init__(self):
        self.jobs = []

    def run_jobs(self, jobs):
        self.jobs.extend(jobs)
        return super().run_jobs(jobs)


# --------------------------------------------------------------------
# Job serialization
# --------------------------------------------------------------------

class TestJobSerialization:
    def test_round_trip_plain(self):
        job = tiny_job(seed=3)
        assert SimulationJob.from_dict(job.to_dict()) == job

    def test_round_trip_with_cfg_override(self):
        from dataclasses import replace

        from repro.config import default_config

        cfg = default_config(MemoryMode.TWO_LEVEL)
        cfg = replace(cfg, hetero=replace(cfg.hetero, hot_threshold=99))
        job = SimulationJob("Oracle", "pagerank", MemoryMode.TWO_LEVEL, TINY, cfg)
        back = SimulationJob.from_dict(job.to_dict())
        assert back == job
        assert back.resolved_config() == cfg

    def test_round_trip_is_json_safe(self):
        job = tiny_job()
        assert SimulationJob.from_dict(json.loads(json.dumps(job.to_dict()))) == job


# --------------------------------------------------------------------
# Shard planning
# --------------------------------------------------------------------

class TestPlanShards:
    def test_chunks_and_remainder(self):
        shards = plan_shards(seeded_jobs(7), shard_size=3)
        assert [len(s) for s in shards] == [3, 3, 1]

    def test_deduplicates_preserving_order(self):
        jobs = seeded_jobs(3)
        shards = plan_shards(jobs + jobs, shard_size=10)
        assert list(shards[0]) == jobs

    def test_empty(self):
        assert plan_shards([], shard_size=4) == ()

    def test_rejects_nonpositive_shard_size(self):
        with pytest.raises(ValueError):
            plan_shards(seeded_jobs(2), shard_size=0)

    def test_batch_id_is_order_independent(self):
        jobs = seeded_jobs(5)
        assert batch_id(jobs) == batch_id(list(reversed(jobs)))

    def test_batch_id_depends_on_shard_size(self):
        jobs = seeded_jobs(5)
        assert batch_id(jobs, 2) != batch_id(jobs, 3)

    def test_batch_id_depends_on_jobs(self):
        assert batch_id(seeded_jobs(2)) != batch_id(seeded_jobs(3))


class TestShardProperties:
    """Property-based: arbitrary job lists round-trip through the plan."""

    jobs_strategy = st.lists(
        st.builds(
            tiny_job,
            seed=st.integers(min_value=0, max_value=9),
            platform=st.sampled_from(["Ohm-base", "Oracle", "Hetero"]),
            workload=st.sampled_from(["backp", "pagerank"]),
        ),
        min_size=1,
        max_size=24,
    )

    @given(jobs=jobs_strategy, shard_size=st.integers(min_value=1, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_plan_partitions_unique_jobs_exactly(self, jobs, shard_size):
        shards = plan_shards(jobs, shard_size)
        flat = [job for shard in shards for job in shard]
        assert flat == list(dict.fromkeys(jobs))  # every unique job once
        assert all(1 <= len(s) <= shard_size for s in shards)
        assert all(len(s) == shard_size for s in shards[:-1])

    @given(jobs=jobs_strategy, shard_size=st.integers(min_value=1, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_merge_is_order_independent(self, jobs, shard_size):
        """Shard/merge covers the same job set for any input order, and
        the batch identity agrees — the resume contract."""
        fwd = plan_shards(jobs, shard_size)
        rev = plan_shards(list(reversed(jobs)), shard_size)
        assert {j for s in fwd for j in s} == {j for s in rev for j in s}
        assert batch_id(jobs, shard_size) == batch_id(reversed(jobs), shard_size)


# --------------------------------------------------------------------
# JSONL journal
# --------------------------------------------------------------------

class TestJournal:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        append_jsonl(path, {"shard": 0})
        append_jsonl(path, {"shard": 1, "wall_s": 0.5})
        assert read_jsonl(path) == [{"shard": 0}, {"shard": 1, "wall_s": 0.5}]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_jsonl(tmp_path / "absent.jsonl") == []

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        append_jsonl(path, {"shard": 0})
        with open(path, "a") as fh:
            fh.write('{"shard": 1, "tru')  # writer died mid-append
        assert read_jsonl(path) == [{"shard": 0}]

    def test_append_after_torn_line_self_heals(self, tmp_path):
        path = tmp_path / "j.jsonl"
        append_jsonl(path, {"shard": 0})
        with open(path, "a") as fh:
            fh.write('{"shard": 1, "tru')
        append_jsonl(path, {"shard": 2})
        # The torn fragment corrupts only itself; both whole records live.
        assert read_jsonl(path) == [{"shard": 0}, {"shard": 2}]

    def test_non_dict_lines_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('[1,2]\n{"ok": 1}\n')
        assert read_jsonl(path) == [{"ok": 1}]


# --------------------------------------------------------------------
# BatchRun lifecycle
# --------------------------------------------------------------------

class TestBatchRun:
    def test_open_rejects_empty(self, tmp_path):
        with pytest.raises(BatchError):
            BatchRun.open(tmp_path, [])

    def test_open_is_idempotent(self, tmp_path):
        jobs = seeded_jobs(4)
        a = BatchRun.open(tmp_path, jobs, shard_size=2)
        b = BatchRun.open(tmp_path, jobs, shard_size=2)
        assert a.batch_dir == b.batch_dir
        assert a.batch_id == b.batch_id
        assert a.jobs == b.jobs

    def test_open_reordered_jobs_attaches_to_manifest_plan(self, tmp_path):
        # Same job *set*, different order: the batch id matches, so the
        # second open adopts the persisted plan — journal indices stay
        # meaningful no matter how the caller iterated its matrix.
        jobs = seeded_jobs(5)
        a = BatchRun.open(tmp_path, jobs, shard_size=2)
        b = BatchRun.open(tmp_path, list(reversed(jobs)), shard_size=2)
        assert b.batch_dir == a.batch_dir
        assert b.shards == a.shards

    def test_manifest_round_trips_jobs(self, tmp_path):
        jobs = seeded_jobs(5)
        created = BatchRun.open(tmp_path, jobs, shard_size=2)
        loaded = BatchRun.load(created.batch_dir)
        assert loaded.jobs == jobs
        assert loaded.shards == created.shards
        assert loaded.shard_size == 2

    def test_load_rejects_missing_manifest(self, tmp_path):
        with pytest.raises(BatchError):
            BatchRun.load(tmp_path)

    def test_load_rejects_edited_manifest(self, tmp_path):
        batch = BatchRun.open(tmp_path, seeded_jobs(4), shard_size=2)
        manifest = batch.batch_dir / "manifest.json"
        data = json.loads(manifest.read_text())
        data["shards"][0] = data["shards"][1]  # tamper with the plan
        manifest.write_text(json.dumps(data))
        with pytest.raises(BatchError, match="does not match"):
            BatchRun.load(batch.batch_dir)

    def test_run_executes_everything_once(self, tmp_path):
        jobs = seeded_jobs(5)
        batch = BatchRun.open(tmp_path, jobs, shard_size=2)
        recording = RecordingExecutor()
        results = batch.run(recording, ResultCache(tmp_path / "cache"))
        assert recording.jobs == jobs
        assert set(results) == set(jobs)
        assert batch.status().done

    def test_results_match_direct_execution(self, tmp_path):
        jobs = seeded_jobs(3)
        results = BatchRun.open(tmp_path, jobs, shard_size=2).run(
            SerialExecutor(), ResultCache(tmp_path / "cache")
        )
        for job in jobs:
            assert results[job] == execute_job(job)

    def test_rerun_skips_journaled_shards_entirely(self, tmp_path):
        jobs = seeded_jobs(6)
        cache = ResultCache(tmp_path / "cache")
        batch = BatchRun.open(tmp_path, jobs, shard_size=2)
        batch.run(SerialExecutor(), cache)
        recording = RecordingExecutor()
        again = BatchRun.open(tmp_path, jobs, shard_size=2)
        results = again.resume(recording, ResultCache(tmp_path / "cache"))
        assert recording.jobs == []  # journal answered for every shard
        assert set(results) == set(jobs)
        # and the journal was not extended: each shard exactly once
        recs = read_jsonl(again.journal_path)
        shards = [r["shard"] for r in recs]
        assert sorted(shards) == list(range(3))

    def test_partial_journal_resumes_only_missing_shards(self, tmp_path):
        jobs = seeded_jobs(6)
        cache = ResultCache(tmp_path / "cache")
        batch = BatchRun.open(tmp_path, jobs, shard_size=2)
        batch.run(SerialExecutor(), cache)
        # Drop the last journal record: shard 2 now looks unfinished.
        recs = read_jsonl(batch.journal_path)
        batch.journal_path.write_text(
            "".join(json.dumps(r) + "\n" for r in recs[:-1])
        )
        recording = RecordingExecutor()
        fresh_cache = ResultCache(tmp_path / "cache")
        BatchRun.load(batch.batch_dir).resume(recording, fresh_cache)
        # Every shard's jobs were cache-shielded (journaled shards are
        # probed too, to catch pruned caches), so nothing re-executed;
        # the merge reuses the probed results — one read per job, total.
        assert recording.jobs == []
        assert fresh_cache.hits == len(jobs)

    def test_journaled_batch_with_pruned_cache_self_heals(self, tmp_path):
        # The journal says "done" but the cache was emptied (or a wrong
        # --cache-dir supplied): run() must re-execute, not deadlock on
        # "resume the batch" advice that skips everything forever.
        jobs = seeded_jobs(4)
        cache_dir = tmp_path / "cache"
        batch = BatchRun.open(tmp_path, jobs, shard_size=2)
        batch.run(SerialExecutor(), ResultCache(cache_dir))
        for f in cache_dir.glob("*.json"):
            f.unlink()
        recording = RecordingExecutor()
        results = BatchRun.load(batch.batch_dir).resume(
            recording, ResultCache(cache_dir)
        )
        assert recording.jobs == jobs  # everything recomputed
        assert set(results) == set(jobs)
        for job in jobs:
            assert results[job] == execute_job(job)

    def test_digest_mismatch_forces_rerun(self, tmp_path):
        jobs = seeded_jobs(4)
        batch = BatchRun.open(tmp_path, jobs, shard_size=2)
        batch.run(SerialExecutor(), ResultCache(tmp_path / "cache"))
        recs = read_jsonl(batch.journal_path)
        recs[0]["digest"] = "0" * 64
        batch.journal_path.write_text(
            "".join(json.dumps(r) + "\n" for r in recs)
        )
        assert set(batch.completed_shards()) == {1}

    def test_out_of_range_shard_records_ignored(self, tmp_path):
        jobs = seeded_jobs(2)
        batch = BatchRun.open(tmp_path, jobs, shard_size=2)
        append_jsonl(batch.journal_path, {"shard": 99, "digest": "x"})
        append_jsonl(batch.journal_path, {"shard": "zero", "digest": "x"})
        assert batch.completed_shards() == {}

    def test_results_raise_when_cache_pruned(self, tmp_path):
        jobs = seeded_jobs(2)
        cache_dir = tmp_path / "cache"
        batch = BatchRun.open(tmp_path, jobs, shard_size=1)
        batch.run(SerialExecutor(), ResultCache(cache_dir))
        for f in cache_dir.glob("*.json"):
            f.unlink()
        with pytest.raises(BatchError, match="no cached result"):
            batch.results(ResultCache(cache_dir))

    def test_empty_explicit_cache_is_honored(self, tmp_path):
        # An empty ResultCache is falsy (__len__ == 0): `cache or
        # default` would silently strand results in the default dir.
        jobs = seeded_jobs(2)
        mine = ResultCache(tmp_path / "mine")
        batch = BatchRun.open(tmp_path / "root", jobs, shard_size=1)
        results = batch.run(SerialExecutor(), mine)
        assert len(list((tmp_path / "mine").glob("*.json"))) == len(jobs)
        assert not (tmp_path / "root" / "cache").exists()
        assert batch.results(ResultCache(tmp_path / "mine")) == results

    def test_discover_skips_unresolvable_batch(self, tmp_path):
        # A batch whose manifest names a workload that no longer
        # resolves must degrade to a warning, not crash status/resume
        # for every other batch under the root.
        good = BatchRun.open(tmp_path, seeded_jobs(2), shard_size=1)
        bad = BatchRun.open(
            tmp_path, [tiny_job(workload="pagerank")], shard_size=1
        )
        manifest = bad.batch_dir / "manifest.json"
        data = json.loads(manifest.read_text())
        for shard in data["shards"]:
            for j in shard:
                j["workload"] = "no_such_workload"
        manifest.write_text(json.dumps(data))
        with pytest.raises(BatchError, match="cannot resolve"):
            BatchRun.load(bad.batch_dir)
        assert [b.batch_id for b in BatchRun.discover(tmp_path)] == [
            good.batch_id
        ]

    def test_status_counts(self, tmp_path):
        jobs = seeded_jobs(5)
        batch = BatchRun.open(tmp_path, jobs, shard_size=2)
        st_ = batch.status()
        assert (st_.total_shards, st_.completed_shards) == (3, 0)
        assert not st_.done
        batch.run(SerialExecutor(), ResultCache(tmp_path / "cache"))
        st_ = batch.status()
        assert st_.completed_shards == 3
        assert st_.completed_jobs == 5
        assert st_.done

    def test_discover_finds_batches(self, tmp_path):
        BatchRun.open(tmp_path, seeded_jobs(2), shard_size=1)
        BatchRun.open(tmp_path, seeded_jobs(3), shard_size=1)
        assert len(BatchRun.discover(tmp_path)) == 2
        assert BatchRun.discover(tmp_path / "absent") == []


class TestRunnerBatchIntegration:
    def test_batched_runner_matches_plain(self, tmp_path):
        jobs = seeded_jobs(4)
        plain = Runner(TINY).run_jobs(jobs)
        batched = Runner(TINY, batch_dir=tmp_path, shard_size=2).run_jobs(jobs)
        assert batched == plain

    def test_batched_runner_journals_shards(self, tmp_path):
        runner = Runner(TINY, batch_dir=tmp_path, shard_size=2)
        runner.run_jobs(seeded_jobs(4))
        journals = list(Path(tmp_path).glob("b-*/journal.jsonl"))
        assert len(journals) == 1
        assert len(read_jsonl(journals[0])) == 2

    def test_batched_runner_defaults_cache_under_root(self, tmp_path):
        runner = Runner(TINY, batch_dir=tmp_path)
        runner.run("Ohm-base", "backp", MemoryMode.PLANAR)
        assert list((tmp_path / "cache").glob("*.json"))

    def test_second_batched_runner_executes_nothing(self, tmp_path):
        jobs = seeded_jobs(4)
        Runner(TINY, batch_dir=tmp_path, shard_size=2).run_jobs(jobs)
        recording = RecordingExecutor()
        again = Runner(TINY, executor=recording, batch_dir=tmp_path, shard_size=2)
        again.run_jobs(jobs)
        assert recording.jobs == []


# --------------------------------------------------------------------
# Tier-2: crash a batch with SIGKILL mid-run, resume, compare.
# --------------------------------------------------------------------

#: The child's job matrix — must match _crash_jobs() below exactly.
_DRIVER = """
import sys, time
from repro.config import MemoryMode
from repro.harness.batch import BatchRun
from repro.harness.cache import ResultCache
from repro.harness.executor import RunConfig, SerialExecutor, SimulationJob

root = sys.argv[1]
jobs = [
    SimulationJob("Ohm-base", "backp", MemoryMode.PLANAR,
                  RunConfig(num_warps=8, accesses_per_warp=8, seed=s))
    for s in range(12)
]
batch = BatchRun.open(root, jobs, shard_size=2)
batch.run(
    SerialExecutor(),
    ResultCache(root + "/cache"),
    # Widen the kill window without touching production code: the
    # parent SIGKILLs us while we sleep between journaled shards.
    progress=lambda done: time.sleep(0.3),
)
"""


def _crash_jobs():
    return [tiny_job(seed=s) for s in range(12)]


@pytest.mark.slow
class TestCrashResume:
    def test_sigkilled_batch_resumes_bit_identical(self, tmp_path):
        root = tmp_path / "batch"
        driver = tmp_path / "driver.py"
        driver.write_text(_DRIVER)
        env = dict(
            os.environ,
            PYTHONPATH=REPO_SRC + os.pathsep + os.environ.get("PYTHONPATH", ""),
        )
        child = subprocess.Popen(
            [sys.executable, str(driver), str(root)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until at least two shards are journaled, then SIGKILL.
            journal = None
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                candidates = list(root.glob("b-*/journal.jsonl"))
                if candidates and len(read_jsonl(candidates[0])) >= 2:
                    journal = candidates[0]
                    break
                time.sleep(0.02)
            assert journal is not None, "child never journaled two shards"
        finally:
            child.kill()  # SIGKILL: no cleanup, no atexit, no flush
            child.wait()

        jobs = _crash_jobs()
        batch = BatchRun.load(journal.parent)
        killed_recs = read_jsonl(journal)
        done_at_kill = {r["shard"] for r in killed_recs}
        assert 0 < len(done_at_kill) < len(batch.shards), (
            "kill landed outside the batch; nothing to prove"
        )
        survivors = {j for i in done_at_kill for j in batch.shards[i]}

        # Resume with a recording executor: journaled shards must not
        # re-execute a single job.
        recording = RecordingExecutor()
        resumed = batch.resume(recording, ResultCache(root / "cache"))
        assert set(recording.jobs).isdisjoint(survivors)

        # The journal now covers every shard exactly once — the
        # journaled prefix was preserved, not rewritten or duplicated.
        recs = read_jsonl(journal)
        assert sorted(r["shard"] for r in recs) == list(range(len(batch.shards)))
        assert recs[: len(killed_recs)] == killed_recs

        # Merged results are bit-identical to an uninterrupted run.
        clean_root = tmp_path / "clean"
        clean = BatchRun.open(clean_root, jobs, shard_size=2).run(
            SerialExecutor(), ResultCache(clean_root / "cache")
        )
        assert set(resumed) == set(clean)
        for job in jobs:
            assert resumed[job].fingerprint() == clean[job].fingerprint()
            assert resumed[job] == clean[job]

        # And the CLI agrees the batch is done.
        from repro.cli import main

        assert main(["batch", "status", "--batch-dir", str(root)]) == 0
