"""Property-based tests on cross-cutting invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MemoryMode, default_config
from repro.core.platforms import PLATFORMS, build_memory_system
from repro.dram.device import DramDevice
from repro.config import DramTimingConfig
from repro.optical.wom import WomCodec
from repro.sim.stats import Stats
from repro.xpoint.ecc import SecDedCodec


class TestRoutingBijective:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 22), min_size=1, max_size=80, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_distinct_addresses_never_collide(self, addrs):
        """(slice, local address) must be unique per global address."""
        cfg = default_config(MemoryMode.PLANAR)
        ms = build_memory_system(PLATFORMS["Oracle"], cfg, Stats())
        seen = set()
        for addr in addrs:
            s, local = ms.route(addr)
            key = (id(s), local)
            assert key not in seen
            seen.add(key)

    @given(st.integers(min_value=0, max_value=1 << 22))
    @settings(max_examples=50, deadline=None)
    def test_line_offset_survives_routing(self, addr):
        cfg = default_config(MemoryMode.PLANAR)
        ms = build_memory_system(PLATFORMS["Oracle"], cfg, Stats())
        _, local = ms.route(addr)
        assert local % cfg.hetero.page_bytes == addr % cfg.hetero.page_bytes


class TestTimeMonotonicity:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1 << 18),
                st.booleans(),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_completion_never_before_issue(self, ops):
        """Every serve() returns a time at or after its issue time."""
        cfg = default_config(MemoryMode.PLANAR)
        ms = build_memory_system(PLATFORMS["Ohm-BW"], cfg, Stats())
        now = 0
        for addr, is_write in ops:
            s, local = ms.route(addr)
            done = s.serve(local, is_write, now)
            assert done >= now
            now += 50_000  # 50 ns between issues

    @given(st.lists(st.integers(min_value=0, max_value=1 << 14), min_size=2, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_dram_bank_busy_monotone(self, rows):
        dev = DramDevice(DramTimingConfig(), 1 << 20, Stats(), enable_refresh=False)
        last = {}
        for i, row in enumerate(rows):
            addr = row * 128
            bank = dev.decode(addr).bank
            dev.access(addr, False, i * 1000)
            busy = dev.banks[bank].busy_until_ps
            assert busy >= last.get(bank, 0)
            last[bank] = busy


class TestCodecsCompose:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=40)
    def test_ecc_is_systematic_roundtrip(self, word):
        codec = SecDedCodec()
        assert codec.decode(codec.encode(word)).data == word

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_wom_stream_of_symbols(self, symbols):
        """A whole stream of first-generation symbols decodes back."""
        codec = WomCodec()
        for s in symbols:
            assert codec.decode(codec.encode_first(s)) == s


class TestSplitAccesses:
    @given(
        fractions=st.lists(
            st.one_of(
                st.just(0.0),
                st.floats(
                    min_value=1e-6, max_value=1.0,
                    allow_nan=False, allow_infinity=False,
                ),
            ),
            min_size=1,
            max_size=8,
        ).filter(lambda fs: any(f > 0 for f in fs)),
        total=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=120, deadline=None)
    def test_split_invariants(self, fractions, total):
        """Sum preserved, no negatives, declared zeros stay zero, and
        the floor loop terminates (the call returning at all)."""
        from repro.workloads.compose import _split_accesses

        counts = _split_accesses(fractions, total)
        assert sum(counts) == total
        assert all(c >= 0 for c in counts)
        assert all(
            c == 0 for c, f in zip(counts, fractions) if f == 0.0
        )
        positive = sum(1 for f in fractions if f > 0)
        if total >= positive:
            # Budget allows the floor: every declared phase runs.
            assert all(c >= 1 for c, f in zip(counts, fractions) if f > 0)


class TestStatsConservation:
    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_demand_bits_match_requests(self, n):
        """Channel demand bits == requests x (cmd + line) bits."""
        cfg = default_config(MemoryMode.PLANAR)
        stats = Stats()
        ms = build_memory_system(PLATFORMS["Oracle"], cfg, stats)
        line_bits = cfg.gpu.line_bytes * 8
        now = 0
        for i in range(n):
            s, local = ms.route(i * cfg.hetero.page_bytes)
            s.serve(local, False, now)
            now += 100_000
        # snapshot() is the read surface: it folds in any counts the
        # fast serves batched in deferred accumulators.
        total_demand_bits = sum(
            v for k, v in stats.snapshot().items() if k.endswith(".bits.demand")
        )
        assert total_demand_bits == n * (line_bits + 64)
