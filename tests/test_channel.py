"""Channel tests: electrical bus, optical virtual channels, dual routes,
WOM windows and demux arbitration."""

import pytest

from repro.channel.base import RouteKind
from repro.channel.electrical import ElectricalChannel
from repro.config import ElectricalChannelConfig, OpticalChannelConfig
from repro.optical.channel import OpticalChannel, VirtualChannel
from repro.sim.records import RequestKind
from repro.sim.stats import Stats


def make_vchannel(dual=False, wom=False, scale=1):
    cfg = OpticalChannelConfig()
    return VirtualChannel(
        cfg, Stats(), 0, 16, dual_routes=dual, wom_coded=wom,
        bandwidth_scale_down=scale,
    )


class TestElectrical:
    def test_transfer_duration_matches_bandwidth(self):
        chan = ElectricalChannel(ElectricalChannelConfig(), Stats())
        r = chan.transfer(0, 480, RequestKind.DEMAND)
        assert r.duration_ps == 1000  # 480 bits at 0.48 bits/ps

    def test_transfers_serialize(self):
        chan = ElectricalChannel(ElectricalChannelConfig(), Stats())
        r1 = chan.transfer(0, 480, RequestKind.DEMAND)
        r2 = chan.transfer(0, 480, RequestKind.DEMAND)
        assert r2.start_ps == r1.end_ps

    def test_no_dual_routes(self):
        chan = ElectricalChannel(ElectricalChannelConfig(), Stats())
        assert not chan.dual_routes
        # A memory-route transfer lands on the single bus.
        r1 = chan.transfer(0, 480, RequestKind.MIGRATION, RouteKind.MEMORY)
        r2 = chan.transfer(0, 480, RequestKind.DEMAND, RouteKind.DATA)
        assert r2.start_ps >= r1.end_ps

    def test_energy_accounted(self):
        stats = Stats()
        chan = ElectricalChannel(ElectricalChannelConfig(), stats)
        chan.transfer(0, 1000, RequestKind.DEMAND)
        assert stats.get("echan.energy_pj") == pytest.approx(5000.0)

    def test_bandwidth_scaling(self):
        chan = ElectricalChannel(
            ElectricalChannelConfig(), Stats(), bandwidth_scale_down=4
        )
        r = chan.transfer(0, 480, RequestKind.DEMAND)
        assert r.duration_ps == 4000

    def test_zero_bits_rejected(self):
        chan = ElectricalChannel(ElectricalChannelConfig(), Stats())
        with pytest.raises(ValueError):
            chan.transfer(0, 0, RequestKind.DEMAND)


class TestVirtualChannel:
    def test_same_bandwidth_as_electrical(self):
        """Table I: one 16-bit 30 GHz vchannel == one 32-bit 15 GHz lane."""
        v = make_vchannel()
        e = ElectricalChannel(ElectricalChannelConfig(), Stats())
        assert v.bits_per_ps == pytest.approx(e.bits_per_ps)

    def test_dual_routes_are_independent(self):
        v = make_vchannel(dual=True)
        d = v.transfer(0, 4800, RequestKind.DEMAND, RouteKind.DATA, device=0)
        m = v.transfer(0, 4800, RequestKind.MIGRATION, RouteKind.MEMORY, device=1)
        # Both start immediately: no serialization between routes.
        assert abs(d.start_ps - m.start_ps) <= 200  # demux tune only

    def test_no_dual_routes_falls_back_to_data(self):
        v = make_vchannel(dual=False)
        m = v.transfer(0, 4800, RequestKind.MIGRATION, RouteKind.MEMORY)
        d = v.transfer(0, 4800, RequestKind.DEMAND, RouteKind.DATA)
        assert d.start_ps >= m.end_ps

    def test_demux_switch_penalty(self):
        v = make_vchannel()
        r1 = v.transfer(0, 480, RequestKind.DEMAND, device=0)
        r2 = v.transfer(r1.end_ps, 480, RequestKind.DEMAND, device=1)
        assert r2.start_ps == r1.end_ps + 100  # one MRR retune

    def test_no_penalty_for_same_device(self):
        v = make_vchannel()
        r1 = v.transfer(0, 480, RequestKind.DEMAND, device=0)
        r2 = v.transfer(r1.end_ps, 480, RequestKind.DEMAND, device=0)
        assert r2.start_ps == r1.end_ps

    def test_wom_window_degrades_data_route(self):
        v = make_vchannel(dual=True, wom=True)
        base = v.transfer(0, 4800, RequestKind.DEMAND).duration_ps
        v.set_wom_window(v.busy_until(RouteKind.DATA), 1_000_000)
        slowed = v.transfer(
            v.busy_until(RouteKind.DATA), 4800, RequestKind.DEMAND
        ).duration_ps
        assert slowed == pytest.approx(base * 1.5, rel=0.01)

    def test_wom_window_does_not_affect_memory_route(self):
        v = make_vchannel(dual=True, wom=True)
        v.set_wom_window(0, 10_000_000)
        base = 4800 / v.bits_per_ps
        r = v.transfer(0, 4800, RequestKind.MIGRATION, RouteKind.MEMORY)
        assert r.duration_ps == pytest.approx(base, rel=0.01)

    def test_wom_window_ignored_without_wom(self):
        v = make_vchannel(dual=True, wom=False)
        v.set_wom_window(0, 10_000_000)
        base = 4800 / v.bits_per_ps
        r = v.transfer(0, 4800, RequestKind.DEMAND)
        assert r.duration_ps == pytest.approx(base, rel=0.05)

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            make_vchannel(wom=True).set_wom_window(0, -1)

    def test_traffic_kinds_accounted_separately(self):
        v = make_vchannel(dual=True)
        v.transfer(0, 1000, RequestKind.DEMAND)
        v.transfer(0, 2000, RequestKind.MIGRATION, RouteKind.MEMORY)
        assert v.stats.get("ochan0.bits.demand") == 1000
        assert v.stats.get("ochan0.bits.migration") == 2000


class TestOpticalChannel:
    def test_six_virtual_channels(self):
        chan = OpticalChannel(OpticalChannelConfig(), Stats())
        assert len(chan.vchannels) == 6

    def test_static_assignment(self):
        chan = OpticalChannel(OpticalChannelConfig(), Stats())
        assert chan.vchannel_for_controller(2) is chan.vchannels[2]

    def test_waveguides_multiply_width(self):
        from dataclasses import replace

        cfg = replace(OpticalChannelConfig(), num_waveguides=4)
        chan = OpticalChannel(cfg, Stats())
        assert chan.vchannels[0].width_bits == 64


class TestAccountingLedger:
    """ChannelPort.accounting: the audit layer's read-back of the port's
    counter ledger (DESIGN.md section 10)."""

    def test_electrical_ledger_balances(self):
        stats = Stats()
        chan = ElectricalChannel(ElectricalChannelConfig(), stats)
        chan.transfer(0, 480, RequestKind.DEMAND)
        chan.transfer(0, 960, RequestKind.MIGRATION)
        ledger = chan.accounting(stats.snapshot())
        assert ledger["bits"] == 480 + 960
        assert ledger["windows"] == 2
        assert ledger["kind_busy_ps"] == ledger["route_busy_ps"] > 0

    def test_optical_ledger_balances_across_routes(self):
        chan = make_vchannel(dual=True)
        stats = chan.stats
        chan.transfer(0, 480, RequestKind.DEMAND, RouteKind.DATA, device=0)
        chan.transfer(0, 480, RequestKind.MIGRATION, RouteKind.MEMORY, device=1)
        ledger = chan.accounting(stats.snapshot())
        assert ledger["bits"] == 960
        assert ledger["windows"] == 2
        assert ledger["kind_busy_ps"] == ledger["route_busy_ps"]

    def test_ledger_empty_port(self):
        stats = Stats()
        chan = ElectricalChannel(ElectricalChannelConfig(), stats)
        ledger = chan.accounting(stats.snapshot())
        assert ledger == {
            "bits": 0.0, "windows": 0.0,
            "kind_busy_ps": 0.0, "route_busy_ps": 0.0,
        }
