"""Result store tests: facet indexing, filtered queries (property-based
against brute force), and garbage collection of stale entries."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MemoryMode
from repro.gpu.gpu import RunResult
from repro.harness.cache import SCHEMA_VERSION, ResultCache
from repro.harness.executor import RunConfig, SimulationJob
from repro.harness.store import STORE_COLUMNS, ResultStore

PLATFORMS = ("Ohm-base", "Ohm-BW", "Oracle")
WORKLOADS = ("backp", "pagerank", "gemm_reuse")
MODES = (MemoryMode.PLANAR, MemoryMode.TWO_LEVEL)


def fab_job(platform="Ohm-base", workload="backp", mode=MemoryMode.PLANAR,
            seed=7, num_warps=8):
    return SimulationJob(
        platform, workload, mode,
        RunConfig(num_warps=num_warps, accesses_per_warp=8, seed=seed),
    )


def fab_result(job: SimulationJob, exec_time_ps: int = 1000) -> RunResult:
    """A fabricated result — the store indexes facets and metrics, it
    never re-simulates, so synthetic payloads keep these tests fast."""
    return RunResult(
        platform=job.platform,
        workload=job.workload,
        mode=job.mode.value,
        instructions=100,
        exec_time_ps=exec_time_ps,
        demand_requests=10,
        mean_mem_latency_ps=5.0,
        counters={},
    )


@pytest.fixture()
def populated(tmp_path):
    cache = ResultCache(tmp_path)
    jobs = [
        fab_job(platform=p, workload=w, mode=m, seed=s)
        for p in PLATFORMS[:2]
        for w in WORKLOADS[:2]
        for m in MODES
        for s in (1, 2)
    ]
    for job in jobs:
        cache.put(job, fab_result(job))
    return tmp_path, jobs


class TestIndex:
    def test_indexes_every_entry(self, populated):
        cache_dir, jobs = populated
        store = ResultStore(cache_dir)
        assert len(store.entries()) == len(jobs)
        assert store.skipped == 0

    def test_entry_carries_job_facets(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = fab_job(platform="Ohm-BW", workload="pagerank",
                      mode=MemoryMode.TWO_LEVEL, seed=5, num_warps=16)
        cache.put(job, fab_result(job, exec_time_ps=4321))
        (entry,) = ResultStore(tmp_path).entries()
        assert entry.platform == "Ohm-BW"
        assert entry.workload == "pagerank"
        assert entry.mode == "two_level"
        assert entry.num_warps == 16
        assert entry.seed == 5
        assert entry.schema == SCHEMA_VERSION
        assert entry.exec_time_ps == 4321
        assert not entry.stale

    def test_rows_match_columns(self, populated):
        cache_dir, _ = populated
        store = ResultStore(cache_dir)
        for row in store.rows(store.entries()):
            assert tuple(row) == STORE_COLUMNS

    def test_missing_dir_is_empty(self, tmp_path):
        assert ResultStore(tmp_path / "absent").entries() == []

    def test_corrupt_entry_skipped_and_counted(self, populated):
        cache_dir, jobs = populated
        (cache_dir / ("deadbeef" * 8 + ".json")).write_text("{not json")
        store = ResultStore(cache_dir)
        assert len(store.entries()) == len(jobs)
        assert store.skipped == 1

    def test_non_fingerprint_files_ignored(self, populated):
        # The store only owns fingerprint-named files: anything else in
        # a (possibly misdirected) directory is invisible to it.
        cache_dir, jobs = populated
        (cache_dir / "BENCH_perf.json").write_text('{"benchmark": "x"}')
        store = ResultStore(cache_dir)
        assert len(store.entries()) == len(jobs)
        assert store.skipped == 0

    def test_pre_v4_entry_falls_back_to_result_facets(self, tmp_path):
        # A PR-2-era entry: schema 3, result only, no job payload.
        job = fab_job()
        legacy = {"schema": 3, "result": fab_result(job).to_dict()}
        (tmp_path / ("ab" * 32 + ".json")).write_text(json.dumps(legacy))
        (entry,) = ResultStore(tmp_path).entries()
        assert entry.platform == job.platform
        assert entry.workload == job.workload
        assert entry.num_warps is None  # sizing unknown pre-v4
        assert entry.stale


class TestQuery:
    def test_single_facet(self, populated):
        cache_dir, jobs = populated
        store = ResultStore(cache_dir)
        got = store.query(platform="Ohm-base")
        want = [j for j in jobs if j.platform == "Ohm-base"]
        assert len(got) == len(want)
        assert all(e.platform == "Ohm-base" for e in got)

    def test_conjunctive_facets(self, populated):
        cache_dir, jobs = populated
        got = ResultStore(cache_dir).query(
            platform="Ohm-BW", workload="backp", mode="planar"
        )
        assert len(got) == 2  # the two seeds
        assert all(
            (e.platform, e.workload, e.mode) == ("Ohm-BW", "backp", "planar")
            for e in got
        )

    def test_no_match(self, populated):
        cache_dir, _ = populated
        assert ResultStore(cache_dir).query(workload="no_such") == []

    def test_stale_excluded_by_default(self, populated):
        cache_dir, jobs = populated
        legacy = {"schema": 1, "result": fab_result(fab_job()).to_dict()}
        (cache_dir / ("cd" * 32 + ".json")).write_text(json.dumps(legacy))
        store = ResultStore(cache_dir)
        assert len(store.query()) == len(jobs)
        assert len(store.query(include_stale=True)) == len(jobs) + 1

    facet_strategy = st.fixed_dictionaries(
        {},
        optional={
            "platform": st.sampled_from(PLATFORMS),
            "workload": st.sampled_from(WORKLOADS),
            "mode": st.sampled_from([m.value for m in MODES]),
            "seed": st.integers(min_value=1, max_value=3),
            "num_warps": st.sampled_from([8, 16]),
        },
    )

    jobs_strategy = st.lists(
        st.builds(
            fab_job,
            platform=st.sampled_from(PLATFORMS),
            workload=st.sampled_from(WORKLOADS),
            mode=st.sampled_from(MODES),
            seed=st.integers(min_value=1, max_value=3),
            num_warps=st.sampled_from([8, 16]),
        ),
        min_size=0,
        max_size=12,
    )

    @given(jobs=jobs_strategy, facets=facet_strategy)
    @settings(max_examples=25, deadline=None)
    def test_query_equals_brute_force(self, tmp_path_factory, jobs, facets):
        """Property: a facet query returns exactly the entries a naive
        scan-and-filter of the cache directory would."""
        cache_dir = tmp_path_factory.mktemp("store")
        cache = ResultCache(cache_dir)
        for job in jobs:
            cache.put(job, fab_result(job))
        store = ResultStore(cache_dir)
        got = {e.fingerprint for e in store.query(**facets)}
        brute = {
            e.fingerprint
            for e in store.entries()
            if not e.stale
            and all(getattr(e, k) == v for k, v in facets.items())
        }
        assert got == brute
        # and the index covers exactly the deduplicated job set
        assert len(store.entries()) == len(set(jobs))


class TestGc:
    def test_gc_removes_stale_and_orphans(self, populated):
        import os
        import time

        from repro.harness.store import TMP_GRACE_SECONDS

        cache_dir, jobs = populated
        legacy = {"schema": 2, "result": fab_result(fab_job()).to_dict()}
        (cache_dir / ("ef" * 32 + ".json")).write_text(json.dumps(legacy))
        (cache_dir / ("0" * 64 + ".json")).write_text("{torn")
        (cache_dir / "BENCH_perf.json").write_text('{"not": "ours"}')
        orphan = cache_dir / "orphan123.tmp"
        orphan.write_text("half a result")
        stale_mtime = time.time() - TMP_GRACE_SECONDS - 60
        os.utime(orphan, (stale_mtime, stale_mtime))
        store = ResultStore(cache_dir)
        removed = store.gc()
        assert {p.name for p in removed} == {
            "ef" * 32 + ".json", "0" * 64 + ".json", "orphan123.tmp"
        }
        assert (cache_dir / "BENCH_perf.json").exists()  # never ours to gc
        assert len(store.entries()) == len(jobs)
        assert store.skipped == 0

    def test_gc_spares_fresh_tmp_of_live_writer(self, populated):
        # A just-created temp file is most likely a concurrent put() in
        # flight — gc must not yank it out from under the rename.
        cache_dir, _ = populated
        fresh = cache_dir / "inflight456.tmp"
        fresh.write_text("being written right now")
        assert ResultStore(cache_dir).gc() == []
        assert fresh.exists()

    def test_gc_dry_run_removes_nothing(self, populated):
        cache_dir, _ = populated
        broken = cache_dir / ("1" * 64 + ".json")
        broken.write_text("{torn")
        store = ResultStore(cache_dir)
        doomed = store.gc(dry_run=True)
        assert len(doomed) == 1
        assert broken.exists()

    def test_gc_keeps_current_schema(self, populated):
        cache_dir, jobs = populated
        assert ResultStore(cache_dir).gc() == []
        assert len(ResultStore(cache_dir).entries()) == len(jobs)

    def test_gc_missing_dir(self, tmp_path):
        assert ResultStore(tmp_path / "absent").gc() == []


class TestCli:
    def test_store_query_csv(self, populated, capsys):
        from repro.cli import main

        cache_dir, _ = populated
        assert main([
            "store", "query", "--cache-dir", str(cache_dir),
            "--platform", "Ohm-base", "--workload", "backp",
            "--mode", "planar", "--format", "csv",
        ]) == 0
        out = capsys.readouterr().out
        header, *rows = [l for l in out.splitlines() if l]
        assert header.startswith("fingerprint,platform,workload,mode")
        assert len(rows) == 2
        assert all(",Ohm-base,backp,planar," in r for r in rows)

    def test_store_query_json_to_file(self, populated, tmp_path):
        from repro.cli import main

        cache_dir, jobs = populated
        out = tmp_path / "q.json"
        assert main([
            "store", "query", "--cache-dir", str(cache_dir),
            "--format", "json", "-o", str(out),
        ]) == 0
        rows = json.loads(out.read_text())
        assert len(rows) == len(jobs)
        assert set(rows[0]) == set(STORE_COLUMNS)

    def test_store_gc_cli(self, populated, capsys):
        from repro.cli import main

        cache_dir, _ = populated
        broken = cache_dir / ("2" * 64 + ".json")
        broken.write_text("{torn")
        assert main(["store", "gc", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 1 file(s)" in capsys.readouterr().out
        assert not broken.exists()
