"""CLI tests (argument parsing and command execution)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_requires_platform(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "backp"])

    def test_run_rejects_unknown_platform(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--platform", "GTX", "--workload", "backp"]
            )

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig20b"])
        assert args.name == "fig20b"

    def test_mode_default(self):
        args = build_parser().parse_args(
            ["run", "--platform", "Oracle", "--workload", "backp"]
        )
        assert args.mode == "planar"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Ohm-BW" in out and "pagerank" in out

    def test_run_quick(self, capsys):
        assert main(
            ["run", "--platform", "Oracle", "--workload", "backp", "--quick"]
        ) == 0
        out = capsys.readouterr().out
        assert "exec time" in out

    def test_compare_quick(self, capsys):
        assert main(["compare", "--workload", "backp", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Ohm-base" in out and "Oracle" in out

    def test_experiment_fig20b(self, capsys):
        assert main(["experiment", "fig20b", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Ohm-base rd/wr" in out

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3", "--quick"]) == 0
        assert "Ohm-BW" in capsys.readouterr().out

    def test_experiment_fig15(self, capsys):
        assert main(["experiment", "fig15", "--quick"]) == 0
        assert "planar" in capsys.readouterr().out
