"""CLI tests (argument parsing and command execution)."""

import csv
import io
import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_requires_platform(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "backp"])

    def test_run_rejects_unknown_platform(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--platform", "GTX", "--workload", "backp"]
            )

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig20b"])
        assert args.name == "fig20b"

    def test_shard_size_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--platform", "Oracle", "--workload", "backp",
                 "--shard-size", "0"]
            )

    def test_mode_default(self):
        args = build_parser().parse_args(
            ["run", "--platform", "Oracle", "--workload", "backp"]
        )
        assert args.mode == "planar"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Ohm-BW" in out and "pagerank" in out

    def test_run_quick(self, capsys):
        assert main(
            ["run", "--platform", "Oracle", "--workload", "backp", "--quick"]
        ) == 0
        out = capsys.readouterr().out
        assert "exec time" in out

    def test_compare_quick(self, capsys):
        assert main(["compare", "--workload", "backp", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Ohm-base" in out and "Oracle" in out

    def test_experiment_fig20b(self, capsys):
        assert main(["experiment", "fig20b", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Ohm-base rd/wr" in out

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3", "--quick"]) == 0
        assert "Ohm-BW" in capsys.readouterr().out

    def test_run_profile_prints_hot_functions(self, capsys):
        assert main(
            [
                "run", "--platform", "Oracle", "--workload", "backp",
                "--quick", "--profile",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out  # cProfile table header
        assert "exec time" in out  # the normal report still prints

    def test_perf_smoke_writes_bench_json(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_perf.json"
        assert main(
            ["perf", "--smoke", "--repeats", "1", "-o", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "events_per_sec" in out
        payload = json.loads(out_file.read_text())
        assert payload["unit"] == "events_per_sec"
        assert {m["case"] for m in payload["current"]} == {
            "headline_smoke", "two_level_smoke", "origin_smoke",
            "gemm_smoke", "mix_smoke",
        }
        for m in payload["current"]:
            assert m["events_per_sec"] > 0

    def test_experiment_fig15(self, capsys):
        assert main(["experiment", "fig15", "--quick"]) == 0
        assert "planar" in capsys.readouterr().out


class TestBatchCommands:
    def test_batch_run_then_resume_and_status(self, tmp_path, capsys):
        root = str(tmp_path / "batches")
        args = [
            "--warps", "8", "--accesses", "8",
            "--shard-size", "8", "--batch-dir", root,
        ]
        assert main(["batch", "run", "--experiment", "fig8", *args]) == 0
        out = capsys.readouterr().out
        assert "done" in out and "fig8" in out
        # Re-running attaches to the finished batch: nothing re-executes.
        assert main(["batch", "run", "--experiment", "fig8", *args]) == 0
        capsys.readouterr()
        assert main(["batch", "status", "--batch-dir", root]) == 0
        assert "done" in capsys.readouterr().out
        assert main(["batch", "resume", "--batch-dir", root]) == 0
        assert "done" in capsys.readouterr().out

    def test_batch_run_rejects_analytic_only(self, tmp_path):
        with pytest.raises(SystemExit, match="analytic"):
            main([
                "batch", "run", "--experiment", "fig15", "fig20b",
                "--batch-dir", str(tmp_path), "--quick",
            ])

    def test_batch_resume_heals_pruned_cache(self, tmp_path, capsys):
        # Journal says done but the cache was emptied: resume must
        # recompute, not report "nothing to resume" and leave the
        # results unrecoverable.
        root = tmp_path / "batches"
        args = [
            "--warps", "8", "--accesses", "8",
            "--shard-size", "8", "--batch-dir", str(root),
        ]
        assert main(["batch", "run", "--experiment", "fig8", *args]) == 0
        capsys.readouterr()
        entries = list((root / "cache").glob("*.json"))
        assert entries
        for f in entries:
            f.unlink()
        assert main(["batch", "resume", "--batch-dir", str(root)]) == 0
        assert "done" in capsys.readouterr().out
        assert len(list((root / "cache").glob("*.json"))) == len(entries)

    def test_batch_status_empty_root(self, tmp_path, capsys):
        assert main(["batch", "status", "--batch-dir", str(tmp_path)]) == 0
        assert "no batches" in capsys.readouterr().out

    def test_unusable_batch_dir_is_clean_error(self, tmp_path):
        blocker = tmp_path / "a_file"
        blocker.write_text("not a directory")
        with pytest.raises(SystemExit, match="--batch-dir"):
            main([
                "run", "--platform", "Oracle", "--workload", "backp",
                "--quick", "--batch-dir", str(blocker),
            ])

    def test_batch_resume_unknown_id(self, tmp_path):
        with pytest.raises(SystemExit, match="no batch"):
            main([
                "batch", "resume", "--batch-dir", str(tmp_path),
                "--id", "feedface",
            ])

    def test_experiment_accepts_batch_dir(self, tmp_path, capsys):
        root = tmp_path / "b"
        assert main([
            "experiment", "fig8", "--warps", "8", "--accesses", "8",
            "--batch-dir", str(root),
        ]) == 0
        assert "fig8" in capsys.readouterr().out
        assert list(root.glob("b-*/journal.jsonl"))
        assert list((root / "cache").glob("*.json"))


class TestWorkloadsCommands:
    def test_run_accepts_new_families(self, capsys):
        for name in ("gemm_reuse", "pointer_chase", "stream_scan"):
            assert main(
                ["run", "--platform", "Ohm-BW", "--workload", name,
                 "--warps", "8", "--accesses", "8"]
            ) == 0
            assert "exec time" in capsys.readouterr().out

    def test_run_accepts_composed_multi_tenant(self, capsys):
        assert main(
            ["run", "--platform", "Ohm-base", "--workload", "mix_gemm_chase",
             "--warps", "8", "--accesses", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "tenant gemm" in out and "tenant chase" in out

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["run", "--platform", "Ohm-BW", "--workload", "doom", "--quick"])

    def test_workloads_list(self, capsys):
        assert main(["workloads", "list"]) == 0
        out = capsys.readouterr().out
        assert "gemm_reuse" in out and "pagerank" in out and "compose" in out

    def test_workloads_describe(self, capsys):
        assert main(["workloads", "describe", "stream_scan"]) == 0
        out = capsys.readouterr().out
        assert "family: stream" in out
        assert "read_fraction" in out  # parameters printed
        assert "STREAM" in out  # family docstring printed

    def test_workloads_describe_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["workloads", "describe", "doom"])

    def test_record_then_replay_is_bit_identical(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl.gz"
        assert main(
            ["workloads", "record", "--platform", "Ohm-BW",
             "--workload", "pagerank", "--warps", "8", "--accesses", "8",
             "-o", str(trace)]
        ) == 0
        recorded = capsys.readouterr().out
        assert main(
            ["workloads", "replay", "--trace", str(trace),
             "--platform", "Ohm-BW", "--warps", "8", "--accesses", "8"]
        ) == 0
        replayed = capsys.readouterr().out
        def fp(out):
            return [l for l in out.splitlines() if l.startswith("fingerprint")][0]
        assert fp(recorded) == fp(replayed)

    def test_run_record_trace_flag(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(
            ["run", "--platform", "Oracle", "--workload", "backp",
             "--warps", "8", "--accesses", "8", "--record-trace", str(trace)]
        ) == 0
        assert trace.exists()
        assert "fingerprint" in capsys.readouterr().out

    def test_replay_missing_trace_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["workloads", "replay", "--trace", str(tmp_path / "no.jsonl"),
                 "--platform", "Ohm-BW"]
            )

    def test_experiment_families_quick(self, capsys):
        assert main(["experiment", "families", "--warps", "8", "--accesses", "8"]) == 0
        out = capsys.readouterr().out
        assert "gemm_reuse" in out and "stream_scan_r25" in out


class TestServiceFlags:
    def test_jobs_flag_parses(self):
        args = build_parser().parse_args(["experiment", "fig15", "--jobs", "4"])
        assert args.jobs == 4

    def test_cache_dir_flag_parses(self, tmp_path):
        args = build_parser().parse_args(
            ["experiment", "fig15", "--cache-dir", str(tmp_path)]
        )
        assert args.cache_dir == str(tmp_path)

    def test_second_invocation_hits_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = [
            "run", "--platform", "Oracle", "--workload", "backp",
            "--warps", "8", "--accesses", "8", "--cache-dir", cache,
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "0 hits, 1 misses" in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "1 hits, 0 misses" in second.err
        # The cached replay reports the identical simulation.
        assert first.out == second.out


class TestExport:
    def test_export_json_stdout(self, capsys):
        assert main(["export", "fig15", "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["layout"] for r in rows} == {
            "general", "ohm-base", "planar", "two-level"
        }

    def test_export_csv_stdout(self, capsys):
        assert main(["export", "table3", "--format", "csv"]) == 0
        rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
        assert len(rows) == 4
        assert {r["platform"] for r in rows} == {"Ohm-base", "Ohm-BW"}

    def test_export_to_file(self, tmp_path, capsys):
        out = tmp_path / "fig20b.json"
        assert main(["export", "fig20b", "-o", str(out)]) == 0
        rows = json.loads(out.read_text())
        assert len(rows) == 7
        assert "wrote 7 rows" in capsys.readouterr().err

    def test_export_simulated_figure_quick(self, capsys):
        assert main(
            ["export", "fig8", "--format", "csv", "--warps", "8", "--accesses", "8"]
        ) == 0
        rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
        assert {r["mode"] for r in rows} == {"planar", "two_level"}
        assert {r["metric"] for r in rows} == {
            "migration_bw_frac", "latency_vs_oracle"
        }

    def test_export_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export", "fig99"])
