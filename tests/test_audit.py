"""Cross-layer invariant audit tests (sim/audit.py + harness/audit.py).

Three angles:

* **clean runs** — every platform/mode/workload shape passes the audit
  and the audited result is bit-identical to the un-audited one;
* **detection** — injected accounting drift of each class (channel,
  DRAM, XPoint, GPU conservation, tenant attribution, stray energy
  counters) is caught by the matching invariant, proving the audit is
  not vacuously green;
* **harness** — the sweep's matrix builder, journal resume, outcome
  serialization and CLI gate behave.
"""

import json

import pytest

from repro.config import MemoryMode
from repro.core.platforms import PLATFORMS
from repro.gpu.gpu import GpuModel
from repro.harness.audit import (
    AUDIT_SCHEMA,
    AuditOutcome,
    audit_jobs,
    audit_report,
    execute_job_audited,
    run_audit,
)
from repro.harness.executor import (
    RunConfig,
    SerialExecutor,
    SimulationJob,
    execute_job,
    traces_for,
)
from repro.sim.audit import (
    Auditor,
    InvariantError,
    InvariantViolation,
    ValidatingEngine,
)
from repro.workloads.registry import get_workload_def

SMALL = RunConfig(num_warps=16, accesses_per_warp=16)


def audited_model(platform, workload, mode, run_cfg=SMALL, strict=False):
    """(model, auditor) for one job, built but not yet run."""
    job = SimulationJob(platform, workload, mode, run_cfg)
    cfg = job.resolved_config()
    defn = get_workload_def(workload)
    auditor = Auditor(strict=strict)
    model = GpuModel(
        PLATFORMS[platform], cfg, defn.spec, traces_for(job, cfg), auditor=auditor
    )
    return model, auditor


class TestViolationRecords:
    def test_round_trip(self):
        v = InvariantViolation("dram.access_split", "mc0.dram", "boom", 4.0, 5.0)
        assert InvariantViolation.from_dict(v.to_dict()) == v

    def test_str_includes_both_sides(self):
        v = InvariantViolation("x.y", "c", "m", expected=1, actual=2)
        s = str(v)
        assert "x.y" in s and "expected 1" in s and "got 2" in s

    def test_error_lists_violations(self):
        violations = [
            InvariantViolation(f"inv{i}", "c", "m") for i in range(8)
        ]
        err = InvariantError(violations)
        assert "8 invariant violation(s)" in str(err)
        assert "inv0" in str(err) and "... and 3 more" in str(err)
        assert err.violations == violations

    def test_error_survives_pickling(self):
        # Parallel executors ship worker exceptions through pickle; the
        # structured records must survive the round trip intact.
        import pickle

        violations = [InvariantViolation("a.b", "c", "m", 1.0, 2.0)]
        err = pickle.loads(pickle.dumps(InvariantError(violations)))
        assert err.violations == violations
        assert "1 invariant violation(s)" in str(err)

    def test_check_counts_and_records(self):
        a = Auditor()
        assert a.check("i", "c", True, "fine")
        assert not a.check("i", "c", False, "bad", expected=1, actual=2)
        assert a.checks_run == 2
        assert len(a.violations) == 1
        with pytest.raises(InvariantError):
            a.raise_if_violations()


class TestValidatingEngine:
    def test_runs_events_in_order(self):
        a = Auditor()
        eng = ValidatingEngine(a)
        seen = []
        eng.schedule(5, lambda: seen.append("b"))
        eng.schedule(1, lambda: seen.append("a"))
        eng.run()
        assert seen == ["a", "b"]
        assert not a.violations

    def test_detects_non_monotonic_heap(self):
        # at() refuses past scheduling, so corrupt the queue directly —
        # the validating engine must notice the broken heap discipline.
        a = Auditor()
        eng = ValidatingEngine(a)
        eng.schedule(10, lambda: None)
        eng.now = 50
        eng.run()
        assert any(v.invariant == "engine.monotonic_time" for v in a.violations)

    def test_respects_until_and_max_events(self):
        a = Auditor()
        eng = ValidatingEngine(a)
        for t in (1, 2, 3):
            eng.schedule(t, lambda: None)
        eng.run(until_ps=2)
        assert eng.pending() == 1
        eng.run(max_events=1)
        assert eng.pending() == 0 or eng.events_processed == 3

    def test_warp_lane_drains_through_guarded_loop(self):
        # A validating engine never enters the fused lane drain: lane
        # events pop one at a time through the guarded merged loop, in
        # the exact (time, seq) order, with monotonicity checked.
        a = Auditor()
        eng = ValidatingEngine(a)
        seen = []
        eng.attach_warp_lane(4, lambda warp, phase: seen.append(("L", warp, phase)))
        eng.schedule(5, lambda: seen.append(("G", 5)))
        eng.lane_schedule(0, 3, 7)
        eng.lane_schedule(1, 5, 8)  # ties with the generic event at t=5
        eng.schedule(9, lambda: seen.append(("G", 9)))
        eng.run()
        # The generic t=5 event was scheduled before lane warp 1's, so
        # schedule order breaks the tie.
        assert seen == [("L", 0, 7), ("G", 5), ("L", 1, 8), ("G", 9)]
        assert eng.events_processed == 4
        assert not a.violations


CLEAN_CASES = [
    ("Origin", "pagerank", MemoryMode.PLANAR),
    ("Hetero", "backp", MemoryMode.PLANAR),
    ("Ohm-base", "backp", MemoryMode.TWO_LEVEL),
    ("Auto-rw", "gemm_reuse", MemoryMode.PLANAR),
    ("Ohm-WOM", "pagerank", MemoryMode.PLANAR),
    ("Ohm-BW", "mix_gemm_chase", MemoryMode.PLANAR),
    ("Ohm-BW", "backp", MemoryMode.TWO_LEVEL),
    ("Oracle", "stream_scan", MemoryMode.PLANAR),
]


class TestCleanRuns:
    @pytest.mark.parametrize("platform,workload,mode", CLEAN_CASES)
    def test_audit_is_clean(self, platform, workload, mode):
        outcome = execute_job_audited(
            SimulationJob(platform, workload, mode, SMALL)
        )
        assert outcome.violations == ()
        assert outcome.checks > 20

    def test_audited_result_is_bit_identical(self):
        job = SimulationJob("Ohm-BW", "pagerank", MemoryMode.PLANAR, SMALL)
        plain = execute_job(job)
        audited = execute_job_audited(job)
        assert audited.fingerprint == plain.fingerprint()

    def test_validate_flag_is_bit_identical_and_clean(self):
        base = SimulationJob("Ohm-WOM", "backp", MemoryMode.TWO_LEVEL, SMALL)
        validated = SimulationJob(
            "Ohm-WOM", "backp", MemoryMode.TWO_LEVEL,
            RunConfig(num_warps=16, accesses_per_warp=16, validate=True),
        )
        assert execute_job(validated).fingerprint() == execute_job(base).fingerprint()

    def test_cache_modelled_run_audits_clean(self):
        # The cache invariants only fire when L1/L2 are modelled.
        job = SimulationJob("Oracle", "backp", MemoryMode.PLANAR, SMALL)
        cfg = job.resolved_config()
        defn = get_workload_def("backp")
        auditor = Auditor(strict=True)
        model = GpuModel(
            PLATFORMS["Oracle"], cfg, defn.spec, traces_for(job, cfg),
            model_caches=True, auditor=auditor,
        )
        model.run()  # strict: raises on any violation
        assert any(sm.l1 is not None for sm in model.sms)
        assert auditor.checks_run > 0


class TestDetection:
    """Injected drift of every class must trip the matching invariant."""

    def _violations(self, model, auditor):
        model.run()
        return {v.invariant for v in auditor.violations}

    def test_channel_bits_drift(self):
        model, auditor = audited_model("Hetero", "backp", MemoryMode.PLANAR)
        chan = model.memory.slices[0].chan
        model.stats.add(f"{chan.name}.bits.demand", 64)  # phantom bits
        assert "channel.bits_conserved" in self._violations(model, auditor)

    def test_channel_window_drift(self):
        model, auditor = audited_model("Ohm-base", "backp", MemoryMode.PLANAR)
        chan = model.memory.slices[0].chan
        model.stats.add(f"{chan.name}.transfers", 1)  # phantom transfer
        assert "channel.windows_conserved" in self._violations(model, auditor)

    def test_channel_route_budget_drift(self):
        model, auditor = audited_model("Ohm-BW", "backp", MemoryMode.PLANAR)
        chan = model.memory.slices[0].chan
        model.stats.add(f"{chan.name}.busy_ps.route.data", 1000)
        assert "channel.busy_routes" in self._violations(model, auditor)

    def test_dram_bank_drift(self):
        model, auditor = audited_model("Origin", "backp", MemoryMode.PLANAR)
        model.memory.slices[0].dram.banks[0].accesses += 1
        got = self._violations(model, auditor)
        assert "dram.bank_accesses" in got

    def test_dram_counter_drift(self):
        model, auditor = audited_model("Oracle", "backp", MemoryMode.PLANAR)
        dram = model.memory.slices[0].dram
        model.stats.add(f"{dram.name}.reads", 3)  # reads no one issued
        assert "dram.access_split" in self._violations(model, auditor)

    def test_cache_tally_drift(self):
        # CacheStats.accesses is a stored ledger counted on entry while
        # hits/misses are counted per branch — drifting either side
        # must trip the split invariant.
        job = SimulationJob("Oracle", "backp", MemoryMode.PLANAR, SMALL)
        cfg = job.resolved_config()
        defn = get_workload_def("backp")
        auditor = Auditor()
        model = GpuModel(
            PLATFORMS["Oracle"], cfg, defn.spec, traces_for(job, cfg),
            model_caches=True, auditor=auditor,
        )
        model.sms[0].l1.stats.accesses += 1  # an access no branch saw
        model.run()
        assert "cache.access_split" in {v.invariant for v in auditor.violations}

    def test_xpoint_write_drift(self):
        model, auditor = audited_model("Ohm-base", "backp", MemoryMode.PLANAR)
        xp = model.memory.slices[0].xp
        model.stats.add(f"{xp.name}.ecc_encodes", 2)  # unaccounted writes
        assert "xpoint.write_conservation" in self._violations(model, auditor)

    def test_gpu_request_drift(self):
        model, auditor = audited_model("Hetero", "backp", MemoryMode.PLANAR)
        model.stats.add("mem.demand_requests", 1)  # a request out of thin air
        got = self._violations(model, auditor)
        assert "gpu.requests_conserved" in got
        assert "gpu.latency_samples" in got

    def test_instruction_drift(self):
        model, auditor = audited_model("Oracle", "backp", MemoryMode.PLANAR)
        model.stats.add("gpu.instructions", 7)
        assert "gpu.instructions_conserved" in self._violations(model, auditor)

    def test_tenant_attribution_drift(self):
        model, auditor = audited_model(
            "Ohm-BW", "mix_gemm_chase", MemoryMode.PLANAR
        )
        model.stats.add("tenant.gemm.instructions", 100)  # phantom work
        assert "tenant.instructions" in self._violations(model, auditor)

    def test_stray_energy_counter(self):
        # A counter that *looks* optical on an electrical platform: the
        # breakdown's name patterns absorb it, the model-derived
        # re-derivation does not — reconciliation must fail.
        model, auditor = audited_model("Hetero", "backp", MemoryMode.PLANAR)
        model.stats.add("ochan9.energy_pj", 5e6)
        assert "energy.total_reconciles" in self._violations(model, auditor)

    def test_malformed_trace_detected_at_construction(self):
        import numpy as np

        from repro.workloads.synthetic import WarpTrace

        job = SimulationJob("Oracle", "backp", MemoryMode.PLANAR, SMALL)
        cfg = job.resolved_config()
        defn = get_workload_def("backp")
        bad = WarpTrace(
            gaps=np.array([3, -2], dtype=np.int64),
            addrs=np.array([0, -128], dtype=np.int64),
            writes=np.array([False, True]),
        )
        auditor = Auditor()
        GpuModel(
            PLATFORMS["Oracle"], cfg, defn.spec,
            [bad] + traces_for(job, cfg), auditor=auditor,
        )
        got = {v.invariant for v in auditor.violations}
        assert got == {"workload.trace_wellformed"}
        assert len(auditor.violations) == 2  # negative gap AND address

    def test_malformed_trace_raises_at_construction_when_strict(self):
        # Without this, a bad trace dies mid-run on the symptom (a
        # negative-length issue burst) instead of the diagnosis.
        import numpy as np

        from repro.workloads.synthetic import WarpTrace

        job = SimulationJob("Oracle", "backp", MemoryMode.PLANAR, SMALL)
        cfg = job.resolved_config()
        defn = get_workload_def("backp")
        bad = WarpTrace(
            gaps=np.array([-1], dtype=np.int64),
            addrs=np.array([0], dtype=np.int64),
            writes=np.array([False]),
        )
        with pytest.raises(InvariantError) as exc:
            GpuModel(
                PLATFORMS["Oracle"], cfg, defn.spec, [bad],
                auditor=Auditor(strict=True),
            )
        assert any(
            v.invariant == "workload.trace_wellformed"
            for v in exc.value.violations
        )

    def test_crashed_job_becomes_audit_outcome(self, monkeypatch):
        # One exploding job must not kill a whole sweep.
        import repro.harness.audit as audit_mod

        class Boom:
            def __init__(self, *a, **k):
                raise RuntimeError("kaboom")

        monkeypatch.setattr(audit_mod, "GpuModel", Boom)
        outcome = execute_job_audited(
            SimulationJob("Oracle", "backp", MemoryMode.PLANAR, SMALL)
        )
        assert not outcome.ok
        assert outcome.fingerprint == ""
        assert any(
            v["invariant"] == "run.crashed" and "kaboom" in v["message"]
            for v in outcome.violations
        )

    def test_well_formed_trace_reports_nothing(self):
        job = SimulationJob("Oracle", "backp", MemoryMode.PLANAR, SMALL)
        for trace in traces_for(job, job.resolved_config()):
            assert trace.well_formed() == []

    def test_strict_mode_raises(self):
        model, auditor = audited_model(
            "Hetero", "backp", MemoryMode.PLANAR, strict=True
        )
        model.stats.add("mem.demand_requests", 1)
        with pytest.raises(InvariantError) as exc:
            model.run()
        assert any(
            v.invariant == "gpu.requests_conserved" for v in exc.value.violations
        )

    def test_validate_run_config_raises_on_drift(self, monkeypatch):
        # End-to-end: RunConfig(validate=True) arms a strict auditor
        # inside execute_job.
        from repro.gpu import sm as sm_mod

        original = sm_mod.StreamingMultiprocessor.issue_burst

        def leaky(self, instructions):
            self._cdict["gpu.instructions"] += 0.5  # drifting counter
            return original(self, instructions)

        monkeypatch.setattr(
            sm_mod.StreamingMultiprocessor, "issue_burst", leaky
        )
        job = SimulationJob(
            "Oracle", "backp", MemoryMode.PLANAR,
            RunConfig(num_warps=8, accesses_per_warp=8, validate=True),
        )
        with pytest.raises(InvariantError):
            execute_job(job)


class TestBankAccountingFix:
    """The latent bug the audit flushed out: swap presets were invisible
    to the device counter that feeds the energy model, and bulk swap
    occupancies let per-bank activations exceed per-bank accesses."""

    def _swap_model(self):
        job = SimulationJob(
            "Ohm-BW", "pagerank", MemoryMode.PLANAR,
            RunConfig(num_warps=24, accesses_per_warp=24),
        )
        cfg = job.resolved_config()
        defn = get_workload_def("pagerank")
        model = GpuModel(
            PLATFORMS["Ohm-BW"], cfg, defn.spec, traces_for(job, cfg)
        )
        result = model.run()
        return model, result

    def test_swap_presets_are_tracked(self):
        model, result = self._swap_model()
        assert result.counters.get("mem.swaps", 0) > 0, "sizing must swap"
        presets = sum(
            s.dram.total_preset_activations for s in model.memory.slices
        )
        occupancies = sum(
            s.dram.total_occupancies for s in model.memory.slices
        )
        assert presets > 0 and occupancies > 0

    def test_device_counter_reconciles_exactly(self):
        model, result = self._swap_model()
        for s in model.memory.slices:
            dram = s.dram
            counted = result.counters.get(f"{dram.name}.activations", 0.0)
            assert counted == (
                dram.total_activations - dram.total_preset_activations
            )

    def test_per_bank_activations_bounded(self):
        model, _ = self._swap_model()
        for s in model.memory.slices:
            for bank in s.dram.banks:
                assert bank.activations <= bank.accesses + bank.occupancies

    def test_bank_unit_accounting(self):
        from repro.dram.bank import Bank
        from repro.dram.timing import DramTiming
        from repro.config import DramTimingConfig

        bank = Bank(DramTiming.from_config(DramTimingConfig()))
        bank.activate(row=3, now_ps=0)
        assert bank.activations == 1
        assert bank.preset_activations == 1
        assert bank.accesses == 0
        bank.occupy(now_ps=0, duration_ps=100)
        assert bank.occupancies == 1
        bank.access(row=3, now_ps=500)
        assert bank.accesses == 1
        assert bank.activations == 1  # row hit, no new activation
        assert bank.activations <= bank.accesses + bank.occupancies


class TestSweepHarness:
    def test_matrix_shape(self):
        jobs = audit_jobs(
            run_cfg=SMALL,
            platforms=("Origin", "Oracle"),
            workloads=("backp", "pagerank"),
        )
        assert len(jobs) == 2 * 2 * len(MemoryMode)
        assert len(set(jobs)) == len(jobs)

    def test_smoke_matrix_is_small_but_covers_platforms(self):
        jobs = audit_jobs(smoke=True)
        assert {j.platform for j in jobs} == set(PLATFORMS)
        assert len(jobs) <= 80

    def test_unknown_platform_rejected(self):
        with pytest.raises(KeyError):
            audit_jobs(platforms=("GTX",))

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            audit_jobs(workloads=("nope",))

    def test_outcome_round_trip(self):
        o = AuditOutcome(
            platform="Origin", workload="backp", mode="planar", checks=10,
            violations=(
                InvariantViolation("a.b", "c", "m", 1, 2).to_dict(),
            ),
            fingerprint="f" * 64,
        )
        assert AuditOutcome.from_dict(o.to_dict()) == o
        assert not o.ok
        row = o.to_row()
        assert row["violations"] == 1 and row["ok"] is False
        assert "a.b" in row["detail"]

    def test_report_totals(self):
        jobs = audit_jobs(
            run_cfg=SMALL, platforms=("Oracle",), workloads=("backp",),
            modes=(MemoryMode.PLANAR,),
        )
        outcomes = run_audit(jobs)
        report = audit_report(outcomes)
        assert report["jobs"] == 1
        assert report["ok"] is True
        assert report["violations"] == 0
        assert report["schema"] == AUDIT_SCHEMA

    def test_journal_resume_skips_audited_jobs(self, tmp_path, monkeypatch):
        journal = tmp_path / "audit.jsonl"
        jobs = audit_jobs(
            run_cfg=SMALL, platforms=("Oracle", "Origin"),
            workloads=("backp",), modes=(MemoryMode.PLANAR,),
        )
        first = run_audit(jobs, journal=journal)
        assert journal.exists()
        lines = journal.read_text().strip().splitlines()
        assert len(lines) == len(jobs)

        # Second invocation must not simulate anything.
        import repro.harness.audit as audit_mod

        def boom(job):  # pragma: no cover - must never run
            raise AssertionError("journaled job was re-simulated")

        monkeypatch.setattr(audit_mod, "execute_job_audited", boom)
        second = run_audit(jobs, journal=journal)
        assert [o.to_dict() for o in second] == [o.to_dict() for o in first]

    def test_journal_written_in_waves_survives_mid_sweep_death(
        self, tmp_path, monkeypatch
    ):
        # A sweep killed partway must leave its completed waves in the
        # journal so the re-invocation starts from there, not from zero.
        import repro.harness.audit as audit_mod

        journal = tmp_path / "audit.jsonl"
        jobs = audit_jobs(
            run_cfg=SMALL, platforms=("Oracle", "Origin"),
            workloads=("backp", "pagerank"), modes=(MemoryMode.PLANAR,),
        )
        assert len(jobs) == 4
        real = audit_mod.execute_job_audited
        calls = []

        def dies_on_third(job):
            if len(calls) >= 2:
                raise KeyboardInterrupt("sweep killed")
            calls.append(job)
            return real(job)

        monkeypatch.setattr(audit_mod, "execute_job_audited", dies_on_third)
        with pytest.raises(KeyboardInterrupt):
            run_audit(jobs, journal=journal)
        # SerialExecutor waves are 2 jobs wide: the first wave landed.
        assert len(journal.read_text().strip().splitlines()) == 2

        monkeypatch.setattr(audit_mod, "execute_job_audited", real)
        outcomes = run_audit(jobs, journal=journal)
        assert len(outcomes) == 4 and all(o.ok for o in outcomes)
        assert len(journal.read_text().strip().splitlines()) == 4

    def test_journal_tolerates_garbage(self, tmp_path):
        journal = tmp_path / "audit.jsonl"
        journal.write_text('{"schema": 999}\nnot json\n')
        jobs = audit_jobs(
            run_cfg=SMALL, platforms=("Oracle",), workloads=("backp",),
            modes=(MemoryMode.PLANAR,),
        )
        outcomes = run_audit(jobs, journal=journal)
        assert len(outcomes) == 1 and outcomes[0].ok

    def test_executor_fn_plumbing(self):
        jobs = audit_jobs(
            run_cfg=SMALL, platforms=("Oracle",), workloads=("backp",),
            modes=(MemoryMode.PLANAR,),
        )
        calls = []

        def fake(job):
            calls.append(job)
            return "sentinel"

        out = SerialExecutor().run_jobs(jobs + jobs, fn=fake)
        assert out == ["sentinel"] * 2
        assert len(calls) == 1  # deduplicated


class TestRunConfigValidate:
    def test_to_dict_omits_false(self):
        assert "validate" not in RunConfig().to_dict()

    def test_to_dict_includes_true(self):
        assert RunConfig(validate=True).to_dict()["validate"] is True

    def test_round_trip(self):
        for rc in (RunConfig(), RunConfig(validate=True)):
            assert RunConfig.from_dict(rc.to_dict()) == rc

    def test_legacy_dict_defaults_false(self):
        legacy = {
            "num_warps": 5, "accesses_per_warp": 6, "seed": 7, "waveguides": 1,
        }
        assert RunConfig.from_dict(legacy).validate is False

    def test_cache_fingerprint_unchanged_for_default(self):
        # The validate field must not shift existing cache fingerprints.
        from repro.harness.cache import job_fingerprint

        job = SimulationJob("Oracle", "backp", MemoryMode.PLANAR, RunConfig())
        payload = json.dumps(job.to_dict(), sort_keys=True)
        assert "validate" not in payload
        assert job_fingerprint(job)  # and it still fingerprints


class TestAuditCli:
    def test_audit_smoke_subset(self, capsys):
        from repro.cli import main

        rc = main([
            "audit", "--smoke", "--platform", "Oracle", "Origin",
            "--workload", "backp", "--mode", "planar",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "CLEAN" in err

    def test_audit_json_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "audit.json"
        rc = main([
            "audit", "--smoke", "--platform", "Oracle",
            "--workload", "backp", "--mode", "planar",
            "--format", "json", "-o", str(out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["ok"] is True and report["jobs"] == 1

    def test_audit_rejects_unknown_workload(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["audit", "--workload", "definitely_not_registered"])

    def test_run_validate_flag(self, capsys):
        from repro.cli import main

        rc = main([
            "run", "--platform", "Oracle", "--workload", "backp",
            "--quick", "--validate",
        ])
        assert rc == 0
        assert "exec time" in capsys.readouterr().out
