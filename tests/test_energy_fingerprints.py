"""Golden energy-breakdown fingerprints: Fig. 19 inputs are frozen.

The RunResult golden fingerprints (tests/test_golden_fingerprints.py)
freeze the simulated timeline and counters; this suite freezes the
**energy accounting derived from them**.  A change anywhere in the
counter -> EnergyBreakdown pipeline — the power-model constants, the
counter name patterns, the platform branching — shows up here even when
the RunResult itself is bit-identical, which is exactly the class of
silent drift the invariant audit (DESIGN.md section 10) exists to stop.

Each golden job's :class:`EnergyBreakdown` is canonicalized with full
float precision (``repr`` round-trips) and hashed; per-component values
are also stored so a mismatch reports *which* component moved, not just
that the hash did.

If you change energy accounting *on purpose*, regenerate with::

    PYTHONPATH=src python tests/test_energy_fingerprints.py --regen
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import pytest

from repro.config import MemoryMode, default_config
from repro.core.platforms import PLATFORMS
from repro.energy.accounting import EnergyModel
from repro.harness.executor import RunConfig, SimulationJob, execute_job

DATA = pathlib.Path(__file__).parent / "data" / "energy_fingerprints.json"

#: Same sizing and matrix as the RunResult golden jobs, so both suites
#: freeze the same simulations.
GOLDEN_RUN = RunConfig(num_warps=24, accesses_per_warp=24)

GOLDEN_JOBS = [
    ("Origin", "pagerank", "planar"),
    ("Hetero", "pagerank", "planar"),
    ("Ohm-base", "pagerank", "planar"),
    ("Auto-rw", "pagerank", "planar"),
    ("Ohm-WOM", "pagerank", "planar"),
    ("Ohm-BW", "pagerank", "planar"),
    ("Oracle", "pagerank", "planar"),
    ("Ohm-BW", "backp", "two_level"),
]


def breakdown_payload(platform: str, workload: str, mode: str) -> dict:
    """Canonical, JSON-stable energy breakdown for one golden job."""
    result = execute_job(
        SimulationJob(platform, workload, MemoryMode(mode), GOLDEN_RUN)
    )
    cfg = default_config(MemoryMode(mode))
    b = EnergyModel(cfg).breakdown(PLATFORMS[platform], result)
    components = {
        "xpoint_j": b.xpoint_j,
        "dram_dynamic_j": b.dram_dynamic_j,
        "dram_static_j": b.dram_static_j,
        "optical_j": b.optical_j,
        "electrical_j": b.electrical_j,
        "total_j": b.total_j,
    }
    # repr() round-trips floats exactly; json.dumps uses it.
    canon = json.dumps(components, sort_keys=True, separators=(",", ":"))
    return {
        "components": components,
        "sha256": hashlib.sha256(canon.encode("utf-8")).hexdigest(),
    }


@pytest.mark.parametrize("platform,workload,mode", GOLDEN_JOBS)
def test_energy_breakdown_matches_golden(platform, workload, mode):
    golden = json.loads(DATA.read_text())
    key = f"{platform}/{workload}/{mode}"
    assert key in golden, f"no golden energy fingerprint for {key}; run --regen"
    got = breakdown_payload(platform, workload, mode)
    expected = golden[key]
    # Compare components first so a drift names the component that moved.
    for component, value in expected["components"].items():
        assert got["components"][component] == pytest.approx(
            value, rel=1e-12, abs=1e-18
        ), (
            f"energy component {component!r} changed for {key} — if "
            "intentional, regenerate tests/data/energy_fingerprints.json"
        )
    assert got["sha256"] == expected["sha256"]


@pytest.mark.parametrize("platform,workload,mode", GOLDEN_JOBS)
def test_breakdown_total_is_component_sum(platform, workload, mode):
    got = breakdown_payload(platform, workload, mode)["components"]
    parts = sum(v for k, v in got.items() if k != "total_j")
    assert got["total_j"] == pytest.approx(parts, rel=1e-12)


def _regen() -> None:
    out = {
        f"{p}/{w}/{m}": breakdown_payload(p, w, m) for p, w, m in GOLDEN_JOBS
    }
    DATA.write_text(json.dumps(out, indent=1, sort_keys=True) + "\n")
    print(f"wrote {DATA}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
