"""Tier-1 tests for tools/reprolint (DESIGN.md section 15).

The fixture corpus under tests/data/lint is package-shaped so the
production LintConfig applies to it unchanged; every line that must
fire carries an ``# EXPECT: <rule>`` marker and the tests compare the
linter's (line, rule) output against those markers exactly.  On top of
the corpus: the pragma grammar (suppression with a reason works,
reason-less / unknown-rule / allow(R0) pragmas are R0 findings that
suppress nothing), the clean-tree baseline over src/repro, and both
CLI surfaces (``python -m tools.reprolint`` and ``repro lint``).
"""

import json
import re
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
if str(REPO) not in sys.path:
    sys.path.insert(0, str(REPO))

from tools.reprolint import PRAGMA_RULE_ID, RULES, run_lint  # noqa: E402

FIXTURES = REPO / "tests" / "data" / "lint"
SRC = REPO / "src" / "repro"

_EXPECT_RE = re.compile(r"#\s*EXPECT:\s*([A-Z0-9, ]+)")

# Fixture files whose EXPECT markers the corpus run is compared against.
MARKER_FILES = [
    "sim/engine.py",  # R1 trigger (hot-module registry key match)
    "gpu/slots.py",  # R2 trigger
    "workloads/determinism.py",  # R3 trigger
    "gpu/audit_branch.py",  # R4 trigger
    "harness/pickle_jobs.py",  # R5 trigger
]
# Fixture files that must come back with zero unsuppressed findings.
CLEAN_FILES = [
    "sim/reporting.py",  # same formatting as engine.py, not registered hot
    "harness/clocky.py",  # wall clock under the harness exemption
    "gpu/pragmas.py",  # violations excused by reasoned pragmas
]


def expected_markers(path: Path):
    out = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        m = _EXPECT_RE.search(line)
        if m is None:
            continue
        for rid in m.group(1).split(","):
            rid = rid.strip()
            if rid:
                out.add((lineno, rid))
    return out


@pytest.fixture(scope="module")
def corpus():
    """One lint pass over the whole fixture corpus, shared by the tests."""
    return run_lint([FIXTURES])


def findings_for(report, rel):
    return [f for f in report.findings if f.path == rel]


# -- the corpus vs. its EXPECT markers -------------------------------------

@pytest.mark.parametrize("rel", MARKER_FILES)
def test_fixture_markers_match_exactly(corpus, rel):
    expected = expected_markers(FIXTURES / rel)
    assert expected, f"{rel} has no EXPECT markers — fixture rotted"
    actual = {(f.line, f.rule) for f in findings_for(corpus, rel)}
    assert actual == expected


@pytest.mark.parametrize("rel", CLEAN_FILES)
def test_non_trigger_fixtures_are_clean(corpus, rel):
    assert findings_for(corpus, rel) == []


def test_every_rule_fires_somewhere_in_the_corpus(corpus):
    fired = {f.rule for f in corpus.findings}
    assert set(RULES) <= fired  # R1..R5 all have a live trigger fixture
    assert PRAGMA_RULE_ID in fired  # pragma_bad.py keeps R0 honest


# -- the pragma grammar ----------------------------------------------------

def test_pragma_suppression_carries_reasons(corpus):
    rel = "gpu/pragmas.py"
    excused = [(f, reason) for f, reason in corpus.suppressed if f.path == rel]
    assert Counter(f.rule for f, _ in excused) == {"R2": 2, "R4": 1}
    assert all(reason for _, reason in excused)


def test_invalid_pragmas_are_findings_and_suppress_nothing(corpus):
    rel = "gpu/pragma_bad.py"
    found = findings_for(corpus, rel)
    # Each bad pragma line keeps its live R2 finding AND gains an R0.
    assert Counter(f.rule for f in found) == {"R0": 3, "R2": 3}
    r0_lines = {f.line for f in found if f.rule == "R0"}
    r2_lines = {f.line for f in found if f.rule == "R2"}
    assert r0_lines == r2_lines
    messages = " | ".join(f.message for f in found if f.rule == "R0")
    assert "no reason" in messages  # allow(R2) with nothing after it
    assert "unknown rule" in messages  # allow(R9)
    assert "cannot be suppressed" in messages  # allow(R0)
    assert not any(f.path == rel for f, _ in corpus.suppressed)


# -- the tree itself -------------------------------------------------------

def test_src_repro_is_clean():
    report = run_lint([SRC])
    assert report.clean, "\n".join(f.format() for f in report.findings)
    assert report.files_checked > 50
    # Every in-tree suppression must carry its justification.
    assert all(reason.strip() for _, reason in report.suppressed)


def test_select_restricts_rules():
    target = FIXTURES / "workloads" / "determinism.py"
    only_r2 = run_lint([target], select={"R2"})
    assert only_r2.findings == []
    only_r3 = run_lint([target], select={"R3"})
    assert only_r3.findings and all(f.rule == "R3" for f in only_r3.findings)


def test_subtree_scan_keeps_package_context():
    # Linting a subtree of src/repro rebases rel paths onto src/repro,
    # so the gpu/ package prefix (which scopes R2/R4) survives — the
    # pragma'd seams in gpu/ must still be seen (and excused).
    report = run_lint([SRC / "gpu"], rel_to=SRC)
    assert report.clean
    excused = {f.path for f, _ in report.suppressed}
    assert {"gpu/gpu.py", "gpu/sm.py"} <= excused
    # Without the rebase the prefix is stripped and R2 never fires.
    bare = run_lint([SRC / "gpu"])
    assert bare.suppressed == []


def test_rule_registry_shape():
    assert set(RULES) == {"R1", "R2", "R3", "R4", "R5"}
    assert PRAGMA_RULE_ID not in RULES  # the meta rule is not suppressible
    names = [r.name for r in RULES.values()]
    assert len(names) == len(set(names))
    for r in RULES.values():
        assert r.summary and r.design_ref


# -- CLI surfaces ----------------------------------------------------------

def _reprolint(*argv):
    return subprocess.run(
        [sys.executable, "-m", "tools.reprolint", *argv],
        cwd=REPO, capture_output=True, text=True,
    )


def test_cli_exit_codes():
    assert _reprolint(str(SRC)).returncode == 0  # clean tree
    assert _reprolint(str(FIXTURES)).returncode == 1  # corpus fires
    assert _reprolint("no/such/path").returncode == 2  # usage error
    assert _reprolint("--select", "R9").returncode == 2  # unknown rule id


def test_cli_json_format():
    # The corpus sits outside src/repro, so no rebase applies: the
    # corpus root must be the scan root, since the package prefix
    # (gpu/, sim/) in the rel path is what scopes R2/R4.
    proc = _reprolint("--format", "json", str(FIXTURES))
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["files_checked"] == 9
    rules_seen = {f["rule"] for f in payload["findings"]}
    assert rules_seen == {"R0", "R1", "R2", "R3", "R4", "R5"}
    assert all(s["reason"] for s in payload["suppressed"])


def test_cli_list_rules():
    proc = _reprolint("--list-rules")
    assert proc.returncode == 0
    for rid in list(RULES) + [PRAGMA_RULE_ID]:
        assert rid in proc.stdout


def test_repro_lint_subcommand():
    from repro.cli import main as repro_main

    assert repro_main(["lint"]) == 0  # defaults to the clean src/repro tree
    assert repro_main(["lint", str(FIXTURES)]) == 1
    assert repro_main(["lint", "--list-rules"]) == 0
