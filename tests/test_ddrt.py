"""DDR-T protocol state-machine tests."""

import pytest

from repro.xpoint.ddrt import DdrTBus, TxnKind, TxnState


class TestLifecycle:
    def test_full_transaction(self):
        bus = DdrTBus()
        txn = bus.post(TxnKind.READ, 0x100, 0)
        bus.mark_ready(txn, 190_000)
        bus.begin_transfer(txn)
        bus.complete(txn, 200_000)
        assert txn.state is TxnState.COMPLETE
        assert txn.service_latency_ps == 200_000
        assert bus.completed == 1
        assert bus.outstanding == 0

    def test_mc_can_post_multiple_before_any_ready(self):
        """The asynchronous point of DDR-T: the controller moves on."""
        bus = DdrTBus()
        txns = [bus.post(TxnKind.READ, i, 0) for i in range(8)]
        assert bus.outstanding == 8
        for t in reversed(txns):  # ready out of order
            bus.mark_ready(t, 100 + t.txn_id)
        assert len(bus.ready_transactions()) == 8

    def test_ready_queue_is_oldest_first(self):
        bus = DdrTBus()
        a = bus.post(TxnKind.READ, 0, 0)
        b = bus.post(TxnKind.READ, 1, 0)
        bus.mark_ready(b, 50)
        bus.mark_ready(a, 100)
        assert bus.ready_transactions()[0] is b


class TestProtocolViolations:
    def test_credit_exhaustion(self):
        bus = DdrTBus(max_outstanding=2)
        bus.post(TxnKind.READ, 0, 0)
        bus.post(TxnKind.READ, 1, 0)
        with pytest.raises(RuntimeError):
            bus.post(TxnKind.READ, 2, 0)

    def test_transfer_before_ready_rejected(self):
        bus = DdrTBus()
        txn = bus.post(TxnKind.WRITE, 0, 0)
        with pytest.raises(RuntimeError):
            bus.begin_transfer(txn)

    def test_double_ready_rejected(self):
        bus = DdrTBus()
        txn = bus.post(TxnKind.READ, 0, 0)
        bus.mark_ready(txn, 10)
        with pytest.raises(RuntimeError):
            bus.mark_ready(txn, 20)

    def test_complete_without_transfer_rejected(self):
        bus = DdrTBus()
        txn = bus.post(TxnKind.READ, 0, 0)
        bus.mark_ready(txn, 10)
        with pytest.raises(RuntimeError):
            bus.complete(txn, 20)

    def test_time_travel_rejected(self):
        bus = DdrTBus()
        txn = bus.post(TxnKind.SWAP, 0, 1000)
        with pytest.raises(ValueError):
            bus.mark_ready(txn, 500)

    def test_latency_requires_completion(self):
        bus = DdrTBus()
        txn = bus.post(TxnKind.READ, 0, 0)
        with pytest.raises(ValueError):
            _ = txn.service_latency_ps
