"""Streaming trace pipeline: parity, edge cases, stages, memory.

The contract under test (DESIGN.md section 12): every producer and
consumer of warp accesses speaks the bounded-lookahead block iterator
(``TraceSource`` / ``WarpStream``), and the streamed path is
**bit-identical** to the materialized one — same access values, same
``RunResult`` fingerprints — while holding O(warps x block) memory.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.config import MemoryMode, default_config
from repro.harness import executor
from repro.harness.executor import RunConfig, SimulationJob, execute_job
from repro.workloads.registry import (
    REGISTRY,
    build_source,
    build_traces,
    get_workload_def,
)
from repro.workloads.source import (
    TraceSource,
    WarpStream,
    materialize,
)
from repro.workloads.trace import (
    FileTraceSource,
    TraceFormatError,
    TraceMeta,
    load_traces,
    save_stream,
)

ROOT = pathlib.Path(__file__).parent.parent
GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_fingerprints.json"

#: Small sizing shared by the parity sweep: big enough that chunked
#: generation crosses several block boundaries at ``block_ops=7``.
WARPS, ACCESSES = 6, 25


def _small_source(name, block_ops=7):
    defn = get_workload_def(name)
    cfg = default_config()
    return build_source(
        defn,
        defn.spec.scaled_footprint(cfg.scale_down),
        num_warps=WARPS,
        accesses_per_warp=ACCESSES,
        line_bytes=cfg.gpu.line_bytes,
        page_bytes=cfg.hetero.page_bytes,
        seed=7,
        block_ops=block_ops,
    )


def _small_traces(name):
    defn = get_workload_def(name)
    cfg = default_config()
    return build_traces(
        defn,
        defn.spec.scaled_footprint(cfg.scale_down),
        num_warps=WARPS,
        accesses_per_warp=ACCESSES,
        line_bytes=cfg.gpu.line_bytes,
        page_bytes=cfg.hetero.page_bytes,
        seed=7,
    )


# ---------------------------------------------------------------------------
# Streamed vs materialized parity — every registered family
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_streamed_equals_materialized(name):
    """materialize(build_source(...)) == build_traces(...), per warp.

    ``block_ops=7`` forces many small blocks (25 accesses -> 4 blocks
    per warp), so any RNG-order or chunk-boundary divergence between
    the streamed generators and the classic builders shows up.
    """
    classic = _small_traces(name)
    streamed = materialize(_small_source(name))
    assert len(streamed) == len(classic)
    for got, want in zip(streamed, classic):
        assert got.digest() == want.digest()
        assert got.tenant == want.tenant


def test_source_is_restreamable():
    """A second streams() call replays the identical trace."""
    source = _small_source("pagerank")
    first = [t.digest() for t in materialize(source)]
    second = [t.digest() for t in materialize(source)]
    assert first == second


def test_golden_jobs_streamed_parity(monkeypatch):
    """Forced streaming (threshold 0: spill + file replay) reproduces
    the checked-in golden fingerprints bit-identically."""
    golden = json.loads(GOLDEN.read_text())
    monkeypatch.setenv("REPRO_STREAM_OPS_THRESHOLD", "0")
    run = RunConfig(num_warps=24, accesses_per_warp=24)
    for key in ("Origin/pagerank/planar", "Ohm-BW/backp/two_level"):
        platform, workload, mode = key.split("/")
        result = execute_job(
            SimulationJob(platform, workload, MemoryMode(mode), run)
        )
        assert result.fingerprint() == golden[key]


# ---------------------------------------------------------------------------
# WarpStream edge cases
# ---------------------------------------------------------------------------


def test_empty_stream_reports_problem():
    stream = WarpStream(0, iter([]))
    assert stream.next_block() is None
    assert len(stream) == 0
    assert stream.well_formed()  # "ends without a single op"


def test_single_op_stream():
    stream = WarpStream(0, iter([([3], [128], [True])]))
    assert stream.next_block() == ([3], [128], [True])
    assert stream.next_block() is None
    assert len(stream) == 1
    assert not stream.well_formed()


def test_misaligned_block_truncates_to_aligned_prefix():
    problems = []
    stream = WarpStream(0, iter([([1, 2], [10, 20, 30], [False, False])]))
    stream.on_problem = lambda w, msg: problems.append((w, msg))
    gaps, addrs, writes = stream.next_block()
    assert len(gaps) == len(addrs) == len(writes) == 2
    assert problems and problems[0][0] == 0


def test_empty_warp_simulates_as_finished():
    """A source containing an empty warp (what `trace filter` leaves
    behind) runs: the empty warp retires nothing, the rest proceed."""
    from repro.core.platforms import PLATFORMS
    from repro.gpu.gpu import GpuModel

    class OneEmpty(TraceSource):
        num_warps = 2

        def blocks(self, warp_id):
            if warp_id == 0:
                return iter([])
            return iter([([0, 1], [0, 128], [False, True])])

    defn = get_workload_def("pagerank")
    cfg = default_config()
    result = GpuModel(PLATFORMS["Hetero"], cfg, defn.spec, OneEmpty()).run()
    assert result.instructions == 3  # gaps (0+1) + 2 memory ops


def test_early_termination_raises_with_unfinished_warps():
    from repro.core.platforms import PLATFORMS
    from repro.gpu.gpu import GpuModel

    defn = get_workload_def("pagerank")
    cfg = default_config()
    model = GpuModel(
        PLATFORMS["Hetero"], cfg, defn.spec, _small_source("pagerank")
    )
    with pytest.raises(RuntimeError, match="unfinished"):
        model.run(max_events=3)


# ---------------------------------------------------------------------------
# Chunked (v2) file round trip
# ---------------------------------------------------------------------------


def _meta(num_warps, workload="pagerank"):
    defn = get_workload_def(workload)
    return TraceMeta(
        workload=workload,
        platform="T",
        mode="planar",
        line_bytes=128,
        num_warps=num_warps,
        spec=defn.spec,
    )


@pytest.mark.parametrize("suffix", [".jsonl", ".jsonl.gz"])
def test_save_stream_round_trip(tmp_path, suffix):
    """save_stream -> FileTraceSource reproduces the exact trace,
    plain and gzipped."""
    path = tmp_path / f"t{suffix}"
    source = _small_source("pagerank")
    save_stream(path, _meta(WARPS), source)
    meta, traces = load_traces(path)
    classic = _small_traces("pagerank")
    assert meta.num_warps == WARPS
    assert [t.digest() for t in traces] == [t.digest() for t in classic]


def test_round_trip_preserves_tenants(tmp_path):
    path = tmp_path / "mix.jsonl"
    source = _small_source("mix_gemm_chase")
    save_stream(path, _meta(WARPS, "mix_gemm_chase"), source)
    _, traces = load_traces(path)
    classic = _small_traces("mix_gemm_chase")
    assert [t.tenant for t in traces] == [t.tenant for t in classic]
    assert any(t.tenant for t in traces)


def test_truncated_v2_file_is_an_error(tmp_path):
    path = tmp_path / "cut.jsonl"
    source = _small_source("pagerank")
    save_stream(path, _meta(WARPS), source)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[:-2]) + "\n")  # drop end markers
    with pytest.raises(TraceFormatError, match="no end marker"):
        materialize(FileTraceSource(path))


def test_stdin_source_is_single_shot(tmp_path):
    path = tmp_path / "t.jsonl"
    save_stream(path, _meta(WARPS), _small_source("pagerank"))
    with open(path) as fh:
        source = FileTraceSource(fh, label="<pipe>")
        source.streams()
        with pytest.raises(RuntimeError, match="once"):
            source.streams()


# ---------------------------------------------------------------------------
# Executor regimes: memo, spill, replay
# ---------------------------------------------------------------------------


def _fresh_stats(monkeypatch):
    for k in executor.TRACE_STATS:
        monkeypatch.setitem(executor.TRACE_STATS, k, 0)


def test_spill_built_once_then_reused(monkeypatch):
    _fresh_stats(monkeypatch)
    monkeypatch.setenv("REPRO_STREAM_OPS_THRESHOLD", "0")
    monkeypatch.setattr(executor, "_SPILL_FILES", {})
    run = RunConfig(num_warps=8, accesses_per_warp=16)
    job = SimulationJob("Hetero", "pagerank", MemoryMode.PLANAR, run)
    a = execute_job(job)
    b = execute_job(job)
    assert a.fingerprint() == b.fingerprint()
    assert executor.TRACE_STATS["spill_builds"] == 1
    assert executor.TRACE_STATS["spill_hits"] == 1


def test_small_jobs_use_the_memo(monkeypatch):
    _fresh_stats(monkeypatch)
    monkeypatch.setattr(executor, "_TRACE_MEMO", {})
    run = RunConfig(num_warps=8, accesses_per_warp=16)
    job = SimulationJob("Hetero", "pagerank", MemoryMode.PLANAR, run)
    execute_job(job)
    execute_job(job)
    assert executor.TRACE_STATS["memo_builds"] == 1
    assert executor.TRACE_STATS["memo_hits"] == 1


def test_trace_replay_streams_off_the_file(tmp_path, monkeypatch):
    _fresh_stats(monkeypatch)
    path = tmp_path / "replay.jsonl"
    save_stream(path, _meta(WARPS), _small_source("pagerank"))
    run = RunConfig(num_warps=WARPS, accesses_per_warp=ACCESSES)
    job = SimulationJob("Hetero", f"trace:{path}", MemoryMode.PLANAR, run)
    streamed = execute_job(job)
    assert executor.TRACE_STATS["replay_streams"] == 1
    # and the replay equals simulating the generated workload directly
    direct = execute_job(
        SimulationJob("Hetero", "pagerank", MemoryMode.PLANAR, run)
    )
    assert streamed.instructions == direct.instructions
    assert streamed.exec_time_ps == direct.exec_time_ps


# ---------------------------------------------------------------------------
# `repro trace` pipeline stages (subprocess, real pipes)
# ---------------------------------------------------------------------------


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return env


def _record(tmp_path):
    path = tmp_path / "rec.jsonl"
    save_stream(path, _meta(WARPS), _small_source("pagerank"))
    return path


def test_stage_pipeline_through_real_pipes(tmp_path):
    """cat | filter | remap | head | run --stdin-trace exits 0 and
    prints a fingerprint — the full composable-pipeline contract."""
    path = _record(tmp_path)
    shell = (
        f"{sys.executable} -m repro.cli trace cat {path}"
        f" | {sys.executable} -m repro.cli trace filter --warps 0-3"
        f" | {sys.executable} -m repro.cli trace remap --offset 4096 --wrap 1048576"
        f" | {sys.executable} -m repro.cli trace head --ops 10"
        f" | {sys.executable} -m repro.cli run --platform Hetero --stdin-trace"
    )
    proc = subprocess.run(
        ["sh", "-c", shell], capture_output=True, text=True, env=_cli_env()
    )
    assert proc.returncode == 0, proc.stderr
    assert "fingerprint" in proc.stdout


def test_cat_stdin_trace_reproduces_recorded_fingerprint(tmp_path):
    """Identity pipeline: cat piped into run --stdin-trace simulates
    the exact recorded stream (same fingerprint both invocations)."""
    path = _record(tmp_path)
    shell = (
        f"{sys.executable} -m repro.cli trace cat {path}"
        f" | {sys.executable} -m repro.cli run --platform Hetero --stdin-trace"
    )
    outs = []
    for _ in range(2):
        proc = subprocess.run(
            ["sh", "-c", shell], capture_output=True, text=True, env=_cli_env()
        )
        assert proc.returncode == 0, proc.stderr
        line = [l for l in proc.stdout.splitlines() if "fingerprint" in l]
        outs.append(line[0])
    assert outs[0] == outs[1]


def test_scale_repeat_multiplies_ops(tmp_path):
    path = _record(tmp_path)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "trace", "scale",
         "--repeat", "3", str(path)],
        capture_output=True, text=True, env=_cli_env(),
    )
    assert proc.returncode == 0, proc.stderr
    out = tmp_path / "x3.jsonl"
    out.write_text(proc.stdout)
    _, traces = load_traces(out)
    assert sum(len(t) for t in traces) == 3 * WARPS * ACCESSES


def test_filter_drops_warps_but_keeps_count(tmp_path):
    path = _record(tmp_path)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "trace", "filter",
         "--warps", "0,2", str(path)],
        capture_output=True, text=True, env=_cli_env(),
    )
    assert proc.returncode == 0, proc.stderr
    out = tmp_path / "f.jsonl"
    out.write_text(proc.stdout)
    meta, traces = load_traces(out)
    assert meta.num_warps == WARPS  # SM placement preserved
    assert [len(t) for t in traces] == [
        ACCESSES if w in (0, 2) else 0 for w in range(WARPS)
    ]


# ---------------------------------------------------------------------------
# Memory: streaming consumes less than materializing
# ---------------------------------------------------------------------------


def test_streaming_peak_allocation_below_materialized():
    """tracemalloc peak of block-by-block consumption sits well under
    the peak of materializing the same trace (32 warps x 2000 ops)."""
    import tracemalloc

    def measure(fn):
        tracemalloc.start()
        try:
            fn()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    defn = get_workload_def("stream_scan")
    cfg = default_config()
    kwargs = dict(
        num_warps=32,
        accesses_per_warp=2000,
        line_bytes=cfg.gpu.line_bytes,
        page_bytes=cfg.hetero.page_bytes,
        seed=7,
    )
    footprint = defn.spec.scaled_footprint(cfg.scale_down)

    def streamed():
        for stream in build_source(defn, footprint, **kwargs).streams():
            while stream.next_block() is not None:
                pass

    def materialized():
        build_traces(defn, footprint, **kwargs)

    peak_streamed = measure(streamed)
    peak_materialized = measure(materialized)
    assert peak_streamed < 0.8 * peak_materialized, (
        f"streamed peak {peak_streamed} not below materialized "
        f"{peak_materialized}"
    )


def test_filtered_trace_validates_cleanly(tmp_path):
    """v2-declared empty warps (filter output) pass strict validation;
    generated empty streams still flag a problem."""
    from repro.core.platforms import PLATFORMS
    from repro.gpu.gpu import GpuModel
    from repro.sim.audit import Auditor

    path = tmp_path / "f.jsonl"
    save_stream(path, _meta(WARPS), _small_source("pagerank"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "trace", "filter",
         "--warps", "0-2", str(path)],
        capture_output=True, text=True, env=_cli_env(),
    )
    assert proc.returncode == 0, proc.stderr
    filtered = tmp_path / "half.jsonl"
    filtered.write_text(proc.stdout)
    defn = get_workload_def("pagerank")
    cfg = default_config()
    auditor = Auditor(strict=True)
    GpuModel(
        PLATFORMS["Hetero"], cfg, defn.spec,
        FileTraceSource(filtered), auditor=auditor,
    ).run()  # must not raise: emptiness was declared by end markers
