"""R5 fixture: lambdas and closure-local functions cannot cross the
executor pickle boundary (SimulationJob) or be re-resolved by name in
workers (ExperimentSpec / WorkloadDef registry entries)."""


def module_jobs(run_cfg):
    """Module-level functions pickle by reference: always fine."""
    return ()


JOBS = (
    SimulationJob("ohm-bw", "gemm", post=lambda r: r),  # EXPECT: R5
    SimulationJob("ohm-bw", "spmv", post=module_jobs),
)


def build_specs():
    def local_jobs(run_cfg):
        return ()

    bad = ExperimentSpec(name="fig7", jobs=local_jobs)  # EXPECT: R5
    good = ExperimentSpec(name="fig8", jobs=module_jobs)
    also_good = WorkloadDef(name="gemm", source=module_jobs)
    return bad, good, also_good
