"""R3 non-trigger: harness/ is determinism-exempt — leases, cache GC
and perf history legitimately read the wall clock, and none of it
feeds a result fingerprint."""

import time


def lease_heartbeat():
    return time.time()


def lease_deadline(ttl_s):
    return time.monotonic() + ttl_s
