"""Invalid-pragma fixture: reason-less, unknown-rule and allow(R0)
pragmas are R0 findings in their own right and suppress nothing — the
underlying R2 findings stay live."""


class NoReason:  # reprolint: allow(R2)
    pass


class UnknownRule:  # reprolint: allow(R9) the rule id does not exist
    pass


class MetaSuppress:  # reprolint: allow(R0) pragma hygiene is never suppressible
    pass
