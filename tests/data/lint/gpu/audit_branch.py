"""R4 fixture: auditor conditionals are construction/post-run time
only (DESIGN.md section 10.2) — a per-event `if self.auditor` branch is
exactly the cost the guarded-handle pattern removes."""


class ChannelSlice:
    __slots__ = ("auditor", "served")

    def __init__(self, auditor):
        # Construction-time guard: this is where the audit handle is
        # installed, so the branch is sanctioned here.
        if auditor is not None:
            self.auditor = auditor
        else:
            self.auditor = None
        self.served = 0

    def serve(self, addr):
        if self.auditor is not None:  # EXPECT: R4
            self.auditor.record(addr)
        self.served += 1
        return self.served

    def pressure(self):
        return 1 if self.auditor else 0  # EXPECT: R4

    def audit(self, auditor):
        # Post-run audit hooks are construction-class by name.
        if auditor.strict:
            raise RuntimeError("strict audit failed")

    def _install_probes(self, auditor):
        # _install* helpers run once at wiring time.
        if auditor is not None:
            self.auditor = auditor
