"""R2 fixture: gpu/ is a slotted package, so every class here either
carries __slots__ (directly or via @dataclass(slots=True)), inherits
from a structurally exempt base, or is a finding."""

import enum
from dataclasses import dataclass


class BareRecord:  # EXPECT: R2
    def __init__(self):
        self.x = 1


class SlottedRecord:
    __slots__ = ("x",)

    def __init__(self):
        self.x = 1


@dataclass(slots=True)
class SlottedData:
    x: int = 0


@dataclass
class PlainData:  # EXPECT: R2
    x: int = 0


class ModelError(RuntimeError):
    """Exceptions never sit on the per-event path: exempt."""


class Kind(enum.Enum):
    READ = 1
    WRITE = 2
