"""Valid-pragma fixture: every finding here is suppressed with a
reasoned allow(...) pragma, so the file is clean and the suppressions
show up (with their reasons) in the report's suppressed list."""


class DictSeam:  # reprolint: allow(R2) fixture: the audit wrapper rebinds a bound method per instance
    def __init__(self):
        self.window = None


class Probe:  # reprolint: allow(R2) fixture: the fast path probes the instance __dict__ for uniformity
    def tick(self):
        if self.auditor:  # reprolint: allow(R4) fixture: branch kept to prove multi-rule files suppress per line
            return 1
        return 0
