"""R1 fixture: this rel path matches the registered hot module sim/engine.py.

Every formatting construct below is either hot (EXPECT: R1) or sits in
one of the documented cold positions: module level, a dunder method, or
inside a ``raise`` statement.
"""

BANNER = f"engine build {1 + 1}"  # module level: cold


class Engine:
    __slots__ = ("key", "count")

    def __init__(self, name):
        # Construction-time key pre-formatting is exactly what Rule 1
        # prescribes — dunders are cold.
        self.key = f"{name}.events"
        self.count = 0

    def run(self, n):
        for i in range(n):
            k = f"{self.key}.{i}"  # EXPECT: R1
            m = "count: %d" % i  # EXPECT: R1
            c = "{}.suffix".format(i)  # EXPECT: R1
            j = self.key + ".tail"  # EXPECT: R1
            self.count += len(k) + len(m) + len(c) + len(j)
        if n < 0:
            raise ValueError(f"bad event count {n}")  # raise path: cold

    def snapshot(self):
        return "%s done" % self.key  # EXPECT: R1
