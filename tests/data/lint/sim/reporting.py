"""R1 non-trigger: same constructs as engine.py, but this module is not
in the hot registry, so formatting here is free.  Functions only — a
class would owe __slots__ under R2 (sim/ is a slotted package)."""


def describe(key, i):
    a = f"{key}.{i}"
    b = "count: %d" % i
    c = "{}.suffix".format(i)
    d = key + ".tail"
    return a, b, c, d
