"""R3 fixture: wall-clock and entropy reads vs. the seeded-instance
discipline.  workloads/ is outside the harness exemption, so the
golden-fingerprint contract applies."""

import os
import random
import time
import uuid
from datetime import datetime
from time import monotonic  # EXPECT: R3

import numpy as np


def stamp():
    t = time.time()  # EXPECT: R3
    now = datetime.now()  # EXPECT: R3
    raw = os.urandom(8)  # EXPECT: R3
    tag = uuid.uuid4()  # EXPECT: R3
    x = random.random()  # EXPECT: R3
    return t, now, raw, tag, x, monotonic


def seeded(seed):
    # The sanctioned forms: seeded instances, never the process-global
    # RNG or the wall clock.
    rng = random.Random(seed)
    nrng = np.random.default_rng(seed)
    return rng.random() + float(nrng.random())
