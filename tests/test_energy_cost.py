"""Energy-accounting and cost-model tests (Fig. 19, Table III, Fig. 21)."""

import pytest

from repro.config import MemoryMode, default_config
from repro.cost.model import (
    CostModel,
    K80_LAUNCH_PRICE,
    PLANAR_BOM,
    TWO_LEVEL_BOM,
)
from repro.energy.accounting import EnergyModel
from repro.energy.dram_power import DramPowerModel
from repro.energy.xpoint_power import XPointPowerModel
from repro.energy.optical_power import OpticalEnergyModel


class TestPowerModels:
    def test_dram_dynamic(self):
        m = DramPowerModel(activate_nj=2.0, access_nj=1.0)
        assert m.dynamic_j(10, 100) == pytest.approx(120e-9)

    def test_dram_static_scales_with_time(self):
        m = DramPowerModel(static_w_per_device=0.05)
        assert m.static_j(6, 1e12) == pytest.approx(0.3)  # 1 s x 0.3 W

    def test_xpoint_write_costs_more(self):
        m = XPointPowerModel()
        assert m.dynamic_j(0, 10) > m.dynamic_j(10, 0)

    def test_laser_energy_scales_with_platform(self):
        m = OpticalEnergyModel(default_config().optical)
        assert m.laser_j(4.0, 1e9) == pytest.approx(4 * m.laser_j(1.0, 1e9))


class TestEnergyAccounting:
    def _run(self, platform_name, mode=MemoryMode.PLANAR):
        from repro import Runner, RunConfig

        runner = Runner(RunConfig(num_warps=12, accesses_per_warp=12))
        res = runner.run(platform_name, "backp", mode)
        cfg = default_config(mode)
        return EnergyModel(cfg).breakdown(runner.platform(platform_name), res)

    def test_electrical_platform_has_no_optical_energy(self):
        b = self._run("Hetero")
        assert b.electrical_j > 0
        assert b.optical_j == 0

    def test_optical_platform_has_no_electrical_energy(self):
        b = self._run("Ohm-base")
        assert b.optical_j > 0
        assert b.electrical_j == 0

    def test_hetero_uses_xpoint_energy(self):
        b = self._run("Ohm-base")
        assert b.xpoint_j > 0

    def test_oracle_has_no_xpoint_energy(self):
        b = self._run("Oracle")
        assert b.xpoint_j == 0

    def test_breakdown_dict_keys(self):
        b = self._run("Ohm-base")
        assert set(b.as_dict()) == {
            "XPoint", "DRAM dynamic", "DRAM static", "Opti-network", "Elec-channel",
        }
        assert b.total_j == pytest.approx(sum(b.as_dict().values()))

    def _mixed_result(self, platform_name):
        """A synthetic RunResult carrying BOTH channel families' energy."""
        from repro.gpu.gpu import RunResult

        return RunResult(
            platform=platform_name,
            workload="synthetic",
            mode="planar",
            instructions=1000,
            exec_time_ps=1_000_000,
            demand_requests=10,
            mean_mem_latency_ps=100.0,
            counters={
                "echan0.energy_pj": 2_000_000.0,  # 2 uJ electrical
                "ochan0.energy_pj": 1_000_000.0,  # 1 uJ optical
                "ochan0.mrr_tuning_pj": 500_000.0,
            },
        )

    def test_electrical_energy_not_dropped_on_optical_platform(self):
        """Regression: the old ``else`` branch silently discarded any
        ``echan.*.energy_pj`` accumulated on a ``uses_optical`` platform;
        both sides must now be accounted from whichever counters exist."""
        from repro import Runner

        runner = Runner()
        cfg = default_config(MemoryMode.PLANAR)
        b = EnergyModel(cfg).breakdown(
            runner.platform("Ohm-base"), self._mixed_result("Ohm-base")
        )
        assert b.electrical_j == pytest.approx(2e-6)
        assert b.optical_j > 1.5e-6  # signalling + tuning + laser

    def test_optical_counters_accounted_on_electrical_platform(self):
        from repro import Runner

        runner = Runner()
        cfg = default_config(MemoryMode.PLANAR)
        b = EnergyModel(cfg).breakdown(
            runner.platform("Hetero"), self._mixed_result("Hetero")
        )
        assert b.electrical_j == pytest.approx(2e-6)
        # Signalling energy from the stray optical counters is kept; the
        # laser term stays zero (laser_scale is 0 off-optical).
        assert b.optical_j == pytest.approx(1.5e-6)


class TestTable3:
    def test_planar_device_prices(self):
        assert PLANAR_BOM.dram_price == 140.0
        assert PLANAR_BOM.xpoint_price == 125.0

    def test_two_level_device_prices(self):
        assert TWO_LEVEL_BOM.dram_price == 70.0
        assert TWO_LEVEL_BOM.xpoint_price == 499.0

    def test_mrr_counts_from_table3(self):
        assert PLANAR_BOM.mrr_base.modulators == 2112
        assert PLANAR_BOM.mrr_bw.detectors == 3136
        assert TWO_LEVEL_BOM.mrr_bw.detectors == 4928

    def test_ohm_bw_planar_cost_increase_near_7_6_percent(self):
        """Paper: planar Ohm-BW adds 7.6 % to the $5k K80 price."""
        cost = CostModel(MemoryMode.PLANAR)
        assert cost.cost_increase_fraction("Ohm-BW") == pytest.approx(0.076, abs=0.01)

    def test_ohm_bw_two_level_cost_increase_near_13_5_percent(self):
        cost = CostModel(MemoryMode.TWO_LEVEL)
        assert cost.cost_increase_fraction("Ohm-BW") == pytest.approx(0.135, abs=0.01)

    def test_bw_uses_more_mrrs_than_base(self):
        """Paper: Ohm-BW employs ~41 % more MRRs than Ohm-base."""
        increases = []
        for bom in (PLANAR_BOM, TWO_LEVEL_BOM):
            increases.append(bom.mrr_bw.total / bom.mrr_base.total - 1.0)
        assert sum(increases) / 2 == pytest.approx(0.41, abs=0.03)

    def test_origin_cost_is_launch_price(self):
        cost = CostModel(MemoryMode.PLANAR)
        assert cost.platform_cost("Origin") == K80_LAUNCH_PRICE

    def test_oracle_costs_more_than_ohm_bw(self):
        for mode in MemoryMode:
            cost = CostModel(mode)
            assert cost.platform_cost("Oracle") > cost.platform_cost("Ohm-BW")

    def test_cost_performance_normalization(self):
        cost = CostModel(MemoryMode.PLANAR)
        # Equal performance: the cheaper platform wins on CP.
        assert cost.cost_performance("Ohm-BW", 1.0) < cost.cost_performance("Origin", 1.0)
