"""reprolint core: findings, pragmas, the rule registry and the runner.

The linter is a plain ``ast`` pass — no third-party dependencies — so
it runs anywhere the repo checks out, including the minimal CI lint
job.  Repo-specific knowledge (which modules are hot paths, which
classes may skip ``__slots__``) lives in :mod:`tools.reprolint.config`;
the rule implementations live in :mod:`tools.reprolint.rules`.

Suppression grammar (one physical line, same line as the finding)::

    # reprolint: allow(R2) the audit seam rebinds transfer_window per instance
    # reprolint: allow(R1,R3) <reason covering both rules>

The reason is mandatory: an ``allow(...)`` pragma without one is itself
a finding (rule ``R0``) and suppresses nothing, so every exception in
the tree carries its justification next to the code it excuses.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

# Rule R0 is the pragma-hygiene meta rule: malformed suppressions are
# findings in their own right and can never be suppressed themselves.
PRAGMA_RULE_ID = "R0"

_PRAGMA_RE = re.compile(
    r"#\s*reprolint:\s*allow\(\s*([A-Za-z0-9_,\s-]*)\s*\)\s*(.*)$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str  # scan-root-relative posix path
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line} {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class Pragma:
    """A parsed ``# reprolint: allow(...)`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str


@dataclass
class ParsedFile:
    """One source file, parsed once and shared by every rule."""

    path: Path  # absolute
    rel: str  # posix path relative to the scan root (e.g. "sim/engine.py")
    source: str
    tree: ast.AST
    pragmas: List[Pragma]
    pragma_errors: List[Finding]
    # id(node) -> parent node, for ancestor walks (raise-exemption etc.)
    parents: Dict[int, ast.AST] = field(default_factory=dict)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parents.get(id(node))
        while cur is not None:
            yield cur
            cur = self.parents.get(id(cur))


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    id: str
    name: str
    summary: str
    design_ref: str  # which DESIGN.md rule this enforces ("§7 Rule 1", ...)
    check: Callable[["LintContext"], Iterable[Finding]]


RULES: Dict[str, Rule] = {}


def rule(id: str, name: str, summary: str, design_ref: str):
    """Class-free registration decorator for rule check functions."""

    def wrap(fn: Callable[["LintContext"], Iterable[Finding]]):
        if id in RULES:
            raise ValueError(f"duplicate rule id {id!r}")
        RULES[id] = Rule(id=id, name=name, summary=summary,
                         design_ref=design_ref, check=fn)
        return fn

    return wrap


@dataclass
class LintContext:
    """Everything a rule check sees: the parsed file plus the config."""

    file: ParsedFile
    config: "LintConfig"  # forward ref into tools.reprolint.config


def _parse_pragmas(
    source: str, rel: str, known_rules: Iterable[str]
) -> Tuple[List[Pragma], List[Finding]]:
    """Extract allow-pragmas from comments via tokenize (never from
    string literals), rejecting reason-less and unknown-rule pragmas."""
    pragmas: List[Pragma] = []
    errors: List[Finding] = []
    known = set(known_rules)
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:
        return pragmas, errors  # the parse-error finding covers it
    for line, text in comments:
        m = _PRAGMA_RE.search(text)
        if m is None:
            if "reprolint" in text and "allow" in text:
                errors.append(Finding(
                    rel, line, PRAGMA_RULE_ID,
                    "malformed reprolint pragma (expected "
                    "'# reprolint: allow(<rules>) <reason>')",
                ))
            continue
        ids = tuple(r.strip() for r in m.group(1).split(",") if r.strip())
        reason = m.group(2).strip()
        bad = False
        if not ids:
            errors.append(Finding(
                rel, line, PRAGMA_RULE_ID,
                "pragma allows no rules: allow() needs at least one rule id",
            ))
            bad = True
        for rid in ids:
            if rid == PRAGMA_RULE_ID:
                errors.append(Finding(
                    rel, line, PRAGMA_RULE_ID,
                    "rule R0 (pragma hygiene) cannot be suppressed",
                ))
                bad = True
            elif rid not in known:
                errors.append(Finding(
                    rel, line, PRAGMA_RULE_ID,
                    f"pragma names unknown rule {rid!r} "
                    f"(known: {', '.join(sorted(known))})",
                ))
                bad = True
        if not reason:
            errors.append(Finding(
                rel, line, PRAGMA_RULE_ID,
                f"pragma allow({m.group(1).strip()}) has no reason — "
                "every suppression must say why",
            ))
            bad = True
        if not bad:
            pragmas.append(Pragma(line=line, rules=ids, reason=reason))
    return pragmas, errors


def parse_file(path: Path, rel: str) -> Tuple[Optional[ParsedFile], List[Finding]]:
    """Parse one file; on a syntax error return a parse finding instead."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, [Finding(
            rel, exc.lineno or 1, PRAGMA_RULE_ID,
            f"file does not parse: {exc.msg}",
        )]
    pragmas, pragma_errors = _parse_pragmas(source, rel, RULES.keys())
    parsed = ParsedFile(
        path=path, rel=rel, source=source, tree=tree,
        pragmas=pragmas, pragma_errors=pragma_errors,
    )
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parsed.parents[id(child)] = parent
    return parsed, pragma_errors


@dataclass
class LintReport:
    """The runner's result: what fired, what was excused, what was seen."""

    findings: List[Finding]  # unsuppressed, sorted
    suppressed: List[Tuple[Finding, str]]  # (finding, reason)
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_source_files(roots: Iterable[Path]) -> Iterator[Tuple[Path, Path]]:
    """Yield (absolute path, scan root) for every .py under the roots."""
    for root in roots:
        root = root.resolve()
        if root.is_file():
            yield root, root.parent
            continue
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            yield path, root


def run_lint(
    roots: Iterable[Path],
    config: Optional["LintConfig"] = None,
    select: Optional[Iterable[str]] = None,
    rel_to: Optional[Path] = None,
) -> LintReport:
    """Lint every .py file under the roots and fold in suppressions.

    ``rel_to`` rebases rel paths for files underneath it: the package
    prefix (``sim/``, ``gpu/``) is what scopes R1/R2/R4, so scanning a
    subtree of the real source tree must not strip it.  Files outside
    ``rel_to`` stay relative to their scan root (the fixture corpus).
    """
    from tools.reprolint import rules as _rules  # noqa: F401  (registers rules)
    from tools.reprolint.config import LintConfig

    cfg = config if config is not None else LintConfig()
    selected = set(select) if select is not None else None
    findings: List[Finding] = []
    suppressed: List[Tuple[Finding, str]] = []
    files = 0

    for path, root in iter_source_files(roots):
        files += 1
        base = root
        if rel_to is not None:
            try:
                path.relative_to(rel_to)
            except ValueError:
                pass
            else:
                base = rel_to
        rel = path.relative_to(base).as_posix()
        parsed, errors = parse_file(path, rel)
        raw: List[Finding] = list(errors)
        if parsed is not None:
            ctx = LintContext(file=parsed, config=cfg)
            for r in RULES.values():
                if selected is not None and r.id not in selected:
                    continue
                raw.extend(r.check(ctx))
            reasons = {
                (p.line, rid): p.reason
                for p in parsed.pragmas
                for rid in p.rules
            }
        else:
            reasons = {}
        for f in raw:
            reason = reasons.get((f.line, f.rule))
            if reason is not None and f.rule != PRAGMA_RULE_ID:
                suppressed.append((f, reason))
            else:
                findings.append(f)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    suppressed.sort(key=lambda fr: (fr[0].path, fr[0].line, fr[0].rule))
    return LintReport(findings=findings, suppressed=suppressed,
                      files_checked=files)
