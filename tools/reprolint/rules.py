"""The five reprolint rules (R1–R5).

Each rule is a function over a :class:`~tools.reprolint.core.LintContext`
yielding :class:`~tools.reprolint.core.Finding`s; registration happens
via the :func:`~tools.reprolint.core.rule` decorator, which is what the
CLI's ``--list-rules`` and DESIGN.md §15's catalogue check walk.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from tools.reprolint.core import Finding, LintContext, rule

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _enclosing_functions(ctx: LintContext, node: ast.AST) -> List[ast.AST]:
    """Innermost-first chain of functions the node sits inside."""
    return [a for a in ctx.file.ancestors(node) if isinstance(a, _FUNC_NODES)]


def _qualname(ctx: LintContext, func: ast.AST) -> str:
    parts = [func.name]
    for anc in ctx.file.ancestors(func):
        if isinstance(anc, _FUNC_NODES + (ast.ClassDef,)):
            parts.append(anc.name)
    return ".".join(reversed(parts))


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _is_str_literal(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant) and isinstance(node.value, str)) \
        or isinstance(node, ast.JoinedStr)


# --------------------------------------------------------------------------
@rule(
    "R1", "hot-path-format",
    "no f-strings / % / .format() / string concatenation inside "
    "registered hot-path functions (keys are pre-formatted at "
    "construction; error paths inside `raise` are exempt)",
    "§7 Rule 1",
)
def check_hot_path_format(ctx: LintContext) -> Iterator[Finding]:
    cfg = ctx.config
    rel = ctx.file.rel
    if not cfg.is_hot(rel):
        return
    extra_cold = cfg.extra_cold(rel)

    def is_cold(node: ast.AST) -> bool:
        funcs = _enclosing_functions(ctx, node)
        if not funcs:
            return True  # module level: constants, one-time key tables
        for f in funcs:
            if _is_dunder(f.name) or _qualname(ctx, f) in extra_cold:
                return True
        # An error path aborts the run — formatting there never costs
        # an event (§7: "banned from event paths").
        return any(isinstance(a, ast.Raise) for a in ctx.file.ancestors(node))

    def hot_fn(node: ast.AST) -> str:
        funcs = _enclosing_functions(ctx, node)
        return _qualname(ctx, funcs[0]) if funcs else "<module>"

    for node in ast.walk(ctx.file.tree):
        if isinstance(node, ast.JoinedStr):
            # Only the outermost f-string of a nest reports.
            if any(isinstance(a, ast.JoinedStr) for a in ctx.file.ancestors(node)):
                continue
            if not is_cold(node):
                yield Finding(rel, node.lineno, "R1",
                              f"f-string in hot-path function {hot_fn(node)}()"
                              " — pre-format the key at construction")
        elif isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Mod) and _is_str_literal(node.left):
                if not is_cold(node):
                    yield Finding(rel, node.lineno, "R1",
                                  f"%-formatting in hot-path function "
                                  f"{hot_fn(node)}()")
            elif isinstance(node.op, ast.Add) and (
                _is_str_literal(node.left) or _is_str_literal(node.right)
            ):
                if not is_cold(node):
                    yield Finding(rel, node.lineno, "R1",
                                  f"string concatenation in hot-path "
                                  f"function {hot_fn(node)}()")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "format" \
                    and _is_str_literal(func.value):
                if not is_cold(node):
                    yield Finding(rel, node.lineno, "R1",
                                  f".format() in hot-path function "
                                  f"{hot_fn(node)}()")


# --------------------------------------------------------------------------
def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        dotted = _dotted(base)
        if dotted is not None:
            names.append(dotted.rsplit(".", 1)[-1])
    return names


def _has_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for t in targets:
            if isinstance(t, ast.Name) and t.id == "__slots__":
                return True
    return False


def _is_slotted_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        dotted = _dotted(deco.func)
        if dotted is None or dotted.rsplit(".", 1)[-1] != "dataclass":
            continue
        for kw in deco.keywords:
            if kw.arg == "slots" and isinstance(kw.value, ast.Constant) \
                    and kw.value.value is True:
                return True
    return False


@rule(
    "R2", "slotted-classes",
    "every class in the model packages defines __slots__ (directly or "
    "via @dataclass(slots=True)); exceptions / enums / Protocols are "
    "structurally exempt, instance-__dict__ seams carry a pragma",
    "§7 Rules 2–3",
)
def check_slotted_classes(ctx: LintContext) -> Iterator[Finding]:
    cfg = ctx.config
    rel = ctx.file.rel
    if not cfg.in_packages(rel, cfg.slotted_packages):
        return
    for node in ast.walk(ctx.file.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if _has_slots(node) or _is_slotted_dataclass(node):
            continue
        bases = _base_names(node)
        if any(
            b in cfg.exempt_base_names
            or b in ("Exception", "BaseException")
            or b.endswith(("Error", "Exception", "Warning"))
            for b in bases
        ):
            continue
        yield Finding(rel, node.lineno, "R2",
                      f"class {node.name} has no __slots__ — add them, use "
                      "@dataclass(slots=True), or pragma the __dict__ seam")


# --------------------------------------------------------------------------
@rule(
    "R3", "determinism",
    "no wall-clock / entropy reads (time.time, datetime.now, "
    "os.urandom, uuid.*) and no process-global random.* calls — "
    "randomness flows through seeded random.Random / "
    "np.random.default_rng instances only",
    "golden-fingerprint contract (§10, tests/test_golden_fingerprints.py)",
)
def check_determinism(ctx: LintContext) -> Iterator[Finding]:
    cfg = ctx.config
    rel = ctx.file.rel
    if cfg.determinism_exempt(rel):
        return
    for node in ast.walk(ctx.file.tree):
        if isinstance(node, ast.Call):
            chain = _dotted(node.func)
            if chain is None:
                continue
            for tail in cfg.wall_clock_tails:
                if chain == tail or chain.endswith("." + tail):
                    yield Finding(rel, node.lineno, "R3",
                                  f"wall-clock/entropy call {chain}() breaks "
                                  "bit-identical reproduction")
                    break
            else:
                root, _, rest = chain.partition(".")
                if rest and root in cfg.entropy_modules:
                    yield Finding(rel, node.lineno, "R3",
                                  f"entropy call {chain}() breaks "
                                  "bit-identical reproduction")
                elif root == "random" and rest:
                    attr = rest.split(".", 1)[0]
                    if attr not in cfg.random_allowed_attrs:
                        yield Finding(
                            rel, node.lineno, "R3",
                            f"process-global RNG call {chain}() — construct "
                            "a seeded random.Random instance instead")
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            banned = cfg.banned_from_imports.get(node.module or "")
            if node.module in cfg.banned_from_imports:
                for alias in node.names:
                    if banned is None or alias.name in banned or alias.name == "*":
                        yield Finding(
                            rel, node.lineno, "R3",
                            f"from {node.module} import {alias.name} hides a "
                            "non-deterministic call from the linter — use the "
                            "qualified module form or a seeded instance")


# --------------------------------------------------------------------------
def _mentions_auditor(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "auditor" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "auditor" in sub.attr.lower():
            return True
    return False


@rule(
    "R4", "audit-placement",
    "no auditor conditionals (`if self.auditor ...`) inside per-event "
    "methods — audit handles are installed at construction, so the "
    "disabled path carries zero per-event branches",
    "§10.2",
)
def check_audit_placement(ctx: LintContext) -> Iterator[Finding]:
    cfg = ctx.config
    rel = ctx.file.rel
    if not cfg.in_packages(rel, cfg.audit_scoped_packages):
        return
    if rel in cfg.audit_exempt_files:
        return

    def construction_time(node: ast.AST) -> bool:
        funcs = _enclosing_functions(ctx, node)
        if not funcs:
            return True  # module/class level
        for f in funcs:
            name = f.name
            if name in cfg.construction_names or _is_dunder(name) \
                    or name.startswith(cfg.construction_prefixes):
                return True
        return False

    for node in ast.walk(ctx.file.tree):
        if not isinstance(node, (ast.If, ast.IfExp)):
            continue
        if not _mentions_auditor(node.test):
            continue
        if construction_time(node):
            continue
        funcs = _enclosing_functions(ctx, node)
        where = _qualname(ctx, funcs[0]) if funcs else "<module>"
        yield Finding(rel, node.lineno, "R4",
                      f"auditor conditional in per-event method {where}() — "
                      "install the audit handle at construction (§10.2)")


# --------------------------------------------------------------------------
@rule(
    "R5", "pickle-boundary",
    "no lambdas or closure-local functions in objects that cross the "
    "executor pickle boundary (SimulationJob) or are re-resolved by "
    "name in workers (ExperimentSpec / WorkloadDef / ScenarioSpec "
    "registry entries)",
    "§3 executor contract (picklable jobs, importable callables)",
)
def check_pickle_boundary(ctx: LintContext) -> Iterator[Finding]:
    cfg = ctx.config
    rel = ctx.file.rel

    # Map each function to the names of functions defined directly
    # inside it (closure-local defs).
    nested: Dict[int, Set[str]] = {}
    for node in ast.walk(ctx.file.tree):
        if isinstance(node, _FUNC_NODES):
            funcs = _enclosing_functions(ctx, node)
            if funcs:
                nested.setdefault(id(funcs[0]), set()).add(node.name)

    for node in ast.walk(ctx.file.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        ctor = dotted.rsplit(".", 1)[-1]
        if ctor not in cfg.pickle_boundary_calls:
            continue
        local_names: Set[str] = set()
        for f in _enclosing_functions(ctx, node):
            local_names |= nested.get(id(f), set())
        values = list(node.args) + [kw.value for kw in node.keywords]
        for value in values:
            for sub in ast.walk(value):
                if isinstance(sub, ast.Lambda):
                    yield Finding(
                        rel, sub.lineno, "R5",
                        f"lambda inside {ctor}(...) cannot cross the "
                        "executor pickle boundary — use a named "
                        "module-level function")
                elif isinstance(sub, ast.Name) and sub.id in local_names:
                    yield Finding(
                        rel, sub.lineno, "R5",
                        f"closure-local function {sub.id!r} inside "
                        f"{ctor}(...) cannot cross the executor pickle "
                        "boundary — hoist it to module level")
