"""The repo-specific rule configuration: what reprolint knows about us.

This module is the *registry* the ISSUE/DESIGN.md rules talk about —
which modules are registered hot paths (R1), which base classes excuse
a slotless class (R2), which calls are wall-clock/entropy (R3), which
method names count as construction time (R4), and which constructors
build objects that cross the executor pickle boundary (R5).

Everything is carried on a :class:`LintConfig` value so the test suite
can lint fixture files under a synthetic configuration; the module
constants below are the production defaults for ``src/repro``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

# --------------------------------------------------------------------------
# R1 — registered hot paths (DESIGN.md §7 Rule 1).
#
# A module listed here is hot *everywhere* except:
#   * dunder methods (``__init__`` and friends): key pre-formatting at
#     construction is exactly what Rule 1 prescribes;
#   * module level (constants, docstrings);
#   * formatting inside a ``raise`` statement: an error path aborts the
#     run, so it never executes per event;
#   * qualnames listed in the module's extra-cold set.
#
# The set mirrors §7's named loops: the engine drain, the fused warp
# step, the cache probe, the channel transfer_window paths, the DRAM
# device access path, the SM, and the XPoint controller/slice serve
# paths they feed.
HOT_MODULES: Dict[str, FrozenSet[str]] = {
    "sim/engine.py": frozenset(),
    "gpu/warp.py": frozenset(),
    "gpu/cache.py": frozenset(),
    "gpu/sm.py": frozenset(),
    "gpu/interconnect.py": frozenset(),
    "dram/device.py": frozenset(),
    "channel/base.py": frozenset(),
    "channel/electrical.py": frozenset(),
    "optical/channel.py": frozenset(),
    "xpoint/controller.py": frozenset(),
    "core/slices.py": frozenset(),
    "core/memsystem.py": frozenset(),
}

# --------------------------------------------------------------------------
# R2 — slotted classes (DESIGN.md §7 Rules 2–3).
#
# Packages whose classes must carry ``__slots__`` (directly or via
# ``@dataclass(slots=True)``).  Exceptions, enums and Protocols are
# structurally excused; anything else needs an inline pragma with a
# reason (the instance-``__dict__`` seams: audit wrappers, fast-path
# uniformity probes).
SLOTTED_PACKAGES: Tuple[str, ...] = ("sim", "gpu", "channel", "dram", "xpoint")

# Terminal base-class names that structurally excuse a slotless class.
EXEMPT_BASE_NAMES: FrozenSet[str] = frozenset({
    "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
    "Protocol", "NamedTuple", "TypedDict",
})

# --------------------------------------------------------------------------
# R3 — determinism (the golden-fingerprint contract).
#
# Banned call chains (matched on the dotted tail, so both
# ``datetime.now`` and ``datetime.datetime.now`` hit).  The harness
# package is exempt: leases, cache GC and perf history legitimately
# read the wall clock — none of it feeds a fingerprint.
WALL_CLOCK_TAILS: Tuple[str, ...] = (
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "date.today",
    "os.urandom",
)
# Any call ``uuid.<something>(...)`` or ``secrets.<something>(...)``.
ENTROPY_MODULES: FrozenSet[str] = frozenset({"uuid", "secrets"})
# ``random.<fn>(...)`` on the *module* is the process-global RNG; only
# constructing a seeded instance is allowed.
RANDOM_ALLOWED_ATTRS: FrozenSet[str] = frozenset({"Random"})
# Importing these names directly would hide the banned calls from the
# chain matcher, so the imports themselves are findings.
BANNED_FROM_IMPORTS: Dict[str, FrozenSet[str]] = {
    "time": frozenset({
        "time", "time_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns",
    }),
    "os": frozenset({"urandom"}),
    "uuid": frozenset({"uuid1", "uuid3", "uuid4", "uuid5"}),
    "random": frozenset({
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "expovariate",
        "seed", "betavariate", "triangular",
    }),
    "secrets": None,  # type: ignore[dict-item]  # any name
}
DETERMINISM_EXEMPT_PREFIXES: Tuple[str, ...] = ("harness/",)

# --------------------------------------------------------------------------
# R4 — audit placement (DESIGN.md §10.2): guarded handle installation
# at construction, never per-event auditor branches.  Scoped to the
# model layers; sim/audit.py is the audit implementation itself.
AUDIT_SCOPED_PACKAGES: Tuple[str, ...] = (
    "sim", "gpu", "channel", "dram", "xpoint",
    "hetero", "hoststorage", "optical", "core",
)
AUDIT_EXEMPT_FILES: FrozenSet[str] = frozenset({"sim/audit.py"})
# Function names where auditor conditionals are construction/post-run
# time by design, not per-event branches.
CONSTRUCTION_NAMES: FrozenSet[str] = frozenset({
    "__init__", "__post_init__", "__new__", "__set_name__",
    "instrument", "audit", "finish",
})
CONSTRUCTION_PREFIXES: Tuple[str, ...] = ("_install", "_check", "_wire")

# --------------------------------------------------------------------------
# R5 — the executor pickle boundary.  Constructors whose arguments end
# up pickled to worker processes (SimulationJob) or re-resolved by name
# inside them (registry entries).  Lambdas and closure-local functions
# do not survive either trip.
PICKLE_BOUNDARY_CALLS: FrozenSet[str] = frozenset({
    "SimulationJob", "ExperimentSpec", "WorkloadDef", "ScenarioSpec",
})


@dataclass(frozen=True)
class LintConfig:
    """One linting policy; defaults are the production src/repro policy."""

    hot_modules: Dict[str, FrozenSet[str]] = field(
        default_factory=lambda: dict(HOT_MODULES))
    slotted_packages: Tuple[str, ...] = SLOTTED_PACKAGES
    exempt_base_names: FrozenSet[str] = EXEMPT_BASE_NAMES
    wall_clock_tails: Tuple[str, ...] = WALL_CLOCK_TAILS
    entropy_modules: FrozenSet[str] = ENTROPY_MODULES
    random_allowed_attrs: FrozenSet[str] = RANDOM_ALLOWED_ATTRS
    banned_from_imports: Dict[str, FrozenSet[str]] = field(
        default_factory=lambda: dict(BANNED_FROM_IMPORTS))
    determinism_exempt_prefixes: Tuple[str, ...] = DETERMINISM_EXEMPT_PREFIXES
    audit_scoped_packages: Tuple[str, ...] = AUDIT_SCOPED_PACKAGES
    audit_exempt_files: FrozenSet[str] = AUDIT_EXEMPT_FILES
    construction_names: FrozenSet[str] = CONSTRUCTION_NAMES
    construction_prefixes: Tuple[str, ...] = CONSTRUCTION_PREFIXES
    pickle_boundary_calls: FrozenSet[str] = PICKLE_BOUNDARY_CALLS

    def is_hot(self, rel: str) -> bool:
        return rel in self.hot_modules

    def extra_cold(self, rel: str) -> FrozenSet[str]:
        return self.hot_modules.get(rel, frozenset())

    def in_packages(self, rel: str, packages: Tuple[str, ...]) -> bool:
        head = rel.split("/", 1)[0]
        return head in packages

    def determinism_exempt(self, rel: str) -> bool:
        return any(rel.startswith(p) for p in self.determinism_exempt_prefixes)
