"""reprolint command line.

Run from the repo root (both forms are equivalent; ``repro lint``
forwards here)::

    python -m tools.reprolint                  # lint src/repro
    python -m tools.reprolint --format json
    python -m tools.reprolint --select R2,R3 src/repro/sim
    python -m tools.reprolint --list-rules

Exit status: 0 clean, 1 unsuppressed findings, 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

REPO = Path(__file__).resolve().parent.parent.parent
DEFAULT_ROOT = REPO / "src" / "repro"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST rule-checker for the repo's hot-path, "
                    "determinism and audit-placement rules",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: table)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also print pragma-suppressed findings with their reasons",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from tools.reprolint import rules as _rules  # noqa: F401  (registers rules)
    from tools.reprolint.core import PRAGMA_RULE_ID, RULES, run_lint

    args = build_parser().parse_args(argv)

    if args.list_rules:
        for r in sorted(RULES.values(), key=lambda r: r.id):
            print(f"{r.id}  {r.name}  [{r.design_ref}]")
            print(f"    {r.summary}")
        print(f"{PRAGMA_RULE_ID}  pragma-hygiene  [suppression grammar]")
        print("    reported automatically: malformed / reason-less / "
              "unknown-rule pragmas (never suppressible)")
        return 0

    select = None
    if args.select:
        select = {s.strip() for s in args.select.split(",") if s.strip()}
        unknown = select - set(RULES) - {PRAGMA_RULE_ID}
        if unknown:
            print(f"reprolint: unknown rule id(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    roots = args.paths or [DEFAULT_ROOT]
    missing = [p for p in roots if not p.exists()]
    if missing:
        for p in missing:
            print(f"reprolint: no such path: {p}", file=sys.stderr)
        return 2

    # Rebase rel paths onto src/repro for any path inside it, so
    # `reprolint src/repro/sim` keeps the sim/ package prefix that
    # scopes the hot-module and slotted-package rules.
    report = run_lint(roots, select=select, rel_to=DEFAULT_ROOT)

    if args.format == "json":
        payload = {
            "files_checked": report.files_checked,
            "findings": [f.to_dict() for f in report.findings],
            "suppressed": [
                dict(f.to_dict(), reason=reason)
                for f, reason in report.suppressed
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for f in report.findings:
            print(f.format())
        if args.show_suppressed:
            for f, reason in report.suppressed:
                print(f"{f.format()}  [suppressed: {reason}]")
        status = "clean" if report.clean else f"{len(report.findings)} finding(s)"
        print(
            f"reprolint: {status} across {report.files_checked} file(s), "
            f"{len(report.suppressed)} suppression(s) with reasons",
            file=sys.stderr,
        )
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
