"""reprolint: an AST rule-checker for this repo's own rules.

The repo's correctness story rests on conventions DESIGN.md states as
prose — §7's hot-path rules, §10.2's zero-cost audit placement, and
the determinism contract behind every golden fingerprint.  reprolint
makes them mechanical: five repo-specific rules (R1–R5) over a plain
``ast`` walk, with mandatory-reason ``# reprolint: allow(...)``
pragmas, a gating CI job, and ``repro lint`` / ``python -m
tools.reprolint`` entry points.  The generic layer (unused imports,
undefined names, style) is ruff's job (``[tool.ruff]`` in
pyproject.toml); reprolint carries only the rules no generic linter
knows about.  Rule catalogue: DESIGN.md §15.
"""

from tools.reprolint import rules as _rules  # noqa: F401  (registers rules)
from tools.reprolint.config import LintConfig
from tools.reprolint.core import (
    PRAGMA_RULE_ID,
    Finding,
    LintReport,
    RULES,
    run_lint,
)

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "PRAGMA_RULE_ID",
    "RULES",
    "run_lint",
]
