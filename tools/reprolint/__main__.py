"""``python -m tools.reprolint`` entry point."""

import sys

from tools.reprolint.cli import main

sys.exit(main())
