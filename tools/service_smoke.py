#!/usr/bin/env python
"""Gating service smoke: the daemon survives losing a worker.

The service tier's promise (DESIGN.md section 13) is exactly-once batch
execution over crash-prone workers.  This script checks the promise the
blunt way CI can trust:

1. start a ``repro serve`` daemon on a loopback TCP socket,
2. submit a 16-job batch (one job per shard) over the wire,
3. start two ``repro worker`` processes sharing the daemon's root —
   one throttled so it holds each lease for a visible window,
4. SIGKILL the throttled worker while it provably holds a lease,
5. stream ``watch`` until the batch completes,
6. assert the merged results are fingerprint-identical to a serial
   in-process run, that no job fingerprint appears twice in the
   per-batch execution log (zero duplicate executions), and that the
   orphaned lease was reclaimed through a crash tombstone.

A regression in lease expiry, reclaim arbitration or WAL recovery
either hangs the drain (caught by the deadline) or breaks one of the
assertions.  The measurement report is published as a CI artifact.

Run from the repo root:  PYTHONPATH=src python tools/service_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

N_JOBS = 16
LEASE_TTL_S = 1.0
DEADLINE_S = 240.0


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    return env


def _spawn(log_dir: pathlib.Path, name: str, *args: str) -> subprocess.Popen:
    log = open(log_dir / f"{name}.log", "wb")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env=_env(), stdout=log, stderr=log,
    )


def _jobs():
    from repro.config import MemoryMode
    from repro.harness.executor import RunConfig, SimulationJob

    return [
        SimulationJob(
            "Ohm-base", "backp", MemoryMode.PLANAR,
            RunConfig(num_warps=8, accesses_per_warp=8, seed=seed),
        )
        for seed in range(N_JOBS)
    ]


def _wait_for_owned_lease(root: pathlib.Path, owner: str,
                          timeout_s: float = 60.0) -> pathlib.Path:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        for lease in root.glob("b-*/leases/*.lease"):
            try:
                data = json.loads(lease.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            if data.get("owner") == owner:
                return lease
        time.sleep(0.005)
    raise RuntimeError(f"worker {owner!r} never held a lease")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", type=pathlib.Path, default=None,
                        help="write a JSON measurement report here")
    args = parser.parse_args(argv)

    from repro.harness.batch import BatchRun, read_jsonl
    from repro.harness.executor import SerialExecutor, execute_job
    from repro.harness.service import (
        EXECUTIONS_NAME,
        LeaseManager,
        ServiceClient,
        wait_for_service,
    )

    tmp = pathlib.Path(tempfile.mkdtemp(prefix="service-smoke-"))
    root = tmp / "svc"
    address = f"tcp:127.0.0.1:{_free_port()}"
    jobs = _jobs()
    failures: list[str] = []
    procs: list[subprocess.Popen] = []
    t0 = time.monotonic()
    try:
        daemon = _spawn(tmp, "serve", "serve", "--root", str(root),
                        "--socket", address, "--poll", "0.05")
        procs.append(daemon)
        wait_for_service(address, timeout_s=30)

        client = ServiceClient(address)
        sub = client.submit(jobs, shard_size=1, label="service-smoke")
        if not sub.get("ok") or sub.get("shards") != N_JOBS:
            raise RuntimeError(f"submit failed: {sub}")

        victim = _spawn(
            tmp, "victim", "worker", "--root", str(root),
            "--owner", "victim", "--lease-ttl", str(LEASE_TTL_S),
            "--throttle", "0.2", "--poll", "0.02", "--drain",
        )
        procs.append(victim)
        survivor = _spawn(
            tmp, "survivor", "worker", "--root", str(root),
            "--owner", "survivor", "--lease-ttl", str(LEASE_TTL_S),
            "--poll", "0.02", "--drain",
        )
        procs.append(survivor)

        lease = _wait_for_owned_lease(root, "victim")
        killed_shard = int(lease.name.split("-")[1].split(".")[0])
        victim.send_signal(signal.SIGKILL)
        victim.wait()
        print(f"killed victim worker mid-shard (shard {killed_shard})")

        last = None
        for rec in client.watch(sub["batch"], results=False,
                                timeout_s=DEADLINE_S):
            last = rec
        if not last or last.get("event") != "done":
            failures.append(f"watch did not reach 'done': {last}")
        if survivor.wait(timeout=DEADLINE_S) != 0:
            failures.append("surviving worker exited non-zero")
        client.shutdown()
        daemon.wait(timeout=30)

        batch = BatchRun.discover(root)[0]
        status = batch.status()
        if not status.done:
            failures.append(f"batch incomplete: {status}")

        exec_recs = read_jsonl(batch.batch_dir / EXECUTIONS_NAME)
        fps = [r["fp"] for r in exec_recs]
        duplicates = len(fps) - len(set(fps))
        if duplicates:
            failures.append(f"{duplicates} duplicate execution(s) logged")

        reclaims = LeaseManager(batch.batch_dir, "smoke",
                                ttl_s=LEASE_TTL_S).crash_count()
        journal = {r["shard"]: r for r in read_jsonl(batch.journal_path)}
        if sorted(journal) != list(range(N_JOBS)):
            failures.append("journal does not cover every shard exactly once")
        if killed_shard in journal and "reclaimed" in journal[killed_shard]:
            if reclaims < 1:
                failures.append("reclaimed shard but no crash tombstone")

        merged = batch.results()
        serial = dict(zip(jobs, SerialExecutor().run_jobs(
            jobs, fn=execute_job)))
        mismatched = sum(
            1 for job in jobs
            if merged[job].fingerprint() != serial[job].fingerprint()
        )
        if mismatched:
            failures.append(
                f"{mismatched}/{N_JOBS} results differ from the serial run"
            )
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()

    report = {
        "jobs": N_JOBS,
        "killed_shard": killed_shard,
        "executions_logged": len(fps),
        "duplicate_executions": duplicates,
        "lease_reclaims": reclaims,
        "wall_s": round(time.monotonic() - t0, 3),
        "failures": failures,
    }
    print(json.dumps(report, indent=2))
    if args.report:
        args.report.write_text(json.dumps(report, indent=2) + "\n",
                               encoding="utf-8")
    if failures:
        print(f"FAIL: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("OK: daemon + 2 workers survived a SIGKILL with exactly-once "
          "results")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
