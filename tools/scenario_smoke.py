#!/usr/bin/env python
"""Gating scenario smoke: open-loop arrivals + degradation under audit.

The scenario tier's promise (DESIGN.md section 14) is a deterministic,
conservation-audited open-loop simulation on top of the closed-loop
harness.  This script checks the promise the blunt way CI can trust:

1. run one pure-arrival scenario (``rush_hour``: bursty on-off traffic
   against a finite queue) and one degradation scenario
   (``xpoint_wear``: millions of real Start-Gap writes) with
   ``validate=True`` — every conservation check (admitted == completed +
   rejected + in-flight, capacity/queue bounds, histogram-sample counts,
   Start-Gap register reconciliation) must pass or
   :class:`InvariantError` fails the job;
2. re-run both on a :class:`ParallelExecutor` and require bit-identical
   result fingerprints — the open-loop layer must be a pure function of
   ``(spec, RunConfig)`` regardless of execution strategy;
3. assert the scenarios actually exercised what they claim: rush_hour
   saw arrivals and completions, xpoint_wear aged the translator by
   millions of writes with non-trivial write amplification;
4. publish the per-tenant SLO report (p50/p99, queueing delay,
   violations) as a CI artifact.

Run from the repo root:  PYTHONPATH=src python tools/scenario_smoke.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

ARRIVAL_SCENARIO = "rush_hour"
DEGRADATION_SCENARIO = "xpoint_wear"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", type=pathlib.Path, default=None,
                        help="write the JSON SLO report here")
    args = parser.parse_args(argv)

    from repro.harness.executor import ParallelExecutor, RunConfig
    from repro.harness.runner import Runner
    from repro.scenarios import get_scenario, run_scenario
    from repro.sim.audit import InvariantError

    run_cfg = RunConfig(num_warps=24, accesses_per_warp=24)
    failures: list[str] = []
    report: dict = {"scenarios": {}}
    t0 = time.monotonic()

    for name in (ARRIVAL_SCENARIO, DEGRADATION_SCENARIO):
        spec = get_scenario(name)
        try:
            serial = run_scenario(spec, Runner(run_cfg), validate=True)
        except InvariantError as exc:
            failures.append(f"{name}: invariant violation under audit: {exc}")
            continue
        parallel = run_scenario(
            spec, Runner(run_cfg, executor=ParallelExecutor(max_workers=2)),
            validate=True,
        )
        if serial.fingerprint() != parallel.fingerprint():
            failures.append(
                f"{name}: serial and parallel fingerprints differ "
                f"({serial.fingerprint()[:12]} vs {parallel.fingerprint()[:12]})"
            )
        if serial.totals["arrivals"] == 0 or serial.totals["completed"] == 0:
            failures.append(f"{name}: scenario saw no traffic")
        report["scenarios"][name] = {
            "fingerprint": serial.fingerprint(),
            "checks_run": serial.checks_run,
            "totals": serial.totals,
            "degradation": serial.degradation,
            "tenants": serial.tenants,
        }

    rh = report["scenarios"].get(ARRIVAL_SCENARIO, {})
    if rh and rh["totals"]["rejected"] + rh["totals"]["slo_violations"] == 0:
        failures.append(
            f"{ARRIVAL_SCENARIO}: bursty overload produced neither "
            "rejections nor SLO violations — the queue was never stressed"
        )
    xw = report["scenarios"].get(DEGRADATION_SCENARIO, {})
    if xw:
        writes = xw["degradation"].get("wear_total_writes", 0)
        amp = xw["degradation"].get("wear_write_amplification", 0)
        if writes < 1_000_000:
            failures.append(
                f"{DEGRADATION_SCENARIO}: only {writes:.0f} writes aged the "
                "translator — multi-rotation wear was not exercised"
            )
        if not amp > 1.0:
            failures.append(
                f"{DEGRADATION_SCENARIO}: write amplification {amp} is not "
                "> 1 — Start-Gap rotations produced no extra wear"
            )

    report["wall_s"] = round(time.monotonic() - t0, 3)
    report["failures"] = failures
    print(json.dumps(report, indent=2))
    if args.report:
        args.report.write_text(json.dumps(report, indent=2) + "\n",
                               encoding="utf-8")
    if failures:
        print(f"FAIL: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("OK: both scenarios audited clean with executor-independent "
          "fingerprints")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
