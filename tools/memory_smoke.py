#!/usr/bin/env python
"""Gating memory smoke: a 10x-longer trace must not cost 10x memory.

The streaming pipeline's promise is peak memory O(warps x lookahead),
independent of trace length.  This script checks the promise the blunt
way CI can trust:

1. generate a base trace file (streamed generation, never materialized),
2. write a 10x-repeated variant of it,
3. replay each through ``FileTraceSource`` -> ``GpuModel`` in an
   isolated child process,
4. assert the 10x replay's peak RSS stays under ``--ceiling`` (default
   2.0) times the base replay's.

A regression back to materialize-everything makes the 10x child hold
~1.3M decoded ops (hundreds of MB of Python lists) and blows the
ceiling; the streamed replay holds one block per warp and doesn't.

Run from the repo root:  PYTHONPATH=src python tools/memory_smoke.py
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

WORKLOAD = "stream_scan"
NUM_WARPS = 128
ACCESSES = 1000
REPEAT = 10


def _child(trace_path: str) -> int:
    """Replay one trace file streamed; print peak RSS as JSON."""
    import resource

    from repro.config import default_config
    from repro.core.platforms import PLATFORMS
    from repro.gpu.gpu import GpuModel
    from repro.workloads.trace import FileTraceSource

    source = FileTraceSource(trace_path)
    cfg = default_config()
    platform = PLATFORMS["Hetero"]
    result = GpuModel(platform, cfg, source.meta.spec, source).run()
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    print(json.dumps({
        "peak_rss_bytes": peak,
        "instructions": result.instructions,
        "fingerprint": result.fingerprint(),
    }))
    return 0


def _write_base(path: Path) -> None:
    from repro.config import default_config
    from repro.workloads.registry import build_source, get_workload_def
    from repro.workloads.trace import TraceMeta, save_stream

    cfg = default_config()
    defn = get_workload_def(WORKLOAD)
    source = build_source(
        defn,
        defn.spec.scaled_footprint(cfg.scale_down),
        num_warps=NUM_WARPS,
        accesses_per_warp=ACCESSES,
        line_bytes=cfg.gpu.line_bytes,
        page_bytes=cfg.hetero.page_bytes,
        seed=7,
    )
    meta = TraceMeta(
        workload=WORKLOAD,
        platform="(memory-smoke)",
        mode="(memory-smoke)",
        line_bytes=cfg.gpu.line_bytes,
        num_warps=NUM_WARPS,
        spec=defn.spec,
    )
    save_stream(path, meta, source)


def _write_repeated(base: Path, out: Path, repeat: int) -> None:
    """Concatenate ``repeat`` streamed passes of ``base`` into ``out``.

    Blocks stay round-robin interleaved within each pass so a replay
    parks at most one round of blocks — same discipline as
    ``save_stream``; end markers are written only after the final pass.
    """
    from repro.workloads.trace import (
        ChunkedTraceWriter,
        FileTraceSource,
        _open_for_write,
    )

    source = FileTraceSource(base)
    with _open_for_write(out) as fh:
        writer = ChunkedTraceWriter(fh, source.meta)
        for _ in range(repeat):
            live = source.streams()
            while live:
                still = []
                for stream in live:
                    block = stream.next_block()
                    if block is not None:
                        writer.write_block(
                            stream.warp_id, *block, tenant=stream.tenant
                        )
                        still.append(stream)
                live = still
        writer.finish()


def _replay_in_child(trace_path: Path) -> dict:
    env = dict(os.environ)
    root = Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = str(root / "src")
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--child", str(trace_path)],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"memory_smoke: child replay of {trace_path} failed")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", metavar="TRACE", help=argparse.SUPPRESS)
    parser.add_argument(
        "--ceiling",
        type=float,
        default=2.0,
        help="max allowed (10x peak RSS) / (base peak RSS) [default 2.0]",
    )
    parser.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the measurements as JSON to PATH",
    )
    args = parser.parse_args(argv)
    if args.child:
        return _child(args.child)

    with tempfile.TemporaryDirectory(prefix="repro-memory-smoke-") as tmp:
        base = Path(tmp) / "base.jsonl"
        big = Path(tmp) / "10x.jsonl"
        print(
            f"memory_smoke: {WORKLOAD} {NUM_WARPS}x{ACCESSES} ops "
            f"(base), x{REPEAT} (big)"
        )
        _write_base(base)
        _write_repeated(base, big, REPEAT)
        base_stats = _replay_in_child(base)
        big_stats = _replay_in_child(big)

    base_peak = base_stats["peak_rss_bytes"]
    big_peak = big_stats["peak_rss_bytes"]
    ratio = big_peak / base_peak if base_peak else float("inf")
    expect = base_stats["instructions"] * REPEAT
    report = {
        "workload": WORKLOAD,
        "num_warps": NUM_WARPS,
        "accesses_per_warp": ACCESSES,
        "repeat": REPEAT,
        "ceiling": args.ceiling,
        "base": base_stats,
        "big": big_stats,
        "rss_ratio": ratio,
    }
    print(
        f"memory_smoke: base peak RSS {base_peak / 2**20:.1f} MiB "
        f"({base_stats['instructions']} instructions)"
    )
    print(
        f"memory_smoke: 10x  peak RSS {big_peak / 2**20:.1f} MiB "
        f"({big_stats['instructions']} instructions)"
    )
    print(f"memory_smoke: ratio {ratio:.2f} (ceiling {args.ceiling:.2f})")
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"memory_smoke: wrote {args.report}")
    if big_stats["instructions"] != expect:
        print(
            f"memory_smoke: FAILED — 10x replay retired "
            f"{big_stats['instructions']} instructions, expected {expect}",
            file=sys.stderr,
        )
        return 1
    if ratio > args.ceiling:
        print(
            f"memory_smoke: FAILED — 10x trace peak RSS is {ratio:.2f}x "
            f"the base replay's (ceiling {args.ceiling:.2f}x); the "
            "streaming pipeline is materializing somewhere",
            file=sys.stderr,
        )
        return 1
    print("memory_smoke: PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
