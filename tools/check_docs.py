#!/usr/bin/env python
"""Docs-consistency check (CI, non-gating).

Three invariants keep the documentation surface honest:

1. every workload name registered at import time appears in
   docs/WORKLOADS.md and every scenario name in docs/SCENARIOS.md
   (every experiment name in README.md or DESIGN.md is a soft
   courtesy we do not enforce);
2. every CLI command — including nested groups like ``batch run`` and
   ``store query`` — appears in the README CLI tour (walked straight
   out of the live argparse tree, so a new subcommand without docs
   fails here);
3. every example script under examples/ runs to completion in smoke
   mode (REPRO_SMOKE=1);
4. every reprolint rule id registered in tools/reprolint (plus the R0
   pragma-hygiene meta rule) is documented in DESIGN.md section 15 —
   a new rule without catalogue prose fails here.

Run locally::

    PYTHONPATH=src python tools/check_docs.py

Exits non-zero on the first class of failure encountered; prints every
individual failure first.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO))  # for tools.reprolint (the rule registry)


def check_workload_docs() -> list[str]:
    from repro.workloads.registry import REGISTRY

    doc = (REPO / "docs" / "WORKLOADS.md").read_text(encoding="utf-8")
    return [
        f"workload {name!r} is registered but not documented in docs/WORKLOADS.md"
        for name in REGISTRY
        if name not in doc
    ]


def check_scenario_docs() -> list[str]:
    from repro.scenarios import SCENARIOS

    doc = (REPO / "docs" / "SCENARIOS.md").read_text(encoding="utf-8")
    return [
        f"scenario {name!r} is registered but not documented in docs/SCENARIOS.md"
        for name in SCENARIOS
        if name not in doc
    ]


def _cli_commands() -> list[str]:
    """Every ``repro ...`` command path in the live argparse tree."""
    import argparse

    from repro.cli import build_parser

    def walk(parser, prefix):
        sub_actions = [
            a for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        ]
        if not sub_actions:
            return [" ".join(prefix)] if prefix else []
        out = []
        for action in sub_actions:
            for name, child in action.choices.items():
                out.extend(walk(child, prefix + [name]))
        return out

    return walk(build_parser(), [])


def check_cli_docs() -> list[str]:
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    return [
        f"CLI command `repro {cmd}` is not shown in the README CLI tour"
        for cmd in _cli_commands()
        if f"repro {cmd}" not in readme
    ]


def check_lint_rule_docs() -> list[str]:
    """Every registered reprolint rule id must appear in DESIGN.md §15."""
    from tools.reprolint import PRAGMA_RULE_ID, RULES

    design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
    marker = "## 15."
    idx = design.find(marker)
    if idx < 0:
        return ["DESIGN.md has no section 15 (the reprolint rule catalogue)"]
    section = design[idx:]
    nxt = section.find("\n## ", len(marker))
    if nxt > 0:
        section = section[:nxt]
    failures = []
    for rid in sorted(RULES) + [PRAGMA_RULE_ID]:
        name = RULES[rid].name if rid in RULES else "pragma-hygiene"
        if f"**{rid} — {name}**" not in section:
            failures.append(
                f"reprolint rule {rid} ({name}) is registered but has no "
                f"'**{rid} — {name}**' entry in the DESIGN.md §15 catalogue"
            )
    return failures


def check_required_docs_exist() -> list[str]:
    required = ("README.md", "docs/WORKLOADS.md", "docs/SCENARIOS.md", "DESIGN.md")
    return [
        f"required document {rel} is missing"
        for rel in required
        if not (REPO / rel).is_file()
    ]


def check_examples_smoke() -> list[str]:
    failures = []
    env = dict(os.environ, REPRO_SMOKE="1")
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    for script in sorted((REPO / "examples").glob("*.py")):
        proc = subprocess.run(
            [sys.executable, str(script)],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        if proc.returncode != 0:
            tail = "\n".join(proc.stderr.splitlines()[-5:])
            failures.append(
                f"example {script.name} failed in smoke mode "
                f"(exit {proc.returncode}):\n{tail}"
            )
    return failures


def main() -> int:
    failures = []
    failures += check_required_docs_exist()
    failures += check_workload_docs()
    failures += check_scenario_docs()
    failures += check_cli_docs()
    failures += check_lint_rule_docs()
    failures += check_examples_smoke()
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        print(f"\n{len(failures)} docs-consistency failure(s)", file=sys.stderr)
        return 1
    print(
        "docs-consistency: all registered workloads documented, "
        "all CLI commands in the README tour, all lint rules in the "
        "DESIGN.md catalogue, all examples run"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
