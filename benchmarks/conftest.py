"""Shared fixtures for the figure/table benchmarks.

A single memoized Runner (the experiment service) backs all figure
benches so the expensive platform x workload x mode matrix is simulated
once per session — the specs submit whole job batches, and the
ablations/sweeps ride the same warm matrix instead of private runners.
Environment knobs map straight onto the service:

* ``REPRO_BENCH_JOBS=N``  — evaluate the matrix over N worker processes;
* ``REPRO_BENCH_CACHE=d`` — persist results in ``d`` across sessions.

Benchmarks run one round each: the measured quantity is the time to
regenerate the figure, and the printed tables are the reproduction.
"""

import os
import sys

import pytest

from repro import ResultCache, RunConfig, Runner
from repro.harness.executor import make_executor

# Bench sizing: large enough for stable shapes (in particular, enough
# footprint coverage that Origin's working set exceeds its DRAM), small
# enough that the whole suite finishes in a few minutes.
BENCH_RUN_CONFIG = RunConfig(num_warps=192, accesses_per_warp=96)

# The figure/table text IS the benchmark output.  pytest captures test
# stdout, and this conftest is imported both as a plugin and as a plain
# module (tests do ``from conftest import report``), so the buffer lives
# on the shared ``sys`` module and is flushed in pytest_terminal_summary,
# where output is never captured.
if not hasattr(sys, "_repro_bench_reports"):
    sys._repro_bench_reports = []


def report(*parts) -> None:
    """Queue text for the end-of-run report (and echo it for -s runs)."""
    text = " ".join(str(p) for p in parts)
    sys._repro_bench_reports.append(text)
    print(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    reports = getattr(sys, "_repro_bench_reports", None)
    if reports:
        terminalreporter.section("figure/table reproductions")
        for text in reports:
            for line in text.split("\n"):
                terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def runner():
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    return Runner(
        BENCH_RUN_CONFIG,
        executor=make_executor(int(os.environ.get("REPRO_BENCH_JOBS", "1"))),
        cache=ResultCache(cache_dir) if cache_dir else None,
    )


def bench_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
