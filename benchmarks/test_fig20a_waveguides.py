"""Fig. 20a: performance vs number of optical waveguides.

Paper: with 8 waveguides Ohm-base outperforms Hetero by 41 % and Ohm-BW
gains a further 17 % — the optical channel's bandwidth scales where the
electrical one cannot.
"""

from conftest import bench_once, report

from repro.harness.experiments import figure20a
from repro.harness.report import format_table
from repro.harness.runner import RunConfig


def test_fig20a_waveguide_sweep(benchmark):
    rows = bench_once(
        benchmark,
        figure20a,
        run_cfg=RunConfig(num_warps=96, accesses_per_warp=48),
    )
    report()
    report(
        format_table(
            ["waveguides", "platform", "norm_performance_vs_Hetero"],
            [(r["waveguides"], r["platform"], r["norm_performance"]) for r in rows],
            title="Fig. 20a — performance vs optical waveguides (planar)",
        )
    )
    by_key = {(r["waveguides"], r["platform"]): r["norm_performance"] for r in rows}
    # More waveguides never hurt and eventually beat the electrical
    # baseline for both optical platforms.
    assert by_key[(8, "Ohm-base")] >= by_key[(1, "Ohm-base")]
    assert by_key[(8, "Ohm-base")] > 1.0
    assert by_key[(8, "Ohm-BW")] >= by_key[(8, "Ohm-base")]
