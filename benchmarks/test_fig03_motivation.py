"""Fig. 3: motivation study on the GPU+SSD integrated system.

Paper: storage access 21 % and GPU<->SSD transfers 45 % of execution
time on average; DMA costs the memory subsystem 31 % of time and 19 %
of energy.
"""

from conftest import bench_once, report

from repro.harness.experiments import figure3
from repro.harness.report import format_table


def test_fig3_breakdowns(benchmark):
    rows = bench_once(benchmark, figure3)
    report()
    report(
        format_table(
            ["workload", "data_move", "storage", "gpu", "dma_time", "dma_energy"],
            [
                (
                    r["workload"],
                    r["data_move_frac"],
                    r["storage_frac"],
                    r["gpu_frac"],
                    r["dma_time_frac"],
                    r["dma_energy_frac"],
                )
                for r in rows
            ],
            title="Fig. 3a/3b — GPU+SSD execution and memory breakdowns",
        )
    )
    n = len(rows)
    move = sum(r["data_move_frac"] for r in rows) / n
    storage = sum(r["storage_frac"] for r in rows) / n
    report(
        f"\nmean data-move {move:.2f} (paper 0.45), "
        f"mean storage {storage:.2f} (paper 0.21)"
    )
    assert 0.2 <= move <= 0.7
    assert 0.1 <= storage <= 0.4
