"""Fig. 8: migration overhead of the baseline Ohm memory system.

Paper: data migration consumes 39 % (planar) / 26 % (two-level) of the
memory bandwidth and inflates mean memory latency by 54 % / 47 % over an
Oracle with a dedicated migration channel.
"""

from conftest import bench_once, report

from repro.harness.experiments import figure8
from repro.harness.report import format_table
from repro.workloads.registry import WORKLOADS


def test_fig8_migration_overhead(benchmark, runner):
    data = bench_once(benchmark, figure8, runner)
    for mode, fig in data.items():
        rows = [
            (
                w,
                fig.values[(w, "migration_bw_frac")],
                fig.values[(w, "latency_vs_oracle")],
            )
            for w in WORKLOADS
        ]
        report()
        report(
            format_table(
                ["workload", "migration_bw_frac", "latency_vs_oracle"],
                rows,
                title=f"Fig. 8 ({mode}) — baseline migration overhead",
            )
        )
        mig = fig.mean_over_workloads("migration_bw_frac")
        lat = fig.mean_over_workloads("latency_vs_oracle")
        paper_mig = 0.39 if mode == "planar" else 0.26
        paper_lat = 1.54 if mode == "planar" else 1.47
        report(
            f"mean migration bw {mig:.2f} (paper {paper_mig}); "
            f"latency vs oracle {lat:.2f} (paper {paper_lat})"
        )
        # Shape assertions: migration consumes a substantial fraction and
        # the baseline is clearly slower than Oracle.
        assert mig > 0.08
        assert lat > 1.2
