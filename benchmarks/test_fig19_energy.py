"""Fig. 19: energy breakdown of the GPU memory systems.

Paper: the optical channel cuts DMA power 57 % versus electrical;
dynamic DRAM/XPoint energy is platform-independent; Ohm-WOM trims static
DRAM energy 19 %/11 % via shorter execution; dual-route platforms pay
more laser power but total energy still drops ~1-2 %.
"""

from conftest import bench_once, report

from repro.harness.experiments import ENERGY_PLATFORMS, figure19
from repro.harness.report import format_table
from repro.workloads.registry import WORKLOADS


def test_fig19_energy(benchmark, runner):
    data = bench_once(benchmark, figure19, runner)
    for mode, rows in data.items():
        table = []
        for w in WORKLOADS:
            for p in ENERGY_PLATFORMS:
                b = rows[(w, p)]
                table.append(
                    (
                        w,
                        p,
                        b.xpoint_j * 1e6,
                        b.dram_dynamic_j * 1e6,
                        b.dram_static_j * 1e6,
                        b.optical_j * 1e6,
                        b.electrical_j * 1e6,
                    )
                )
        report()
        report(
            format_table(
                ["workload", "platform", "XPoint_uJ", "DRAMdyn_uJ", "DRAMsta_uJ", "Optical_uJ", "Elec_uJ"],
                table,
                title=f"Fig. 19 ({mode}) — energy breakdown",
            )
        )

        def mean_channel(p):
            vals = [rows[(w, p)] for w in WORKLOADS]
            return sum(v.optical_j + v.electrical_j for v in vals) / len(vals)

        hetero_chan = mean_channel("Hetero")
        base_chan = mean_channel("Ohm-base")
        reduction = 1 - base_chan / hetero_chan
        report(f"channel (DMA) energy reduction vs Hetero: {reduction:.2f} (paper 0.57)")
        assert base_chan < hetero_chan  # optical cheaper than electrical
        # Dynamic energies are platform-independent given equal requests.
        for w in WORKLOADS:
            dyn = {p: rows[(w, p)].dram_dynamic_j for p in ("Ohm-base", "Auto-rw")}
            assert abs(dyn["Ohm-base"] - dyn["Auto-rw"]) / max(dyn["Ohm-base"], 1e-18) < 0.25
