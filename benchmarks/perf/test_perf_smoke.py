"""Perf-smoke benchmark: events/sec of the simulation core.

The quick companion to ``repro perf``: runs the CI-sized smoke cases,
prints the events/sec table, writes ``BENCH_perf.json`` (CI uploads it
as an artifact) and sanity-checks the measurements.  Determinism of the
event *count* is asserted — the clock is the only thing allowed to
vary between machines.

Run the figure-sized suite locally with::

    PYTHONPATH=src python -m repro.cli perf -o BENCH_perf.json
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.harness.perf import SMOKE_CASES, measure_case, run_suite, write_bench

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_perf_smoke_suite_writes_bench_json(tmp_path):
    measurements = run_suite(SMOKE_CASES, repeats=2)
    out = os.environ.get("REPRO_BENCH_PERF_OUT", str(tmp_path / "BENCH_perf.json"))
    payload = write_bench(out, measurements)

    assert len(measurements) == len(SMOKE_CASES)
    for m in measurements:
        assert m.events > 0
        assert m.wall_s > 0
        assert m.events_per_sec > 0
        # Each warp contributes one issue event and one completion event
        # per access: the deterministic simulation implies a fixed count.
        case = next(c for c in SMOKE_CASES if c.name == m.case)
        expected_min = case.run_cfg.num_warps * case.run_cfg.accesses_per_warp
        assert m.events >= expected_min

    on_disk = json.loads(pathlib.Path(out).read_text())
    assert on_disk == json.loads(json.dumps(payload))  # round-trips
    assert on_disk["unit"] == "events_per_sec"
    # Cases that predate the PR-2 overhaul carry a recorded baseline;
    # newer workload-family cases legitimately have none.
    assert set(on_disk["baseline"]["events_per_sec"]) >= {
        m.case for m in measurements if m.baseline_events_per_sec is not None
    }
    assert {"headline_smoke", "two_level_smoke", "origin_smoke"} <= {
        m.case for m in measurements if m.baseline_events_per_sec is not None
    }

    print("\nperf smoke (best of 2):")
    for m in measurements:
        speedup = m.speedup_vs_baseline
        print(
            f"  {m.case:16s} {m.events:6d} events  "
            f"{m.wall_s * 1e3:7.1f} ms  {m.events_per_sec:10,.0f} ev/s  "
            + (f"{speedup:.2f}x vs baseline" if speedup else "")
        )


def test_event_count_is_deterministic():
    case = SMOKE_CASES[0]
    a = measure_case(case, repeats=1)
    b = measure_case(case, repeats=1)
    assert a.events == b.events
    assert a.instructions == b.instructions


def test_run_suite_resumes_from_journal(tmp_path, monkeypatch):
    """`repro perf --journal`: measured cases are skipped on re-run,
    a different repeat count re-measures (fast: timing is stubbed)."""
    from repro.harness import perf

    calls = []

    def fake_measure(case, repeats=3):
        calls.append(case.name)
        return perf.PerfMeasurement(
            case=case.name, platform=case.platform, workload=case.workload,
            mode=case.mode.value, events=10, instructions=5, wall_s=0.1,
            events_per_sec=100.0, repeats=repeats,
        )

    monkeypatch.setattr(perf, "measure_case", fake_measure)
    journal = str(tmp_path / "perf.jsonl")
    cases = perf.SMOKE_CASES[:2]

    first = perf.run_suite(cases, repeats=2, journal=journal)
    assert calls == [c.name for c in cases]
    second = perf.run_suite(cases, repeats=2, journal=journal)
    assert calls == [c.name for c in cases]  # fully resumed, 0 re-measured
    assert [m.to_dict() for m in second] == [m.to_dict() for m in first]

    perf.run_suite(cases[:1], repeats=5, journal=journal)
    assert calls == [c.name for c in cases] + [cases[0].name]


def test_run_suite_remeasures_on_case_definition_change(tmp_path, monkeypatch):
    """A journaled number must not survive a change to the case's
    definition: records carry a case digest, and a mismatch re-measures."""
    from repro.harness import perf
    from repro.harness.batch import read_jsonl

    calls = []

    def fake_measure(case, repeats=3):
        calls.append(case.name)
        return perf.PerfMeasurement(
            case=case.name, platform=case.platform, workload=case.workload,
            mode=case.mode.value, events=10, instructions=5, wall_s=0.1,
            events_per_sec=100.0, repeats=repeats,
        )

    monkeypatch.setattr(perf, "measure_case", fake_measure)
    journal = tmp_path / "j.jsonl"
    cases = perf.SMOKE_CASES[:1]
    perf.run_suite(cases, repeats=1, journal=str(journal))
    # Simulate the case definition changing under the same name: the
    # stored digest no longer matches what _case_digest derives now.
    recs = read_jsonl(journal)
    recs[0]["case_digest"] = "0" * 64
    journal.write_text("".join(json.dumps(r) + "\n" for r in recs))
    perf.run_suite(cases, repeats=1, journal=str(journal))
    assert calls == [cases[0].name, cases[0].name]  # re-measured
    # And the fresh record now shadows the stale one.
    perf.run_suite(cases, repeats=1, journal=str(journal))
    assert calls == [cases[0].name, cases[0].name]  # resumed this time


def _stub_measurement(name, eps, repeats=1):
    from repro.harness.perf import PerfMeasurement

    return PerfMeasurement(
        case=name, platform="Ohm-BW", workload="pagerank", mode="planar",
        events=100, instructions=50, wall_s=100.0 / eps,
        events_per_sec=eps, repeats=repeats,
    )


class TestBenchHistory:
    def test_write_bench_appends_history(self, tmp_path):
        """Each write keeps the prior trajectory and appends one entry
        (timestamp passed in, git rev, per-case events/sec)."""
        from repro.harness.perf import load_bench, write_bench

        out = str(tmp_path / "bench.json")
        write_bench(
            out, [_stub_measurement("headline", 100.0)],
            timestamp="2026-08-08T00:00:00+00:00", git_rev="abc1234",
        )
        write_bench(
            out, [_stub_measurement("headline", 120.0)],
            timestamp="2026-08-09T00:00:00+00:00", git_rev="def5678",
        )
        payload = load_bench(out)
        assert [h["git_rev"] for h in payload["history"]] == ["abc1234", "def5678"]
        assert [h["timestamp"] for h in payload["history"]] == [
            "2026-08-08T00:00:00+00:00", "2026-08-09T00:00:00+00:00",
        ]
        assert [h["events_per_sec"]["headline"] for h in payload["history"]] == [
            100.0, 120.0,
        ]
        # ``current`` still reflects the latest measurement set.
        assert payload["current"][0]["events_per_sec"] == 120.0

    def test_write_bench_tolerates_corrupt_prior(self, tmp_path):
        from repro.harness.perf import load_bench, write_bench

        out = tmp_path / "bench.json"
        out.write_text("{not json")
        write_bench(str(out), [_stub_measurement("headline", 100.0)])
        payload = load_bench(str(out))
        assert len(payload["history"]) == 1


class TestCompareBench:
    def test_regression_detected_over_threshold(self):
        from repro.harness.perf import bench_payload, compare_bench

        old = bench_payload([_stub_measurement("headline", 100.0)])
        new = bench_payload([_stub_measurement("headline", 89.0)])
        comparisons, regressions = compare_bench(old, new)
        assert len(comparisons) == 1
        assert [c.case for c in regressions] == ["headline"]

    def test_loss_within_threshold_passes(self):
        from repro.harness.perf import bench_payload, compare_bench

        old = bench_payload([_stub_measurement("headline", 100.0)])
        new = bench_payload([_stub_measurement("headline", 91.0)])
        _, regressions = compare_bench(old, new)
        assert regressions == []

    def test_disjoint_cases_are_not_regressions(self):
        from repro.harness.perf import bench_payload, compare_bench

        old = bench_payload([_stub_measurement("headline", 100.0)])
        new = bench_payload([_stub_measurement("renamed", 1.0)])
        comparisons, regressions = compare_bench(old, new)
        assert comparisons == [] and regressions == []

    def test_cli_compare_gate(self, tmp_path, monkeypatch, capsys):
        """`repro perf --compare old.json` exits 1 on a >10% loss and
        0 otherwise (measurement stubbed for speed)."""
        from repro.cli import main
        from repro.harness import perf
        from repro.harness.perf import write_bench

        old = str(tmp_path / "old.json")
        write_bench(old, [_stub_measurement("headline_smoke", 1000.0)])

        eps = {"value": 850.0}

        def fake_measure(case, repeats=3):
            return _stub_measurement(case.name, eps["value"], repeats)

        monkeypatch.setattr(perf, "measure_case", fake_measure)
        out = str(tmp_path / "new.json")
        argv = ["perf", "--smoke", "-o", out, "--compare", old]
        assert main(argv) == 1
        assert "REGRESSION" in capsys.readouterr().out

        eps["value"] = 990.0
        assert main(argv) == 0
