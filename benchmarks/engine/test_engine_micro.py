"""Microbenchmarks for the engine primitives, each in isolation.

The perf suite (``repro perf``) reports one headline events/sec number
per workload; when that regresses, these microbenches localize the loss
to a layer — the generic heap, the warp lane, or the cache probe —
without re-profiling the whole model.  Workloads are sized so a round
finishes in milliseconds; pytest-benchmark's OPS column is the figure
of merit.
"""

from __future__ import annotations

from repro.gpu.cache import SetAssocCache
from repro.sim.engine import Engine

GENERIC_EVENTS = 5_000

LANE_WARPS = 64
LANE_STEPS_PER_WARP = 50

CACHE_LINES = 256
CACHE_PASSES = 20
LINE_BYTES = 64


def _drain_generic() -> int:
    """Push/pop GENERIC_EVENTS no-op tuples through the generic heap."""
    eng = Engine()

    def fn() -> None:
        pass

    for i in range(GENERIC_EVENTS):
        eng.at(i, fn)
    eng.run()
    return eng.events_processed


def _drain_lane() -> int:
    """Step LANE_WARPS warps LANE_STEPS_PER_WARP times each through the
    typed lane (per-event dispatch — the engine-side lane cost, without
    the GPU model's fused drain on top)."""
    eng = Engine()
    remaining = [LANE_STEPS_PER_WARP] * LANE_WARPS

    def step(warp: int, phase: int) -> None:
        r = remaining[warp] - 1
        remaining[warp] = r
        if r:
            eng.lane_schedule(warp, eng.now + 100, 1)

    eng.attach_warp_lane(LANE_WARPS, step)
    for w in range(LANE_WARPS):
        eng.lane_schedule(w, w, 1)
    eng.run()
    return eng.events_processed


def _probe_cache() -> int:
    """Hit-probe a warm set-associative cache CACHE_PASSES times."""
    cache = SetAssocCache(64 * 1024, 8, LINE_BYTES)
    access = cache.access
    for line in range(CACHE_LINES):  # warm fill (cold misses)
        access(line * LINE_BYTES, False)
    for _ in range(CACHE_PASSES):
        for line in range(CACHE_LINES):
            access(line * LINE_BYTES, False)
    return cache.stats.hits


def test_generic_heap_push_pop(benchmark):
    processed = benchmark.pedantic(_drain_generic, rounds=3, iterations=1)
    assert processed == GENERIC_EVENTS


def test_warp_lane_step(benchmark):
    processed = benchmark.pedantic(_drain_lane, rounds=3, iterations=1)
    assert processed == LANE_WARPS * LANE_STEPS_PER_WARP


def test_cache_hit_probe(benchmark):
    hits = benchmark.pedantic(_probe_cache, rounds=3, iterations=1)
    assert hits == CACHE_LINES * CACHE_PASSES
