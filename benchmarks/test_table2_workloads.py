"""Table II: workload characteristics, verified against the generated
traces (measured APKI and read ratio vs the table's values)."""


from conftest import bench_once, report

from repro.config import MB
from repro.harness.report import format_table
from repro.workloads.registry import WORKLOADS, generate_traces, get_workload


def _measure():
    rows = []
    for name in WORKLOADS:
        spec = get_workload(name)
        traces = generate_traces(spec, 8 * MB, num_warps=16, accesses_per_warp=128)
        insts = sum(t.total_instructions for t in traces)
        accesses = sum(len(t) for t in traces)
        writes = sum(int(t.writes.sum()) for t in traces)
        rows.append(
            (
                name,
                spec.apki,
                1000.0 * accesses / insts,
                spec.read_ratio,
                1.0 - writes / accesses,
            )
        )
    return rows


def test_table2_workload_characteristics(benchmark):
    rows = bench_once(benchmark, _measure)
    report()
    report(
        format_table(
            ["workload", "APKI(paper)", "APKI(measured)", "read(paper)", "read(measured)"],
            rows,
            title="Table II — workload characteristics",
        )
    )
    for name, apki, apki_m, rd, rd_m in rows:
        assert abs(apki_m - apki) / apki < 0.35, name
        assert abs(rd_m - rd) < 0.25, name
