"""Fig. 17: mean memory access latency normalized to Ohm-base.

Paper: Auto-rw cuts latency 14 %/4 %; Ohm-WOM another 28 %/24 %; Ohm-BW
another 6 % in planar mode.
"""

from conftest import bench_once, report

from repro.harness.experiments import LATENCY_PLATFORMS, figure17
from repro.harness.report import format_table
from repro.workloads.registry import WORKLOADS


def test_fig17_latency(benchmark, runner):
    data = bench_once(benchmark, figure17, runner)
    for mode, fig in data.items():
        rows = [
            tuple([w] + [fig.values[(w, p)] for p in LATENCY_PLATFORMS])
            for w in WORKLOADS
        ]
        report()
        report(
            format_table(
                ["workload"] + list(LATENCY_PLATFORMS),
                rows,
                title=f"Fig. 17 ({mode}) — memory latency normalized to Ohm-base",
            )
        )
        means = {p: fig.mean_over_workloads(p) for p in LATENCY_PLATFORMS}
        report("means: " + "  ".join(f"{p}={v:.3f}" for p, v in means.items()))
        assert means["Auto-rw"] <= 1.01
        assert means["Ohm-WOM"] < means["Auto-rw"]
        assert means["Oracle"] == min(means.values())
