"""Headline claim (abstract): Ohm-GPU improves performance by 181 % over
a DRAM-based GPU memory system and 27 % over the baseline optical
heterogeneous memory system."""

from conftest import bench_once, report

from repro.harness.experiments import headline


def test_headline_speedups(benchmark, runner):
    result = bench_once(benchmark, headline, runner)
    report()
    report(
        f"Ohm-BW vs Origin  : {result['speedup_vs_origin']:.2f}x (paper 2.81x)\n"
        f"Ohm-BW vs Ohm-base: {result['speedup_vs_ohm_base']:.2f}x (paper 1.27x)"
    )
    # Shape: Ohm-BW clearly beats both references.
    assert result["speedup_vs_origin"] > 1.3
    assert result["speedup_vs_ohm_base"] > 1.05
