"""Fig. 16: IPC of the seven GPU platforms, normalized to Ohm-base.

Paper claims: Origin is 42 % below Hetero; Hetero ~= Ohm-base; Auto-rw
+9 %/+4 % (planar/two-level); Ohm-WOM +18 %/+16 % over Auto-rw; Ohm-BW
+4 % over Ohm-WOM in planar; Ohm-BW reaches 88 % of Oracle.
"""

from conftest import bench_once, report

from repro.harness.experiments import FIG16_PLATFORMS, figure16
from repro.harness.report import format_table
from repro.workloads.registry import WORKLOADS


def test_fig16_ipc(benchmark, runner):
    data = bench_once(benchmark, figure16, runner)
    for mode, fig in data.items():
        rows = [
            tuple([w] + [fig.values[(w, p)] for p in FIG16_PLATFORMS])
            for w in WORKLOADS
        ]
        report()
        report(
            format_table(
                ["workload"] + list(FIG16_PLATFORMS),
                rows,
                title=f"Fig. 16 ({mode}) — IPC normalized to Ohm-base",
            )
        )
        means = {p: fig.mean_over_workloads(p) for p in FIG16_PLATFORMS}
        report("means: " + "  ".join(f"{p}={v:.3f}" for p, v in means.items()))
        # Qualitative shape: every migration function helps, Oracle wins.
        assert means["Auto-rw"] >= means["Ohm-base"] * 0.99
        assert means["Ohm-WOM"] > means["Auto-rw"]
        assert means["Oracle"] > means["Ohm-BW"]
        # Hetero and Ohm-base are equivalent at equal channel bandwidth.
        assert abs(means["Hetero"] - 1.0) < 0.05
