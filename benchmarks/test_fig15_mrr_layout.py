"""Fig. 15 / Section V-C: MRR layout optimization.

Paper: the per-mode customized layouts need 58 % (planar) and 42 %
(two-level) fewer MRRs than the general dual-route design.
"""

import pytest

from conftest import bench_once, report

from repro.harness.experiments import figure15
from repro.harness.report import format_table


def test_fig15_mrr_layouts(benchmark):
    rows = bench_once(benchmark, figure15)
    report()
    report(
        format_table(
            ["layout", "transmitters", "receivers", "total", "reduction_vs_general"],
            [
                (r["layout"], r["transmitters"], r["receivers"], r["total"], r["reduction_vs_general"])
                for r in rows
            ],
            title="Fig. 15 — MRRs per DRAM+XPoint pair per bit-lane",
        )
    )
    by_label = {r["layout"]: r for r in rows}
    assert by_label["planar"]["reduction_vs_general"] == pytest.approx(0.58, abs=0.02)
    assert by_label["two-level"]["reduction_vs_general"] == pytest.approx(0.42, abs=0.02)
