"""Fig. 21: cost-performance ratio of Origin, Ohm-BW and Oracle.

Paper: Ohm-BW's CP ratio is 155 % above Origin and 24 % above Oracle —
the performance gain overwhelms the added hardware cost.
"""

from conftest import bench_once, report

from repro.harness.experiments import figure21
from repro.harness.report import format_table
from repro.workloads.registry import WORKLOADS


def test_fig21_cost_performance(benchmark, runner):
    data = bench_once(benchmark, figure21, runner)
    for mode, fig in data.items():
        rows = [
            (w, fig.values[(w, "Origin")], fig.values[(w, "Ohm-BW")], fig.values[(w, "Oracle")])
            for w in WORKLOADS
        ]
        report()
        report(
            format_table(
                ["workload", "Origin", "Ohm-BW", "Oracle"],
                rows,
                title=f"Fig. 21 ({mode}) — cost-performance (norm. to Origin cost)",
            )
        )
        means = {p: fig.mean_over_workloads(p) for p in ("Origin", "Ohm-BW", "Oracle")}
        report("means: " + "  ".join(f"{p}={v:.3f}" for p, v in means.items()))
        report(
            f"Ohm-BW CP vs Origin: {means['Ohm-BW'] / means['Origin'] - 1:+.0%} "
            f"(paper +155%); vs Oracle: {means['Ohm-BW'] / means['Oracle'] - 1:+.0%} "
            f"(paper +24%)"
        )
        # Shape: Ohm-BW clearly beats Origin on cost-performance.  (Our
        # simulated Oracle gap is wider than the paper's, so the Ohm-BW
        # vs Oracle CP comparison is reported but not asserted — see
        # EXPERIMENTS.md.)
        assert means["Ohm-BW"] > means["Origin"]
