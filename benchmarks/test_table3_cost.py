"""Table III: cost estimation of the Ohm memory configurations.

Paper: planar Ohm-BW adds 7.6 % and two-level 13.5 % to the $5k K80;
Ohm-BW uses ~41 % more MRRs than Ohm-base at a ~$4 premium.
"""

import pytest

from conftest import bench_once, report

from repro.harness.experiments import table3
from repro.harness.report import format_table


def test_table3_cost(benchmark):
    rows = bench_once(benchmark, table3)
    report()
    report(
        format_table(
            ["mode", "platform", "DRAM_GB", "DRAM_$", "XP_GB", "XP_$",
             "modulators", "detectors", "MRR_$", "total_$", "increase"],
            [
                (r["mode"], r["platform"], r["dram_gb"], r["dram_price"],
                 r["xpoint_gb"], r["xpoint_price"], r["modulators"],
                 r["detectors"], r["mrr_price"], r["total_cost"], r["cost_increase"])
                for r in rows
            ],
            title="Table III — cost estimation",
        )
    )
    by_key = {(r["mode"], r["platform"]): r for r in rows}
    assert by_key[("planar", "Ohm-BW")]["cost_increase"] == pytest.approx(0.076, abs=0.01)
    assert by_key[("two_level", "Ohm-BW")]["cost_increase"] == pytest.approx(0.135, abs=0.01)
