"""Fig. 18: fraction of channel bandwidth consumed by data migration.

Paper: Auto-rw trims migration bandwidth 8 %/17 %; Ohm-WOM cuts it 54 %
in planar mode and fully eliminates it in two-level mode.
"""

from conftest import bench_once, report

from repro.harness.experiments import BANDWIDTH_PLATFORMS, figure18
from repro.harness.report import format_table
from repro.workloads.registry import WORKLOADS


def test_fig18_bandwidth(benchmark, runner):
    data = bench_once(benchmark, figure18, runner)
    for mode, fig in data.items():
        rows = [
            tuple([w] + [fig.values[(w, p)] for p in BANDWIDTH_PLATFORMS])
            for w in WORKLOADS
        ]
        report()
        report(
            format_table(
                ["workload"] + list(BANDWIDTH_PLATFORMS),
                rows,
                title=f"Fig. 18 ({mode}) — migration share of channel bandwidth",
            )
        )
        means = {p: fig.mean_over_workloads(p) for p in BANDWIDTH_PLATFORMS}
        report("means: " + "  ".join(f"{p}={v:.3f}" for p, v in means.items()))
        assert means["Auto-rw"] < means["Ohm-base"]
        assert means["Ohm-WOM"] < 0.05  # dual routes take migration off-route
        assert means["Ohm-BW"] < 0.05
