"""Fig. 20b: bit error rate of the optical channel per platform/function.

Paper values: Ohm-base rd/wr 7.2e-16; Ohm-WOM auto 6.1e-16, swap
9.9e-16; Ohm-BW worst 9.3e-16 — all under the 1e-15 requirement.
"""

import pytest

from conftest import bench_once, report

from repro.harness.experiments import figure20b
from repro.harness.report import format_table
from repro.optical.ber import RELIABILITY_REQUIREMENT

PAPER = {
    "Ohm-base rd/wr": 7.2e-16,
    "Ohm-WOM auto": 6.1e-16,
    "Ohm-WOM swap": 9.9e-16,
    "Ohm-BW swap": 9.3e-16,
}


def test_fig20b_ber(benchmark):
    budgets = bench_once(benchmark, figure20b)
    report()
    report(
        format_table(
            ["link", "laser_scale", "received_mW", "BER", "meets_1e-15"],
            [
                (b.label, b.laser_scale, b.received_power_mw, b.ber, str(b.reliable))
                for b in budgets
            ],
            title="Fig. 20b — optical link BER",
        )
    )
    measured = {b.label: b.ber for b in budgets}
    for label, paper_ber in PAPER.items():
        assert measured[label] == pytest.approx(paper_ber, rel=0.05), label
    assert all(b.ber <= RELIABILITY_REQUIREMENT for b in budgets)
