"""Ablation studies of Ohm-GPU's design choices (beyond the paper's own
figures, as listed in DESIGN.md):

* migration-function ablation — which of auto-read/write / swap /
  reverse-write contributes how much;
* hot-threshold sensitivity — planar migration aggressiveness;
* WOM coding vs half-coupled transmitters — the bandwidth/laser-power
  trade (Section V-B's two dual-route alternatives).

All three run through the session's shared experiment service (the
``runner`` fixture) as declarative job batches, so they reuse its
executor, memo and persistent cache instead of a private simulation
path.
"""

from conftest import bench_once, report

from repro import MemoryMode, RunConfig, SimulationJob
from repro.core.platforms import PLATFORMS
from repro.harness.report import format_table
from repro.harness.sweeps import sweep_hot_threshold

SIZING = RunConfig(num_warps=96, accesses_per_warp=64)
APP = "backp"


def _jobs(platforms):
    return [
        SimulationJob(p, APP, MemoryMode.PLANAR, SIZING) for p in platforms
    ]


def test_ablation_function_stack(benchmark, runner):
    """Cumulative contribution of each migration function (planar)."""

    def run():
        platforms = ("Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW")
        jobs = _jobs(platforms)
        results = runner.run_jobs(jobs)
        base = results[jobs[0]].exec_time_ps
        return [
            (p, base / results[j].exec_time_ps, results[j].migration_bandwidth_fraction)
            for p, j in zip(platforms, jobs)
        ]

    rows = bench_once(benchmark, run)
    report()
    report(
        format_table(
            ["platform", "speedup_vs_base", "migration_bw"],
            rows,
            title=f"Ablation — migration-function stack ({APP}, planar)",
        )
    )
    speedups = {p: s for p, s, _ in rows}
    assert speedups["Auto-rw"] >= 1.0
    assert speedups["Ohm-WOM"] >= speedups["Auto-rw"]


def test_ablation_hot_threshold(benchmark, runner):
    """Planar hot-threshold sweep: migration volume vs performance."""

    def run():
        points = sweep_hot_threshold(
            workload=APP,
            thresholds=(6, 14, 28, 56),
            sizing=SIZING,
            runner=runner,
        )
        return [
            (
                int(p.value),
                p.result.counters.get("mem.swaps", 0),
                p.result.migration_bandwidth_fraction,
                p.result.exec_time_ps / 1e6,
            )
            for p in points
        ]

    rows = bench_once(benchmark, run)
    report()
    report(
        format_table(
            ["hot_threshold", "swaps", "migration_bw", "exec_us"],
            rows,
            title=f"Ablation — hot-page threshold ({APP}, planar, Ohm-base)",
        )
    )
    swaps = [r[1] for r in rows]
    # Lower thresholds must migrate at least as often as higher ones.
    assert all(a >= b for a, b in zip(swaps, swaps[1:]))


def test_ablation_wom_vs_bw_laser_tradeoff(benchmark, runner):
    """WOM coding saves laser power (2x vs 4x) but costs data-route
    bandwidth during swaps; half-coupled transmitters do the reverse."""

    def run():
        jobs = _jobs(("Ohm-WOM", "Ohm-BW"))
        results = runner.run_jobs(jobs)
        return {
            j.platform: (results[j].exec_time_ps, PLATFORMS[j.platform].laser_scale)
            for j in jobs
        }

    out = bench_once(benchmark, run)
    wom_t, wom_laser = out["Ohm-WOM"]
    bw_t, bw_laser = out["Ohm-BW"]
    report(
        f"\nOhm-WOM: exec {wom_t / 1e6:.1f} us at {wom_laser:.0f}x laser\n"
        f"Ohm-BW : exec {bw_t / 1e6:.1f} us at {bw_laser:.0f}x laser"
    )
    # BW is at least as fast up to scheduling noise (the WOM penalty is
    # small at bench scale), while WOM needs half the laser power — the
    # two sides of the Section V-B trade-off.
    assert bw_t <= wom_t * 1.05
    assert wom_laser < bw_laser
