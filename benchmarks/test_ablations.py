"""Ablation studies of Ohm-GPU's design choices (beyond the paper's own
figures, as listed in DESIGN.md):

* migration-function ablation — which of auto-read/write / swap /
  reverse-write contributes how much;
* hot-threshold sensitivity — planar migration aggressiveness;
* WOM coding vs half-coupled transmitters — the bandwidth/laser-power
  trade (Section V-B's two dual-route alternatives).
"""

from dataclasses import replace

from conftest import bench_once, report

from repro import MemoryMode, RunConfig, default_config
from repro.core.platforms import PLATFORMS
from repro.gpu.gpu import GpuModel
from repro.harness.report import format_table
from repro.workloads.registry import generate_traces, get_workload

SIZING = RunConfig(num_warps=96, accesses_per_warp=64)
APP = "backp"


def _run(platform_name, cfg, traces):
    spec = get_workload(APP)
    return GpuModel(PLATFORMS[platform_name], cfg, spec, traces).run()


def _traces(cfg):
    spec = get_workload(APP)
    return generate_traces(
        spec,
        spec.scaled_footprint(cfg.scale_down),
        num_warps=SIZING.num_warps,
        accesses_per_warp=SIZING.accesses_per_warp,
        page_bytes=cfg.hetero.page_bytes,
    )


def test_ablation_function_stack(benchmark):
    """Cumulative contribution of each migration function (planar)."""

    def run():
        cfg = default_config(MemoryMode.PLANAR)
        traces = _traces(cfg)
        rows = []
        base = None
        for p in ("Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW"):
            r = _run(p, cfg, traces)
            if base is None:
                base = r.exec_time_ps
            rows.append((p, base / r.exec_time_ps, r.migration_bandwidth_fraction))
        return rows

    rows = bench_once(benchmark, run)
    report()
    report(
        format_table(
            ["platform", "speedup_vs_base", "migration_bw"],
            rows,
            title=f"Ablation — migration-function stack ({APP}, planar)",
        )
    )
    speedups = {p: s for p, s, _ in rows}
    assert speedups["Auto-rw"] >= 1.0
    assert speedups["Ohm-WOM"] >= speedups["Auto-rw"]


def test_ablation_hot_threshold(benchmark):
    """Planar hot-threshold sweep: migration volume vs performance."""

    def run():
        rows = []
        for threshold in (6, 14, 28, 56):
            cfg = default_config(MemoryMode.PLANAR)
            cfg = replace(cfg, hetero=replace(cfg.hetero, hot_threshold=threshold))
            traces = _traces(cfg)
            r = _run("Ohm-base", cfg, traces)
            rows.append(
                (
                    threshold,
                    r.counters.get("mem.swaps", 0),
                    r.migration_bandwidth_fraction,
                    r.exec_time_ps / 1e6,
                )
            )
        return rows

    rows = bench_once(benchmark, run)
    report()
    report(
        format_table(
            ["hot_threshold", "swaps", "migration_bw", "exec_us"],
            rows,
            title=f"Ablation — hot-page threshold ({APP}, planar, Ohm-base)",
        )
    )
    swaps = [r[1] for r in rows]
    # Lower thresholds must migrate at least as often as higher ones.
    assert all(a >= b for a, b in zip(swaps, swaps[1:]))


def test_ablation_wom_vs_bw_laser_tradeoff(benchmark):
    """WOM coding saves laser power (2x vs 4x) but costs data-route
    bandwidth during swaps; half-coupled transmitters do the reverse."""

    def run():
        cfg = default_config(MemoryMode.PLANAR)
        traces = _traces(cfg)
        out = {}
        for p in ("Ohm-WOM", "Ohm-BW"):
            r = _run(p, cfg, traces)
            out[p] = (r.exec_time_ps, PLATFORMS[p].laser_scale)
        return out

    out = bench_once(benchmark, run)
    wom_t, wom_laser = out["Ohm-WOM"]
    bw_t, bw_laser = out["Ohm-BW"]
    report(
        f"\nOhm-WOM: exec {wom_t / 1e6:.1f} us at {wom_laser:.0f}x laser\n"
        f"Ohm-BW : exec {bw_t / 1e6:.1f} us at {bw_laser:.0f}x laser"
    )
    # BW is at least as fast up to scheduling noise (the WOM penalty is
    # small at bench scale), while WOM needs half the laser power — the
    # two sides of the Section V-B trade-off.
    assert bw_t <= wom_t * 1.05
    assert wom_laser < bw_laser
