"""Command-line interface: run platforms, workloads and experiments.

Usage examples::

    python -m repro.cli run --platform Ohm-BW --workload pagerank --mode planar
    python -m repro.cli run --platform Ohm-BW --workload gemm_reuse --quick
    python -m repro.cli run --platform Ohm-BW --workload pagerank --profile
    python -m repro.cli compare --workload backp --mode two_level
    python -m repro.cli experiment fig16 --jobs 4 --cache-dir .repro-cache
    python -m repro.cli experiment families --quick
    python -m repro.cli export fig16 --format csv -o fig16.csv
    python -m repro.cli workloads list
    python -m repro.cli workloads describe mix_gemm_chase
    python -m repro.cli workloads record --platform Ohm-BW --workload pagerank -o pr.jsonl.gz
    python -m repro.cli workloads replay --trace pr.jsonl.gz --platform Ohm-BW
    python -m repro.cli batch run --experiment fig16 fig17 --batch-dir .repro-batch --jobs 4
    python -m repro.cli batch status --batch-dir .repro-batch
    python -m repro.cli batch resume --batch-dir .repro-batch --jobs 4
    python -m repro.cli store query --platform Ohm-BW --workload gemm_reuse --format json
    python -m repro.cli store gc --cache-dir .repro-batch/cache
    python -m repro.cli run --platform Ohm-BW --workload pagerank --validate
    python -m repro.cli audit --smoke
    python -m repro.cli audit --jobs 4 --format json -o audit.json
    python -m repro.cli perf -o BENCH_perf.json
    python -m repro.cli list

``--jobs N`` fans the experiment's simulation matrix out over N worker
processes; ``--cache-dir`` persists every result so repeated
invocations are near-instant (cache hits are logged).  ``export`` emits
an experiment's rows as json or csv via the structured emitters.
``perf`` benchmarks the simulator itself (events/sec per calibrated
case, written to ``BENCH_perf.json``); ``run --profile`` wraps one
simulation in cProfile for hot-path hunts.

The ``batch`` group fronts the sharded batch scheduler (DESIGN.md
section 9): ``batch run`` shards one or more experiments' job matrices
into a journaled, resumable batch; ``batch status`` reports per-batch
shard progress; ``batch resume`` picks every incomplete batch up
exactly where its journal left off.  Any simulating command also takes
``--batch-dir`` directly to journal its own matrix.  The ``store``
group queries the persistent result cache by job facets (``store
query``) and reclaims stale-schema entries (``store gc``).

``--validate`` (any simulating command) runs with the cross-layer
invariant audit armed: a violated conservation law aborts the command
with every recorded violation.  ``audit`` sweeps the whole
workload-registry x platform x mode matrix under a collecting auditor
and reports per-job verdicts (table/json/csv); ``--smoke`` is the
CI-sized gate and ``--journal`` makes the sweep crash-resumable.  See
DESIGN.md section 10 for the invariant catalogue.

The ``workloads`` group fronts the workload subsystem (see
docs/WORKLOADS.md): ``list``/``describe`` introspect the registry,
``record`` dumps a run's per-warp access stream to a compact JSONL
trace, and ``replay`` (or any ``--workload trace:<path>``) re-simulates
it — bit-identically when configuration matches, as the printed result
fingerprints show.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro import MemoryMode, RunConfig, Runner
from repro.core.platforms import PLATFORMS
from repro.harness import experiments  # noqa: F401  (populates the registry)
from repro.harness.batch import DEFAULT_SHARD_SIZE, BatchError, BatchRun
from repro.harness.cache import ResultCache
from repro.harness.executor import make_executor
from repro.harness.store import STORE_COLUMNS, ResultStore
from repro.harness.registry import (
    EXPERIMENTS,
    ExperimentResult,
    run_spec,
)
from repro.harness.report import EMITTERS, format_table
from repro.sim.audit import InvariantError
from repro.workloads.registry import FAMILIES, REGISTRY, get_workload_def
from repro.workloads.trace import TraceFormatError


def _mode(name: str) -> MemoryMode:
    return MemoryMode(name)


def _positive_int(text: str) -> int:
    """argparse ``type=`` wrapper for flags that must be >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _resolve_workload(name: str):
    """Resolve a workload name to its def, exiting cleanly on failure.

    Accepts any registered name plus ``trace:<path>`` replays, which is
    why ``--workload`` is validated here instead of with a static
    argparse ``choices`` list.
    """
    try:
        return get_workload_def(name)
    except KeyError as exc:
        raise SystemExit(f"repro: {exc.args[0]}")
    except FileNotFoundError as exc:
        raise SystemExit(f"repro: trace file not found: {exc.filename or exc}")
    except TraceFormatError as exc:
        raise SystemExit(f"repro: {exc}")
    except OSError as exc:
        # gzip.BadGzipFile, permission errors, ... — anything the trace
        # reader hits below the format layer.
        raise SystemExit(f"repro: cannot read trace: {exc}")


def _workload(name: str) -> str:
    """argparse ``type=`` wrapper: validate, return the name unchanged."""
    _resolve_workload(name)
    return name


def _print_rows(result: ExperimentResult) -> None:
    """Generic experiment printer: the spec's rows as an ASCII table."""
    rows = result.rows
    columns = list(result.spec.columns)
    print(
        format_table(
            columns,
            [tuple(r.get(c) for c in columns) for r in rows],
            title=result.spec.title,
        )
    )


def _print_two_mode(result: ExperimentResult) -> None:
    for mode, fig in result.payload.items():
        platforms = sorted({p for (_, p) in fig.values})
        print(f"\n== {fig.name} ({mode}) ==")
        for p in platforms:
            print(f"  {p:20s} {fig.mean_over_workloads(p):.3f}")


def _print_fig3(result: ExperimentResult) -> None:
    print(
        format_table(
            ["workload", "data_move", "storage", "gpu"],
            [
                (r["workload"], r["data_move_frac"], r["storage_frac"], r["gpu_frac"])
                for r in result.payload
            ],
            title="Fig. 3a",
        )
    )


def _print_fig20b(result: ExperimentResult) -> None:
    for b in result.payload:
        print(f"  {b.label:16s} BER {b.ber:.2e} ({'OK' if b.reliable else 'FAIL'})")


def _print_fig15(result: ExperimentResult) -> None:
    for r in result.payload:
        print(
            f"  {r['layout']:9s} total {r['total']:2d} "
            f"(reduction {r['reduction_vs_general']:.0%})"
        )


def _print_table3(result: ExperimentResult) -> None:
    for r in result.payload:
        print(
            f"  {r['mode']:9s} {r['platform']:9s} ${r['total_cost']:.0f} "
            f"(+{r['cost_increase']:.1%})"
        )


def _print_headline(result: ExperimentResult) -> None:
    h = result.payload
    print(f"  Ohm-BW vs Origin  : {h['speedup_vs_origin']:.2f}x (paper 2.81x)")
    print(f"  Ohm-BW vs Ohm-base: {h['speedup_vs_ohm_base']:.2f}x (paper 1.27x)")


# Figure-specific pretty-printers; anything not listed falls back to the
# generic row table, so newly registered experiments print for free.
PRINTERS = {
    "fig3": _print_fig3,
    "fig8": _print_two_mode,
    "fig16": _print_two_mode,
    "fig17": _print_two_mode,
    "fig18": _print_two_mode,
    "fig20b": _print_fig20b,
    "fig15": _print_fig15,
    "table3": _print_table3,
    "fig21": _print_two_mode,
    "headline": _print_headline,
}


def _run_config(args: argparse.Namespace) -> RunConfig:
    validate = bool(getattr(args, "validate", False))
    if getattr(args, "quick", False):
        return RunConfig(num_warps=48, accesses_per_warp=32, validate=validate)
    return RunConfig(
        num_warps=args.warps, accesses_per_warp=args.accesses, validate=validate
    )


def _enable_log(name: str) -> None:
    """Route one harness logger's INFO records to stderr."""
    log = logging.getLogger(name)
    log.setLevel(logging.INFO)
    if not log.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
        log.addHandler(handler)


def _make_runner(args: argparse.Namespace) -> Runner:
    """Assemble the experiment service the flags describe."""
    cache = None
    if getattr(args, "cache_dir", None):
        # Surface per-job cache hits on stderr (acceptance: hits logged).
        _enable_log("repro.cache")
        try:
            cache = ResultCache(args.cache_dir)
        except OSError as exc:
            raise SystemExit(f"repro: --cache-dir: {exc}")
    batch_dir = getattr(args, "batch_dir", None)
    if batch_dir:
        # Surface per-shard progress and skip decisions on stderr.
        _enable_log("repro.batch")
    executor = make_executor(getattr(args, "jobs", 1))
    try:
        return Runner(
            _run_config(args),
            executor=executor,
            cache=cache,
            batch_dir=batch_dir,
            shard_size=getattr(args, "shard_size", DEFAULT_SHARD_SIZE),
        )
    except OSError as exc:
        # Runner creates <batch-dir>/cache eagerly when batching.
        raise SystemExit(f"repro: --batch-dir: {exc}")


def _finish(runner: Runner) -> None:
    if runner.cache is not None:
        print(runner.cache.summary(), file=sys.stderr)


def _print_result(result) -> None:
    """The standard one-run report (also used by record/replay)."""
    print(f"platform        : {result.platform}")
    print(f"workload        : {result.workload} ({result.mode})")
    print(f"instructions    : {result.instructions}")
    print(f"exec time       : {result.exec_time_ps / 1e6:.2f} us")
    print(f"mean mem latency: {result.mean_mem_latency_ps / 1e3:.1f} ns")
    print(f"migration bw    : {result.migration_bandwidth_fraction:.1%}")
    tenants = sorted(
        {k.split(".")[1] for k in result.counters if k.startswith("tenant.")}
    )
    for t in tenants:
        c = result.counters
        print(
            f"tenant {t:9s} : {c.get(f'tenant.{t}.warps', 0):.0f} warps, "
            f"{c.get(f'tenant.{t}.instructions', 0):.0f} instructions, "
            f"finished at {c.get(f'tenant.{t}.finish_ps', 0) / 1e6:.2f} us"
        )


def _record_to(path: str, args: argparse.Namespace) -> int:
    """Run one simulation with the trace recorder and save the stream."""
    from repro.harness.executor import SimulationJob, execute_job_recorded
    from repro.workloads.trace import TraceMeta, save_traces

    job = SimulationJob(
        args.platform, args.workload, _mode(args.mode), _run_config(args)
    )
    result, recorded = execute_job_recorded(job)
    defn = get_workload_def(args.workload)
    meta = TraceMeta(
        workload=defn.spec.name,
        platform=args.platform,
        mode=args.mode,
        line_bytes=job.resolved_config().gpu.line_bytes,
        num_warps=len(recorded),
        spec=defn.spec,
    )
    save_traces(path, meta, recorded)
    _print_result(result)
    print(f"fingerprint     : {result.fingerprint()}")
    print(f"wrote trace     : {path} ({len(recorded)} warps)", file=sys.stderr)
    return 0


def _run_stdin_trace(args: argparse.Namespace) -> int:
    """`repro run --stdin-trace`: simulate a trace piped on stdin.

    The terminal stage of a ``repro trace ...`` pipeline: the stream is
    replayed directly off the pipe (single pass, never materialized),
    under the spec recorded in the trace header.
    """
    from repro.config import default_config
    from repro.gpu.gpu import GpuModel

    source = _trace_source_arg("-")
    cfg = default_config(_mode(args.mode))
    run_cfg = _run_config(args)
    if run_cfg.waveguides != 1:
        cfg = cfg.with_waveguides(run_cfg.waveguides)
    auditor = None
    if run_cfg.validate:
        from repro.sim.audit import Auditor

        auditor = Auditor(strict=True)
    result = GpuModel(
        PLATFORMS[args.platform], cfg, source.meta.spec, source, auditor=auditor
    ).run()
    _print_result(result)
    print(f"fingerprint     : {result.fingerprint()}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """`repro run`: one simulation (optionally profiled/recorded)."""
    if args.stdin_trace:
        return _run_stdin_trace(args)
    if args.record_trace:
        return _record_to(args.record_trace, args)
    runner = _make_runner(args)
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        result = runner.run(args.platform, args.workload, _mode(args.mode))
        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
    else:
        result = runner.run(args.platform, args.workload, _mode(args.mode))
    _print_result(result)
    _finish(runner)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """`repro compare`: every platform on one workload, one table."""
    runner = _make_runner(args)
    mode = _mode(args.mode)
    results = runner.matrix(tuple(PLATFORMS), (args.workload,), mode)
    base = results[("Ohm-base", args.workload)]
    rows = []
    for name in PLATFORMS:
        r = results[(name, args.workload)]
        rows.append(
            (
                name,
                r.performance / base.performance,
                r.mean_mem_latency_ps / 1e3,
                r.migration_bandwidth_fraction,
            )
        )
    print(
        format_table(
            ["platform", "perf_vs_base", "latency_ns", "migration_bw"],
            rows,
            title=f"{args.workload} ({mode.value})",
        )
    )
    _finish(runner)
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """`repro experiment`: regenerate a registered figure/table."""
    runner = _make_runner(args)
    result = run_spec(EXPERIMENTS[args.name], runner)
    PRINTERS.get(args.name, _print_rows)(result)
    _finish(runner)
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """`repro export`: emit an experiment's rows as json/csv."""
    runner = _make_runner(args)
    result = run_spec(EXPERIMENTS[args.name], runner)
    text = EMITTERS[args.format](result.rows, columns=result.spec.columns)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {len(result.rows)} rows to {args.output}", file=sys.stderr)
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    _finish(runner)
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    """`repro audit`: invariant-check the workload x platform matrix."""
    import dataclasses
    import json

    from repro.harness.audit import (
        AUDIT_COLUMNS,
        DEFAULT_SIZING,
        SMOKE_SIZING,
        audit_jobs,
        audit_report,
        run_audit,
    )

    _enable_log("repro.audit")
    run_cfg = SMOKE_SIZING if args.smoke else DEFAULT_SIZING
    if args.warps:
        run_cfg = dataclasses.replace(run_cfg, num_warps=args.warps)
    if args.accesses:
        run_cfg = dataclasses.replace(run_cfg, accesses_per_warp=args.accesses)
    try:
        jobs = audit_jobs(
            run_cfg=run_cfg,
            platforms=args.platform or None,
            workloads=args.workload or None,
            modes=[_mode(args.mode)] if args.mode else None,
            smoke=args.smoke,
        )
    except KeyError as exc:
        raise SystemExit(f"repro: {exc.args[0]}")
    try:
        outcomes = run_audit(
            jobs, executor=make_executor(args.jobs), journal=args.journal
        )
    except OSError as exc:
        raise SystemExit(f"repro: --journal: {exc}")
    report = audit_report(outcomes)
    failing = [o for o in outcomes if not o.ok]
    if args.format == "table":
        shown = failing or []
        text = ""
        if shown:
            rows = [o.to_row() for o in shown]
            text = format_table(
                list(AUDIT_COLUMNS),
                [tuple(r[c] for c in AUDIT_COLUMNS) for r in rows],
                title="invariant violations",
            ) + "\n"
    elif args.format == "json":
        text = json.dumps(report, indent=2) + "\n"
    else:
        rows = [o.to_row() for o in outcomes]
        text = EMITTERS["csv"](rows, columns=AUDIT_COLUMNS)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote audit report to {args.output}", file=sys.stderr)
    elif text:
        print(text, end="" if text.endswith("\n") else "\n")
    verdict = "CLEAN" if report["ok"] else "VIOLATED"
    print(
        f"audit: {report['jobs']} jobs, {report['checks']} checks, "
        f"{report['violations']} violation(s) in {len(failing)} job(s) "
        f"— {verdict}",
        file=sys.stderr,
    )
    return 0 if report["ok"] else 1


def cmd_perf(args: argparse.Namespace) -> int:
    """`repro perf`: benchmark the simulator core (events/sec)."""
    from repro.harness.perf import (
        PERF_CASES,
        SMOKE_CASES,
        bench_payload,
        compare_bench,
        compare_bench_memory,
        git_revision,
        load_bench,
        run_suite,
        write_bench,
    )

    def _mib(n):
        return f"{n / 2**20:.1f}" if n is not None else "n/a"

    cases = SMOKE_CASES if args.smoke else PERF_CASES
    if args.journal:
        try:
            Path(args.journal).parent.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise SystemExit(f"repro: --journal: {exc}")
    measurements = run_suite(cases, repeats=args.repeats, journal=args.journal)
    rows = []
    for m in measurements:
        speedup = m.speedup_vs_baseline
        rows.append(
            (
                m.case,
                m.events,
                m.wall_s * 1e3,
                m.events_per_sec,
                m.baseline_events_per_sec or 0.0,
                f"{speedup:.2f}x" if speedup else "n/a",
                _mib(m.trace_peak_bytes),
                _mib(m.peak_rss_bytes),
            )
        )
    print(
        format_table(
            [
                "case",
                "events",
                "wall_ms",
                "events_per_sec",
                "baseline_eps",
                "speedup",
                "trace_peak_mib",
                "peak_rss_mib",
            ],
            rows,
            title="simulation-core performance (best of "
            f"{args.repeats} runs per case)",
        )
    )
    from datetime import datetime, timezone

    timestamp = datetime.now(timezone.utc).isoformat(timespec="seconds")  # reprolint: allow(R3) perf-history metadata stamp; never feeds a fingerprint
    if args.output:
        payload = write_bench(
            args.output, measurements, timestamp=timestamp, git_rev=git_revision()
        )
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        payload = bench_payload(measurements)
    if args.compare:
        old = load_bench(args.compare)
        if old is None:
            raise SystemExit(f"repro: --compare: cannot read {args.compare}")
        comparisons, regressions = compare_bench(old, payload)
        if not comparisons:
            print(
                f"--compare: no cases in common with {args.compare}; "
                "nothing to gate",
                file=sys.stderr,
            )
            return 0
        print(
            format_table(
                ["case", "old_eps", "new_eps", "ratio", "verdict"],
                [
                    (
                        c.case,
                        c.old_events_per_sec,
                        c.new_events_per_sec,
                        f"{c.ratio:.3f}",
                        "REGRESSION" if c in regressions else "ok",
                    )
                    for c in comparisons
                ],
                title=f"perf comparison vs {args.compare} (gate: >10% loss)",
            )
        )
        mem_comparisons, mem_regressions = compare_bench_memory(old, payload)
        if mem_comparisons:
            print(
                format_table(
                    ["case", "field", "old_mib", "new_mib", "ratio", "verdict"],
                    [
                        (
                            c.case,
                            c.field,
                            _mib(c.old_bytes),
                            _mib(c.new_bytes),
                            f"{c.ratio:.3f}",
                            "REGRESSION" if c in mem_regressions else "ok",
                        )
                        for c in mem_comparisons
                    ],
                    title=f"peak-memory comparison vs {args.compare} "
                    "(gate: >25% growth)",
                )
            )
        if regressions or mem_regressions:
            names = ", ".join(
                dict.fromkeys(
                    [c.case for c in regressions]
                    + [c.case for c in mem_regressions]
                )
            )
            print(f"repro perf: regression gate FAILED: {names}", file=sys.stderr)
            return 1
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """`repro lint`: run reprolint (DESIGN.md section 15) on src/repro.

    The linter lives in ``tools/reprolint`` next to the sources it
    checks, so this command needs the repository checkout — an
    installed-only ``repro`` points the user at the in-repo form.
    """
    repo_root = Path(__file__).resolve().parents[2]
    if not (repo_root / "tools" / "reprolint").is_dir():
        raise SystemExit(
            "repro: lint needs the repository checkout "
            "(tools/reprolint not found; run `python -m tools.reprolint` "
            "from the repo root)"
        )
    if str(repo_root) not in sys.path:
        sys.path.insert(0, str(repo_root))
    from tools.reprolint.cli import main as lint_main

    forwarded: list = list(args.paths)
    forwarded += ["--format", args.format]
    if args.select:
        forwarded += ["--select", args.select]
    if args.show_suppressed:
        forwarded.append("--show-suppressed")
    if args.list_rules:
        forwarded.append("--list-rules")
    return lint_main(forwarded)


def cmd_list(_args: argparse.Namespace) -> int:
    """`repro list`: one-line inventory of every registered name."""
    print("platforms :", ", ".join(PLATFORMS))
    print("workloads :", ", ".join(REGISTRY))
    print("modes     :", ", ".join(m.value for m in MemoryMode))
    print("experiments:", ", ".join(EXPERIMENTS))
    return 0


def cmd_workloads_list(_args: argparse.Namespace) -> int:
    """`repro workloads list`: the registry as a table."""
    rows = [
        (defn.name, defn.family, defn.summary) for defn in REGISTRY.values()
    ]
    print(format_table(["name", "family", "summary"], rows, title="workloads"))
    return 0


def cmd_workloads_describe(args: argparse.Namespace) -> int:
    """`repro workloads describe`: spec, params and family docs."""
    defn = _resolve_workload(args.name)
    family = FAMILIES[defn.family]
    print(f"{defn.name}  [family: {defn.family}]")
    if defn.summary:
        print(f"  {defn.summary}\n")
    spec = defn.spec
    print(
        f"  characteristics: APKI {spec.apki:.0f}, {spec.read_ratio:.0%} reads, "
        f"suite {spec.suite}, footprint {spec.footprint_bytes / 2**30:.1f} GiB"
    )
    if defn.params:
        print("  parameters:")
        for key, value in defn.params:
            print(f"    {key} = {value}")
    print("\n  family documentation:")
    for line in family.doc.splitlines():
        print(f"    {line}")
    return 0


def cmd_workloads_record(args: argparse.Namespace) -> int:
    """`repro workloads record`: simulate once, dump the trace."""
    return _record_to(args.output, args)


def cmd_workloads_replay(args: argparse.Namespace) -> int:
    """`repro workloads replay`: re-simulate a recorded trace."""
    args.workload = _workload(f"trace:{args.trace}")
    runner = _make_runner(args)
    result = runner.run(args.platform, args.workload, _mode(args.mode))
    _print_result(result)
    print(f"fingerprint     : {result.fingerprint()}")
    _finish(runner)
    return 0


# --------------------------------------------------------------------
# `repro scenario` — open-loop traffic scenarios (DESIGN.md section 14)
# --------------------------------------------------------------------


def _resolve_scenario(name: str):
    from repro.scenarios import get_scenario

    try:
        return get_scenario(name)
    except KeyError as exc:
        raise SystemExit(f"repro: {exc.args[0]}")


def cmd_scenario_list(_args: argparse.Namespace) -> int:
    """`repro scenario list`: the scenario registry as a table."""
    from repro.scenarios import SCENARIOS

    rows = [
        (
            spec.name,
            spec.arrivals.kind,
            spec.degradation.kind if spec.degradation else "-",
            spec.title,
        )
        for spec in SCENARIOS.values()
    ]
    print(
        format_table(
            ["name", "arrivals", "degradation", "title"], rows, title="scenarios"
        )
    )
    return 0


def cmd_scenario_describe(args: argparse.Namespace) -> int:
    """`repro scenario describe`: spec, mix, policy and schedule."""
    spec = _resolve_scenario(args.name)
    print(f"{spec.name}  [{spec.title}]")
    if spec.summary:
        print(f"  {spec.summary}\n")
    a = spec.arrivals
    print(
        f"  arrivals   : {a.kind}, offered load {a.offered_load:.0%}"
        + (
            f", on-fraction {a.on_fraction:.0%}, period {a.period_frac:.0%} "
            "of horizon"
            if a.kind == "bursty"
            else f", depth {a.depth:.0%}, period {a.period_frac:.0%} of horizon"
            if a.kind == "diurnal"
            else ""
        )
    )
    print(
        f"  policy     : {spec.capacity_slots} SM slots, FIFO queue limit "
        f"{spec.queue_limit}, horizon {spec.horizon_services:.0f} mean "
        f"services, {spec.num_epochs} epochs, seed {spec.seed}"
    )
    if spec.degradation:
        params = ", ".join(f"{k}={v}" for k, v in spec.degradation.params)
        print(f"  degradation: {spec.degradation.kind} ({params or 'defaults'})")
    print("  tenants:")
    for t in spec.tenants:
        print(
            f"    {t.name:10s} {t.workload} on {t.platform}/{t.mode}, "
            f"weight {t.weight:g}, {t.slots} slot(s), "
            f"SLO {t.slo_multiplier:g}x solo service"
        )
    return 0


def _print_scenario_result(result) -> None:
    print(f"scenario        : {result.scenario} (seed {result.seed})")
    print(f"horizon         : {result.horizon_ps / 1e6:.2f} us")
    t = result.totals
    print(
        f"arrivals        : {t['arrivals']} "
        f"(admitted {t['admitted']}, rejected {t['rejected']})"
    )
    print(
        f"completed       : {t['completed']} "
        f"({t['in_flight']} in flight at horizon)"
    )
    print(
        f"slo violations  : {t['slo_violations']}   peak slots "
        f"{t['max_slots_used']}/{result.capacity_slots}, peak queue "
        f"{t['max_queued']}"
    )
    if result.degradation:
        pairs = ", ".join(f"{k}={v:g}" for k, v in result.degradation.items())
        print(f"degradation     : {pairs}")
    rows = [
        (
            name,
            f"{m['arrivals']:.0f}",
            f"{m['rejected']:.0f}",
            f"{m['completed']:.0f}",
            f"{m['p50_latency_ps'] / 1e6:.2f}",
            f"{m['p99_latency_ps'] / 1e6:.2f}",
            f"{m['p99_queue_ps'] / 1e6:.2f}",
            f"{m['slo_violations']:.0f}",
        )
        for name, m in result.tenants.items()
    ]
    print(
        format_table(
            [
                "tenant", "arr", "rej", "done",
                "p50 us", "p99 us", "q-p99 us", "slo-viol",
            ],
            rows,
            title="per-tenant",
        )
    )
    print(f"fingerprint     : {result.fingerprint()}")


def cmd_scenario_run(args: argparse.Namespace) -> int:
    """`repro scenario run`: one open-loop scenario end to end."""
    from repro.scenarios import run_scenario

    spec = _resolve_scenario(args.name)
    runner = _make_runner(args)
    result = run_scenario(spec, runner, validate=bool(args.validate))
    if args.format == "json":
        payload = result.to_dict()
        payload["fingerprint"] = result.fingerprint()
        payload["checks_run"] = result.checks_run
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.output:
            Path(args.output).write_text(text + "\n")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
    else:
        _print_scenario_result(result)
        if result.checks_run:
            print(f"audit           : {result.checks_run} checks passed")
    _finish(runner)
    return 0


# --------------------------------------------------------------------
# `repro trace` — composable NDJSON pipeline stages
# --------------------------------------------------------------------

def _trace_source_arg(path: str):
    """Open a trace stage's input: a path, or ``-`` for stdin."""
    from repro.workloads.trace import FileTraceSource

    try:
        if path == "-":
            return FileTraceSource(sys.stdin, label="<stdin>")
        return FileTraceSource(path)
    except FileNotFoundError as exc:
        raise SystemExit(f"repro: trace file not found: {exc.filename or exc}")
    except TraceFormatError as exc:
        raise SystemExit(f"repro: {exc}")
    except OSError as exc:
        raise SystemExit(f"repro: cannot read trace: {exc}")


def _pump_stage(source, transform=None) -> int:
    """Round-robin a source's blocks through ``transform`` onto stdout.

    The stage skeleton every ``repro trace`` subcommand shares: pull one
    block per live warp per round (so downstream readers park at most
    one round), apply ``transform(warp_id, stream, block) -> block |
    None`` (``None`` drops the warp — its stream is ended immediately,
    preserving the warp count and therefore SM placement), and emit the
    chunked v2 format.  Peak memory is one block per warp regardless of
    trace length.
    """
    from repro.workloads.trace import ChunkedTraceWriter

    writer = ChunkedTraceWriter(sys.stdout, source.meta)
    live = source.streams()
    # Dropped warps keep being pulled one block per round (discarded,
    # never written): their records would otherwise park unboundedly in
    # the shared demultiplexer while the surviving warps stream past
    # them.  Once no warp is being *written* any more the stage exits
    # without draining — early termination, upstream sees SIGPIPE.
    drains: list = []
    try:
        while live:
            still = []
            for stream in live:
                block = stream.next_block()
                if block is None:
                    writer.end_warp(stream.warp_id)
                    continue
                if transform is not None:
                    block = transform(stream.warp_id, stream, block)
                    if block is None:
                        writer.end_warp(stream.warp_id)
                        drains.append(stream)
                        continue
                writer.write_block(stream.warp_id, *block, tenant=stream.tenant)
                still.append(stream)
            live = still
            drains = [s for s in drains if s.next_block() is not None]
        writer.finish()
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream (e.g. `repro trace head`) stopped reading: normal
        # pipeline early termination, not an error.  Point stdout at
        # /dev/null so interpreter shutdown doesn't re-raise on flush.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141  # conventional 128 + SIGPIPE
    return 0


def _parse_warp_set(text: str, num_warps: int) -> set:
    """``"0,2-5,9"`` -> {0, 2, 3, 4, 5, 9}, validated against the count."""
    out: set = set()
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        lo, _, hi = part.partition("-")
        try:
            a = int(lo)
            b = int(hi) if hi else a
        except ValueError:
            raise SystemExit(f"repro: bad warp range {part!r}")
        if a > b or a < 0 or b >= num_warps:
            raise SystemExit(
                f"repro: warp range {part!r} outside 0..{num_warps - 1}"
            )
        out.update(range(a, b + 1))
    if not out:
        raise SystemExit("repro: --warps selected no warps")
    return out


def cmd_trace_cat(args: argparse.Namespace) -> int:
    """`repro trace cat`: normalize any trace to chunked NDJSON."""
    return _pump_stage(_trace_source_arg(args.trace))


def cmd_trace_filter(args: argparse.Namespace) -> int:
    """`repro trace filter`: keep selected warps, empty out the rest.

    Dropped warps stay in the file as legitimately empty streams (an
    end marker and nothing else), so the warp count — and with it each
    surviving warp's SM placement — is preserved on replay.
    """
    source = _trace_source_arg(args.trace)
    keep_warps = (
        _parse_warp_set(args.warps, source.num_warps) if args.warps else None
    )
    keep_tenant = args.tenant

    def transform(warp_id, stream, block):
        if keep_warps is not None and warp_id not in keep_warps:
            return None
        # The tenant label rides the warp's first record, so by the
        # time a block arrives the stream knows it.
        if keep_tenant is not None and stream.tenant != keep_tenant:
            return None
        return block

    return _pump_stage(source, transform)


def cmd_trace_remap(args: argparse.Namespace) -> int:
    """`repro trace remap`: shift (and optionally wrap) every address."""
    offset = args.offset
    wrap = args.wrap

    def transform(warp_id, stream, block):
        gaps, addrs, writes = block
        if wrap:
            addrs = [(a + offset) % wrap for a in addrs]
        else:
            addrs = [a + offset for a in addrs]
            if offset < 0 and min(addrs) < 0:
                raise SystemExit(
                    "repro: remap produced a negative address "
                    "(offset too negative; add --wrap)"
                )
        return (gaps, addrs, writes)

    return _pump_stage(_trace_source_arg(args.trace), transform)


def cmd_trace_scale(args: argparse.Namespace) -> int:
    """`repro trace scale`: stretch compute gaps / repeat the stream.

    ``--gaps F`` rescales arithmetic intensity; ``--repeat N`` replays
    each warp's stream N times end to end (the cheap way to make a
    long-running trace out of a short recording).  ``--repeat`` needs a
    re-streamable input, i.e. a file path — stdin can only be read
    once and buffering it whole would defeat the streaming pipeline.
    """
    from repro.workloads.trace import ChunkedTraceWriter

    factor = args.gaps
    repeat = args.repeat
    if repeat < 1:
        raise SystemExit("repro: --repeat must be >= 1")
    if repeat > 1 and args.trace == "-":
        raise SystemExit(
            "repro: --repeat needs a file path (stdin is single-pass); "
            "write the upstream stage to a file first"
        )

    def transform(warp_id, stream, block):
        if factor == 1.0:
            return block
        gaps, addrs, writes = block
        return ([max(0, int(g * factor)) for g in gaps], addrs, writes)

    if repeat == 1:
        return _pump_stage(_trace_source_arg(args.trace), transform)
    source = _trace_source_arg(args.trace)
    writer = ChunkedTraceWriter(sys.stdout, source.meta)
    try:
        for _rep in range(repeat):
            live = source.streams()
            while live:
                still = []
                for stream in live:
                    block = stream.next_block()
                    if block is None:
                        continue
                    block = transform(stream.warp_id, stream, block)
                    writer.write_block(
                        stream.warp_id, *block, tenant=stream.tenant
                    )
                    still.append(stream)
                live = still
        writer.finish()
        sys.stdout.flush()
    except BrokenPipeError:
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    return 0


def cmd_trace_head(args: argparse.Namespace) -> int:
    """`repro trace head`: first N ops of every warp, then stop reading.

    Ends each warp once its budget is spent and exits as soon as every
    warp is done — an upstream stage blocked on the pipe sees SIGPIPE,
    which is how the pipeline terminates early without draining the
    whole input.
    """
    budget = args.ops
    if budget < 0:
        raise SystemExit("repro: --ops must be >= 0")
    remaining = {}

    def transform(warp_id, stream, block):
        left = remaining.setdefault(warp_id, budget)
        if left <= 0:
            return None
        gaps, addrs, writes = block
        if len(addrs) > left:
            gaps, addrs, writes = gaps[:left], addrs[:left], writes[:left]
        remaining[warp_id] = left - len(addrs)
        return (gaps, addrs, writes)

    return _pump_stage(_trace_source_arg(args.trace), transform)


def _batch_cache(args: argparse.Namespace, root) -> ResultCache:
    """The cache a batch command stores/merges results through."""
    try:
        return ResultCache(args.cache_dir or (root / "cache"))
    except OSError as exc:
        raise SystemExit(f"repro: --cache-dir: {exc}")


def _print_batch_statuses(batches) -> None:
    rows = [
        tuple(b.status().to_row()[c] for c in ("batch", "label", "shards", "jobs", "state"))
        for b in batches
    ]
    print(
        format_table(
            ["batch", "label", "shards", "jobs", "state"], rows, title="batches"
        )
    )


def cmd_batch_run(args: argparse.Namespace) -> int:
    """`repro batch run`: shard experiments into a journaled batch."""
    from repro.harness.experiments import batch_jobs_for

    _enable_log("repro.batch")
    root = Path(args.batch_dir)
    jobs = batch_jobs_for(tuple(args.experiments), _run_config(args))
    if not jobs:
        raise SystemExit(
            "repro: the selected experiments are analytic (no simulations); "
            "nothing to batch"
        )
    try:
        # BatchError (tampered/older-schema manifest) is handled
        # uniformly in main().
        batch = BatchRun.open(
            root, jobs,
            shard_size=args.shard_size, label=",".join(args.experiments),
        )
    except OSError as exc:
        raise SystemExit(f"repro: --batch-dir: {exc}")
    batch.run(make_executor(args.jobs), _batch_cache(args, root))
    _print_batch_statuses([batch])
    return 0


def cmd_batch_status(args: argparse.Namespace) -> int:
    """`repro batch status`: shard progress of every batch under a root."""
    batches = BatchRun.discover(Path(args.batch_dir))
    if not batches:
        print(f"no batches under {args.batch_dir}")
        return 0
    _print_batch_statuses(batches)
    return 0


def cmd_batch_resume(args: argparse.Namespace) -> int:
    """`repro batch resume`: finish every incomplete batch's journal."""
    _enable_log("repro.batch")
    root = Path(args.batch_dir)
    batches = BatchRun.discover(root)
    if args.id:
        batches = [b for b in batches if b.batch_id.startswith(args.id)]
        if not batches:
            raise SystemExit(f"repro: no batch under {root} matches id {args.id!r}")
    if not batches:
        print(f"no batches under {root}", file=sys.stderr)
        return 0
    pending = [b for b in batches if not b.status().done]
    executor = make_executor(args.jobs)
    cache = _batch_cache(args, root)
    # Resume *every* batch, not just journal-incomplete ones: run() is
    # a cheap cache probe for a healthy finished batch, and it re-runs
    # shards whose journaled results were pruned from the cache.
    for batch in batches:
        batch.resume(executor, cache)
    if not pending:
        print(
            f"no incomplete batches under {root}; cached results verified",
            file=sys.stderr,
        )
    _print_batch_statuses(batches)
    return 0


def cmd_store_query(args: argparse.Namespace) -> int:
    """`repro store query`: filter cached results by job facets."""
    store = ResultStore(args.cache_dir)
    entries = store.query(
        platform=args.platform,
        workload=args.workload,
        mode=args.mode,
        include_stale=args.include_stale,
    )
    rows = store.rows(entries)
    if args.format == "table":
        text = format_table(
            list(STORE_COLUMNS),
            [tuple(r.get(c) for c in STORE_COLUMNS) for r in rows],
            title=f"store {store.cache_dir} ({len(rows)} entries)",
        ) + "\n"
    else:
        text = EMITTERS[args.format](rows, columns=STORE_COLUMNS)
        if not text.endswith("\n"):
            text += "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {len(rows)} entries to {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    if store.skipped:
        print(f"store: skipped {store.skipped} unreadable entries", file=sys.stderr)
    return 0


def cmd_store_gc(args: argparse.Namespace) -> int:
    """`repro store gc`: reclaim stale-schema and orphaned entries."""
    store = ResultStore(args.cache_dir)
    doomed = store.gc(dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(f"store gc: {verb} {len(doomed)} file(s) from {store.cache_dir}")
    for path in doomed:
        print(f"  {path.name}")
    return 0


DEFAULT_SERVICE_ROOT = ".repro-service"
DEFAULT_SERVICE_SOCKET = str(Path(DEFAULT_SERVICE_ROOT) / "serve.sock")


def cmd_serve(args: argparse.Namespace) -> int:
    """`repro serve`: the simulation service daemon (blocking)."""
    from repro.harness.service import ServiceError, serve

    _enable_log("repro.service")
    _enable_log("repro.batch")
    address = args.socket or str(Path(args.root) / "serve.sock")
    try:
        return serve(
            args.root, address, ttl_s=args.lease_ttl, poll_s=args.poll
        )
    except (ServiceError, OSError) as exc:
        raise SystemExit(f"repro: serve: {exc}")


def cmd_worker(args: argparse.Namespace) -> int:
    """`repro worker`: lease and execute shards from a service root."""
    from repro.harness.service import run_worker

    _enable_log("repro.service")
    _enable_log("repro.batch")
    cache = None
    if args.cache_dir:
        try:
            cache = ResultCache(args.cache_dir)
        except OSError as exc:
            raise SystemExit(f"repro: --cache-dir: {exc}")
    stats = run_worker(
        args.root,
        args.owner,
        ttl_s=args.lease_ttl,
        poll_s=args.poll,
        drain=args.drain,
        throttle_s=args.throttle,
        executor=make_executor(args.jobs),
        cache=cache,
        max_shards=args.max_shards,
    )
    print(stats.summary(), file=sys.stderr)
    return 0


def _submit_jobs(args: argparse.Namespace) -> list:
    """The job list a `repro submit` invocation describes."""
    from repro.harness.executor import SimulationJob
    from repro.harness.experiments import batch_jobs_for

    if args.stdin_jobs:
        jobs = []
        for lineno, line in enumerate(sys.stdin, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                jobs.append(SimulationJob.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise SystemExit(
                    f"repro: --stdin-jobs line {lineno}: {exc}"
                )
        return jobs
    return batch_jobs_for(tuple(args.experiments), _run_config(args))


def cmd_submit(args: argparse.Namespace) -> int:
    """`repro submit`: send a job list to the service daemon."""
    from repro.harness.service import ServiceClient, ServiceError

    jobs = _submit_jobs(args)
    if not jobs:
        raise SystemExit(
            "repro: nothing to submit (analytic experiments have no "
            "simulations; pipe NDJSON job records with --stdin-jobs)"
        )
    client = ServiceClient(args.connect)
    try:
        resp = client.submit(
            jobs,
            shard_size=args.shard_size,
            label=args.label or ",".join(args.experiments),
        )
    except (OSError, ServiceError) as exc:
        raise SystemExit(f"repro: cannot reach service at {args.connect}: {exc}")
    if not resp.get("ok"):
        err = resp.get("error", {})
        raise SystemExit(
            f"repro: submit rejected ({err.get('type')}): {err.get('message')}"
        )
    state = "attached to existing batch" if resp.get("existing") else "submitted"
    print(
        f"{state} {resp['batch'][:16]} "
        f"({resp['jobs']} jobs, {resp['shards']} shards, "
        f"{resp['done']} shards already done)",
        file=sys.stderr,
    )
    print(resp["batch"])
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    """`repro watch`: tail a batch's completed shards as NDJSON."""
    from repro.harness.service import ServiceClient, ServiceError

    client = ServiceClient(args.connect)
    last = None
    try:
        for rec in client.watch(
            args.batch,
            results=not args.no_results,
            timeout_s=args.timeout,
        ):
            last = rec
            print(json.dumps(rec, sort_keys=True), flush=True)
    except (OSError, ServiceError) as exc:
        raise SystemExit(f"repro: cannot reach service at {args.connect}: {exc}")
    except BrokenPipeError:
        # Downstream stage (head, jq) closed the pipe: a clean exit,
        # matching the `repro trace` stage conventions.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    if last is None or last.get("ok") is False:
        return 1
    return 0 if last.get("event") == "done" else 1


def build_parser() -> argparse.ArgumentParser:
    """Assemble the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sizing(p):
        p.add_argument("--warps", type=int, default=96)
        p.add_argument("--accesses", type=int, default=64)
        p.add_argument("--quick", action="store_true", help="small fast run")
        p.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for the simulation matrix (default: 1)",
        )
        p.add_argument(
            "--cache-dir", default=None,
            help="persist results here and reuse them across invocations",
        )
        p.add_argument(
            "--batch-dir", default=None,
            help="journal this command's simulation matrix as a sharded "
            "batch under this directory (resumable after a kill)",
        )
        p.add_argument(
            "--shard-size", type=_positive_int, default=DEFAULT_SHARD_SIZE,
            help="jobs per journaled shard when batching "
            f"(default: {DEFAULT_SHARD_SIZE})",
        )
        p.add_argument(
            "--validate", action="store_true",
            help="enable the cross-layer invariant audit (DESIGN.md "
            "section 10); any violated conservation law aborts the run",
        )

    p_run = sub.add_parser("run", help="simulate one platform/workload")
    p_run.add_argument("--platform", choices=list(PLATFORMS), required=True)
    run_src = p_run.add_mutually_exclusive_group(required=True)
    run_src.add_argument(
        "--workload", type=_workload,
        help="a registered workload name (see `repro workloads list`) "
        "or trace:<path> to replay a recorded trace",
    )
    run_src.add_argument(
        "--stdin-trace", action="store_true",
        help="replay a trace piped on stdin (the terminal stage of a "
        "`repro trace ...` pipeline); sizing flags are ignored, the "
        "stream fixes the warp count and access streams",
    )
    p_run.add_argument("--mode", choices=[m.value for m in MemoryMode], default="planar")
    p_run.add_argument(
        "--profile", action="store_true",
        help="wrap the simulation in cProfile and print the top-25 "
        "cumulative entries",
    )
    p_run.add_argument(
        "--record-trace", default=None, metavar="PATH",
        help="record the executed per-warp access stream to PATH "
        "(.jsonl or .jsonl.gz) for later replay",
    )
    add_sizing(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_trace = sub.add_parser(
        "trace",
        help="composable NDJSON trace pipeline stages "
        "(cat/filter/remap/scale/head; pipe into `repro run --stdin-trace`)",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_cmd", required=True)

    def add_trace_input(p) -> None:
        p.add_argument(
            "trace", nargs="?", default="-",
            help="input trace file (v1 or v2, .jsonl/.jsonl.gz); "
            "default `-` reads NDJSON from stdin",
        )

    p_t_cat = trace_sub.add_parser(
        "cat", help="normalize any trace to the chunked NDJSON stream format"
    )
    add_trace_input(p_t_cat)
    p_t_cat.set_defaults(fn=cmd_trace_cat)

    p_t_filter = trace_sub.add_parser(
        "filter",
        help="keep selected warps (others stay as empty streams, "
        "preserving warp count and SM placement)",
    )
    add_trace_input(p_t_filter)
    p_t_filter.add_argument(
        "--warps", default=None, metavar="SPEC",
        help="warp ids to keep, e.g. '0,2-5,9'",
    )
    p_t_filter.add_argument(
        "--tenant", default=None, help="keep only this tenant's warps"
    )
    p_t_filter.set_defaults(fn=cmd_trace_filter)

    p_t_remap = trace_sub.add_parser(
        "remap", help="shift (and optionally wrap) every address"
    )
    add_trace_input(p_t_remap)
    p_t_remap.add_argument(
        "--offset", type=int, default=0, metavar="BYTES",
        help="byte offset added to every address",
    )
    p_t_remap.add_argument(
        "--wrap", type=int, default=0, metavar="BYTES",
        help="wrap addresses modulo this footprint (0 = no wrap)",
    )
    p_t_remap.set_defaults(fn=cmd_trace_remap)

    p_t_scale = trace_sub.add_parser(
        "scale", help="rescale compute gaps and/or repeat the stream"
    )
    add_trace_input(p_t_scale)
    p_t_scale.add_argument(
        "--gaps", type=float, default=1.0, metavar="FACTOR",
        help="multiply every compute gap by FACTOR (intensity scaling)",
    )
    p_t_scale.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="replay each warp's stream N times end to end "
        "(needs a file path, not stdin)",
    )
    p_t_scale.set_defaults(fn=cmd_trace_scale)

    p_t_head = trace_sub.add_parser(
        "head",
        help="first N ops of every warp; stops reading upstream early",
    )
    add_trace_input(p_t_head)
    p_t_head.add_argument(
        "--ops", type=int, required=True, metavar="N",
        help="ops to keep per warp",
    )
    p_t_head.set_defaults(fn=cmd_trace_head)

    p_cmp = sub.add_parser("compare", help="all platforms on one workload")
    p_cmp.add_argument("--workload", type=_workload, required=True)
    p_cmp.add_argument("--mode", choices=[m.value for m in MemoryMode], default="planar")
    add_sizing(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    p_wl = sub.add_parser(
        "workloads", help="inspect, record and replay workloads"
    )
    wl_sub = p_wl.add_subparsers(dest="wl_command", required=True)

    p_wl_list = wl_sub.add_parser("list", help="every registered workload")
    p_wl_list.set_defaults(fn=cmd_workloads_list)

    p_wl_desc = wl_sub.add_parser(
        "describe", help="a workload's spec, parameters and family docs"
    )
    p_wl_desc.add_argument("name")
    p_wl_desc.set_defaults(fn=cmd_workloads_describe)

    p_wl_rec = wl_sub.add_parser(
        "record", help="simulate once and dump the per-warp access trace"
    )
    p_wl_rec.add_argument("--platform", choices=list(PLATFORMS), required=True)
    p_wl_rec.add_argument("--workload", type=_workload, required=True)
    p_wl_rec.add_argument(
        "--mode", choices=[m.value for m in MemoryMode], default="planar"
    )
    p_wl_rec.add_argument(
        "-o", "--output", required=True,
        help="trace path (.jsonl, or .jsonl.gz for compression)",
    )
    add_sizing(p_wl_rec)
    p_wl_rec.set_defaults(fn=cmd_workloads_record)

    p_wl_rep = wl_sub.add_parser(
        "replay", help="re-simulate a recorded trace as the workload"
    )
    p_wl_rep.add_argument("--trace", required=True, help="recorded trace path")
    p_wl_rep.add_argument("--platform", choices=list(PLATFORMS), required=True)
    p_wl_rep.add_argument(
        "--mode", choices=[m.value for m in MemoryMode], default="planar"
    )
    add_sizing(p_wl_rep)
    p_wl_rep.set_defaults(fn=cmd_workloads_replay)

    p_scn = sub.add_parser(
        "scenario",
        help="open-loop traffic scenarios: arrivals, SLOs, degradation "
        "(DESIGN.md section 14)",
    )
    scn_sub = p_scn.add_subparsers(dest="scenario_command", required=True)

    p_scn_list = scn_sub.add_parser("list", help="every registered scenario")
    p_scn_list.set_defaults(fn=cmd_scenario_list)

    p_scn_desc = scn_sub.add_parser(
        "describe",
        help="a scenario's arrival process, tenant mix, admission "
        "policy and degradation schedule",
    )
    p_scn_desc.add_argument("name")
    p_scn_desc.set_defaults(fn=cmd_scenario_describe)

    p_scn_run = scn_sub.add_parser(
        "run",
        help="run one open-loop scenario: measure per-class service "
        "times (cached/journaled), replay the seeded arrival stream "
        "through admission and capacity queueing, report per-tenant "
        "p50/p99 latency, queueing delay and SLO violations",
    )
    p_scn_run.add_argument("name")
    p_scn_run.add_argument(
        "--format", choices=["table", "json"], default="table",
        help="report format (default: table)",
    )
    p_scn_run.add_argument(
        "-o", "--output", default=None,
        help="write the json report to this file instead of stdout",
    )
    add_sizing(p_scn_run)
    p_scn_run.set_defaults(fn=cmd_scenario_run)

    p_batch = sub.add_parser(
        "batch", help="sharded, journaled, resumable experiment batches"
    )
    batch_sub = p_batch.add_subparsers(dest="batch_command", required=True)

    p_b_run = batch_sub.add_parser(
        "run", help="shard experiments' job matrices into a journaled batch"
    )
    p_b_run.add_argument(
        "--experiment", dest="experiments", nargs="+", required=True,
        choices=list(EXPERIMENTS), metavar="NAME",
        help="experiments whose job matrices to batch (union, deduplicated)",
    )
    add_sizing(p_b_run)  # also provides --batch-dir; default it for `batch run`
    p_b_run.set_defaults(fn=cmd_batch_run, batch_dir=".repro-batch")

    p_b_status = batch_sub.add_parser(
        "status", help="shard progress of every batch under a root"
    )
    p_b_status.add_argument(
        "--batch-dir", default=".repro-batch",
        help="batch root directory (default: .repro-batch)",
    )
    p_b_status.set_defaults(fn=cmd_batch_status)

    p_b_resume = batch_sub.add_parser(
        "resume", help="finish every incomplete batch exactly where it stopped"
    )
    p_b_resume.add_argument(
        "--batch-dir", default=".repro-batch",
        help="batch root directory (default: .repro-batch)",
    )
    p_b_resume.add_argument(
        "--id", default=None,
        help="only resume the batch whose id starts with this prefix",
    )
    p_b_resume.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the resumed shards (default: 1)",
    )
    p_b_resume.add_argument(
        "--cache-dir", default=None,
        help="result cache (default: <batch-dir>/cache)",
    )
    p_b_resume.set_defaults(fn=cmd_batch_resume)

    p_store = sub.add_parser(
        "store", help="query and garbage-collect the persistent result store"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)

    p_s_query = store_sub.add_parser(
        "query", help="filter cached results by job facets"
    )
    p_s_query.add_argument(
        "--cache-dir", default=".repro-batch/cache",
        help="cache directory to index (default: .repro-batch/cache)",
    )
    p_s_query.add_argument("--platform", default=None, help="exact platform name")
    p_s_query.add_argument("--workload", default=None, help="exact workload name")
    p_s_query.add_argument(
        "--mode", choices=[m.value for m in MemoryMode], default=None
    )
    p_s_query.add_argument(
        "--include-stale", action="store_true",
        help="also list entries written under stale schema versions",
    )
    p_s_query.add_argument(
        "--format", choices=["table", *EMITTERS], default="table",
        help="output format (default: table)",
    )
    p_s_query.add_argument(
        "-o", "--output", default=None,
        help="write to this file instead of stdout",
    )
    p_s_query.set_defaults(fn=cmd_store_query)

    p_s_gc = store_sub.add_parser(
        "gc", help="remove stale-schema entries and orphaned temp files"
    )
    p_s_gc.add_argument(
        "--cache-dir", default=".repro-batch/cache",
        help="cache directory to collect (default: .repro-batch/cache)",
    )
    p_s_gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would be removed without removing it",
    )
    p_s_gc.set_defaults(fn=cmd_store_gc)

    p_serve = sub.add_parser(
        "serve",
        help="simulation service daemon: NDJSON submissions over a socket",
    )
    p_serve.add_argument(
        "--root", default=DEFAULT_SERVICE_ROOT,
        help="batch root shared with the workers "
        f"(default: {DEFAULT_SERVICE_ROOT})",
    )
    p_serve.add_argument(
        "--socket", default=None,
        help="listen address: a unix socket path, unix:<path>, or "
        "host:port / tcp:host:port (default: <root>/serve.sock)",
    )
    p_serve.add_argument(
        "--lease-ttl", type=float, default=30.0,
        help="seconds a worker lease survives without a heartbeat "
        "before its shard is reclaimable (default: 30)",
    )
    p_serve.add_argument(
        "--poll", type=float, default=0.2,
        help="journal poll interval for watch streams (default: 0.2s)",
    )
    p_serve.set_defaults(fn=cmd_serve)

    p_worker = sub.add_parser(
        "worker",
        help="execute leased shards from a shared service root",
    )
    p_worker.add_argument(
        "--root", default=DEFAULT_SERVICE_ROOT,
        help="batch root shared with the daemon and other workers "
        f"(default: {DEFAULT_SERVICE_ROOT})",
    )
    p_worker.add_argument(
        "--owner", default=None,
        help="lease owner id (default: host-pid-random, always unique)",
    )
    p_worker.add_argument(
        "--lease-ttl", type=float, default=30.0,
        help="lease TTL in seconds; must match the fleet's (default: 30)",
    )
    p_worker.add_argument(
        "--poll", type=float, default=0.5,
        help="idle poll interval between root scans (default: 0.5s)",
    )
    p_worker.add_argument(
        "--drain", action="store_true",
        help="exit once every discovered batch is complete instead of "
        "polling for new submissions forever",
    )
    p_worker.add_argument(
        "--throttle", type=float, default=0.0,
        help="sleep this many seconds after every executed job "
        "(rate-limit on shared machines; default: 0)",
    )
    p_worker.add_argument(
        "--jobs", type=int, default=1,
        help="executor processes for each leased shard (default: 1)",
    )
    p_worker.add_argument(
        "--max-shards", type=_positive_int, default=None,
        help="stop after executing this many shards",
    )
    p_worker.add_argument(
        "--cache-dir", default=None,
        help="override the shared result cache (default: <root>/cache)",
    )
    p_worker.set_defaults(fn=cmd_worker)

    p_submit = sub.add_parser(
        "submit", help="send a job matrix to the service daemon"
    )
    p_submit.add_argument(
        "--experiment", dest="experiments", nargs="+", default=[],
        choices=list(EXPERIMENTS), metavar="NAME",
        help="experiments whose simulation matrices to submit "
        "(union, deduplicated)",
    )
    p_submit.add_argument(
        "--stdin-jobs", action="store_true",
        help="read NDJSON job records (SimulationJob.to_dict shape) "
        "from stdin instead of expanding experiments",
    )
    p_submit.add_argument(
        "--connect", default=DEFAULT_SERVICE_SOCKET,
        help="daemon address: socket path, unix:<path> or host:port "
        f"(default: {DEFAULT_SERVICE_SOCKET})",
    )
    p_submit.add_argument(
        "--shard-size", type=_positive_int, default=DEFAULT_SHARD_SIZE,
        help=f"jobs per leased shard (default: {DEFAULT_SHARD_SIZE})",
    )
    p_submit.add_argument("--label", default=None, help="batch label")
    p_submit.add_argument("--warps", type=int, default=96)
    p_submit.add_argument("--accesses", type=int, default=64)
    p_submit.add_argument("--quick", action="store_true", help="small fast run")
    p_submit.add_argument(
        "--validate", action="store_true",
        help="submit the jobs with the invariant audit armed",
    )
    p_submit.set_defaults(fn=cmd_submit)

    p_watch = sub.add_parser(
        "watch",
        help="stream a batch's completed shards as NDJSON (tails live)",
    )
    p_watch.add_argument(
        "batch", help="batch id (any unambiguous prefix) or b-<dir> name"
    )
    p_watch.add_argument(
        "--connect", default=DEFAULT_SERVICE_SOCKET,
        help="daemon address: socket path, unix:<path> or host:port "
        f"(default: {DEFAULT_SERVICE_SOCKET})",
    )
    p_watch.add_argument(
        "--no-results", action="store_true",
        help="emit only shard records, not per-job result rows",
    )
    p_watch.add_argument(
        "--timeout", type=float, default=None,
        help="give up (exit 1) after this many seconds without "
        "completion (default: wait forever)",
    )
    p_watch.set_defaults(fn=cmd_watch)

    p_exp = sub.add_parser("experiment", help="regenerate a figure/table")
    p_exp.add_argument("name", choices=list(EXPERIMENTS))
    add_sizing(p_exp)
    p_exp.set_defaults(fn=cmd_experiment)

    p_export = sub.add_parser(
        "export", help="emit a figure/table as structured data"
    )
    p_export.add_argument("name", choices=list(EXPERIMENTS))
    p_export.add_argument(
        "--format", choices=list(EMITTERS), default="json",
        help="output format (default: json)",
    )
    p_export.add_argument(
        "-o", "--output", default=None,
        help="write to this file instead of stdout",
    )
    add_sizing(p_export)
    p_export.set_defaults(fn=cmd_export)

    p_audit = sub.add_parser(
        "audit",
        help="invariant-check the workload x platform matrix "
        "(cross-layer conservation laws, DESIGN.md section 10)",
    )
    p_audit.add_argument(
        "--smoke", action="store_true",
        help="CI-sized gate: a representative workload subset at small "
        "sizing instead of the full registry",
    )
    p_audit.add_argument(
        "--platform", nargs="*", choices=list(PLATFORMS), metavar="NAME",
        help="restrict to these platforms (default: all)",
    )
    p_audit.add_argument(
        "--workload", nargs="*", type=_workload, metavar="NAME",
        help="restrict to these workloads (default: the full registry)",
    )
    p_audit.add_argument(
        "--mode", choices=[m.value for m in MemoryMode], default=None,
        help="restrict to one memory mode (default: both)",
    )
    p_audit.add_argument(
        "--warps", type=_positive_int, default=None,
        help="override the audit sizing's warp count",
    )
    p_audit.add_argument(
        "--accesses", type=_positive_int, default=None,
        help="override the audit sizing's accesses per warp",
    )
    p_audit.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the audit matrix (default: 1)",
    )
    p_audit.add_argument(
        "--journal", default=None, metavar="PATH",
        help="journal each audited job to this JSONL file and resume "
        "from it on re-invocation (skips already-audited jobs)",
    )
    p_audit.add_argument(
        "--format", choices=["table", *EMITTERS], default="table",
        help="report format (default: table of violating jobs only)",
    )
    p_audit.add_argument(
        "-o", "--output", default=None,
        help="write the report to this file instead of stdout",
    )
    p_audit.set_defaults(fn=cmd_audit)

    p_perf = sub.add_parser(
        "perf", help="benchmark the simulator core (events/sec)"
    )
    p_perf.add_argument(
        "--smoke", action="store_true",
        help="quick CI-sized cases instead of figure-sized ones",
    )
    p_perf.add_argument(
        "--repeats", type=int, default=3,
        help="timed runs per case; the best is reported (default: 3)",
    )
    p_perf.add_argument(
        "-o", "--output", default="BENCH_perf.json",
        help="write the before/after payload here (default: BENCH_perf.json)",
    )
    p_perf.add_argument(
        "--journal", default=None, metavar="PATH",
        help="journal each finished case to this JSONL file and resume "
        "from it on re-invocation (skips already-measured cases)",
    )
    p_perf.add_argument(
        "--compare", default=None, metavar="OLD_JSON",
        help="diff this run's numbers against an earlier BENCH_perf.json "
        "and exit non-zero on a >10%% events/sec regression in any case",
    )
    p_perf.set_defaults(fn=cmd_perf)

    p_lint = sub.add_parser(
        "lint",
        help="run reprolint, the repo's own AST rule-checker "
        "(hot-path / determinism / audit-placement rules)",
    )
    p_lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    p_lint.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: table)",
    )
    p_lint.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule ids to run (e.g. R2,R3; default: all)",
    )
    p_lint.add_argument(
        "--show-suppressed", action="store_true",
        help="also print pragma-suppressed findings with their reasons",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue (DESIGN.md section 15) and exit",
    )
    p_lint.set_defaults(fn=cmd_lint)

    p_list = sub.add_parser("list", help="list platforms/workloads/experiments")
    p_list.set_defaults(fn=cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (console script ``repro``)."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BatchError as exc:
        # Raised wherever a batch directory turns out corrupt or
        # inconsistent — including mid-command through Runner's
        # --batch-dir path, which no per-command handler sees.
        raise SystemExit(f"repro: {exc}")
    except InvariantError as exc:
        # A --validate run tripped a cross-layer conservation law;
        # surface every recorded violation, not a traceback.
        raise SystemExit(f"repro: invariant audit failed: {exc}")


if __name__ == "__main__":
    sys.exit(main())
