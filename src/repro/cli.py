"""Command-line interface: run platforms, workloads and experiments.

Usage examples::

    python -m repro.cli run --platform Ohm-BW --workload pagerank --mode planar
    python -m repro.cli compare --workload backp --mode two_level
    python -m repro.cli experiment fig16 --quick
    python -m repro.cli list
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import MemoryMode, RunConfig, Runner
from repro.core.platforms import PLATFORMS
from repro.harness import experiments
from repro.harness.report import format_table
from repro.workloads.registry import WORKLOADS

EXPERIMENTS = {
    "fig3": lambda runner: _print_fig3(),
    "fig8": lambda runner: _print_two_mode(experiments.figure8(runner)),
    "fig16": lambda runner: _print_two_mode(experiments.figure16(runner)),
    "fig17": lambda runner: _print_two_mode(experiments.figure17(runner)),
    "fig18": lambda runner: _print_two_mode(experiments.figure18(runner)),
    "fig20b": lambda runner: _print_fig20b(),
    "fig15": lambda runner: _print_fig15(),
    "table3": lambda runner: _print_table3(),
    "fig21": lambda runner: _print_two_mode(experiments.figure21(runner)),
    "headline": lambda runner: _print_headline(runner),
}


def _mode(name: str) -> MemoryMode:
    return MemoryMode(name)


def _print_fig3() -> None:
    rows = experiments.figure3()
    print(
        format_table(
            ["workload", "data_move", "storage", "gpu"],
            [(r["workload"], r["data_move_frac"], r["storage_frac"], r["gpu_frac"]) for r in rows],
            title="Fig. 3a",
        )
    )


def _print_two_mode(data) -> None:
    for mode, fig in data.items():
        platforms = sorted({p for (_, p) in fig.values})
        print(f"\n== {fig.name} ({mode}) ==")
        for p in platforms:
            print(f"  {p:20s} {fig.mean_over_workloads(p):.3f}")


def _print_fig20b() -> None:
    for b in experiments.figure20b():
        print(f"  {b.label:16s} BER {b.ber:.2e} ({'OK' if b.reliable else 'FAIL'})")


def _print_fig15() -> None:
    for r in experiments.figure15():
        print(
            f"  {r['layout']:9s} total {r['total']:2d} "
            f"(reduction {r['reduction_vs_general']:.0%})"
        )


def _print_table3() -> None:
    for r in experiments.table3():
        print(
            f"  {r['mode']:9s} {r['platform']:9s} ${r['total_cost']:.0f} "
            f"(+{r['cost_increase']:.1%})"
        )


def _print_headline(runner: Runner) -> None:
    h = experiments.headline(runner)
    print(f"  Ohm-BW vs Origin  : {h['speedup_vs_origin']:.2f}x (paper 2.81x)")
    print(f"  Ohm-BW vs Ohm-base: {h['speedup_vs_ohm_base']:.2f}x (paper 1.27x)")


def _run_config(args: argparse.Namespace) -> RunConfig:
    if getattr(args, "quick", False):
        return RunConfig(num_warps=48, accesses_per_warp=32)
    return RunConfig(num_warps=args.warps, accesses_per_warp=args.accesses)


def cmd_run(args: argparse.Namespace) -> int:
    runner = Runner(_run_config(args))
    result = runner.run(args.platform, args.workload, _mode(args.mode))
    print(f"platform        : {result.platform}")
    print(f"workload        : {result.workload} ({result.mode})")
    print(f"instructions    : {result.instructions}")
    print(f"exec time       : {result.exec_time_ps / 1e6:.2f} us")
    print(f"mean mem latency: {result.mean_mem_latency_ps / 1e3:.1f} ns")
    print(f"migration bw    : {result.migration_bandwidth_fraction:.1%}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    runner = Runner(_run_config(args))
    mode = _mode(args.mode)
    base = runner.run("Ohm-base", args.workload, mode)
    rows = []
    for name in PLATFORMS:
        r = runner.run(name, args.workload, mode)
        rows.append(
            (
                name,
                r.performance / base.performance,
                r.mean_mem_latency_ps / 1e3,
                r.migration_bandwidth_fraction,
            )
        )
    print(
        format_table(
            ["platform", "perf_vs_base", "latency_ns", "migration_bw"],
            rows,
            title=f"{args.workload} ({mode.value})",
        )
    )
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    runner = Runner(_run_config(args))
    EXPERIMENTS[args.name](runner)
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("platforms :", ", ".join(PLATFORMS))
    print("workloads :", ", ".join(WORKLOADS))
    print("modes     :", ", ".join(m.value for m in MemoryMode))
    print("experiments:", ", ".join(EXPERIMENTS))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sizing(p):
        p.add_argument("--warps", type=int, default=96)
        p.add_argument("--accesses", type=int, default=64)
        p.add_argument("--quick", action="store_true", help="small fast run")

    p_run = sub.add_parser("run", help="simulate one platform/workload")
    p_run.add_argument("--platform", choices=list(PLATFORMS), required=True)
    p_run.add_argument("--workload", choices=list(WORKLOADS), required=True)
    p_run.add_argument("--mode", choices=[m.value for m in MemoryMode], default="planar")
    add_sizing(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser("compare", help="all platforms on one workload")
    p_cmp.add_argument("--workload", choices=list(WORKLOADS), required=True)
    p_cmp.add_argument("--mode", choices=[m.value for m in MemoryMode], default="planar")
    add_sizing(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    p_exp = sub.add_parser("experiment", help="regenerate a figure/table")
    p_exp.add_argument("name", choices=list(EXPERIMENTS))
    add_sizing(p_exp)
    p_exp.set_defaults(fn=cmd_experiment)

    p_list = sub.add_parser("list", help="list platforms/workloads/experiments")
    p_list.set_defaults(fn=cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
