"""Command-line interface: run platforms, workloads and experiments.

Usage examples::

    python -m repro.cli run --platform Ohm-BW --workload pagerank --mode planar
    python -m repro.cli run --platform Ohm-BW --workload pagerank --profile
    python -m repro.cli compare --workload backp --mode two_level
    python -m repro.cli experiment fig16 --jobs 4 --cache-dir .repro-cache
    python -m repro.cli export fig16 --format csv -o fig16.csv
    python -m repro.cli perf -o BENCH_perf.json
    python -m repro.cli list

``--jobs N`` fans the experiment's simulation matrix out over N worker
processes; ``--cache-dir`` persists every result so repeated
invocations are near-instant (cache hits are logged).  ``export`` emits
an experiment's rows as json or csv via the structured emitters.
``perf`` benchmarks the simulator itself (events/sec per calibrated
case, written to ``BENCH_perf.json``); ``run --profile`` wraps one
simulation in cProfile for hot-path hunts.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Optional, Sequence

from repro import MemoryMode, RunConfig, Runner
from repro.core.platforms import PLATFORMS
from repro.harness import experiments  # noqa: F401  (populates the registry)
from repro.harness.cache import ResultCache
from repro.harness.executor import make_executor
from repro.harness.registry import (
    EXPERIMENTS,
    ExperimentResult,
    run_spec,
)
from repro.harness.report import EMITTERS, format_table
from repro.workloads.registry import WORKLOADS


def _mode(name: str) -> MemoryMode:
    return MemoryMode(name)


def _print_rows(result: ExperimentResult) -> None:
    """Generic experiment printer: the spec's rows as an ASCII table."""
    rows = result.rows
    columns = list(result.spec.columns)
    print(
        format_table(
            columns,
            [tuple(r.get(c) for c in columns) for r in rows],
            title=result.spec.title,
        )
    )


def _print_two_mode(result: ExperimentResult) -> None:
    for mode, fig in result.payload.items():
        platforms = sorted({p for (_, p) in fig.values})
        print(f"\n== {fig.name} ({mode}) ==")
        for p in platforms:
            print(f"  {p:20s} {fig.mean_over_workloads(p):.3f}")


def _print_fig3(result: ExperimentResult) -> None:
    print(
        format_table(
            ["workload", "data_move", "storage", "gpu"],
            [
                (r["workload"], r["data_move_frac"], r["storage_frac"], r["gpu_frac"])
                for r in result.payload
            ],
            title="Fig. 3a",
        )
    )


def _print_fig20b(result: ExperimentResult) -> None:
    for b in result.payload:
        print(f"  {b.label:16s} BER {b.ber:.2e} ({'OK' if b.reliable else 'FAIL'})")


def _print_fig15(result: ExperimentResult) -> None:
    for r in result.payload:
        print(
            f"  {r['layout']:9s} total {r['total']:2d} "
            f"(reduction {r['reduction_vs_general']:.0%})"
        )


def _print_table3(result: ExperimentResult) -> None:
    for r in result.payload:
        print(
            f"  {r['mode']:9s} {r['platform']:9s} ${r['total_cost']:.0f} "
            f"(+{r['cost_increase']:.1%})"
        )


def _print_headline(result: ExperimentResult) -> None:
    h = result.payload
    print(f"  Ohm-BW vs Origin  : {h['speedup_vs_origin']:.2f}x (paper 2.81x)")
    print(f"  Ohm-BW vs Ohm-base: {h['speedup_vs_ohm_base']:.2f}x (paper 1.27x)")


# Figure-specific pretty-printers; anything not listed falls back to the
# generic row table, so newly registered experiments print for free.
PRINTERS = {
    "fig3": _print_fig3,
    "fig8": _print_two_mode,
    "fig16": _print_two_mode,
    "fig17": _print_two_mode,
    "fig18": _print_two_mode,
    "fig20b": _print_fig20b,
    "fig15": _print_fig15,
    "table3": _print_table3,
    "fig21": _print_two_mode,
    "headline": _print_headline,
}


def _run_config(args: argparse.Namespace) -> RunConfig:
    if getattr(args, "quick", False):
        return RunConfig(num_warps=48, accesses_per_warp=32)
    return RunConfig(num_warps=args.warps, accesses_per_warp=args.accesses)


def _make_runner(args: argparse.Namespace) -> Runner:
    """Assemble the experiment service the flags describe."""
    cache = None
    if getattr(args, "cache_dir", None):
        # Surface per-job cache hits on stderr (acceptance: hits logged).
        log = logging.getLogger("repro.cache")
        log.setLevel(logging.INFO)
        if not log.handlers:
            handler = logging.StreamHandler()
            handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
            log.addHandler(handler)
        try:
            cache = ResultCache(args.cache_dir)
        except OSError as exc:
            raise SystemExit(f"repro: --cache-dir: {exc}")
    executor = make_executor(getattr(args, "jobs", 1))
    return Runner(_run_config(args), executor=executor, cache=cache)


def _finish(runner: Runner) -> None:
    if runner.cache is not None:
        print(runner.cache.summary(), file=sys.stderr)


def cmd_run(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        result = runner.run(args.platform, args.workload, _mode(args.mode))
        profiler.disable()
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
    else:
        result = runner.run(args.platform, args.workload, _mode(args.mode))
    print(f"platform        : {result.platform}")
    print(f"workload        : {result.workload} ({result.mode})")
    print(f"instructions    : {result.instructions}")
    print(f"exec time       : {result.exec_time_ps / 1e6:.2f} us")
    print(f"mean mem latency: {result.mean_mem_latency_ps / 1e3:.1f} ns")
    print(f"migration bw    : {result.migration_bandwidth_fraction:.1%}")
    _finish(runner)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    mode = _mode(args.mode)
    results = runner.matrix(tuple(PLATFORMS), (args.workload,), mode)
    base = results[("Ohm-base", args.workload)]
    rows = []
    for name in PLATFORMS:
        r = results[(name, args.workload)]
        rows.append(
            (
                name,
                r.performance / base.performance,
                r.mean_mem_latency_ps / 1e3,
                r.migration_bandwidth_fraction,
            )
        )
    print(
        format_table(
            ["platform", "perf_vs_base", "latency_ns", "migration_bw"],
            rows,
            title=f"{args.workload} ({mode.value})",
        )
    )
    _finish(runner)
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    result = run_spec(EXPERIMENTS[args.name], runner)
    PRINTERS.get(args.name, _print_rows)(result)
    _finish(runner)
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    runner = _make_runner(args)
    result = run_spec(EXPERIMENTS[args.name], runner)
    text = EMITTERS[args.format](result.rows, columns=result.spec.columns)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {len(result.rows)} rows to {args.output}", file=sys.stderr)
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    _finish(runner)
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from repro.harness.perf import PERF_CASES, SMOKE_CASES, run_suite, write_bench

    cases = SMOKE_CASES if args.smoke else PERF_CASES
    measurements = run_suite(cases, repeats=args.repeats)
    rows = []
    for m in measurements:
        speedup = m.speedup_vs_baseline
        rows.append(
            (
                m.case,
                m.events,
                m.wall_s * 1e3,
                m.events_per_sec,
                m.baseline_events_per_sec or 0.0,
                f"{speedup:.2f}x" if speedup else "n/a",
            )
        )
    print(
        format_table(
            ["case", "events", "wall_ms", "events_per_sec", "baseline_eps", "speedup"],
            rows,
            title="simulation-core performance (best of "
            f"{args.repeats} runs per case)",
        )
    )
    if args.output:
        write_bench(args.output, measurements)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("platforms :", ", ".join(PLATFORMS))
    print("workloads :", ", ".join(WORKLOADS))
    print("modes     :", ", ".join(m.value for m in MemoryMode))
    print("experiments:", ", ".join(EXPERIMENTS))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sizing(p):
        p.add_argument("--warps", type=int, default=96)
        p.add_argument("--accesses", type=int, default=64)
        p.add_argument("--quick", action="store_true", help="small fast run")
        p.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for the simulation matrix (default: 1)",
        )
        p.add_argument(
            "--cache-dir", default=None,
            help="persist results here and reuse them across invocations",
        )

    p_run = sub.add_parser("run", help="simulate one platform/workload")
    p_run.add_argument("--platform", choices=list(PLATFORMS), required=True)
    p_run.add_argument("--workload", choices=list(WORKLOADS), required=True)
    p_run.add_argument("--mode", choices=[m.value for m in MemoryMode], default="planar")
    p_run.add_argument(
        "--profile", action="store_true",
        help="wrap the simulation in cProfile and print the top-25 "
        "cumulative entries",
    )
    add_sizing(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser("compare", help="all platforms on one workload")
    p_cmp.add_argument("--workload", choices=list(WORKLOADS), required=True)
    p_cmp.add_argument("--mode", choices=[m.value for m in MemoryMode], default="planar")
    add_sizing(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    p_exp = sub.add_parser("experiment", help="regenerate a figure/table")
    p_exp.add_argument("name", choices=list(EXPERIMENTS))
    add_sizing(p_exp)
    p_exp.set_defaults(fn=cmd_experiment)

    p_export = sub.add_parser(
        "export", help="emit a figure/table as structured data"
    )
    p_export.add_argument("name", choices=list(EXPERIMENTS))
    p_export.add_argument(
        "--format", choices=list(EMITTERS), default="json",
        help="output format (default: json)",
    )
    p_export.add_argument(
        "-o", "--output", default=None,
        help="write to this file instead of stdout",
    )
    add_sizing(p_export)
    p_export.set_defaults(fn=cmd_export)

    p_perf = sub.add_parser(
        "perf", help="benchmark the simulator core (events/sec)"
    )
    p_perf.add_argument(
        "--smoke", action="store_true",
        help="quick CI-sized cases instead of figure-sized ones",
    )
    p_perf.add_argument(
        "--repeats", type=int, default=3,
        help="timed runs per case; the best is reported (default: 3)",
    )
    p_perf.add_argument(
        "-o", "--output", default="BENCH_perf.json",
        help="write the before/after payload here (default: BENCH_perf.json)",
    )
    p_perf.set_defaults(fn=cmd_perf)

    p_list = sub.add_parser("list", help="list platforms/workloads/experiments")
    p_list.set_defaults(fn=cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
