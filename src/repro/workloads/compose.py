"""Workload composition: sequential phases and multi-tenant mixes.

Two combinators turn registered workloads into new declarative
scenarios without any new trace-generation code:

* :func:`make_phased` — **sequential phases**: each warp's trace is the
  concatenation of per-phase sub-traces (e.g. a streaming load phase
  followed by a compute-heavy GEMM phase).  This models program phase
  behaviour, the thing that keeps migration policies honest after
  warmup.
* :func:`make_multi_tenant` — **interleaved tenants**: warps are
  partitioned among named tenants by share (deterministic weighted
  round-robin, so tenants interleave across SMs exactly like co-located
  kernels), and each warp's trace carries its tenant label.  The GPU
  model attributes per-tenant instruction/access/finish-time counters
  from those labels (``tenant.<name>.*`` in ``RunResult.counters``),
  so a mix answers "who got hurt?" and not just "was it slower?".

Both produce ordinary :class:`~repro.workloads.spec.WorkloadDef`
entries whose params store member *names*; the registry resolves the
members at build time, which keeps composed defs hashable and
fingerprintable by the result cache.  Composed members may themselves
be composed (the registry guards against cycles).

Note on parallel execution: a ``SimulationJob`` ships only the
workload *name*, and executor worker processes re-import the registry
fresh — so a composition registered at runtime resolves only in the
registering process.  Register in a module the workers import (as
``registry._register_defaults`` does) before fanning out with
``--jobs N``; serial runners have no such restriction.
"""

from __future__ import annotations

from itertools import chain
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.source import Block, TraceSource
from repro.workloads.spec import WorkloadDef, WorkloadSpec, make_def
from repro.workloads.synthetic import WarpTrace

#: build(name, footprint, num_warps, accesses, line, page, seed) -> traces
TraceBuilder = Callable[..., List[WarpTrace]]


def _blend_spec(
    name: str, suite: str, members: Sequence[Tuple[WorkloadSpec, float]]
) -> WorkloadSpec:
    """Share-weighted characteristics of a composition's members."""
    total = sum(w for _, w in members)
    if total <= 0:
        raise ValueError(f"{name}: member shares must sum to a positive value")
    norm = [(spec, w / total) for spec, w in members]
    return WorkloadSpec(
        name=name,
        apki=sum(s.apki * w for s, w in norm),
        read_ratio=sum(s.read_ratio * w for s, w in norm),
        suite=suite,
        zipf_alpha=sum(s.zipf_alpha * w for s, w in norm),
        seq_run_mean=sum(s.seq_run_mean * w for s, w in norm),
        temporal_reuse=sum(s.temporal_reuse * w for s, w in norm),
        stream_fraction=sum(s.stream_fraction * w for s, w in norm),
        compute_reuse=sum(s.compute_reuse * w for s, w in norm),
        footprint_bytes=max(s.footprint_bytes for s, _ in members),
    )


def make_phased(
    name: str,
    phases: Sequence[Tuple[WorkloadDef, float]],
    summary: str = "",
) -> WorkloadDef:
    """Declare a sequential-phase composition.

    ``phases`` is ``[(member_def, fraction), ...]``; fractions are
    normalized and set each phase's share of every warp's accesses.
    """
    if not phases:
        raise ValueError(f"{name}: need at least one phase")
    if all(frac == 0 for _, frac in phases):
        raise ValueError(f"{name}: at least one phase needs a positive fraction")
    for member, frac in phases:
        if frac < 0:
            raise ValueError(
                f"{name}: phase {member.name!r} needs a non-negative fraction"
            )
    spec = _blend_spec(name, "composed", [(d.spec, f) for d, f in phases])
    return make_def(
        name,
        "compose",
        spec,
        params={
            "kind": "phased",
            "members": tuple((d.name, float(f)) for d, f in phases),
        },
        summary=summary or "phases: " + " -> ".join(d.name for d, _ in phases),
    )


def make_multi_tenant(
    name: str,
    tenants: Sequence[Tuple[str, WorkloadDef, float]],
    summary: str = "",
) -> WorkloadDef:
    """Declare an interleaved multi-tenant mix.

    ``tenants`` is ``[(tenant_label, member_def, warp_share), ...]``;
    shares are normalized and set each tenant's slice of the warp pool.
    """
    if not tenants:
        raise ValueError(f"{name}: need at least one tenant")
    labels = [label for label, _, _ in tenants]
    if len(set(labels)) != len(labels):
        raise ValueError(f"{name}: tenant labels must be unique")
    for label, member, share in tenants:
        if share <= 0:
            raise ValueError(f"{name}: tenant {label!r} needs a positive share")
    spec = _blend_spec(name, "composed", [(d.spec, s) for _, d, s in tenants])
    return make_def(
        name,
        "compose",
        spec,
        params={
            "kind": "multi_tenant",
            "tenants": tuple(
                (label, d.name, float(s)) for label, d, s in tenants
            ),
        },
        summary=summary
        or "tenants: " + ", ".join(f"{l}={d.name}" for l, d, _ in tenants),
    )


def _split_accesses(fractions: Sequence[float], total: int) -> List[int]:
    """Largest-remainder split of ``total`` accesses over phases.

    A phase declared with fraction ``0.0`` asked for *nothing* and gets
    exactly zero accesses; the minimum-one floor below applies only to
    positive fractions rounded down to zero.  (Remainder units can never
    land on a declared zero either: its fractional part is exactly 0.0,
    and there are always at least ``remainder`` phases with a strictly
    positive fractional part ahead of it in the sort.)
    """
    norm = sum(fractions)
    raw = [f / norm * total for f in fractions]
    counts = [int(r) for r in raw]
    remainders = sorted(
        range(len(raw)), key=lambda i: (raw[i] - counts[i], -i), reverse=True
    )
    for i in remainders[: total - sum(counts)]:
        counts[i] += 1
    # Every *declared* phase needs at least one access if the budget
    # allows it.  (A zero with total >= len(positive) implies some donor
    # holds >= 2.)
    positive = [i for i, f in enumerate(fractions) if f > 0]
    while total >= len(positive) and any(counts[i] == 0 for i in positive):
        donor = max(positive, key=lambda j: counts[j])
        counts[donor] -= 1
        counts[next(i for i in positive if counts[i] == 0)] += 1
    return counts


def tenant_assignment(
    shares: Sequence[float], num_warps: int
) -> List[int]:
    """Deterministic weighted round-robin: warp index -> tenant index.

    Interleaves tenants in share proportion (rather than blocking them),
    so every SM serves every tenant — the co-located-kernel layout.
    """
    total = sum(shares)
    credits = [0.0] * len(shares)
    out = []
    for _ in range(num_warps):
        for i, share in enumerate(shares):
            credits[i] += share / total
        winner = max(range(len(shares)), key=lambda i: (credits[i], -i))
        credits[winner] -= 1.0
        out.append(winner)
    return out


def phased_traces(
    members: Sequence[Tuple[str, float]],
    build: TraceBuilder,
    footprint_bytes: int,
    num_warps: int,
    accesses_per_warp: int,
    line_bytes: int,
    page_bytes: int,
    seed: int,
) -> List[WarpTrace]:
    """Concatenate per-phase sub-traces for every warp."""
    counts = _split_accesses([f for _, f in members], accesses_per_warp)
    phase_traces = [
        build(name, footprint_bytes, num_warps, count, line_bytes, page_bytes, seed)
        if count
        else None
        for (name, _), count in zip(members, counts)
    ]
    out = []
    for w in range(num_warps):
        parts = [pt[w] for pt in phase_traces if pt is not None]
        out.append(
            WarpTrace(
                gaps=np.concatenate([p.gaps for p in parts]),
                addrs=np.concatenate([p.addrs for p in parts]),
                writes=np.concatenate([p.writes for p in parts]),
            )
        )
    return out


def multi_tenant_traces(
    tenants: Sequence[Tuple[str, str, float]],
    build: TraceBuilder,
    footprint_bytes: int,
    num_warps: int,
    accesses_per_warp: int,
    line_bytes: int,
    page_bytes: int,
    seed: int,
) -> List[WarpTrace]:
    """Interleave tenant warps; each trace carries its tenant label.

    A tenant's warps replay exactly the streams it would generate
    running alone with that many warps (local warp ids), so per-tenant
    behaviour is comparable against solo runs.
    """
    if num_warps < len(tenants):
        raise ValueError(
            f"need at least {len(tenants)} warps for {len(tenants)} tenants"
        )
    assignment = tenant_assignment([s for _, _, s in tenants], num_warps)
    warps_per_tenant = [assignment.count(i) for i in range(len(tenants))]
    for (label, _, share), count in zip(tenants, warps_per_tenant):
        if count == 0:
            # A silently absent tenant would just vanish from the
            # per-tenant counters; fail loudly instead.
            raise ValueError(
                f"tenant {label!r} (share {share}) received 0 of "
                f"{num_warps} warps — increase num_warps or its share"
            )
    tenant_traces = [
        build(member, footprint_bytes, count, accesses_per_warp,
              line_bytes, page_bytes, seed)
        for (_, member, _), count in zip(tenants, warps_per_tenant)
    ]
    cursors = [0] * len(tenants)
    out = []
    for w in range(num_warps):
        t = assignment[w]
        label = tenants[t][0]
        local = tenant_traces[t][cursors[t]]
        cursors[t] += 1
        out.append(
            WarpTrace(
                gaps=local.gaps,
                addrs=local.addrs,
                writes=local.writes,
                tenant=label,
            )
        )
    return out


# --------------------------------------------------------------------
# Lazy stream composition (the TraceSource mirrors of the builders)
# --------------------------------------------------------------------

class PhasedTraceSource(TraceSource):
    """Sequential phases, merged lazily: chain each warp's member blocks.

    Per-warp RNG independence makes per-warp chaining value-identical
    to :func:`phased_traces`' concatenation — the member sources were
    built with the same per-phase access counts, so block boundaries
    are the only difference, and consumers don't observe those.
    """

    def __init__(self, members: Sequence[TraceSource]) -> None:
        if not members:
            raise ValueError("need at least one phase source")
        counts = {m.num_warps for m in members}
        if len(counts) != 1:
            raise ValueError(f"phase warp counts disagree: {sorted(counts)}")
        self.members = list(members)
        self.num_warps = self.members[0].num_warps

    def blocks(self, warp_id: int) -> Iterator[Block]:
        return chain.from_iterable(m.blocks(warp_id) for m in self.members)


class ArrivalTraceSource(TraceSource):
    """Stagger warp start times by per-warp arrival offsets.

    The open-loop scenario layer's trace-level composition: warp ``w``
    replays the member source's stream with ``offsets[w]`` extra compute
    gap prepended to its first access — the warp "arrives" that much
    later in the simulated timeline — optionally relabelled with a
    per-warp tenant.  Offsets are in the same units as block gaps
    (compute cycles between accesses), and a zero offset leaves the
    member's blocks untouched, so an all-zero arrival source is
    stream-identical to its member.
    """

    def __init__(
        self,
        member: TraceSource,
        offsets: Sequence[int],
        tenants: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        if len(offsets) != member.num_warps:
            raise ValueError(
                f"need one offset per warp: {len(offsets)} offsets, "
                f"{member.num_warps} warps"
            )
        if any(o < 0 for o in offsets):
            raise ValueError("arrival offsets must be non-negative")
        if tenants is not None and len(tenants) != member.num_warps:
            raise ValueError("need one tenant label per warp (or None)")
        self.member = member
        self.offsets = [int(o) for o in offsets]
        self.tenants = list(tenants) if tenants is not None else None
        self.num_warps = member.num_warps

    def tenant_of(self, warp_id: int) -> Optional[str]:
        if self.tenants is not None:
            return self.tenants[warp_id]
        return self.member.tenant_of(warp_id)

    def blocks(self, warp_id: int) -> Iterator[Block]:
        offset = self.offsets[warp_id]
        inner = self.member.blocks(warp_id)
        if offset:
            first = next(inner, None)
            if first is not None:
                gaps, addrs, writes = first
                yield ([gaps[0] + offset] + list(gaps[1:]), addrs, writes)
        yield from inner


class MultiTenantTraceSource(TraceSource):
    """WRR tenant interleave, merged lazily.

    Warp ``w`` streams tenant ``assignment[w]``'s member source at that
    tenant's local warp index (the same local-id mapping
    :func:`multi_tenant_traces` uses), labelled with the tenant — so a
    streamed mix attributes per-tenant counters identically to the
    materialized interleave.
    """

    def __init__(
        self,
        labels: Sequence[str],
        members: Sequence[TraceSource],
        assignment: Sequence[int],
    ) -> None:
        if len(labels) != len(members):
            raise ValueError("one member source per tenant label")
        self.labels = list(labels)
        self.members = list(members)
        self.assignment = list(assignment)
        self.num_warps = len(self.assignment)
        # Global warp index -> local index within its tenant's source.
        self._local: List[int] = []
        cursors = [0] * len(members)
        for t in self.assignment:
            self._local.append(cursors[t])
            cursors[t] += 1
        for t, (member, used) in enumerate(zip(self.members, cursors)):
            if member.num_warps != used:
                raise ValueError(
                    f"tenant {self.labels[t]!r}: member source has "
                    f"{member.num_warps} warps, assignment uses {used}"
                )

    def tenant_of(self, warp_id: int) -> Optional[str]:
        return self.labels[self.assignment[warp_id]]

    def blocks(self, warp_id: int) -> Iterator[Block]:
        t = self.assignment[warp_id]
        return self.members[t].blocks(self._local[warp_id])
