"""Graph-derived traces for the GraphBIG workloads [42].

Instead of purely statistical addresses, the six graph applications
(betw, bfsdata, bfstopo, gctopo, pagerank, sssp) replay accesses a
vertex-centric kernel would make over a real scale-free graph laid out
in CSR form: a vertex-property array plus an edge (adjacency) array.
Processing a vertex touches its property line, streams its adjacency
list, and touches each neighbour's property line — the classic
irregular gather that gives graph workloads their high APKI and skew
(high-degree vertices are hot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import networkx as nx
import numpy as np

from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import WarpTrace


@dataclass(frozen=True)
class CsrLayout:
    """CSR arrays mapped into the (scaled) GPU address space."""

    vertex_base: int
    edge_base: int
    vertex_stride: int  # bytes per vertex property record
    indptr: np.ndarray
    indices: np.ndarray

    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    def vertex_addr(self, v: int) -> int:
        return self.vertex_base + v * self.vertex_stride

    def edge_addr(self, edge_index: int) -> int:
        return self.edge_base + edge_index * 8  # 8-byte neighbour ids

    @property
    def aux_base(self) -> int:
        """Second vertex-property array (next-rank / level / distance)."""
        return self.edge_base + len(self.indices) * 8

    def aux_addr(self, v: int) -> int:
        return self.aux_base + v * self.vertex_stride


from functools import lru_cache


@lru_cache(maxsize=8)
def build_scale_free_csr(
    num_vertices: int,
    footprint_bytes: int,
    line_bytes: int = 128,
    attach_edges: int = 4,
    seed: int = 11,
) -> CsrLayout:
    """Barabási–Albert graph in CSR form, fitted into the footprint."""
    if num_vertices < attach_edges + 1:
        raise ValueError("graph too small for the attachment parameter")
    graph = nx.barabasi_albert_graph(num_vertices, attach_edges, seed=seed)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    indices_list: List[int] = []
    for v in range(num_vertices):
        neighbours = sorted(graph.neighbors(v))
        indices_list.extend(neighbours)
        indptr[v + 1] = len(indices_list)
    indices = np.asarray(indices_list, dtype=np.int64)
    # A realistic property record (rank/level/degree/flags + padding)
    # spans several lines per vertex.
    vertex_stride = 4 * line_bytes
    vertex_region = num_vertices * vertex_stride
    edge_region = len(indices) * 8
    # A second property array (e.g. pagerank's next-rank / bfs's level
    # array) follows the edge region.
    if 2 * vertex_region + edge_region > footprint_bytes:
        raise ValueError(
            f"graph needs {2 * vertex_region + edge_region} B, footprint is "
            f"{footprint_bytes} B"
        )
    return CsrLayout(
        vertex_base=0,
        edge_base=vertex_region,
        vertex_stride=vertex_stride,
        indptr=indptr,
        indices=indices,
    )


class GraphTraceGenerator:
    """Vertex-centric kernel replay over a CSR graph."""

    def __init__(
        self,
        spec: WorkloadSpec,
        footprint_bytes: int,
        line_bytes: int = 128,
        num_vertices: int = 4096,
        seed: int = 11,
        page_bytes: int = 4096,
    ) -> None:
        self.spec = spec
        self.line_bytes = line_bytes
        self.csr = build_scale_free_csr(
            num_vertices, footprint_bytes, line_bytes, seed=seed
        )
        self.seed = seed
        degrees = np.diff(self.csr.indptr).astype(np.float64)
        self._degree_weights = degrees / degrees.sum()
        # The CSR arrays are allocated contiguously at the bottom of the
        # address space; a page-granular scatter spreads them over the
        # whole footprint the way a real allocator + other program state
        # would, so controller interleave and planar groups see them.
        self.page_bytes = page_bytes
        self._footprint_bytes = footprint_bytes
        rng = np.random.default_rng(seed + 1)
        self._page_scatter = rng.permutation(footprint_bytes // page_bytes)

    def _scatter(self, addrs: np.ndarray) -> np.ndarray:
        pages, offsets = np.divmod(addrs, self.page_bytes)
        return self._page_scatter[pages] * self.page_bytes + offsets

    def warp_blocks(
        self, warp_global_id: int, num_accesses: int, block_ops: int = 2048
    ) -> Iterator[tuple]:
        """One warp's stream as ``(gaps, addrs, writes)`` native blocks.

        Generation path (``warp_trace`` concatenates it).  The gap
        vector is drawn whole up front to keep the frozen digests' RNG
        consumption order; the vertex sweep streams in blocks, with the
        page scatter applied per block (it is elementwise, so chunked
        application is value-identical to scattering the whole array).
        """
        rng = np.random.default_rng((self.seed, warp_global_id))
        # Total instructions per access (gap + the memory instruction)
        # must average 1000/APKI, so the compute gap is geometric with
        # mean 1000/APKI - 1 (shifted: geometric(p) - 1 with p=APKI/1000).
        gaps = (
            rng.geometric(p=min(1.0, self.spec.apki / 1000.0), size=num_accesses) - 1
        ).astype(np.int64)
        write_p = 1.0 - self.spec.read_ratio
        n_vertices = self.csr.num_vertices
        v = (warp_global_id * 65_537) % n_vertices  # spread warp starts
        # Scratch region past the CSR arrays: frontier queues / message
        # buffers that the kernel streams through exactly once.
        scratch_base = self.csr.aux_base + n_vertices * self.csr.vertex_stride
        scratch_lines = max(1, (self._footprint_bytes - scratch_base) // self.line_bytes)
        stride_lines = max(1, self.page_bytes // self.line_bytes)
        scratch_cursor = (warp_global_id * 40_503) % scratch_lines
        a_buf: list[int] = []
        w_buf: list[bool] = []
        emitted = 0
        filled = 0
        while filled < num_accesses:
            if rng.random() < self.spec.stream_fraction:
                a_buf.append(scratch_base + scratch_cursor * self.line_bytes)
                w_buf.append(rng.random() < 0.5)  # queues are written too
                scratch_cursor = (scratch_cursor + stride_lines + 1) % scratch_lines
                filled += 1
            else:
                # 1. Read this vertex's property line.
                a_buf.append(self.csr.vertex_addr(v))
                w_buf.append(False)
                filled += 1
                if filled < num_accesses:
                    # 2. Stream the adjacency list (line granular).
                    lo, hi = int(self.csr.indptr[v]), int(self.csr.indptr[v + 1])
                    first = self.csr.edge_addr(lo) // self.line_bytes
                    last = self.csr.edge_addr(max(lo, hi - 1)) // self.line_bytes
                    for line in range(first, last + 1):
                        a_buf.append(line * self.line_bytes)
                        w_buf.append(False)
                        filled += 1
                        if filled >= num_accesses:
                            break
                if filled < num_accesses:
                    # 3. Gather a few neighbour properties (hub-biased:
                    #    low ids are the BA graph's oldest,
                    #    highest-degree vertices).
                    for n in self.csr.indices[lo:hi][:4]:
                        a_buf.append(self.csr.vertex_addr(int(n)))
                        w_buf.append(False)
                        filled += 1
                        if filled >= num_accesses:
                            break
                if filled < num_accesses:
                    # 4. Update this vertex's entry in the output
                    #    property array.
                    a_buf.append(self.csr.aux_addr(v))
                    w_buf.append(rng.random() < min(1.0, write_p * 8))
                    filled += 1
                    v = (v + 1) % n_vertices
            while len(a_buf) >= block_ops:
                a_block, a_buf = a_buf[:block_ops], a_buf[block_ops:]
                w_block, w_buf = w_buf[:block_ops], w_buf[block_ops:]
                end = emitted + block_ops
                scattered = self._scatter(np.asarray(a_block, dtype=np.int64))
                yield (gaps[emitted:end].tolist(), scattered.tolist(), w_block)
                emitted = end
        if a_buf:
            scattered = self._scatter(np.asarray(a_buf, dtype=np.int64))
            yield (gaps[emitted:].tolist(), scattered.tolist(), w_buf)

    def warp_trace(self, warp_global_id: int, num_accesses: int) -> WarpTrace:
        """One warp sweeps its share of the vertex range in order.

        This is the vertex-centric kernel pattern: the sweep itself
        drifts sequentially through vertex properties and adjacency
        lists (so the hot working set moves over time, sustaining
        migrations), while neighbour-property gathers concentrate on
        high-degree hubs (stationary skew, bounded by edge counts).
        Materialized adapter over :meth:`warp_blocks`.
        """
        from repro.workloads.source import trace_from_blocks

        return trace_from_blocks(self.warp_blocks(warp_global_id, num_accesses))

    def traces(self, num_warps: int, accesses_per_warp: int) -> List[WarpTrace]:
        return [self.warp_trace(w, accesses_per_warp) for w in range(num_warps)]
