"""Streaming trace sources: a trace is a sequence, not a list.

Everything that *produces* warp accesses — the synthetic/graph/family
generators, phased and multi-tenant compositions, recorded trace files
— and everything that *consumes* them — the warp steppers in
``gpu/warp.py``, the materializing adapters, the ``repro trace``
pipeline stages — speaks one bounded-lookahead iterator interface:

* a **block** is three parallel native-typed lists
  ``(gaps, addrs, writes)`` covering a contiguous slice of one warp's
  access stream;
* a :class:`WarpStream` hands out one warp's blocks in order
  (:meth:`WarpStream.next_block`), accounting ops and instructions as
  they pass so the invariant audit can reconcile a fully-consumed
  stream exactly like a materialized :class:`WarpTrace`;
* a :class:`TraceSource` is a re-streamable factory of per-warp
  streams — calling :meth:`TraceSource.streams` again replays the
  same trace from the start (the executor's trace memo relies on
  this).

Consumers hold at most one block per warp, so peak memory for the
consuming side is O(warps x block) regardless of trace length.  The
producing side is honest about where it must buffer (DESIGN.md
section 12): generated families draw their per-warp gap and write
vectors in one shot — the frozen workload digests pin the RNG
consumption order, which a per-chunk regeneration would break — and
stream only the address loop; file replay (the chunked v2 format in
``workloads/trace.py``) buffers nothing beyond parked blocks.

:func:`materialize` is the single adapter back to ``List[WarpTrace]``
— kept for back-compat and for the fingerprint tests that check
streamed and materialized paths bit-identical.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.workloads.synthetic import WarpTrace

#: Default ops per block: small enough that a parked block is cheap
#: (~50 KB of native ints), large enough that per-block overhead
#: (validation sums, demux hops) amortizes to noise per op.
DEFAULT_BLOCK_OPS = 2048

#: One contiguous slice of a warp's access stream: parallel native
#: ``(gaps, addrs, writes)`` lists, directly indexable by the fused
#: warp stepper.
Block = Tuple[List[int], List[int], List[bool]]


class WarpStream:
    """One warp's access stream, pulled block by block.

    Doubles as the audit-visible trace view of a streamed warp
    (``warp.trace``): it exposes the same surface the conservation
    checks read off a :class:`WarpTrace` — ``tenant``, ``len()`` (ops
    seen so far), :attr:`total_instructions` and :meth:`well_formed` —
    all reflecting exactly what has flowed through.  Block-level
    well-formedness problems (misaligned lists, negative gaps or
    addresses, a stream that ends without a single op) are recorded at
    pull time through :attr:`on_problem` when set, so an audited run
    flags a malformed stream the moment it surfaces instead of crashing
    on the symptom.
    """

    __slots__ = (
        "warp_id",
        "tenant",
        "ops_seen",
        "instructions_seen",
        "on_problem",
        "allow_empty",
        "_blocks",
        "_problems",
    )

    def __init__(
        self,
        warp_id: int,
        blocks: Optional[Iterator[Block]],
        tenant: Optional[str] = None,
    ) -> None:
        self.warp_id = warp_id
        self.tenant = tenant
        self.ops_seen = 0
        self.instructions_seen = 0
        self.on_problem: Optional[Callable[[int, str], None]] = None
        # A generated warp that never issues is a bug; a chunked (v2)
        # trace file may *declare* a warp empty (an end marker with no
        # blocks — what `trace filter` emits to preserve SM placement).
        # The v2 reader sets this so declared emptiness isn't flagged.
        self.allow_empty = False
        self._blocks = blocks
        self._problems: List[str] = []

    def _problem(self, message: str) -> None:
        self._problems.append(message)
        if self.on_problem is not None:
            self.on_problem(self.warp_id, message)

    def next_block(self) -> Optional[Block]:
        """The next non-empty block, or ``None`` when the stream ends.

        Each delivered block is validated (alignment, negative gaps and
        addresses — the same contract :meth:`WarpTrace.well_formed`
        states) and accounted into :attr:`ops_seen` and
        :attr:`instructions_seen`.  A malformed block is still
        delivered, truncated to its aligned prefix, so an un-audited
        run degrades exactly like its materialized counterpart instead
        of silently dropping ops.
        """
        blocks = self._blocks
        if blocks is None:
            return None
        for block in blocks:
            gaps, addrs, writes = block
            n = len(addrs)
            if len(gaps) != n or len(writes) != n:
                self._problem(
                    "misaligned block: "
                    f"{len(gaps)} gaps, {n} addrs, {len(writes)} writes"
                )
                n = min(len(gaps), n, len(writes))
                block = (gaps[:n], addrs[:n], writes[:n])
                gaps, addrs, writes = block
            if n == 0:
                continue
            if min(gaps) < 0:
                self._problem(f"negative compute gap ({min(gaps)})")
            if min(addrs) < 0:
                self._problem(f"negative address ({min(addrs)})")
            self.ops_seen += n
            self.instructions_seen += sum(gaps) + n
            return block
        self._blocks = None
        if self.ops_seen == 0 and not self.allow_empty:
            self._problem("empty trace (a warp must issue at least once)")
        return None

    def __len__(self) -> int:
        return self.ops_seen

    @property
    def total_instructions(self) -> int:
        """Compute instructions plus one memory instruction per op seen."""
        return self.instructions_seen

    def well_formed(self) -> List[str]:
        """Problems observed so far (grows as blocks are pulled)."""
        return list(self._problems)


class TraceSource:
    """A re-streamable trace: per-warp block iterators on demand.

    Subclasses implement :meth:`blocks` (a *fresh* iterator per call)
    and may override :meth:`streams` when per-warp iterators cannot be
    independent (file demultiplexing).  ``num_warps`` is fixed at
    construction; sizing is baked into the source, mirroring how a
    trace file fixes its own shape.
    """

    num_warps: int

    def tenant_of(self, warp_id: int) -> Optional[str]:
        return None

    def blocks(self, warp_id: int) -> Iterator[Block]:
        raise NotImplementedError

    def streams(self) -> List[WarpStream]:
        """Fresh streams, one per warp, replaying from the start."""
        return [
            WarpStream(w, self.blocks(w), self.tenant_of(w))
            for w in range(self.num_warps)
        ]


def chunk_columns(
    columns: Tuple[List[int], List[int], List[bool]],
    block_ops: Optional[int],
) -> Iterator[Block]:
    """Slice compiled trace columns into ``block_ops``-sized blocks.

    ``block_ops=None`` delivers the columns as one block — the
    zero-copy path the materialized-trace stream uses, keeping the
    fused stepper's inner loop byte-identical to the list-backed one.
    """
    gaps, addrs, writes = columns
    if block_ops is None or len(addrs) <= block_ops:
        yield columns  # type: ignore[misc]
        return
    for lo in range(0, len(addrs), block_ops):
        hi = lo + block_ops
        yield (gaps[lo:hi], addrs[lo:hi], writes[lo:hi])


class MaterializedTraceSource(TraceSource):
    """Streams an in-memory ``List[WarpTrace]`` (the back-compat bridge).

    With the default ``block_ops=None`` each warp is one block — its
    cached :attr:`WarpTrace.columns` — so streaming a materialized
    trace costs nothing over consuming it directly.  Tests pass a small
    ``block_ops`` to force multi-block consumption.
    """

    def __init__(
        self, traces: List[WarpTrace], block_ops: Optional[int] = None
    ) -> None:
        self.traces = list(traces)
        self.num_warps = len(self.traces)
        self.block_ops = block_ops

    def tenant_of(self, warp_id: int) -> Optional[str]:
        return self.traces[warp_id].tenant

    def blocks(self, warp_id: int) -> Iterator[Block]:
        return chunk_columns(self.traces[warp_id].columns, self.block_ops)


class GeneratedTraceSource(TraceSource):
    """Streams a family generator's per-warp block generators.

    ``generator`` is any of the trace generators exposing
    ``warp_blocks(warp_id, num_accesses, block_ops)``; each warp's
    stream is generated independently (all cross-warp state lives in
    the generator's constructor), so per-warp lazy streams are
    value-identical to the materialized ``traces()`` order.
    """

    def __init__(
        self,
        generator,
        num_warps: int,
        accesses_per_warp: int,
        block_ops: int = DEFAULT_BLOCK_OPS,
    ) -> None:
        if num_warps < 1:
            raise ValueError("need at least one warp")
        self.generator = generator
        self.num_warps = num_warps
        self.accesses_per_warp = accesses_per_warp
        self.block_ops = block_ops

    def blocks(self, warp_id: int) -> Iterator[Block]:
        return self.generator.warp_blocks(
            warp_id, self.accesses_per_warp, self.block_ops
        )


def trace_from_blocks(
    blocks: Iterable[Block], tenant: Optional[str] = None
) -> WarpTrace:
    """Concatenate one warp's blocks back into a :class:`WarpTrace`."""
    gaps: List[int] = []
    addrs: List[int] = []
    writes: List[bool] = []
    for g, a, w in blocks:
        gaps.extend(g)
        addrs.extend(a)
        writes.extend(w)
    return WarpTrace(
        gaps=np.asarray(gaps, dtype=np.int64),
        addrs=np.asarray(addrs, dtype=np.int64),
        writes=np.asarray(writes, dtype=bool),
        tenant=tenant,
    )


def materialize(source: TraceSource) -> List[WarpTrace]:
    """Drain a source into ``List[WarpTrace]`` — the one adapter back.

    Consumes each stream fully before reading its tenant label, since
    file streams may only learn their tenant from the first record.
    """
    traces: List[WarpTrace] = []
    for stream in source.streams():
        gaps: List[int] = []
        addrs: List[int] = []
        writes: List[bool] = []
        while True:
            block = stream.next_block()
            if block is None:
                break
            gaps.extend(block[0])
            addrs.extend(block[1])
            writes.extend(block[2])
        traces.append(
            WarpTrace(
                gaps=np.asarray(gaps, dtype=np.int64),
                addrs=np.asarray(addrs, dtype=np.int64),
                writes=np.asarray(writes, dtype=bool),
                tenant=stream.tenant,
            )
        )
    return traces
