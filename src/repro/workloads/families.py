"""Parametric workload families beyond Table II.

Three trace generators that each model a canonical GPU access regime
the Table II suites only brush against.  All three compile to the same
:class:`~repro.workloads.synthetic.WarpTrace` hot format as the
synthetic and graph generators, are deterministic per
``(params, warp, seed)``, and are fingerprint-stable (golden digests in
``tests/data/workload_fingerprints.json``).

* :class:`TiledGemmGenerator` — dense tiled kernels (GEMM, attention
  score x value): heavy intra-tile temporal reuse with a streaming tile
  grid walk on top.
* :class:`PointerChaseGenerator` — dependent pointer chasing with a
  hub-skewed restart distribution and a streamed frontier queue: the
  worst-case irregular gather.
* :class:`StreamingScanGenerator` — STREAM-style multi-cursor scans
  with a configurable read:write mix: pure bandwidth, zero reuse.

Register an instance through
:func:`repro.workloads.registry.register_workload`; the default
registrations (``gemm_reuse``, ``pointer_chase``, ``stream_scan`` and
its read-ratio variants) happen at registry import so parallel executor
workers resolve the same names.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import WarpTrace, zipf_pmf


def _apki_gaps(rng: np.random.Generator, apki: float, n: int) -> np.ndarray:
    """Compute-gap lengths whose mean tracks ``1000/apki`` instructions.

    Same shifted-geometric convention as the synthetic generator: total
    instructions per access (gap + the memory instruction itself) must
    average ``1000/APKI``.
    """
    return (rng.geometric(p=min(1.0, apki / 1000.0), size=n) - 1).astype(np.int64)


class TiledGemmGenerator:
    """Dense tiled-kernel traces (GEMM / attention-like reuse).

    Models ``C = A x B`` over a tile grid: the footprint splits into
    three equal operand regions (A, B, C).  Each warp walks its own
    sequence of output tiles; one tile-step reads an A tile and a B tile
    (``passes`` sweeps each, the on-chip-reuse knob) and read-updates
    the C tile.  B tiles are revisited across the i-dimension — the
    attention-like stationary operand — so the hot set is small and
    stable inside a step but the grid walk streams through the whole
    footprint over time.

    Parameters: ``tile_lines`` (cache lines per operand tile),
    ``passes`` (sweeps over each input tile per step, i.e. temporal
    reuse), ``update_writes`` (fraction of C-tile touches that are
    writes).
    """

    family = "gemm"

    def __init__(
        self,
        spec: WorkloadSpec,
        footprint_bytes: int,
        line_bytes: int = 128,
        page_bytes: int = 4096,
        seed: int = 7,
        tile_lines: int = 16,
        passes: int = 2,
        update_writes: float = 0.5,
    ) -> None:
        if tile_lines < 1:
            raise ValueError("tile_lines must be at least 1")
        if passes < 1:
            raise ValueError("passes must be at least 1")
        if not 0.0 <= update_writes <= 1.0:
            raise ValueError("update_writes must be in [0, 1]")
        if footprint_bytes < 3 * tile_lines * line_bytes:
            raise ValueError("footprint smaller than one tile per operand")
        self.spec = spec
        self.footprint_bytes = footprint_bytes
        self.line_bytes = line_bytes
        self.seed = seed
        self.tile_lines = tile_lines
        self.passes = passes
        self.update_writes = update_writes
        region_lines = footprint_bytes // line_bytes // 3
        self.tiles_per_region = max(1, region_lines // tile_lines)
        # Operand region base addresses (line-aligned thirds).
        self.base_a = 0
        self.base_b = region_lines * line_bytes
        self.base_c = 2 * region_lines * line_bytes

    def _tile_lines_addrs(self, base: int, tile: int) -> range:
        start = base + tile * self.tile_lines * self.line_bytes
        return range(start, start + self.tile_lines * self.line_bytes, self.line_bytes)

    def warp_blocks(
        self, warp_global_id: int, num_accesses: int, block_ops: int = 2048
    ) -> Iterator[tuple]:
        """One warp's stream as ``(gaps, addrs, writes)`` native blocks.

        Generation path (``warp_trace`` concatenates it); the gap
        vector is drawn whole up front to keep the frozen digests' RNG
        consumption order, the tile walk streams in blocks.
        """
        if num_accesses < 1:
            raise ValueError("need at least one access")
        rng = np.random.default_rng((self.seed, warp_global_id))
        gaps = _apki_gaps(rng, self.spec.apki, num_accesses)
        n_tiles = self.tiles_per_region
        # Each warp owns a distinct diagonal walk over the (i, j) grid.
        step = warp_global_id * 2_654_435_761  # Fibonacci-hash spread
        a_buf: list[int] = []
        w_buf: list[bool] = []
        emitted = 0
        filled = 0
        k = 0
        while filled < num_accesses:
            i = (step + k) % n_tiles
            j = (step // n_tiles + k // n_tiles) % n_tiles
            # B is the stationary operand: revisited across i (same j).
            for _ in range(self.passes):
                for region_base, tile in ((self.base_a, i), (self.base_b, j)):
                    for addr in self._tile_lines_addrs(region_base, tile):
                        if filled >= num_accesses:
                            break
                        a_buf.append(addr)
                        w_buf.append(False)
                        filled += 1
                    if filled >= num_accesses:
                        break
                if filled >= num_accesses:
                    break
            # C accumulation: read-modify-write the output tile.
            for addr in self._tile_lines_addrs(self.base_c, (i + j) % n_tiles):
                if filled >= num_accesses:
                    break
                a_buf.append(addr)
                w_buf.append(rng.random() < self.update_writes)
                filled += 1
            k += 1
            while len(a_buf) >= block_ops:
                a_block, a_buf = a_buf[:block_ops], a_buf[block_ops:]
                w_block, w_buf = w_buf[:block_ops], w_buf[block_ops:]
                end = emitted + block_ops
                yield (gaps[emitted:end].tolist(), a_block, w_block)
                emitted = end
        if a_buf:
            yield (gaps[emitted:].tolist(), a_buf, w_buf)

    def warp_trace(self, warp_global_id: int, num_accesses: int) -> WarpTrace:
        """Deterministic trace for one warp (materialized adapter)."""
        from repro.workloads.source import trace_from_blocks

        return trace_from_blocks(self.warp_blocks(warp_global_id, num_accesses))

    def traces(self, num_warps: int, accesses_per_warp: int) -> List[WarpTrace]:
        """Traces for ``num_warps`` warps, ``accesses_per_warp`` each."""
        return [self.warp_trace(w, accesses_per_warp) for w in range(num_warps)]


class PointerChaseGenerator:
    """Pointer-chase / graph-frontier traces.

    Models the dependent irregular gather that defeats every prefetcher:
    most of the footprint is a node arena chased through a deterministic
    multiplicative-hash successor function (every access lands on a
    fresh, unpredictable line), restarts draw from a Zipf-skewed hub
    distribution (``spec.zipf_alpha``), and a tail region models the
    frontier queue the kernel streams and writes.

    Parameters: ``node_lines`` (cache lines per node record),
    ``chain_length`` (dependent hops between restarts),
    ``frontier_fraction`` (share of accesses that stream the frontier
    queue), ``frontier_write_ratio`` (writes within the queue traffic).
    """

    family = "pointer"

    def __init__(
        self,
        spec: WorkloadSpec,
        footprint_bytes: int,
        line_bytes: int = 128,
        page_bytes: int = 4096,
        seed: int = 7,
        node_lines: int = 1,
        chain_length: int = 12,
        frontier_fraction: float = 0.15,
        frontier_write_ratio: float = 0.5,
    ) -> None:
        if node_lines < 1:
            raise ValueError("node_lines must be at least 1")
        if chain_length < 1:
            raise ValueError("chain_length must be at least 1")
        if not 0.0 <= frontier_fraction < 1.0:
            raise ValueError("frontier_fraction must be in [0, 1)")
        if not 0.0 <= frontier_write_ratio <= 1.0:
            raise ValueError("frontier_write_ratio must be in [0, 1]")
        self.spec = spec
        self.footprint_bytes = footprint_bytes
        self.line_bytes = line_bytes
        self.seed = seed
        self.node_lines = node_lines
        self.chain_length = chain_length
        self.frontier_fraction = frontier_fraction
        self.frontier_write_ratio = frontier_write_ratio
        node_stride = node_lines * line_bytes
        # 7/8 of the footprint is node arena, the rest frontier queue.
        arena_bytes = footprint_bytes * 7 // 8
        self.num_nodes = arena_bytes // node_stride
        if self.num_nodes < 2:
            raise ValueError("footprint too small for a pointer arena")
        self.node_stride = node_stride
        self.frontier_base = self.num_nodes * node_stride
        self.frontier_lines = max(
            1, (footprint_bytes - self.frontier_base) // line_bytes
        )
        # Hub skew: restarts prefer low Zipf ranks; a fixed permutation
        # decouples rank from arena position.
        hub_ranks = min(self.num_nodes, 4096)
        self._hub_pmf = zipf_pmf(hub_ranks, spec.zipf_alpha)
        self._hub_of_rank = np.random.default_rng(seed).permutation(self.num_nodes)[
            :hub_ranks
        ]

    def _next_node(self, node: int) -> int:
        # Deterministic multiplicative-hash successor: visits lines in
        # an order no stride predictor can follow.
        return (node * 2_654_435_761 + 0x9E3779B9) % self.num_nodes

    def warp_blocks(
        self, warp_global_id: int, num_accesses: int, block_ops: int = 2048
    ) -> Iterator[tuple]:
        """One warp's stream as ``(gaps, addrs, writes)`` native blocks.

        Generation path (``warp_trace`` concatenates it); the gap
        vector is drawn whole up front to keep the frozen digests' RNG
        consumption order, the chase loop streams in blocks.
        """
        if num_accesses < 1:
            raise ValueError("need at least one access")
        rng = np.random.default_rng((self.seed, warp_global_id))
        gaps = _apki_gaps(rng, self.spec.apki, num_accesses)
        node = (warp_global_id * 48_271 + 1) % self.num_nodes
        frontier_cursor = (warp_global_id * 40_503) % self.frontier_lines
        a_buf: list[int] = []
        w_buf: list[bool] = []
        emitted = 0
        hops = 0
        filled = 0
        while filled < num_accesses:
            if rng.random() < self.frontier_fraction:
                a_buf.append(self.frontier_base + frontier_cursor * self.line_bytes)
                w_buf.append(rng.random() < self.frontier_write_ratio)
                frontier_cursor = (frontier_cursor + 1) % self.frontier_lines
                filled += 1
            else:
                line = int(rng.integers(self.node_lines))
                a_buf.append(node * self.node_stride + line * self.line_bytes)
                w_buf.append(False)
                filled += 1
                hops += 1
                if hops >= self.chain_length:
                    rank = int(rng.choice(len(self._hub_pmf), p=self._hub_pmf))
                    node = int(self._hub_of_rank[rank])
                    hops = 0
                else:
                    node = self._next_node(node)
            if len(a_buf) >= block_ops:
                end = emitted + block_ops
                yield (gaps[emitted:end].tolist(), a_buf, w_buf)
                a_buf, w_buf = [], []
                emitted = end
        if a_buf:
            yield (gaps[emitted:].tolist(), a_buf, w_buf)

    def warp_trace(self, warp_global_id: int, num_accesses: int) -> WarpTrace:
        """Deterministic trace for one warp (materialized adapter)."""
        from repro.workloads.source import trace_from_blocks

        return trace_from_blocks(self.warp_blocks(warp_global_id, num_accesses))

    def traces(self, num_warps: int, accesses_per_warp: int) -> List[WarpTrace]:
        """Traces for ``num_warps`` warps, ``accesses_per_warp`` each."""
        return [self.warp_trace(w, accesses_per_warp) for w in range(num_warps)]


class StreamingScanGenerator:
    """STREAM-style scan traces with a configurable read:write mix.

    Models pure-bandwidth kernels (copy/scale/triad, scans, filters):
    each warp advances ``num_streams`` sequential cursors spread across
    the footprint, touching one element per cursor per step.  The last
    cursor is the destination stream; ``read_fraction`` sets how much of
    the total traffic is reads (``1.0`` is a read-only scan, ``2/3`` is
    the classic two-loads-one-store triad).  There is no temporal reuse
    at all — every line is touched exactly once per sweep — which makes
    this the pressure test for channel bandwidth and migration policy.

    Parameters: ``read_fraction``, ``num_streams``, ``stride_lines``
    (cursor step in lines; >1 defeats line-granular spatial locality).
    """

    family = "stream"

    def __init__(
        self,
        spec: WorkloadSpec,
        footprint_bytes: int,
        line_bytes: int = 128,
        page_bytes: int = 4096,
        seed: int = 7,
        read_fraction: float = 2.0 / 3.0,
        num_streams: int = 3,
        stride_lines: int = 1,
    ) -> None:
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if num_streams < 1:
            raise ValueError("num_streams must be at least 1")
        if stride_lines < 1:
            raise ValueError("stride_lines must be at least 1")
        if footprint_bytes < num_streams * line_bytes:
            raise ValueError("footprint smaller than one line per stream")
        self.spec = spec
        self.footprint_bytes = footprint_bytes
        self.line_bytes = line_bytes
        self.seed = seed
        self.read_fraction = read_fraction
        self.num_streams = num_streams
        self.stride_lines = stride_lines
        self.region_lines = footprint_bytes // line_bytes // num_streams

    def warp_blocks(
        self, warp_global_id: int, num_accesses: int, block_ops: int = 2048
    ) -> Iterator[tuple]:
        """One warp's stream as ``(gaps, addrs, writes)`` native blocks.

        Generation path (``warp_trace`` concatenates it); the gap and
        write vectors are drawn whole up front to keep the frozen
        digests' RNG consumption order, the cursor sweep streams in
        blocks.
        """
        if num_accesses < 1:
            raise ValueError("need at least one access")
        rng = np.random.default_rng((self.seed, warp_global_id))
        gaps = _apki_gaps(rng, self.spec.apki, num_accesses)
        # The write mix is exact in expectation: a Bernoulli draw per
        # access keeps warps decorrelated while tracking read_fraction.
        writes = rng.random(num_accesses) >= self.read_fraction
        cursors = [
            (warp_global_id * 40_503 + s * 7_919) % self.region_lines
            for s in range(self.num_streams)
        ]
        a_buf: list[int] = []
        emitted = 0
        for idx in range(num_accesses):
            s = idx % self.num_streams
            region_base = s * self.region_lines * self.line_bytes
            a_buf.append(region_base + cursors[s] * self.line_bytes)
            cursors[s] = (cursors[s] + self.stride_lines) % self.region_lines
            if len(a_buf) >= block_ops:
                end = emitted + block_ops
                yield (
                    gaps[emitted:end].tolist(),
                    a_buf,
                    writes[emitted:end].tolist(),
                )
                a_buf = []
                emitted = end
        if a_buf:
            yield (gaps[emitted:].tolist(), a_buf, writes[emitted:].tolist())

    def warp_trace(self, warp_global_id: int, num_accesses: int) -> WarpTrace:
        """Deterministic trace for one warp (materialized adapter)."""
        from repro.workloads.source import trace_from_blocks

        return trace_from_blocks(self.warp_blocks(warp_global_id, num_accesses))

    def traces(self, num_warps: int, accesses_per_warp: int) -> List[WarpTrace]:
        """Traces for ``num_warps`` warps, ``accesses_per_warp`` each."""
        return [self.warp_trace(w, accesses_per_warp) for w in range(num_warps)]
