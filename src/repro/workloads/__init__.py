"""Workload substrate: declarative workload defs, trace families and
record/replay.

Layers (see docs/WORKLOADS.md for the authoring tutorial):

* ``spec``      — :class:`WorkloadSpec` characteristics and
                  :class:`WorkloadDef` declarative scenario specs.
* ``synthetic`` / ``graphs`` — the Table II statistical and
                  graph-replay generators.
* ``families``  — parametric families (tiled GEMM, pointer chase,
                  streaming scan).
* ``source``    — the bounded-lookahead streaming interface every
                  producer and consumer speaks (:class:`TraceSource`,
                  :class:`WarpStream`; DESIGN.md section 12).
* ``compose``   — sequential phases and multi-tenant mixes.
* ``trace``     — record-and-replay memory-trace format (streaming
                  reader/writer, chunked v2 format).
* ``registry``  — name -> def resolution and family dispatch
                  (:func:`build_traces` materializes,
                  :func:`build_source` streams; the execution backend
                  uses both through one resolution path).
"""

from repro.workloads.compose import make_multi_tenant, make_phased
from repro.workloads.families import (
    PointerChaseGenerator,
    StreamingScanGenerator,
    TiledGemmGenerator,
)
from repro.workloads.graphs import GraphTraceGenerator
from repro.workloads.registry import (
    FAMILIES,
    REGISTRY,
    WORKLOADS,
    build_source,
    build_traces,
    get_workload,
    get_workload_def,
    register_workload,
    workload_names,
)
from repro.workloads.source import (
    DEFAULT_BLOCK_OPS,
    GeneratedTraceSource,
    MaterializedTraceSource,
    TraceSource,
    WarpStream,
    materialize,
)
from repro.workloads.spec import WorkloadDef, WorkloadSpec, make_def
from repro.workloads.synthetic import SyntheticTraceGenerator, WarpTrace
from repro.workloads.trace import (
    ChunkedTraceWriter,
    FileTraceSource,
    TraceMeta,
    TraceRecorder,
    load_traces,
    save_stream,
    save_traces,
)

__all__ = [
    "WorkloadSpec",
    "WorkloadDef",
    "make_def",
    "WORKLOADS",
    "REGISTRY",
    "FAMILIES",
    "get_workload",
    "get_workload_def",
    "register_workload",
    "workload_names",
    "build_traces",
    "build_source",
    "TraceSource",
    "WarpStream",
    "GeneratedTraceSource",
    "MaterializedTraceSource",
    "materialize",
    "DEFAULT_BLOCK_OPS",
    "SyntheticTraceGenerator",
    "GraphTraceGenerator",
    "TiledGemmGenerator",
    "PointerChaseGenerator",
    "StreamingScanGenerator",
    "make_phased",
    "make_multi_tenant",
    "WarpTrace",
    "TraceMeta",
    "TraceRecorder",
    "FileTraceSource",
    "ChunkedTraceWriter",
    "load_traces",
    "save_stream",
    "save_traces",
]
