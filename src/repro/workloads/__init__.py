"""Workload substrate: Table II specs, synthetic trace generation and
graph-derived traces for the GraphBIG applications."""

from repro.workloads.registry import WORKLOADS, get_workload
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import SyntheticTraceGenerator, WarpTrace
from repro.workloads.graphs import GraphTraceGenerator

__all__ = [
    "WorkloadSpec",
    "WORKLOADS",
    "get_workload",
    "SyntheticTraceGenerator",
    "GraphTraceGenerator",
    "WarpTrace",
]
