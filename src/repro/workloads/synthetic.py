"""Synthetic post-L2 trace generation shaped by a WorkloadSpec.

Each warp gets a :class:`WarpTrace`: aligned arrays of compute-gap
lengths (instructions between memory operations, geometric with mean
``1000/APKI``), byte addresses (Zipf-popular pages expanded into short
sequential line runs) and read/write flags (Bernoulli at the Table II
read ratio).  Generation is deterministic per (workload, warp, seed).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, List, Optional

import numpy as np

from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class WarpTrace:
    """One warp's replayable access stream.

    ``tenant`` labels the trace for composed multi-tenant workloads
    (``workloads/compose.py``); the GPU model attributes per-tenant
    instruction and access counts from it.  Plain workloads leave it
    ``None`` and pay nothing.
    """

    gaps: np.ndarray  # int64 instructions of compute before each access
    addrs: np.ndarray  # int64 byte addresses
    writes: np.ndarray  # bool
    tenant: Optional[str] = None

    def __len__(self) -> int:
        return len(self.addrs)

    def digest(self) -> str:
        """SHA-256 over the raw access stream (endianness-pinned).

        The golden workload-fingerprint tests freeze these per family:
        any change to a family's generated addresses, gaps or write
        flags — however small — changes the digest.
        """
        h = hashlib.sha256()
        h.update(self.gaps.astype("<i8").tobytes())
        h.update(self.addrs.astype("<i8").tobytes())
        h.update(self.writes.astype("u1").tobytes())
        if self.tenant is not None:
            h.update(self.tenant.encode("utf-8"))
        return h.hexdigest()

    @cached_property
    def ops(self) -> tuple[tuple[int, int, bool], ...]:
        """The trace compiled to plain ``(gap, addr, write)`` tuples.

        ``tolist()`` converts every numpy scalar to a native int/bool up
        front, so replaying the trace (the simulator's inner loop) never
        touches numpy.  Computed once per trace and cached; traces are
        shared across platforms by the executor's trace memo.
        """
        return tuple(
            zip(self.gaps.tolist(), self.addrs.tolist(), self.writes.tolist())
        )

    @cached_property
    def columns(self) -> tuple[List[int], List[int], List[bool]]:
        """The trace compiled to parallel ``(gaps, addrs, writes)`` lists.

        The column form the fused warp stepper indexes directly
        (``gaps[cursor]``/``addrs[cursor]``/``writes[cursor]``) — same
        native-int compilation as :attr:`ops` but with no tuple per
        access.  Cached separately so legacy tuple consumers don't
        force both representations.
        """
        return (self.gaps.tolist(), self.addrs.tolist(), self.writes.tolist())

    def __iter__(self) -> Iterator[tuple[int, int, bool]]:
        return iter(self.ops)

    def well_formed(self) -> List[str]:
        """Internal-consistency problems, empty when the trace is sound.

        The trace is the contract between the workload layer and the
        GPU model: the arrays must be aligned, compute gaps
        non-negative (a negative gap would ask the SM for a
        negative-length issue burst) and addresses non-negative (the
        memory system rejects them mid-run).  Generators uphold this by
        construction; replayed/edited trace files and custom generators
        are exactly where it can silently break, so the invariant audit
        (``sim/audit.py``) checks every warp's trace against this.
        """
        problems: List[str] = []
        if not (len(self.gaps) == len(self.addrs) == len(self.writes)):
            problems.append(
                "misaligned arrays: "
                f"{len(self.gaps)} gaps, {len(self.addrs)} addrs, "
                f"{len(self.writes)} writes"
            )
            return problems
        if len(self) == 0:
            problems.append("empty trace (a warp must issue at least once)")
            return problems
        if int(self.gaps.min()) < 0:
            problems.append(f"negative compute gap ({int(self.gaps.min())})")
        if int(self.addrs.min()) < 0:
            problems.append(f"negative address ({int(self.addrs.min())})")
        return problems

    @property
    def total_instructions(self) -> int:
        """Compute instructions plus one memory instruction per access."""
        return int(self.gaps.sum()) + len(self)


def zipf_pmf(num_items: int, alpha: float) -> np.ndarray:
    """Truncated Zipf probability mass over ``num_items`` ranks."""
    if num_items < 1:
        raise ValueError("need at least one item")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


class SyntheticTraceGenerator:
    """Builds per-warp traces for a workload over a scaled footprint."""

    def __init__(
        self,
        spec: WorkloadSpec,
        footprint_bytes: int,
        line_bytes: int = 128,
        page_bytes: int = 4096,
        seed: int = 7,
    ) -> None:
        if footprint_bytes < page_bytes:
            raise ValueError("footprint smaller than one page")
        self.spec = spec
        self.footprint_bytes = footprint_bytes
        self.line_bytes = line_bytes
        self.page_bytes = page_bytes
        self.num_pages = footprint_bytes // page_bytes
        self.lines_per_page = page_bytes // line_bytes
        self.seed = seed
        self._pmf = zipf_pmf(self.num_pages, spec.zipf_alpha)
        # Random permutations decouple popularity rank from address, so
        # hot pages spread across controllers and groups.  The hot set
        # *drifts*: a fresh permutation applies each epoch, modelling
        # program phases — this is what sustains planar-mode migrations
        # rather than a one-time warmup transient.
        rng = np.random.default_rng(seed)
        self.num_epochs = 4
        self._page_of_rank_by_epoch = [
            rng.permutation(self.num_pages) for _ in range(self.num_epochs)
        ]

    def warp_blocks(
        self, warp_global_id: int, num_accesses: int, block_ops: int = 2048
    ) -> Iterator[tuple]:
        """One warp's stream as ``(gaps, addrs, writes)`` native blocks.

        This is the generation path; :meth:`warp_trace` concatenates it.
        The gap and write vectors are drawn whole up front — the frozen
        workload digests pin the RNG consumption order (all gaps, then
        all writes, then the address loop), which per-chunk regeneration
        would reorder — so the per-warp transient is ~9 B/access; the
        address loop itself streams in ``block_ops``-sized slices.
        """
        if num_accesses < 1:
            raise ValueError("need at least one access")
        rng = np.random.default_rng((self.seed, warp_global_id))
        # Total instructions per access (gap + the memory instruction)
        # must average 1000/APKI, so the compute gap is geometric with
        # mean 1000/APKI - 1 (shifted: geometric(p) - 1 with p=APKI/1000).
        gaps = (
            rng.geometric(p=min(1.0, self.spec.apki / 1000.0), size=num_accesses) - 1
        ).astype(np.int64)
        writes = rng.random(num_accesses) >= self.spec.read_ratio
        run_p = min(1.0, 1.0 / self.spec.seq_run_mean)
        epoch_len = max(1, num_accesses // self.num_epochs)
        history: list[int] = []  # recently touched lines (reuse pool)
        # Cold streaming sweep: each warp scans the footprint with a
        # large stride (column-order array walks).  Warps jointly touch
        # most pages exactly once — the capacity pressure that makes the
        # paper's Origin platform page against the host.
        total_lines = self.footprint_bytes // self.line_bytes
        stride_lines = max(1, self.page_bytes // self.line_bytes)
        stream_cursor = (warp_global_id * 40_503) % total_lines
        buf: list[int] = []
        emitted = 0
        filled = 0
        while filled < num_accesses:
            if rng.random() < self.spec.stream_fraction:
                buf.append(stream_cursor * self.line_bytes)
                stream_cursor = (stream_cursor + stride_lines + 1) % total_lines
                filled += 1
            # Temporal locality that survived the on-chip caches: revisit
            # a recently touched line.
            elif history and rng.random() < self.spec.temporal_reuse:
                buf.append(history[int(rng.integers(len(history)))])
                filled += 1
            else:
                epoch = min(filled // epoch_len, self.num_epochs - 1)
                rank = rng.choice(self.num_pages, p=self._pmf)
                page = int(self._page_of_rank_by_epoch[epoch][rank])
                run = min(int(rng.geometric(run_p)), num_accesses - filled)
                start_line = int(rng.integers(self.lines_per_page))
                base = page * self.page_bytes
                for i in range(run):
                    line = (start_line + i) % self.lines_per_page
                    addr = base + line * self.line_bytes
                    buf.append(addr)
                    history.append(addr)
                    filled += 1
                if len(history) > 32:
                    del history[: len(history) - 32]
            while len(buf) >= block_ops:
                block, buf = buf[:block_ops], buf[block_ops:]
                end = emitted + block_ops
                yield (
                    gaps[emitted:end].tolist(),
                    block,
                    writes[emitted:end].tolist(),
                )
                emitted = end
        if buf:
            yield (gaps[emitted:].tolist(), buf, writes[emitted:].tolist())

    def warp_trace(self, warp_global_id: int, num_accesses: int) -> WarpTrace:
        """Deterministic trace for one warp (materialized adapter)."""
        from repro.workloads.source import trace_from_blocks

        return trace_from_blocks(self.warp_blocks(warp_global_id, num_accesses))

    def traces(self, num_warps: int, accesses_per_warp: int) -> List[WarpTrace]:
        return [self.warp_trace(w, accesses_per_warp) for w in range(num_warps)]
