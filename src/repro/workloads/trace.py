"""Memory-trace format: record any simulation, replay it as a workload.

The format is compact JSONL (gzip-compressed when the path ends in
``.gz``):

* **line 1** — a header object: ``format`` (``"repro-trace"``),
  ``version``, the originating ``workload``/``platform``/``mode``,
  ``line_bytes``, ``num_warps``, and the full ``spec`` dict of the
  recorded workload (so a replay carries the original
  :class:`~repro.workloads.spec.WorkloadSpec` — including its name,
  which keeps the replayed :class:`~repro.gpu.gpu.RunResult`
  bit-identical to the recorded run).
* **one line per warp** — ``{"warp": i, "tenant": ..., "gaps": [...],
  "addrs": [...], "writes": [0/1, ...]}``.

Recording hooks into the warp's memory-issue path: a
:class:`TraceRecorder` handed to :class:`~repro.gpu.gpu.GpuModel` (via
``repro run --record-trace`` or ``repro workloads record``) captures
every ``(gap, addr, write)`` exactly as executed.  Because the
simulator is a deterministic function of (traces, config), replaying a
recorded file under the same configuration reproduces the original
``RunResult`` fingerprint bit-identically — the property the trace
tests pin down.

Replay is addressed through the registry as the workload name
``trace:<path>`` and therefore works everywhere a workload name does:
``repro run``, experiment specs, sweeps, parallel executors and the
persistent result cache (the file's SHA-256 is folded into the cache
fingerprint).
"""

from __future__ import annotations

import gzip
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import WarpTrace

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

#: Registry prefix: ``trace:<path>`` resolves to a replay workload.
TRACE_PREFIX = "trace:"


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or has the wrong version."""


@dataclass(frozen=True)
class TraceMeta:
    """Header of a trace file: provenance plus the recorded spec."""

    workload: str
    platform: str
    mode: str
    line_bytes: int
    num_warps: int
    spec: WorkloadSpec

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "workload": self.workload,
            "platform": self.platform,
            "mode": self.mode,
            "line_bytes": self.line_bytes,
            "num_warps": self.num_warps,
            "spec": asdict(self.spec),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceMeta":
        if data.get("format") != TRACE_FORMAT:
            raise TraceFormatError("not a repro-trace file (bad format marker)")
        if data.get("version") != TRACE_VERSION:
            raise TraceFormatError(
                f"unsupported trace version {data.get('version')!r} "
                f"(this build reads v{TRACE_VERSION})"
            )
        return cls(
            workload=data["workload"],
            platform=data["platform"],
            mode=data["mode"],
            line_bytes=data["line_bytes"],
            num_warps=data["num_warps"],
            spec=WorkloadSpec(**data["spec"]),
        )


class TraceRecorder:
    """Collects each warp's executed ``(gap, addr, write)`` stream.

    Handed to :class:`~repro.gpu.gpu.GpuModel`, which threads it into
    every warp; the warp calls :meth:`record` once per memory
    instruction at issue time.  Accesses are appended in per-warp
    program order, so the recording is exactly the stream a replay
    feeds back.
    """

    def __init__(self, num_warps: int) -> None:
        if num_warps < 1:
            raise ValueError("need at least one warp")
        self._streams: List[List[tuple]] = [[] for _ in range(num_warps)]

    def record(self, warp_id: int, gap: int, addr: int, is_write: bool) -> None:
        """Append one executed access to ``warp_id``'s stream."""
        self._streams[warp_id].append((gap, addr, is_write))

    def to_traces(
        self, tenants: Optional[Sequence[Optional[str]]] = None
    ) -> List[WarpTrace]:
        """The recording as replayable :class:`WarpTrace` objects."""
        traces = []
        for w, stream in enumerate(self._streams):
            if not stream:
                raise ValueError(f"warp {w} recorded no accesses")
            gaps, addrs, writes = zip(*stream)
            traces.append(
                WarpTrace(
                    gaps=np.asarray(gaps, dtype=np.int64),
                    addrs=np.asarray(addrs, dtype=np.int64),
                    writes=np.asarray(writes, dtype=bool),
                    tenant=tenants[w] if tenants is not None else None,
                )
            )
        return traces


def _open_for_write(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_for_read(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def save_traces(
    path: Union[str, Path], meta: TraceMeta, traces: Sequence[WarpTrace]
) -> Path:
    """Write a trace file (header line + one JSONL record per warp)."""
    path = Path(path)
    if len(traces) != meta.num_warps:
        raise ValueError(
            f"meta says {meta.num_warps} warps, got {len(traces)} traces"
        )
    with _open_for_write(path) as fh:
        fh.write(json.dumps(meta.to_dict(), separators=(",", ":")) + "\n")
        for w, trace in enumerate(traces):
            record = {
                "warp": w,
                "tenant": trace.tenant,
                "gaps": trace.gaps.tolist(),
                "addrs": trace.addrs.tolist(),
                "writes": [int(b) for b in trace.writes.tolist()],
            }
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
    return path


def read_trace_meta(path: Union[str, Path]) -> TraceMeta:
    """Read only the header of a trace file.

    This is what name resolution (``trace:<path>`` -> WorkloadDef)
    uses: building the def needs the recorded spec and provenance, not
    the warp records, so resolving a large trace stays cheap.
    """
    path = Path(path)
    try:
        with _open_for_read(path) as fh:
            header_line = fh.readline()
    except (EOFError, UnicodeDecodeError) as exc:
        raise TraceFormatError(f"{path}: not a readable trace file ({exc})") from None
    if not header_line.strip():
        raise TraceFormatError(f"{path}: empty trace file")
    try:
        return TraceMeta.from_dict(json.loads(header_line))
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: unreadable header ({exc})") from None


def load_traces(path: Union[str, Path]) -> tuple[TraceMeta, List[WarpTrace]]:
    """Read a trace file back into its header and warp traces."""
    path = Path(path)
    meta = read_trace_meta(path)
    traces: List[WarpTrace] = []
    try:
        with _open_for_read(path) as fh:
            fh.readline()  # header, already parsed above
            for line in fh:
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceFormatError(
                        f"{path}: corrupt warp record ({exc})"
                    ) from None
                traces.append(
                    WarpTrace(
                        gaps=np.asarray(record["gaps"], dtype=np.int64),
                        addrs=np.asarray(record["addrs"], dtype=np.int64),
                        writes=np.asarray(record["writes"], dtype=bool),
                        tenant=record.get("tenant"),
                    )
                )
    except (EOFError, UnicodeDecodeError) as exc:
        raise TraceFormatError(f"{path}: not a readable trace file ({exc})") from None
    if len(traces) != meta.num_warps:
        raise TraceFormatError(
            f"{path}: header says {meta.num_warps} warps, file has {len(traces)}"
        )
    return meta, traces


def trace_file_digest(path: Union[str, Path]) -> str:
    """SHA-256 of the file bytes — the cache-fingerprint component."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def trace_path_of(name: str) -> Optional[str]:
    """The path inside a ``trace:<path>`` workload name, else ``None``."""
    if name.startswith(TRACE_PREFIX):
        return name[len(TRACE_PREFIX):]
    return None
