"""Memory-trace format: record any simulation, replay it as a workload.

The format is compact JSONL (gzip-compressed when the path ends in
``.gz``):

* **line 1** — a header object: ``format`` (``"repro-trace"``),
  ``version``, the originating ``workload``/``platform``/``mode``,
  ``line_bytes``, ``num_warps``, and the full ``spec`` dict of the
  recorded workload (so a replay carries the original
  :class:`~repro.workloads.spec.WorkloadSpec` — including its name,
  which keeps the replayed :class:`~repro.gpu.gpu.RunResult`
  bit-identical to the recorded run).
* **one line per warp** — ``{"warp": i, "tenant": ..., "gaps": [...],
  "addrs": [...], "writes": [0/1, ...]}``.

Recording hooks into the warp's memory-issue path: a
:class:`TraceRecorder` handed to :class:`~repro.gpu.gpu.GpuModel` (via
``repro run --record-trace`` or ``repro workloads record``) captures
every ``(gap, addr, write)`` exactly as executed.  Because the
simulator is a deterministic function of (traces, config), replaying a
recorded file under the same configuration reproduces the original
``RunResult`` fingerprint bit-identically — the property the trace
tests pin down.

Replay is addressed through the registry as the workload name
``trace:<path>`` and therefore works everywhere a workload name does:
``repro run``, experiment specs, sweeps, parallel executors and the
persistent result cache (the file's SHA-256 is folded into the cache
fingerprint).
"""

from __future__ import annotations

import gzip
import hashlib
import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.workloads.source import Block, TraceSource, WarpStream, materialize
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import WarpTrace

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1
#: The chunked (v2) format: after the header, each line is one warp's
#: next block ``{"w": i, "g": [...], "a": [...], "wr": [0/1, ...]}``
#: (plus ``"t"``, the tenant label, on a warp's first record), warps
#: interleaved round-robin so a replaying reader parks at most one
#: round of blocks; a warp's stream ends with ``{"w": i, "end": 1}``.
#: Missing end markers mean the file was truncated mid-stream, and a
#: warp with an end marker but no blocks is legitimately empty (the
#: ``repro trace filter`` stage emits exactly that for dropped warps).
TRACE_VERSION_CHUNKED = 2

#: Registry prefix: ``trace:<path>`` resolves to a replay workload.
TRACE_PREFIX = "trace:"


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or has the wrong version."""


@dataclass(frozen=True)
class TraceMeta:
    """Header of a trace file: provenance plus the recorded spec."""

    workload: str
    platform: str
    mode: str
    line_bytes: int
    num_warps: int
    spec: WorkloadSpec

    def to_dict(self, version: int = TRACE_VERSION) -> dict:
        from dataclasses import asdict

        return {
            "format": TRACE_FORMAT,
            "version": version,
            "workload": self.workload,
            "platform": self.platform,
            "mode": self.mode,
            "line_bytes": self.line_bytes,
            "num_warps": self.num_warps,
            "spec": asdict(self.spec),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceMeta":
        meta, _version = _meta_and_version(data)
        return meta


def _meta_and_version(data: dict) -> tuple["TraceMeta", int]:
    """Parse a header dict into its meta and format version."""
    if data.get("format") != TRACE_FORMAT:
        raise TraceFormatError("not a repro-trace file (bad format marker)")
    version = data.get("version")
    if version not in (TRACE_VERSION, TRACE_VERSION_CHUNKED):
        raise TraceFormatError(
            f"unsupported trace version {version!r} (this build reads "
            f"v{TRACE_VERSION} and v{TRACE_VERSION_CHUNKED})"
        )
    meta = TraceMeta(
        workload=data["workload"],
        platform=data["platform"],
        mode=data["mode"],
        line_bytes=data["line_bytes"],
        num_warps=data["num_warps"],
        spec=WorkloadSpec(**data["spec"]),
    )
    return meta, version


class TraceRecorder:
    """Collects each warp's executed ``(gap, addr, write)`` stream.

    Handed to :class:`~repro.gpu.gpu.GpuModel`, which threads it into
    every warp; the warp calls :meth:`record` once per memory
    instruction at issue time.  Accesses are appended in per-warp
    program order, so the recording is exactly the stream a replay
    feeds back.
    """

    def __init__(self, num_warps: int) -> None:
        if num_warps < 1:
            raise ValueError("need at least one warp")
        self._streams: List[List[tuple]] = [[] for _ in range(num_warps)]

    def record(self, warp_id: int, gap: int, addr: int, is_write: bool) -> None:
        """Append one executed access to ``warp_id``'s stream."""
        self._streams[warp_id].append((gap, addr, is_write))

    def to_traces(
        self, tenants: Optional[Sequence[Optional[str]]] = None
    ) -> List[WarpTrace]:
        """The recording as replayable :class:`WarpTrace` objects."""
        traces = []
        for w, stream in enumerate(self._streams):
            if not stream:
                raise ValueError(f"warp {w} recorded no accesses")
            gaps, addrs, writes = zip(*stream)
            traces.append(
                WarpTrace(
                    gaps=np.asarray(gaps, dtype=np.int64),
                    addrs=np.asarray(addrs, dtype=np.int64),
                    writes=np.asarray(writes, dtype=bool),
                    tenant=tenants[w] if tenants is not None else None,
                )
            )
        return traces


def _open_for_write(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_for_read(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def save_traces(
    path: Union[str, Path], meta: TraceMeta, traces: Sequence[WarpTrace]
) -> Path:
    """Write a trace file (header line + one JSONL record per warp)."""
    path = Path(path)
    if len(traces) != meta.num_warps:
        raise ValueError(
            f"meta says {meta.num_warps} warps, got {len(traces)} traces"
        )
    with _open_for_write(path) as fh:
        fh.write(json.dumps(meta.to_dict(), separators=(",", ":")) + "\n")
        for w, trace in enumerate(traces):
            record = {
                "warp": w,
                "tenant": trace.tenant,
                "gaps": trace.gaps.tolist(),
                "addrs": trace.addrs.tolist(),
                "writes": [int(b) for b in trace.writes.tolist()],
            }
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
    return path


def _read_header(fh: IO[str], label: str) -> tuple[TraceMeta, int]:
    """Parse the header line from an open text stream."""
    try:
        header_line = fh.readline()
    except (EOFError, UnicodeDecodeError) as exc:
        raise TraceFormatError(f"{label}: not a readable trace file ({exc})") from None
    if not header_line.strip():
        raise TraceFormatError(f"{label}: empty trace file")
    try:
        return _meta_and_version(json.loads(header_line))
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{label}: unreadable header ({exc})") from None


def read_trace_meta(path: Union[str, Path]) -> TraceMeta:
    """Read only the header of a trace file.

    This is what name resolution (``trace:<path>`` -> WorkloadDef)
    uses: building the def needs the recorded spec and provenance, not
    the warp records, so resolving a large trace stays cheap.
    """
    path = Path(path)
    try:
        with _open_for_read(path) as fh:
            return _read_header(fh, str(path))[0]
    except (EOFError, UnicodeDecodeError) as exc:
        raise TraceFormatError(f"{path}: not a readable trace file ({exc})") from None


class _TraceDemux:
    """Sequential record reader demultiplexed into per-warp block queues.

    One pass over the file serves every warp's stream: a pull for warp
    ``w`` reads records — parking other warps' blocks on their queues —
    until ``w``'s next block or its end-of-stream surfaces.  For v2
    files written round-robin the parking is bounded by one round of
    blocks; a v1 file parks whole-warp records (still line-incremental:
    each record becomes native lists straight from the JSON parser,
    never numpy arrays or per-op tuples).

    Truncation fails loudly on both formats: v1 requires exactly
    ``num_warps`` records by EOF, v2 requires every warp's end marker.
    """

    def __init__(
        self,
        fh: IO[str],
        num_warps: int,
        version: int,
        label: str,
        streams: Optional[List[WarpStream]] = None,
    ) -> None:
        self._fh: Optional[IO[str]] = fh
        self._num_warps = num_warps
        self._version = version
        self._label = label
        self._streams = streams
        self._queues: List[deque] = [deque() for _ in range(num_warps)]
        self._ended = [False] * num_warps
        self._seen = [False] * num_warps

    def pull(self, warp_id: int) -> Optional[Block]:
        queue = self._queues[warp_id]
        while not queue and not self._ended[warp_id] and self._fh is not None:
            self._read_record()
        return queue.popleft() if queue else None

    def _close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()

    def _read_record(self) -> None:
        assert self._fh is not None
        try:
            line = self._fh.readline()
        except (EOFError, UnicodeDecodeError) as exc:
            self._fh = None
            raise TraceFormatError(
                f"{self._label}: not a readable trace file ({exc})"
            ) from None
        if not line:
            self._close()
            self._check_complete()
            return
        if not line.strip():
            return
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            self._close()
            raise TraceFormatError(
                f"{self._label}: corrupt warp record ({exc})"
            ) from None
        if self._version == TRACE_VERSION:
            self._park_v1(record)
        else:
            self._park_v2(record)

    def _warp_of(self, record: dict, key: str) -> int:
        try:
            warp_id = int(record[key])
        except (KeyError, TypeError, ValueError):
            self._close()
            raise TraceFormatError(
                f"{self._label}: warp record without a usable {key!r} field"
            ) from None
        if not 0 <= warp_id < self._num_warps:
            self._close()
            raise TraceFormatError(
                f"{self._label}: header says {self._num_warps} warps, "
                f"file has a record for warp {warp_id}"
            )
        return warp_id

    def _set_tenant(self, warp_id: int, tenant: Optional[str]) -> None:
        if tenant is not None and self._streams is not None:
            self._streams[warp_id].tenant = tenant

    def _park_v1(self, record: dict) -> None:
        warp_id = self._warp_of(record, "warp")
        self._seen[warp_id] = True
        self._ended[warp_id] = True  # one record per warp in v1
        self._set_tenant(warp_id, record.get("tenant"))
        try:
            block = (
                record["gaps"],
                record["addrs"],
                [bool(v) for v in record["writes"]],
            )
        except (KeyError, TypeError) as exc:
            self._close()
            raise TraceFormatError(
                f"{self._label}: corrupt warp record ({exc})"
            ) from None
        self._queues[warp_id].append(block)

    def _park_v2(self, record: dict) -> None:
        warp_id = self._warp_of(record, "w")
        self._seen[warp_id] = True
        if record.get("end"):
            self._ended[warp_id] = True
            return
        self._set_tenant(warp_id, record.get("t"))
        try:
            block = (
                record["g"],
                record["a"],
                [bool(v) for v in record["wr"]],
            )
        except (KeyError, TypeError) as exc:
            self._close()
            raise TraceFormatError(
                f"{self._label}: corrupt warp record ({exc})"
            ) from None
        self._queues[warp_id].append(block)

    def _check_complete(self) -> None:
        if self._version == TRACE_VERSION:
            seen = sum(self._seen)
            if seen != self._num_warps:
                raise TraceFormatError(
                    f"{self._label}: header says {self._num_warps} warps, "
                    f"file has {seen}"
                )
            return
        missing = [w for w, ended in enumerate(self._ended) if not ended]
        if missing:
            raise TraceFormatError(
                f"{self._label}: truncated stream — no end marker for "
                f"warp(s) {missing[:8]}"
            )


class FileTraceSource(TraceSource):
    """Streams a trace file (v1 or the chunked v2 format) warp by warp.

    Built from a path (re-streamable: each :meth:`streams` call reopens
    the file) or an already-open text stream such as stdin (single
    shot).  Only the header is read at construction; warp records are
    parsed incrementally as the streams are pulled, so peak memory is
    bounded by parked blocks, not trace length.
    """

    def __init__(
        self,
        path_or_fh: Union[str, Path, IO[str]],
        label: Optional[str] = None,
    ) -> None:
        if isinstance(path_or_fh, (str, Path)):
            self.path: Optional[Path] = Path(path_or_fh)
            self._fh: Optional[IO[str]] = None
            self.label = label or str(self.path)
            with _open_for_read(self.path) as fh:
                self.meta, self.version = _read_header(fh, self.label)
        else:
            self.path = None
            self._fh = path_or_fh
            self.label = label or getattr(path_or_fh, "name", "<stream>")
            self.meta, self.version = _read_header(path_or_fh, self.label)
        self.num_warps = self.meta.num_warps

    def streams(self) -> List[WarpStream]:
        if self.path is not None:
            fh = _open_for_read(self.path)
            fh.readline()  # skip the header
        else:
            fh, self._fh = self._fh, None
            if fh is None:
                raise RuntimeError(
                    f"{self.label}: a stream-backed trace source can only "
                    "be streamed once"
                )
        streams = [WarpStream(w, None) for w in range(self.num_warps)]
        if self.version >= TRACE_VERSION_CHUNKED:
            # v2 end markers declare emptiness explicitly (a filtered
            # warp keeping its SM slot) — not a well-formedness problem.
            for stream in streams:
                stream.allow_empty = True
        demux = _TraceDemux(fh, self.num_warps, self.version, self.label, streams)

        def block_iter(warp_id: int) -> Iterator[Block]:
            while True:
                block = demux.pull(warp_id)
                if block is None:
                    return
                yield block

        for w, stream in enumerate(streams):
            stream._blocks = block_iter(w)
        return streams

    def blocks(self, warp_id: int) -> Iterator[Block]:
        """One warp's blocks via a dedicated pass over the file.

        Correct but O(file) per warp — composition fallbacks use
        :func:`materialize` instead; :meth:`streams` is the shared
        single-pass path.
        """
        if self.path is None:
            raise RuntimeError(
                f"{self.label}: per-warp block iteration needs a seekable file"
            )
        fh = _open_for_read(self.path)
        fh.readline()
        demux = _TraceDemux(fh, self.num_warps, self.version, self.label)
        while True:
            block = demux.pull(warp_id)
            if block is None:
                return
            yield block


class ChunkedTraceWriter:
    """Writes the chunked (v2) trace format to an open text stream.

    Callers interleave :meth:`write_block` across warps (round-robin —
    that interleave is what bounds a replaying reader's parking) and
    close each warp's stream with :meth:`end_warp`.
    """

    def __init__(self, fh: IO[str], meta: TraceMeta) -> None:
        self._fh = fh
        self._meta = meta
        self._labelled = [False] * meta.num_warps
        self._ended = [False] * meta.num_warps
        fh.write(
            json.dumps(meta.to_dict(version=TRACE_VERSION_CHUNKED),
                       separators=(",", ":")) + "\n"
        )

    def write_block(
        self,
        warp_id: int,
        gaps: Sequence[int],
        addrs: Sequence[int],
        writes: Sequence[bool],
        tenant: Optional[str] = None,
    ) -> None:
        if self._ended[warp_id]:
            raise ValueError(f"warp {warp_id} already ended")
        record = {
            "w": warp_id,
            "g": list(gaps),
            "a": list(addrs),
            "wr": [int(b) for b in writes],
        }
        if tenant is not None and not self._labelled[warp_id]:
            record["t"] = tenant
            self._labelled[warp_id] = True
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    def end_warp(self, warp_id: int) -> None:
        if not self._ended[warp_id]:
            self._ended[warp_id] = True
            self._fh.write(json.dumps({"w": warp_id, "end": 1}) + "\n")

    def finish(self) -> None:
        """End every warp that has not been ended explicitly."""
        for w in range(self._meta.num_warps):
            self.end_warp(w)


def save_stream(
    path: Union[str, Path], meta: TraceMeta, source: TraceSource
) -> Path:
    """Spill a :class:`TraceSource` to a chunked (v2) trace file.

    Blocks are written round-robin across warps — one block per live
    warp per round — so replaying the file parks at most one round of
    blocks.  Peak memory is the source's own streaming state plus one
    block per warp.
    """
    path = Path(path)
    if source.num_warps != meta.num_warps:
        raise ValueError(
            f"meta says {meta.num_warps} warps, source has {source.num_warps}"
        )
    with _open_for_write(path) as fh:
        writer = ChunkedTraceWriter(fh, meta)
        live = source.streams()
        while live:
            still = []
            for stream in live:
                block = stream.next_block()
                if block is None:
                    writer.end_warp(stream.warp_id)
                else:
                    writer.write_block(
                        stream.warp_id, *block, tenant=stream.tenant
                    )
                    still.append(stream)
            live = still
        writer.finish()
    return path


def load_traces(path: Union[str, Path]) -> tuple[TraceMeta, List[WarpTrace]]:
    """Read a trace file back into its header and warp traces.

    Materializing adapter over the streaming reader — one parser for
    both formats; the streaming path (:class:`FileTraceSource`) is
    what replay uses.
    """
    source = FileTraceSource(path)
    return source.meta, materialize(source)


def trace_file_digest(path: Union[str, Path]) -> str:
    """SHA-256 of the file bytes — the cache-fingerprint component."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def trace_path_of(name: str) -> Optional[str]:
    """The path inside a ``trace:<path>`` workload name, else ``None``."""
    if name.startswith(TRACE_PREFIX):
        return name[len(TRACE_PREFIX):]
    return None
