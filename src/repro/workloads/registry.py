"""Workload registry: name -> spec, plus the right trace generator."""

from __future__ import annotations

from typing import Dict, List, Union

from repro.workloads.graphs import GraphTraceGenerator
from repro.workloads.spec import TABLE2, WorkloadSpec
from repro.workloads.synthetic import SyntheticTraceGenerator, WarpTrace

WORKLOADS: Dict[str, WorkloadSpec] = {spec.name: spec for spec in TABLE2}

TraceGenerator = Union[SyntheticTraceGenerator, GraphTraceGenerator]


def get_workload(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None


def make_generator(
    spec: WorkloadSpec,
    footprint_bytes: int,
    line_bytes: int = 128,
    page_bytes: int = 4096,
    seed: int = 7,
    use_graph_traces: bool = True,
) -> TraceGenerator:
    """Trace generator for a workload: graph replay for GraphBIG apps,
    statistical traces otherwise."""
    if spec.is_graph and use_graph_traces:
        # Size the graph so the CSR + two property arrays cover roughly
        # half of the footprint (the rest models per-algorithm scratch).
        num_vertices = max(64, footprint_bytes // line_bytes // 16)
        return GraphTraceGenerator(
            spec, footprint_bytes, line_bytes, num_vertices=num_vertices, seed=seed
        )
    return SyntheticTraceGenerator(
        spec, footprint_bytes, line_bytes, page_bytes, seed=seed
    )


def generate_traces(
    spec: WorkloadSpec,
    footprint_bytes: int,
    num_warps: int,
    accesses_per_warp: int,
    line_bytes: int = 128,
    page_bytes: int = 4096,
    seed: int = 7,
    use_graph_traces: bool = True,
) -> List[WarpTrace]:
    gen = make_generator(
        spec, footprint_bytes, line_bytes, page_bytes, seed, use_graph_traces
    )
    return gen.traces(num_warps, accesses_per_warp)
