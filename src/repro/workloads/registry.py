"""Workload registry: declarative names -> trace families -> WarpTraces.

The registry is the single resolution point of the workload subsystem:

* ``REGISTRY`` maps every registered **name** to its
  :class:`~repro.workloads.spec.WorkloadDef` (Table II rows, the
  parametric families, composed scenarios, user registrations).
* ``FAMILIES`` maps every **family** string to its trace builder; a
  def's family selects how its traces are generated.
* :func:`build_traces` resolves a name and dispatches to the family —
  this is what the execution backend calls, so every workload (old or
  new, registered or ``trace:<path>`` replay) flows through one path.

Names of the form ``trace:<path>`` are resolved on demand from the
trace file itself (no registration needed), which keeps them usable
from parallel executor workers that never saw the parent process's
registrations.

Back-compat surface: ``WORKLOADS`` remains the Table II name -> spec
dict (the experiment matrices iterate it), :func:`get_workload` still
returns a :class:`WorkloadSpec`, and :func:`generate_traces` keeps its
original signature for callers that hold a spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Union

from repro.workloads import compose as _compose
from repro.workloads.families import (
    PointerChaseGenerator,
    StreamingScanGenerator,
    TiledGemmGenerator,
)
from repro.workloads.graphs import GraphTraceGenerator
from repro.workloads.source import (
    GeneratedTraceSource,
    MaterializedTraceSource,
    TraceSource,
)
from repro.workloads.spec import TABLE2, WorkloadDef, WorkloadSpec, make_def
from repro.workloads.synthetic import SyntheticTraceGenerator, WarpTrace
from repro.workloads.trace import (
    TRACE_PREFIX,
    FileTraceSource,
    load_traces,
    read_trace_meta,
    trace_file_digest,
    trace_path_of,
)

TraceGenerator = Union[SyntheticTraceGenerator, GraphTraceGenerator]

#: Table II name -> spec (back-compat; the figure matrices iterate this).
WORKLOADS: Dict[str, WorkloadSpec] = {spec.name: spec for spec in TABLE2}


# --------------------------------------------------------------------
# Family table
# --------------------------------------------------------------------

@dataclass(frozen=True)
class Family:
    """One trace family: a name, its docs, and a trace builder."""

    name: str
    doc: str
    build: Callable[..., List[WarpTrace]]


def _build_table2(
    defn: WorkloadDef, footprint_bytes, num_warps, accesses_per_warp,
    line_bytes, page_bytes, seed,
) -> List[WarpTrace]:
    gen = make_generator(defn.spec, footprint_bytes, line_bytes, page_bytes, seed)
    return gen.traces(num_warps, accesses_per_warp)


def _generator_family(cls) -> Callable[..., List[WarpTrace]]:
    def build(
        defn: WorkloadDef, footprint_bytes, num_warps, accesses_per_warp,
        line_bytes, page_bytes, seed,
    ) -> List[WarpTrace]:
        gen = cls(
            defn.spec, footprint_bytes, line_bytes, page_bytes, seed,
            **defn.param_dict,
        )
        return gen.traces(num_warps, accesses_per_warp)

    return build


_MAX_COMPOSE_DEPTH = 4


def _build_compose(
    defn: WorkloadDef, footprint_bytes, num_warps, accesses_per_warp,
    line_bytes, page_bytes, seed, _depth: int = 0,
) -> List[WarpTrace]:
    if _depth >= _MAX_COMPOSE_DEPTH:
        raise ValueError(
            f"{defn.name}: composition nested deeper than {_MAX_COMPOSE_DEPTH} "
            "(cycle?)"
        )

    def build_member(name, *args):
        member = get_workload_def(name)
        if member.family == "compose":
            return _build_compose(member, *args, _depth=_depth + 1)
        return FAMILIES[member.family].build(member, *args)

    params = defn.param_dict
    args = (footprint_bytes, num_warps, accesses_per_warp,
            line_bytes, page_bytes, seed)
    if params["kind"] == "phased":
        return _compose.phased_traces(params["members"], build_member, *args)
    if params["kind"] == "multi_tenant":
        return _compose.multi_tenant_traces(params["tenants"], build_member, *args)
    raise ValueError(f"{defn.name}: unknown composition kind {params['kind']!r}")


def _build_trace_replay(
    defn: WorkloadDef, footprint_bytes, num_warps, accesses_per_warp,
    line_bytes, page_bytes, seed,
) -> List[WarpTrace]:
    # A replay IS the recorded stream: sizing parameters are ignored by
    # design — the file fixes warp count and per-warp access counts.
    path = dict(defn.params)["path"]
    _meta, traces = load_traces(path)
    return traces


FAMILIES: Dict[str, Family] = {
    "synthetic": Family(
        "synthetic",
        (SyntheticTraceGenerator.__doc__ or "").strip(),
        _build_table2,
    ),
    "graph": Family(
        "graph",
        (GraphTraceGenerator.__doc__ or "").strip(),
        _build_table2,
    ),
    "gemm": Family(
        "gemm",
        (TiledGemmGenerator.__doc__ or "").strip(),
        _generator_family(TiledGemmGenerator),
    ),
    "pointer": Family(
        "pointer",
        (PointerChaseGenerator.__doc__ or "").strip(),
        _generator_family(PointerChaseGenerator),
    ),
    "stream": Family(
        "stream",
        (StreamingScanGenerator.__doc__ or "").strip(),
        _generator_family(StreamingScanGenerator),
    ),
    "compose": Family(
        "compose",
        (_compose.__doc__ or "").strip(),
        _build_compose,
    ),
    "trace": Family(
        "trace",
        "Replay of a recorded memory trace (see workloads/trace.py). "
        "Sizing flags are ignored: the file fixes the warp count and "
        "each warp's access stream.",
        _build_trace_replay,
    ),
}


# --------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------

REGISTRY: Dict[str, WorkloadDef] = {}


def register_workload(defn: WorkloadDef, replace: bool = False) -> WorkloadDef:
    """Register a workload def under its name.

    Raises ``ValueError`` on duplicate names (unless ``replace=True``)
    and on unknown families, so registration mistakes fail loudly at
    definition time rather than mid-experiment.
    """
    if defn.family not in FAMILIES:
        raise ValueError(
            f"{defn.name}: unknown family {defn.family!r}; "
            f"choose from {sorted(FAMILIES)}"
        )
    if not replace and defn.name in REGISTRY:
        raise ValueError(f"workload {defn.name!r} already registered")
    REGISTRY[defn.name] = defn
    return defn


def _trace_replay_def(name: str, path: str) -> WorkloadDef:
    """Resolve a ``trace:<path>`` name from the file on disk.

    The replayed def inherits the *recorded* spec — including the
    original workload name — so a replayed ``RunResult`` is
    bit-identical to the recorded run.  The file digest goes into the
    params, keying the persistent result cache to the exact bytes.
    Only the header (plus a raw byte digest) is read here; the warp
    records are parsed once, at trace build time.
    """
    meta = read_trace_meta(path)
    return make_def(
        name,
        "trace",
        meta.spec,
        params={"path": path, "digest": trace_file_digest(path)},
        summary=(
            f"replay of {meta.workload} recorded on {meta.platform} "
            f"({meta.mode}), {meta.num_warps} warps"
        ),
    )


def get_workload_def(name: str) -> WorkloadDef:
    """Resolve a workload name (registered, or ``trace:<path>``)."""
    path = trace_path_of(name)
    if path is not None:
        return _trace_replay_def(name, path)
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(REGISTRY)} "
            f"or a {TRACE_PREFIX}<path> replay"
        ) from None


def get_workload(name: str) -> WorkloadSpec:
    """Resolve a workload name to its characteristics (back-compat)."""
    return get_workload_def(name).spec


def workload_names() -> List[str]:
    """All registered workload names, Table II first."""
    return list(REGISTRY)


def build_traces(
    name_or_def: Union[str, WorkloadDef],
    footprint_bytes: int,
    num_warps: int,
    accesses_per_warp: int,
    line_bytes: int = 128,
    page_bytes: int = 4096,
    seed: int = 7,
) -> List[WarpTrace]:
    """Materialize a workload's warp traces via its family builder."""
    defn = (
        name_or_def
        if isinstance(name_or_def, WorkloadDef)
        else get_workload_def(name_or_def)
    )
    return FAMILIES[defn.family].build(
        defn, footprint_bytes, num_warps, accesses_per_warp,
        line_bytes, page_bytes, seed,
    )


# --------------------------------------------------------------------
# Streaming resolution: name -> TraceSource (bounded-memory mirror of
# build_traces; every family streams except where noted)
# --------------------------------------------------------------------

#: Families whose generator class is instantiated with def params.
_GENERATOR_CLASSES = {
    "gemm": TiledGemmGenerator,
    "pointer": PointerChaseGenerator,
    "stream": StreamingScanGenerator,
}


def build_source(
    name_or_def: Union[str, WorkloadDef],
    footprint_bytes: int,
    num_warps: int,
    accesses_per_warp: int,
    line_bytes: int = 128,
    page_bytes: int = 4096,
    seed: int = 7,
    block_ops: int = None,
    _depth: int = 0,
) -> TraceSource:
    """Resolve a workload to a lazy :class:`TraceSource`.

    The streaming mirror of :func:`build_traces`: same resolution, same
    family dispatch, but the result yields ``(gaps, addrs, writes)``
    blocks on demand instead of materialized arrays — peak memory is
    bounded by per-warp generator state plus one block, not trace
    length.  Streamed and materialized paths produce value-identical
    access streams (the golden-fingerprint parity tests pin this).

    ``block_ops`` bounds the lookahead per warp; ``None`` means each
    source's default (:data:`~repro.workloads.source.DEFAULT_BLOCK_OPS`
    for generated streams, whole-file record chunks for replays).
    """
    defn = (
        name_or_def
        if isinstance(name_or_def, WorkloadDef)
        else get_workload_def(name_or_def)
    )
    family = defn.family
    if family == "trace":
        # A replay IS the recorded stream: sizing parameters are
        # ignored by design, and blocks come straight off the file.
        return FileTraceSource(dict(defn.params)["path"])
    if family in ("synthetic", "graph"):
        gen = make_generator(
            defn.spec, footprint_bytes, line_bytes, page_bytes, seed
        )
        return GeneratedTraceSource(
            gen, num_warps, accesses_per_warp,
            **({} if block_ops is None else {"block_ops": block_ops}),
        )
    if family in _GENERATOR_CLASSES:
        gen = _GENERATOR_CLASSES[family](
            defn.spec, footprint_bytes, line_bytes, page_bytes, seed,
            **defn.param_dict,
        )
        return GeneratedTraceSource(
            gen, num_warps, accesses_per_warp,
            **({} if block_ops is None else {"block_ops": block_ops}),
        )
    if family == "compose":
        return _compose_source(
            defn, footprint_bytes, num_warps, accesses_per_warp,
            line_bytes, page_bytes, seed, block_ops, _depth,
        )
    # A family registered with a custom builder but no streaming
    # counterpart: fall back to materializing through its builder.
    return MaterializedTraceSource(
        FAMILIES[family].build(
            defn, footprint_bytes, num_warps, accesses_per_warp,
            line_bytes, page_bytes, seed,
        ),
        block_ops=block_ops,
    )


def _compose_source(
    defn: WorkloadDef, footprint_bytes, num_warps, accesses_per_warp,
    line_bytes, page_bytes, seed, block_ops, _depth,
) -> TraceSource:
    """Lazy composition: chain phases / interleave tenants as sources."""
    if _depth >= _MAX_COMPOSE_DEPTH:
        raise ValueError(
            f"{defn.name}: composition nested deeper than {_MAX_COMPOSE_DEPTH} "
            "(cycle?)"
        )

    def member_source(name, m_warps, m_accesses):
        member = get_workload_def(name)
        if member.family == "trace":
            # A file member would pay one file pass per composed warp
            # through blocks(); composed replays are small, so
            # materialize the member once instead.
            _meta, traces = load_traces(dict(member.params)["path"])
            return MaterializedTraceSource(traces, block_ops=block_ops)
        return build_source(
            member, footprint_bytes, m_warps, m_accesses,
            line_bytes, page_bytes, seed,
            block_ops=block_ops, _depth=_depth + 1,
        )

    params = defn.param_dict
    if params["kind"] == "phased":
        members = params["members"]
        counts = _compose._split_accesses(
            [f for _, f in members], accesses_per_warp
        )
        sources = [
            member_source(name, num_warps, count)
            for (name, _), count in zip(members, counts)
            if count
        ]
        return _compose.PhasedTraceSource(sources)
    if params["kind"] == "multi_tenant":
        tenants = params["tenants"]
        if num_warps < len(tenants):
            raise ValueError(
                f"need at least {len(tenants)} warps for {len(tenants)} tenants"
            )
        assignment = _compose.tenant_assignment(
            [s for _, _, s in tenants], num_warps
        )
        warps_per_tenant = [assignment.count(i) for i in range(len(tenants))]
        for (label, _, share), count in zip(tenants, warps_per_tenant):
            if count == 0:
                raise ValueError(
                    f"tenant {label!r} (share {share}) received 0 of "
                    f"{num_warps} warps — increase num_warps or its share"
                )
        sources = [
            member_source(member, count, accesses_per_warp)
            for (_, member, _), count in zip(tenants, warps_per_tenant)
        ]
        return _compose.MultiTenantTraceSource(
            [label for label, _, _ in tenants], sources, assignment
        )
    raise ValueError(f"{defn.name}: unknown composition kind {params['kind']!r}")


# --------------------------------------------------------------------
# Back-compat trace generation for callers that hold a WorkloadSpec
# --------------------------------------------------------------------

def make_generator(
    spec: WorkloadSpec,
    footprint_bytes: int,
    line_bytes: int = 128,
    page_bytes: int = 4096,
    seed: int = 7,
    use_graph_traces: bool = True,
) -> TraceGenerator:
    """Trace generator for a Table II workload: graph replay for
    GraphBIG apps, statistical traces otherwise."""
    if spec.is_graph and use_graph_traces:
        # Size the graph so the CSR + two property arrays cover roughly
        # half of the footprint (the rest models per-algorithm scratch).
        num_vertices = max(64, footprint_bytes // line_bytes // 16)
        return GraphTraceGenerator(
            spec, footprint_bytes, line_bytes, num_vertices=num_vertices, seed=seed
        )
    return SyntheticTraceGenerator(
        spec, footprint_bytes, line_bytes, page_bytes, seed=seed
    )


def generate_traces(
    spec: WorkloadSpec,
    footprint_bytes: int,
    num_warps: int,
    accesses_per_warp: int,
    line_bytes: int = 128,
    page_bytes: int = 4096,
    seed: int = 7,
    use_graph_traces: bool = True,
) -> List[WarpTrace]:
    """Traces straight from a spec (Table II path, kept for back-compat)."""
    gen = make_generator(
        spec, footprint_bytes, line_bytes, page_bytes, seed, use_graph_traces
    )
    return gen.traces(num_warps, accesses_per_warp)


# --------------------------------------------------------------------
# Default registrations (import-time, so executor workers see them too)
# --------------------------------------------------------------------

def _register_defaults() -> None:
    for spec in TABLE2:
        register_workload(
            make_def(
                spec.name,
                "graph" if spec.is_graph else "synthetic",
                spec,
                summary=(
                    f"Table II {spec.suite} workload "
                    f"(APKI {spec.apki:.0f}, {spec.read_ratio:.0%} reads)"
                ),
            )
        )

    gemm = register_workload(
        make_def(
            "gemm_reuse",
            "gemm",
            WorkloadSpec(
                "gemm_reuse", apki=120, read_ratio=0.8, suite="dense",
                zipf_alpha=0.9, seq_run_mean=8.0, temporal_reuse=0.7,
                stream_fraction=0.1, compute_reuse=96.0,
            ),
            params={"tile_lines": 16, "passes": 2, "update_writes": 0.5},
            summary="tiled GEMM / attention: heavy intra-tile reuse over a streaming tile grid",
        )
    )
    chase = register_workload(
        make_def(
            "pointer_chase",
            "pointer",
            WorkloadSpec(
                "pointer_chase", apki=220, read_ratio=0.9, suite="pointer",
                zipf_alpha=1.1, seq_run_mean=1.0, temporal_reuse=0.1,
                stream_fraction=0.15, compute_reuse=10.0,
            ),
            params={"node_lines": 1, "chain_length": 12,
                    "frontier_fraction": 0.15, "frontier_write_ratio": 0.5},
            summary="dependent pointer chase with hub-skewed restarts and a frontier queue",
        )
    )
    register_workload(
        make_def(
            "stream_scan",
            "stream",
            WorkloadSpec(
                "stream_scan", apki=160, read_ratio=2.0 / 3.0, suite="stream",
                zipf_alpha=0.5, seq_run_mean=16.0, temporal_reuse=0.0,
                stream_fraction=1.0, compute_reuse=4.0,
            ),
            params={"read_fraction": 2.0 / 3.0, "num_streams": 3,
                    "stride_lines": 1},
            summary="STREAM triad: three sequential cursors, two reads per write, zero reuse",
        )
    )
    # Read:write-mix variants for the families sensitivity sweep.
    for pct in (25, 50, 75, 100):
        rf = pct / 100.0
        register_workload(
            make_def(
                f"stream_scan_r{pct}",
                "stream",
                WorkloadSpec(
                    f"stream_scan_r{pct}", apki=160, read_ratio=rf,
                    suite="stream", zipf_alpha=0.5, seq_run_mean=16.0,
                    temporal_reuse=0.0, stream_fraction=1.0, compute_reuse=4.0,
                ),
                params={"read_fraction": rf, "num_streams": 3, "stride_lines": 1},
                summary=f"streaming scan at {pct}% reads (write-mix sensitivity)",
            )
        )
    # Composed defaults: a co-located mix and a phased pipeline.
    register_workload(
        _compose.make_multi_tenant(
            "mix_gemm_chase",
            [("gemm", gemm, 0.5), ("chase", chase, 0.5)],
            summary="two co-located tenants: dense GEMM vs pointer chase, 50/50 warps",
        )
    )
    register_workload(
        _compose.make_phased(
            "phased_scan_gemm",
            [(REGISTRY["stream_scan"], 0.3), (gemm, 0.7)],
            summary="streaming load phase (30%) then tiled-GEMM compute phase (70%)",
        )
    )


_register_defaults()
