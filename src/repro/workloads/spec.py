"""Workload characteristics (Table II) plus trace-shaping parameters.

APKI (memory accesses per kilo-instruction) and the read ratio come
straight from Table II.  The remaining fields shape the synthetic
traces: access skew (hot pages), spatial locality (sequential runs) and
the compute-reuse factor used by the Fig. 3 host/storage model.  Skew
and reuse are chosen per suite: graph workloads are highly skewed and
irregular; the Rodinia/Polybench kernels are more regular.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GB


@dataclass(frozen=True)
class WorkloadSpec:
    """One row of Table II plus generator parameters."""

    name: str
    apki: float
    read_ratio: float
    suite: str  # "rodinia" | "polybench" | "graphbig"
    zipf_alpha: float = 0.9  # page-popularity skew
    seq_run_mean: float = 4.0  # mean sequential-line run length
    temporal_reuse: float = 0.45  # chance of revisiting a recent line
    stream_fraction: float = 0.35  # cold strided sweep of the footprint
    compute_reuse: float = 24.0  # kernel passes over each byte (Fig. 3)
    footprint_bytes: int = 8 * GB  # paper: workloads scaled to 8 GB

    def __post_init__(self) -> None:
        if self.apki <= 0:
            raise ValueError(f"{self.name}: APKI must be positive")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError(f"{self.name}: read ratio must be in [0, 1]")
        if self.footprint_bytes <= 0:
            raise ValueError(f"{self.name}: footprint must be positive")

    @property
    def is_graph(self) -> bool:
        return self.suite == "graphbig"

    @property
    def mean_gap_instructions(self) -> float:
        """Mean warp instructions between memory accesses."""
        return 1000.0 / self.apki

    def scaled_footprint(self, scale_down: int) -> int:
        """Footprint after the simulator's capacity scale-down.

        The paper scales capacities by 12x; extra scaling (for pure
        Python) divides footprint and memory alike so ratios hold.
        """
        return max(1, self.footprint_bytes * 12 // scale_down)


# Table II, verbatim.
TABLE2 = (
    WorkloadSpec("backp", 30, 0.53, "rodinia", zipf_alpha=0.95, seq_run_mean=8.0, temporal_reuse=0.55, compute_reuse=64.0),
    WorkloadSpec("lud", 20, 0.52, "rodinia", zipf_alpha=0.95, seq_run_mean=8.0, temporal_reuse=0.55, compute_reuse=96.0),
    WorkloadSpec("GRAMS", 266, 0.70, "polybench", zipf_alpha=1.05, seq_run_mean=6.0, temporal_reuse=0.55, compute_reuse=16.0),
    WorkloadSpec("FDTD", 86, 0.70, "polybench", zipf_alpha=1.05, seq_run_mean=6.0, temporal_reuse=0.55, compute_reuse=32.0),
    WorkloadSpec("betw", 193, 0.99, "graphbig", zipf_alpha=1.1, seq_run_mean=2.0, compute_reuse=12.0),
    WorkloadSpec("bfsdata", 84, 0.95, "graphbig", zipf_alpha=1.0, seq_run_mean=2.0, compute_reuse=24.0),
    WorkloadSpec("bfstopo", 25, 0.97, "graphbig", zipf_alpha=1.0, seq_run_mean=2.0, compute_reuse=48.0),
    WorkloadSpec("gctopo", 93, 0.99, "graphbig", zipf_alpha=1.1, seq_run_mean=2.0, compute_reuse=20.0),
    WorkloadSpec("pagerank", 599, 0.99, "graphbig", zipf_alpha=1.2, seq_run_mean=2.0, compute_reuse=8.0),
    WorkloadSpec("sssp", 103, 0.98, "graphbig", zipf_alpha=1.1, seq_run_mean=2.0, compute_reuse=20.0),
)
