"""Workload characteristics and declarative workload definitions.

Two layers live here:

* :class:`WorkloadSpec` — the *characteristics* of a workload: APKI
  (memory accesses per kilo-instruction), read ratio, footprint, and the
  trace-shaping parameters (skew, spatial locality, compute reuse).
  The ten Table II rows are instances; the parametric families
  (``workloads/families.py``) and trace replays carry one too, so every
  consumer (the Fig. 3 host model, the footprint scaler, the energy
  accounting) sees a uniform surface.

* :class:`WorkloadDef` — a *declarative scenario spec*: a registered
  name bound to a trace **family** (``synthetic``, ``graph``, ``gemm``,
  ``pointer``, ``stream``, ``compose``, ``trace``) plus the family's
  parameters.  The registry (``workloads/registry.py``) resolves a name
  to its def and dispatches trace generation to the family builder, so
  adding a scenario is one :func:`~repro.workloads.registry.register_workload`
  call — no new simulation code.

APKI and the read ratio of the Table II rows come straight from the
paper.  Skew and reuse are chosen per suite: graph workloads are highly
skewed and irregular; the Rodinia/Polybench kernels are more regular.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Tuple

from repro.config import GB


@dataclass(frozen=True)
class WorkloadSpec:
    """Characteristics of one workload (a Table II row or equivalent)."""

    name: str
    apki: float
    read_ratio: float
    suite: str  # "rodinia" | "polybench" | "graphbig" | "dense" | "pointer" | "stream" | "composed" | "trace"
    zipf_alpha: float = 0.9  # page-popularity skew
    seq_run_mean: float = 4.0  # mean sequential-line run length
    temporal_reuse: float = 0.45  # chance of revisiting a recent line
    stream_fraction: float = 0.35  # cold strided sweep of the footprint
    compute_reuse: float = 24.0  # kernel passes over each byte (Fig. 3)
    footprint_bytes: int = 8 * GB  # paper: workloads scaled to 8 GB

    def __post_init__(self) -> None:
        if self.apki <= 0:
            raise ValueError(f"{self.name}: APKI must be positive")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError(f"{self.name}: read ratio must be in [0, 1]")
        if self.footprint_bytes <= 0:
            raise ValueError(f"{self.name}: footprint must be positive")

    @property
    def is_graph(self) -> bool:
        return self.suite == "graphbig"

    @property
    def mean_gap_instructions(self) -> float:
        """Mean warp instructions between memory accesses."""
        return 1000.0 / self.apki

    def scaled_footprint(self, scale_down: int) -> int:
        """Footprint after the simulator's capacity scale-down.

        The paper scales capacities by 12x; extra scaling (for pure
        Python) divides footprint and memory alike so ratios hold.
        """
        return max(1, self.footprint_bytes * 12 // scale_down)


# Table II, verbatim.
TABLE2 = (
    WorkloadSpec("backp", 30, 0.53, "rodinia", zipf_alpha=0.95, seq_run_mean=8.0, temporal_reuse=0.55, compute_reuse=64.0),
    WorkloadSpec("lud", 20, 0.52, "rodinia", zipf_alpha=0.95, seq_run_mean=8.0, temporal_reuse=0.55, compute_reuse=96.0),
    WorkloadSpec("GRAMS", 266, 0.70, "polybench", zipf_alpha=1.05, seq_run_mean=6.0, temporal_reuse=0.55, compute_reuse=16.0),
    WorkloadSpec("FDTD", 86, 0.70, "polybench", zipf_alpha=1.05, seq_run_mean=6.0, temporal_reuse=0.55, compute_reuse=32.0),
    WorkloadSpec("betw", 193, 0.99, "graphbig", zipf_alpha=1.1, seq_run_mean=2.0, compute_reuse=12.0),
    WorkloadSpec("bfsdata", 84, 0.95, "graphbig", zipf_alpha=1.0, seq_run_mean=2.0, compute_reuse=24.0),
    WorkloadSpec("bfstopo", 25, 0.97, "graphbig", zipf_alpha=1.0, seq_run_mean=2.0, compute_reuse=48.0),
    WorkloadSpec("gctopo", 93, 0.99, "graphbig", zipf_alpha=1.1, seq_run_mean=2.0, compute_reuse=20.0),
    WorkloadSpec("pagerank", 599, 0.99, "graphbig", zipf_alpha=1.2, seq_run_mean=2.0, compute_reuse=8.0),
    WorkloadSpec("sssp", 103, 0.98, "graphbig", zipf_alpha=1.1, seq_run_mean=2.0, compute_reuse=20.0),
)


def _freeze_params(params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Canonical (sorted, hashable) form of a family parameter mapping."""
    frozen = []
    for key in sorted(params):
        value = params[key]
        if isinstance(value, list):
            value = tuple(tuple(v) if isinstance(v, list) else v for v in value)
        frozen.append((key, value))
    return tuple(frozen)


@dataclass(frozen=True)
class WorkloadDef:
    """A registered workload: a name bound to a family and its params.

    This is the declarative unit of the workload subsystem.  The
    ``family`` string selects a trace builder from the registry's
    family table; ``params`` parameterize it (tile sizes, read:write
    mixes, tenant shares, a trace-file digest, ...).  The ``spec``
    carries the workload's characteristics for every consumer that does
    not generate traces (footprint scaling, the Fig. 3 host model).

    Defs are frozen and hashable; :meth:`fingerprint_payload` is folded
    into the persistent result-cache key so two workloads that share a
    name but differ in parameters can never alias a cached result.
    """

    name: str
    family: str
    spec: WorkloadSpec
    params: Tuple[Tuple[str, Any], ...] = ()
    summary: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("workload def needs a name")
        if not self.family:
            raise ValueError(f"{self.name}: workload def needs a family")

    @property
    def param_dict(self) -> Dict[str, Any]:
        """The family parameters as a plain keyword mapping."""
        return dict(self.params)

    def fingerprint_payload(self) -> dict:
        """Everything that determines this workload's traces, as JSON.

        Folded into :func:`repro.harness.cache.job_fingerprint`, so a
        cached result can only be replayed for a byte-identical
        workload definition.
        """
        return {
            "family": self.family,
            "params": [[k, list(v) if isinstance(v, tuple) else v]
                       for k, v in self.params],
            "spec": asdict(self.spec),
        }


def make_def(
    name: str,
    family: str,
    spec: WorkloadSpec,
    params: Mapping[str, Any] | None = None,
    summary: str = "",
) -> WorkloadDef:
    """Build a :class:`WorkloadDef` from a plain parameter mapping."""
    return WorkloadDef(
        name=name,
        family=family,
        spec=spec,
        params=_freeze_params(params or {}),
        summary=summary,
    )
