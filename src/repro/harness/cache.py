"""Persistent on-disk cache of simulation results.

Layer 2 of the experiment service (see DESIGN.md).  Each
:class:`~repro.harness.executor.SimulationJob` is fingerprinted over its
*fully resolved* inputs — the complete :class:`SystemConfig`, the
:class:`RunConfig` sizing, platform, workload and mode — so a hit is
guaranteed to describe the same deterministic simulation, and changing
any knob (a waveguide count, an XPoint latency, a trace seed) changes
the key.  Results are stored one JSON file per fingerprint, written
atomically, so concurrent runs and repeated CLI/benchmark invocations
share work across processes and across sessions.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.gpu.gpu import RunResult
from repro.harness.executor import SimulationJob

log = logging.getLogger("repro.cache")


def write_json_atomic(
    path: Union[str, Path],
    payload: dict,
    indent: Optional[int] = None,
    sort_keys: bool = False,
) -> None:
    """Write a JSON document atomically: temp file in the same
    directory, then ``os.replace`` — readers never see a partial file.
    Shared by the result cache and the batch manifest writer."""
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=indent, sort_keys=sort_keys)
            fh.flush()
            # Data must be durable *before* the rename publishes it:
            # the batch journal fsyncs its shard records on the promise
            # that every published result already survived a crash.
            os.fsync(fd)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except FileNotFoundError:
            pass
        raise

# Bump when the fingerprint payload or RunResult schema changes shape;
# stale entries then simply miss instead of deserializing garbage.
# v2: Stats.snapshot() grew latency ".min"/".max" counters (PR 2), so
# pre-PR-2 cached results have a different counter shape.
# v3: the workload subsystem became declarative (PR 3) — the fingerprint
# now folds in the resolved WorkloadDef (family, params, spec, and for
# trace replays the file digest), so same-named workloads with
# different parameters can never alias a cached result.
# v4: entries carry the job's facets (platform, workload, mode, sizing)
# alongside the result so the result store (harness/store.py) can index
# and query the cache directory without re-deriving fingerprints;
# ``repro store gc`` reclaims pre-v4 entries.
SCHEMA_VERSION = 4


def job_fingerprint(job: SimulationJob) -> str:
    """Stable hex digest of everything that determines a job's result."""
    from repro.workloads.registry import get_workload_def

    payload = {
        "schema": SCHEMA_VERSION,
        "platform": job.platform,
        "workload": job.workload,
        "workload_def": get_workload_def(job.workload).fingerprint_payload(),
        "mode": job.mode.value,
        "run_cfg": job.run_cfg.to_dict(),
        "system": job.resolved_config().to_dict(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of ``<fingerprint>.json`` RunResult files."""

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)
        if self.cache_dir.exists() and not self.cache_dir.is_dir():
            raise NotADirectoryError(
                f"cache path {self.cache_dir} exists and is not a directory"
            )
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, job: SimulationJob) -> Path:
        return self.cache_dir / f"{job_fingerprint(job)}.json"

    def get(self, job: SimulationJob) -> Optional[RunResult]:
        """Cached result, or ``None`` on miss (corrupt entries miss too)."""
        path = self.path_for(job)
        try:
            data = json.loads(path.read_text())
            result = RunResult.from_dict(data["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            log.warning("cache entry %s unreadable (%s); re-running", path.name, exc)
            self.misses += 1
            return None
        self.hits += 1
        log.info(
            "cache hit %s/%s/%s (%s)",
            job.platform, job.workload, job.mode.value, path.name[:12],
        )
        return result

    def put(self, job: SimulationJob, result: RunResult) -> None:
        """Atomically persist one result (write temp file, then rename)."""
        payload = {
            "schema": SCHEMA_VERSION,
            "job": job.to_dict(),
            "result": result.to_dict(),
        }
        write_json_atomic(self.path_for(job), payload)
        self.stores += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.cache_dir.glob("*.json"))

    def summary(self) -> str:
        return f"cache: {self.hits} hits, {self.misses} misses, {self.stores} stores"
