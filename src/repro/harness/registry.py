"""Declarative experiment registry.

Layer 3 of the experiment service (see DESIGN.md).  Every evaluation
figure/table is an :class:`ExperimentSpec`: the simulations it needs
(as pure :class:`SimulationJob` descriptions), a reducer that turns the
evaluated results into the figure's payload, and a tabulator that
flattens the payload into schema'd rows for the structured exporters.

Because a spec *declares* its whole job set up front,
:func:`run_experiment` submits the complete batch to the
:class:`~repro.harness.runner.Runner` in one call — a parallel executor
evaluates it concurrently and a persistent cache skips everything it
has seen — instead of discovering runs one at a time inside hand-written
figure loops.  Adding a figure (or a whole new sweep axis) is a registry
entry, not a new module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.config import MemoryMode
from repro.gpu.gpu import RunResult
from repro.harness.executor import RunConfig, SimulationJob
from repro.harness.runner import Runner


class JobResults:
    """Evaluated results of a spec's job set, with ergonomic lookup."""

    def __init__(
        self, results: Dict[SimulationJob, RunResult], run_cfg: RunConfig
    ) -> None:
        self._results = results
        self.run_cfg = run_cfg

    def get(
        self,
        platform: str,
        workload: str,
        mode: MemoryMode,
        run_cfg: Optional[RunConfig] = None,
    ) -> RunResult:
        job = SimulationJob(platform, workload, mode, run_cfg or self.run_cfg)
        return self._results[job]

    def __getitem__(self, job: SimulationJob) -> RunResult:
        return self._results[job]

    def __len__(self) -> int:
        return len(self._results)


@dataclass(frozen=True)
class ExperimentSpec:
    """One figure/table: required runs, reducer, output schema."""

    name: str
    title: str
    # Flat output schema: the column names ``tabulate`` rows carry.
    columns: Tuple[str, ...]
    # run_cfg -> every simulation the figure needs (may be empty for
    # analytic figures like the MRR layout or the cost table).
    jobs: Callable[[RunConfig], Tuple[SimulationJob, ...]]
    # Evaluated results -> the figure payload the tests/CLI consume.
    reduce: Callable[[JobResults], Any]
    # Payload -> flat rows matching ``columns`` (for json/csv export).
    tabulate: Callable[[Any], List[dict]]


@dataclass
class ExperimentResult:
    """A spec evaluated under one runner."""

    spec: ExperimentSpec
    payload: Any

    @property
    def rows(self) -> List[dict]:
        return self.spec.tabulate(self.payload)


EXPERIMENTS: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    if spec.name in EXPERIMENTS:
        raise ValueError(f"experiment {spec.name!r} already registered")
    EXPERIMENTS[spec.name] = spec
    return spec


def experiment_names() -> List[str]:
    return list(EXPERIMENTS)


def get_experiment(name: str) -> ExperimentSpec:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None


def run_spec(spec: ExperimentSpec, runner: Runner) -> ExperimentResult:
    """Evaluate a spec's whole job set as one batch, then reduce."""
    jobs = spec.jobs(runner.run_cfg)
    results = runner.run_jobs(jobs)
    payload = spec.reduce(JobResults(results, runner.run_cfg))
    return ExperimentResult(spec, payload)


def run_experiment(name: str, runner: Optional[Runner] = None) -> ExperimentResult:
    """Evaluate a registered experiment (importing the spec definitions)."""
    # Spec definitions live with their reducers in harness.experiments;
    # importing it populates the registry exactly once.
    from repro.harness import experiments  # noqa: F401

    return run_spec(get_experiment(name), runner or Runner())
