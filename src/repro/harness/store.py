"""Queryable result store over the persistent cache directory.

The :class:`~repro.harness.cache.ResultCache` answers exactly one
question — "is *this* job cached?" — because lookups go through the
fingerprint.  The :class:`ResultStore` answers the inverse: "what is in
here?"  It indexes every cache entry by its job facets (platform,
workload, mode, sizing), supports filtered queries whose rows feed the
structured json/csv emitters (``repro store query``), and garbage
collects entries written under stale schema versions or left behind as
orphaned temp files (``repro store gc``).

Entries written before cache schema v4 carry no job facets; the store
falls back to the facets recorded in the result payload itself (platform
/ workload / mode) and reports their sizing as unknown.  ``gc`` reclaims
them — they can never hit again anyway, because the fingerprint schema
moved on.
"""

from __future__ import annotations

import json
import logging
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.gpu.gpu import RunResult
from repro.harness.cache import SCHEMA_VERSION

log = logging.getLogger("repro.store")

#: ``gc`` only reclaims ``*.tmp`` files older than this — a young temp
#: file is most likely a *live* writer mid-``put``, not an orphan, and
#: unlinking it would crash that writer's atomic rename.
TMP_GRACE_SECONDS = 3600.0

#: The cache owns exactly the files named by a SHA-256 fingerprint.
#: The store never indexes — and ``gc`` never deletes — anything else,
#: so a misdirected ``--cache-dir`` cannot destroy unrelated JSON.
_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{64}$")


def _cache_entry_paths(cache_dir: Path) -> List[Path]:
    return sorted(
        p for p in cache_dir.glob("*.json") if _FINGERPRINT_RE.match(p.stem)
    )

#: Flat output schema of ``query`` rows (json/csv export order).
STORE_COLUMNS = (
    "fingerprint",
    "platform",
    "workload",
    "mode",
    "num_warps",
    "accesses_per_warp",
    "seed",
    "waveguides",
    "schema",
    "instructions",
    "exec_time_ps",
    "mean_mem_latency_ps",
    "migration_bw_frac",
)


@dataclass(frozen=True)
class StoreEntry:
    """One indexed cache entry: job facets + headline result metrics."""

    fingerprint: str
    schema: Optional[int]
    platform: str
    workload: str
    mode: str
    num_warps: Optional[int]
    accesses_per_warp: Optional[int]
    seed: Optional[int]
    waveguides: Optional[int]
    instructions: int
    exec_time_ps: int
    mean_mem_latency_ps: float
    migration_bw_frac: float
    path: Path

    @property
    def stale(self) -> bool:
        """True when this entry can never be served by the cache again."""
        return self.schema != SCHEMA_VERSION

    def to_row(self) -> dict:
        """Flat dict matching :data:`STORE_COLUMNS` (for the emitters)."""
        return {
            "fingerprint": self.fingerprint,
            "platform": self.platform,
            "workload": self.workload,
            "mode": self.mode,
            "num_warps": self.num_warps,
            "accesses_per_warp": self.accesses_per_warp,
            "seed": self.seed,
            "waveguides": self.waveguides,
            "schema": self.schema,
            "instructions": self.instructions,
            "exec_time_ps": self.exec_time_ps,
            "mean_mem_latency_ps": self.mean_mem_latency_ps,
            "migration_bw_frac": self.migration_bw_frac,
        }


def _parse_entry(path: Path) -> Optional[StoreEntry]:
    """Index one cache file; ``None`` when it is not a readable entry."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        result = RunResult.from_dict(data["result"])
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
        log.warning("store: skipping unreadable entry %s (%s)", path.name, exc)
        return None
    schema = data.get("schema")
    job = data.get("job") or {}
    run_cfg = job.get("run_cfg") or {}
    return StoreEntry(
        fingerprint=path.stem,
        schema=schema if isinstance(schema, int) else None,
        platform=job.get("platform", result.platform),
        workload=job.get("workload", result.workload),
        mode=job.get("mode", result.mode),
        num_warps=run_cfg.get("num_warps"),
        accesses_per_warp=run_cfg.get("accesses_per_warp"),
        seed=run_cfg.get("seed"),
        waveguides=run_cfg.get("waveguides"),
        instructions=result.instructions,
        exec_time_ps=result.exec_time_ps,
        mean_mem_latency_ps=result.mean_mem_latency_ps,
        migration_bw_frac=result.migration_bandwidth_fraction,
        path=path,
    )


class ResultStore:
    """Facet index + query + GC surface over one cache directory."""

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)
        self.skipped = 0  # unreadable entries seen by the last scan

    def entries(self) -> List[StoreEntry]:
        """Every readable entry, sorted by fingerprint (scan is fresh
        each call — the store holds no state besides the directory).
        Only fingerprint-named files are considered."""
        self.skipped = 0
        out: List[StoreEntry] = []
        if not self.cache_dir.is_dir():
            return out
        for path in _cache_entry_paths(self.cache_dir):
            entry = _parse_entry(path)
            if entry is None:
                self.skipped += 1
            else:
                out.append(entry)
        return out

    def entry_for(self, fingerprint: str) -> Optional[StoreEntry]:
        """Index exactly one entry by its job fingerprint, or ``None``.

        A point lookup — no directory scan — so the service daemon can
        stream a completed shard's per-job result rows to ``watch``
        clients without re-indexing the whole cache per journal record.
        """
        if not _FINGERPRINT_RE.match(fingerprint):
            return None
        path = self.cache_dir / f"{fingerprint}.json"
        if not path.is_file():
            return None
        return _parse_entry(path)

    def query(
        self,
        platform: Optional[str] = None,
        workload: Optional[str] = None,
        mode: Optional[str] = None,
        num_warps: Optional[int] = None,
        accesses_per_warp: Optional[int] = None,
        seed: Optional[int] = None,
        waveguides: Optional[int] = None,
        include_stale: bool = False,
    ) -> List[StoreEntry]:
        """Entries matching every given facet exactly (None = wildcard).

        Stale-schema entries are excluded by default because the cache
        itself will never serve them; pass ``include_stale=True`` to see
        what ``gc`` would reclaim.
        """
        facets = {
            "platform": platform,
            "workload": workload,
            "mode": mode,
            "num_warps": num_warps,
            "accesses_per_warp": accesses_per_warp,
            "seed": seed,
            "waveguides": waveguides,
        }
        return [
            e
            for e in self.entries()
            if (include_stale or not e.stale)
            and all(
                want is None or getattr(e, facet) == want
                for facet, want in facets.items()
            )
        ]

    def rows(self, entries: Iterable[StoreEntry]) -> List[dict]:
        """Flatten entries for the json/csv emitters."""
        return [e.to_row() for e in entries]

    def gc(self, dry_run: bool = False) -> List[Path]:
        """Remove entries the cache can never serve again.

        Reclaims (1) fingerprint-named entries written under a
        different ``SCHEMA_VERSION``, (2) fingerprint-named files that
        do not parse as cache entries, and (3) orphaned ``*.tmp`` files
        left by writers killed mid-store — but only temps older than
        :data:`TMP_GRACE_SECONDS`, so a concurrently *running* writer's
        in-flight temp file is never yanked out from under its rename.
        Files the cache does not own (any other name) are never
        touched.  Returns the removed (or, with ``dry_run``, the
        would-be-removed) paths.
        """
        doomed: List[Path] = []
        if not self.cache_dir.is_dir():
            return doomed
        for path in _cache_entry_paths(self.cache_dir):
            entry = _parse_entry(path)
            if entry is None or entry.stale:
                doomed.append(path)
        cutoff = time.time() - TMP_GRACE_SECONDS
        for path in sorted(self.cache_dir.glob("*.tmp")):
            try:
                if path.stat().st_mtime < cutoff:
                    doomed.append(path)
            except FileNotFoundError:
                pass  # the writer's rename won the race — not an orphan
        if not dry_run:
            for path in doomed:
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
        return doomed
