"""Simulation-as-a-service: daemon, worker leasing, NDJSON streaming.

Layer 5 of the experiment service (see DESIGN.md section 13).  The
batch WAL (``harness/batch.py``) already gives exactly-once, crash-safe
shard semantics for one process; this module turns it into
infrastructure:

* :func:`serve` — a long-running daemon that accepts job submissions as
  NDJSON over a Unix or TCP socket, enqueues them through
  :class:`~repro.harness.batch.BatchRun` (duplicate submissions attach
  to the existing batch), reports queued/leased/done/crashed counts,
  and streams completed-shard and per-job result records to ``watch``
  clients incrementally.
* :func:`run_worker` — a worker process loop that pulls shards from
  every batch under a shared root directory.  Workers need no daemon
  connection at all: coordination is entirely through the filesystem
  (manifest + WAL + lease files), so any number of workers on this or
  other hosts sharing the root can drain the same queue.
* :class:`LeaseManager` — the lease file protocol that makes the above
  safe.  A lease is acquired with an atomic ``O_CREAT|O_EXCL`` create
  (one winner per shard, arbitration by the filesystem), kept alive by
  refreshing the file's mtime, and — once its TTL lapses without a
  heartbeat — retired by an atomic rename to a crash tombstone, after
  which the shard is re-leased through the same exclusive-create gate.
  A SIGKILLed worker's shard is therefore re-executed exactly once, and
  because every result is persisted through the fingerprint-keyed
  :class:`~repro.harness.cache.ResultCache` (idempotent atomic writes)
  even a pathological double-execution converges to identical bits.

Wire protocol (one JSON object per line, both directions)::

    -> {"op": "ping"}
    <- {"ok": true, "op": "ping", ...}
    -> {"op": "submit", "jobs": [<job dict>, ...], "shard_size": 16}
    <- {"ok": true, "op": "submit", "batch": "<id>", "existing": false, ...}
    -> {"op": "status", "batch": "<prefix, optional>"}
    <- {"ok": true, "op": "status", "batches": [{queued, leased, ...}]}
    -> {"op": "watch", "batch": "<prefix>"}
    <- {"ok": true, "op": "watch", ...}            # header
    <- {"event": "shard", "shard": 3, ...}         # one per completed shard
    <- {"event": "result", "fingerprint": ...}     # one per job of the shard
    <- {"event": "done", ...}                      # stream terminator
    -> {"op": "shutdown"}
    <- {"ok": true, "op": "shutdown"}

A malformed request line yields a structured error record
(``{"ok": false, "error": {"type": ..., "message": ...}}``) on the same
connection — never a daemon crash — and the connection keeps serving
subsequent lines.  A client that disconnects mid-``watch`` takes down
only its own handler thread.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import socketserver
import stat as stat_mod
import sys
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple, Union

from repro.harness.batch import (
    DEFAULT_SHARD_SIZE,
    MANIFEST_NAME,
    BatchError,
    BatchRun,
    append_jsonl,
    batch_id,
)
from repro.harness.cache import ResultCache, job_fingerprint
from repro.harness.executor import SerialExecutor, SimulationJob
from repro.harness.store import ResultStore

log = logging.getLogger("repro.service")

#: Protocol schema spoken on the socket; responses echo it as "v".
PROTOCOL_VERSION = 1

#: Default lease time-to-live.  A worker heartbeats after every job, so
#: the TTL only needs to exceed one job's wall time with margin; a
#: worker that goes this long without refreshing its lease is presumed
#: dead and its shard is reclaimed.
LEASE_TTL_S = 30.0

#: Per-batch NDJSON log of every job a worker actually *executed*
#: (cache hits are absent).  Appended after the result is durable in
#: the cache, so a fingerprint can never appear twice: a worker killed
#: between cache-put and log-append leaves a cached result the
#: reclaimer reuses instead of re-executing.
EXECUTIONS_NAME = "executions.jsonl"

_LEASE_DIR = "leases"


class ServiceError(RuntimeError):
    """Service configuration or protocol failure (CLI-reportable)."""


class LeaseLost(RuntimeError):
    """A worker's heartbeat found its lease gone or owned by another."""


# --------------------------------------------------------------------
# Addresses
# --------------------------------------------------------------------

def parse_address(text: Union[str, Path]) -> Tuple[str, object]:
    """``("unix", Path)`` or ``("tcp", (host, port))`` from one string.

    Accepted forms: ``unix:/path``, ``tcp:host:port``, ``host:port``
    (port all digits, no path separators), and anything else is a Unix
    socket path.  An empty TCP host means loopback.
    """
    text = str(text)
    if text.startswith("unix:"):
        return ("unix", Path(text[len("unix:"):]))
    if text.startswith("tcp:"):
        host, _, port = text[len("tcp:"):].rpartition(":")
        try:
            return ("tcp", (host or "127.0.0.1", int(port)))
        except ValueError:
            raise ServiceError(f"bad tcp address {text!r}") from None
    host, sep, port = text.rpartition(":")
    if sep and port.isdigit() and os.sep not in text:
        return ("tcp", (host or "127.0.0.1", int(port)))
    return ("unix", Path(text))


def format_address(address: Tuple[str, object]) -> str:
    kind, target = address
    if kind == "unix":
        return f"unix:{target}"
    host, port = target
    return f"tcp:{host}:{port}"


def default_owner() -> str:
    """A worker identity unique across hosts, processes and restarts."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


# --------------------------------------------------------------------
# Lease file protocol
# --------------------------------------------------------------------

class LeaseManager:
    """File-based shard leases for one batch directory.

    State machine per shard (files under ``<batch>/leases/``)::

        free     --acquire (O_CREAT|O_EXCL)-->  leased(owner)
        leased   --heartbeat (mtime refresh)--> leased(owner)
        leased   --release (owner unlink)---->  free
        leased   --TTL since last mtime------>  expired(owner)
        expired  --reclaim (atomic rename to
                   a crash tombstone)-------->  free   (then re-acquire)

    Arbitration points are all atomic filesystem operations: exactly
    one creator wins ``O_EXCL``, and exactly one reclaimer's rename of
    an expired lease succeeds (the losers get ``FileNotFoundError``).
    A stalled-but-alive owner discovers the loss at its next
    :meth:`heartbeat` (owner mismatch / file gone) and must abandon the
    shard without journaling it.

    ``clock`` is injectable (and lease mtimes are *written* from it via
    ``os.utime``), so the property tests drive arbitrary interleavings
    of acquire/heartbeat/expire/reclaim under a simulated clock.
    """

    def __init__(
        self,
        batch_dir: Union[str, Path],
        owner: str,
        ttl_s: float = LEASE_TTL_S,
        clock: Callable[[], float] = time.time,
        create: bool = True,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError("lease ttl must be positive")
        self.lease_dir = Path(batch_dir) / _LEASE_DIR
        if create:
            self.lease_dir.mkdir(parents=True, exist_ok=True)
        self.owner = owner
        self.ttl_s = ttl_s
        self.clock = clock

    def _path(self, shard: int) -> Path:
        return self.lease_dir / f"shard-{shard:05d}.lease"

    def acquire(self, shard: int) -> bool:
        """Try to become the shard's single owner; False if leased."""
        path = self._path(shard)
        now = self.clock()
        payload = json.dumps(
            {"owner": self.owner, "shard": shard, "acquired": now},
            sort_keys=True,
        ).encode("utf-8")
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        try:
            os.utime(path, (now, now))
        except FileNotFoundError:
            # Reclaimed between create and utime — only possible when
            # the injected clock already says we are past the TTL.
            return False
        return True

    def owner_of(self, shard: int) -> Optional[str]:
        """The lease file's recorded owner, or ``None`` when free."""
        try:
            data = json.loads(self._path(shard).read_text(encoding="utf-8"))
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        owner = data.get("owner")
        return owner if isinstance(owner, str) else None

    def heartbeat(self, shard: int) -> bool:
        """Refresh the lease mtime; False means the lease was lost.

        Verify-refresh-verify: if the lease was reclaimed and re-owned
        between our read and our ``utime``, the second read catches it
        — we may have gifted the new owner one mtime refresh (which
        only *extends* their lease), but we never keep believing the
        shard is ours.
        """
        path = self._path(shard)
        if self.owner_of(shard) != self.owner:
            return False
        now = self.clock()
        try:
            os.utime(path, (now, now))
        except FileNotFoundError:
            return False
        return self.owner_of(shard) == self.owner

    def expired(self, shard: int) -> bool:
        """True when the lease exists but its TTL lapsed un-refreshed."""
        try:
            st = os.stat(self._path(shard))
        except FileNotFoundError:
            return False
        return self.clock() - st.st_mtime > self.ttl_s

    def reclaim(self, shard: int) -> bool:
        """Atomically retire an expired lease; True if we won the race.

        The expired lease is renamed to a uniquely-named crash
        tombstone (kept for accounting — :meth:`crash_count`), so of N
        concurrent reclaimers exactly one rename succeeds and the rest
        observe ``FileNotFoundError``.  The winner still has to
        :meth:`acquire` through the normal exclusive-create gate.
        """
        path = self._path(shard)
        try:
            st = os.stat(path)
        except FileNotFoundError:
            return False
        if self.clock() - st.st_mtime <= self.ttl_s:
            return False
        tomb = self.lease_dir / f"{path.name}.crashed-{uuid.uuid4().hex[:8]}"
        try:
            os.rename(path, tomb)
        except FileNotFoundError:
            return False
        log.warning("lease: reclaimed expired shard %d (%s)", shard, path.name)
        return True

    def release(self, shard: int) -> None:
        """Free the shard iff we still own it (lost leases are no-ops)."""
        if self.owner_of(shard) != self.owner:
            return
        try:
            self._path(shard).unlink()
        except FileNotFoundError:
            pass

    def state(self, shard: int) -> Tuple[str, Optional[str]]:
        """``("free"|"leased"|"expired", owner)`` for one shard."""
        try:
            st = os.stat(self._path(shard))
        except FileNotFoundError:
            return ("free", None)
        owner = self.owner_of(shard)
        if self.clock() - st.st_mtime > self.ttl_s:
            return ("expired", owner)
        return ("leased", owner)

    def crash_count(self) -> int:
        """How many leases were ever reclaimed in this batch."""
        if not self.lease_dir.is_dir():
            return 0
        return sum(1 for _ in self.lease_dir.glob("*.crashed-*"))


# --------------------------------------------------------------------
# Status
# --------------------------------------------------------------------

def service_status(
    batch: BatchRun,
    ttl_s: float = LEASE_TTL_S,
    clock: Callable[[], float] = time.time,
) -> dict:
    """Queued/leased/done/crashed shard counts for one batch.

    Every shard is classified exactly once, so
    ``queued + leased + done + crashed == shards`` at any instant —
    the stress tests poll this invariant mid-drain.
    """
    done = batch.completed_shards()
    lm = LeaseManager(batch.batch_dir, owner="", ttl_s=ttl_s, clock=clock,
                      create=False)
    queued = leased = crashed = 0
    for idx in range(len(batch.shards)):
        if idx in done:
            continue
        kind, _owner = lm.state(idx)
        if kind == "leased":
            leased += 1
        elif kind == "expired":
            crashed += 1
        else:
            queued += 1
    return {
        "batch": batch.batch_id,
        "dir": batch.batch_dir.name,
        "label": batch.label,
        "shards": len(batch.shards),
        "jobs": len(batch.jobs),
        "queued": queued,
        "leased": leased,
        "done": len(done),
        "crashed": crashed,
        "jobs_done": sum(len(batch.shards[i]) for i in done),
        "executed": sum(int(r.get("executed", 0)) for r in done.values()),
        "reclaims": lm.crash_count(),
        "complete": len(done) == len(batch.shards),
    }


# --------------------------------------------------------------------
# Worker
# --------------------------------------------------------------------

@dataclass
class WorkerStats:
    """What one :func:`run_worker` invocation accomplished."""

    owner: str
    shards_done: int = 0
    jobs_executed: int = 0
    reclaims: int = 0
    leases_lost: int = 0
    batches_seen: int = 0

    def summary(self) -> str:
        return (
            f"worker {self.owner}: {self.shards_done} shard(s), "
            f"{self.jobs_executed} job(s) executed, "
            f"{self.reclaims} reclaim(s), {self.leases_lost} lease(s) lost"
        )


def run_worker(
    root: Union[str, Path],
    owner: Optional[str] = None,
    *,
    ttl_s: float = LEASE_TTL_S,
    poll_s: float = 0.5,
    drain: bool = False,
    throttle_s: float = 0.0,
    executor: Optional[object] = None,
    cache: Optional[ResultCache] = None,
    max_shards: Optional[int] = None,
    clock: Callable[[], float] = time.time,
    stop: Optional[threading.Event] = None,
    on_shard: Optional[Callable[[BatchRun, int], None]] = None,
) -> WorkerStats:
    """Pull and execute leased shards from every batch under ``root``.

    The worker needs nothing but the shared root directory: it
    discovers batches from their manifests, leases pending shards
    through :class:`LeaseManager`, executes them through
    :meth:`BatchRun.run_shard` (cache-probe first, so a reclaimed
    shard re-runs only the jobs its dead owner never persisted),
    heartbeats after every executed job, and journals the shard —
    annotated with its owner id and reclaim provenance — only once all
    its results are durable.  A lost lease (another worker reclaimed
    us while we stalled) aborts the shard *before* the journal append.

    ``drain=True`` returns once every discovered batch is complete;
    otherwise the worker polls forever (service mode) until ``stop``
    is set.  ``throttle_s`` sleeps after every executed job — a
    rate-limit for shared boxes that also widens fault-injection
    windows in the test tier.  ``max_shards`` caps how many shards
    this call will execute (testing hook).
    """
    root = Path(root)
    owner = owner or default_owner()
    executor = executor if executor is not None else SerialExecutor()
    stats = WorkerStats(owner=owner)
    while not (stop is not None and stop.is_set()):
        batches = BatchRun.discover(root)
        stats.batches_seen = max(stats.batches_seen, len(batches))
        progressed = False
        incomplete = False
        for batch in batches:
            bcache = cache if cache is not None else batch.default_cache()
            lm = LeaseManager(batch.batch_dir, owner, ttl_s=ttl_s, clock=clock)
            exec_log = batch.batch_dir / EXECUTIONS_NAME
            for idx in batch.pending_shards():
                if stop is not None and stop.is_set():
                    return stats
                reclaimed = False
                if not lm.acquire(idx):
                    if lm.reclaim(idx):
                        reclaimed = True
                        stats.reclaims += 1
                        if not lm.acquire(idx):
                            continue  # another worker re-leased first
                    else:
                        continue  # validly leased elsewhere (or raced)
                try:
                    # Raced: someone journaled this shard between our
                    # pending scan and our acquire — nothing to do.
                    if idx in batch.completed_shards():
                        continue

                    def _on_result(job, result, _idx=idx, _lm=lm):
                        append_jsonl(exec_log, {
                            "fp": job_fingerprint(job),
                            "shard": _idx,
                            "worker": owner,
                            "platform": job.platform,
                            "workload": job.workload,
                            "mode": job.mode.value,
                            "seed": job.run_cfg.seed,
                        })
                        stats.jobs_executed += 1
                        if throttle_s > 0:
                            time.sleep(throttle_s)
                        if not _lm.heartbeat(_idx):
                            raise LeaseLost(
                                f"shard {_idx} lease lost by {owner}"
                            )

                    annotate = {"worker": owner}
                    if reclaimed:
                        annotate["reclaimed"] = True
                    batch.run_shard(
                        idx, executor, bcache,
                        annotate=annotate, on_result=_on_result,
                    )
                except LeaseLost as exc:
                    stats.leases_lost += 1
                    log.warning("worker %s: %s; abandoning shard", owner, exc)
                    continue
                finally:
                    lm.release(idx)
                stats.shards_done += 1
                progressed = True
                if on_shard is not None:
                    on_shard(batch, idx)
                if max_shards is not None and stats.shards_done >= max_shards:
                    return stats
            if batch.pending_shards():
                incomplete = True
        if drain and not incomplete:
            # Every discovered batch is fully journaled (or there are
            # no batches at all): the queue is drained.
            return stats
        if not progressed:
            if stop is not None:
                if stop.wait(poll_s):
                    return stats
            else:
                time.sleep(poll_s)
    return stats


# --------------------------------------------------------------------
# Daemon
# --------------------------------------------------------------------

def _error(err_type: str, message: str, op: Optional[str] = None) -> dict:
    rec = {"ok": False, "error": {"type": err_type, "message": message}}
    if op:
        rec["op"] = op
    return rec


class _Shutdown(Exception):
    """Raised through dispatch to stop the server loop."""


class ReproService:
    """Request dispatcher for the ``repro serve`` daemon.

    Owns no execution state of its own — every answer is derived from
    the on-disk batch root (manifests, WAL journals, lease files), so
    a SIGKILLed daemon restarts exactly where the WAL says the world
    is: submissions, progress and results all survive.
    """

    def __init__(
        self,
        root: Union[str, Path],
        ttl_s: float = LEASE_TTL_S,
        poll_s: float = 0.2,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.ttl_s = ttl_s
        self.poll_s = poll_s
        self.started = time.time()
        self._submit_lock = threading.Lock()
        self.stopping = threading.Event()

    # -- helpers ------------------------------------------------------

    def _cache_dir(self) -> Path:
        return self.root / "cache"

    def _resolve_batch(self, prefix) -> Tuple[Optional[BatchRun], Optional[dict]]:
        if not isinstance(prefix, str) or not prefix:
            return None, _error("protocol", "a non-empty 'batch' id is required")
        matches = [
            b for b in BatchRun.discover(self.root)
            if b.batch_id.startswith(prefix)
            or b.batch_dir.name in (prefix, f"b-{prefix}")
        ]
        if not matches:
            return None, _error("unknown-batch", f"no batch matches {prefix!r}")
        if len(matches) > 1:
            return None, _error(
                "ambiguous-batch",
                f"{len(matches)} batches match {prefix!r}; give more digits",
            )
        return matches[0], None

    # -- request handlers (each yields response records) --------------

    def dispatch(self, req: dict) -> Iterator[dict]:
        op = req.get("op")
        if op == "ping":
            yield {
                "ok": True, "op": "ping", "v": PROTOCOL_VERSION,
                "root": str(self.root),
                "uptime_s": round(time.time() - self.started, 3),
            }
        elif op == "submit":
            yield self._submit(req)
        elif op == "status":
            yield self._status(req)
        elif op == "watch":
            yield from self._watch(req)
        elif op == "shutdown":
            raise _Shutdown()
        else:
            yield _error("unknown-op", f"unknown op {op!r}")

    def _submit(self, req: dict) -> dict:
        raw = req.get("jobs")
        if not isinstance(raw, list) or not raw:
            return _error("submit", "'jobs' must be a non-empty list", "submit")
        shard_size = req.get("shard_size", DEFAULT_SHARD_SIZE)
        if not isinstance(shard_size, int) or shard_size < 1:
            return _error("submit", "'shard_size' must be an int >= 1", "submit")
        try:
            jobs = [SimulationJob.from_dict(d) for d in raw]
        except Exception as exc:
            return _error("bad-job", f"unparseable job description: {exc}",
                          "submit")
        label = str(req.get("label", ""))
        try:
            with self._submit_lock:
                # Fingerprinting resolves every workload — unknown
                # names or missing trace files surface here, as a
                # structured error record, not a daemon crash.
                bid = batch_id(jobs, shard_size)
                existing = (
                    self.root / f"b-{bid[:16]}" / MANIFEST_NAME
                ).exists()
                batch = BatchRun.open(
                    self.root, jobs, shard_size=shard_size, label=label
                )
        except (BatchError, KeyError, ValueError, TypeError, OSError) as exc:
            return _error("submit", str(exc), "submit")
        status = service_status(batch, ttl_s=self.ttl_s)
        log.info("submit: batch %s (%d jobs, %d shards, existing=%s)",
                 batch.batch_id[:12], len(batch.jobs), len(batch.shards),
                 existing)
        return {
            "ok": True, "op": "submit", "v": PROTOCOL_VERSION,
            "batch": batch.batch_id, "dir": batch.batch_dir.name,
            "jobs": len(batch.jobs), "shards": len(batch.shards),
            "existing": existing, "done": status["done"],
        }

    def _status(self, req: dict) -> dict:
        prefix = req.get("batch")
        if prefix is not None:
            batch, err = self._resolve_batch(prefix)
            if err:
                return err
            batches = [batch]
        else:
            batches = BatchRun.discover(self.root)
        return {
            "ok": True, "op": "status", "v": PROTOCOL_VERSION,
            "batches": [
                service_status(b, ttl_s=self.ttl_s) for b in batches
            ],
        }

    def _watch(self, req: dict) -> Iterator[dict]:
        batch, err = self._resolve_batch(req.get("batch"))
        if err:
            yield err
            return
        with_results = bool(req.get("results", True))
        timeout_s = req.get("timeout_s")
        deadline = (
            None if timeout_s is None
            else time.monotonic() + float(timeout_s)
        )
        store = ResultStore(self._cache_dir())
        total = len(batch.shards)
        yield {
            "ok": True, "op": "watch", "v": PROTOCOL_VERSION,
            "batch": batch.batch_id, "shards": total,
            "jobs": len(batch.jobs),
        }
        seen: set = set()
        shard_keys = ("shard", "jobs", "executed", "wall_s", "worker",
                      "reclaimed")
        while True:
            # completed_shards() digest-checks and dedups the journal,
            # so a torn line or a foreign record can never stream as a
            # completion event.
            for idx, rec in batch.completed_shards().items():
                if idx in seen:
                    continue
                seen.add(idx)
                yield {
                    "event": "shard",
                    **{k: rec[k] for k in shard_keys if k in rec},
                }
                if with_results:
                    for job in batch.shards[idx]:
                        fp = job_fingerprint(job)
                        entry = store.entry_for(fp)
                        row = (
                            entry.to_row() if entry is not None
                            else {"fingerprint": fp}
                        )
                        yield {"event": "result", "shard": idx, **row}
            if len(seen) >= total:
                yield {"event": "done", "batch": batch.batch_id,
                       "shards": total}
                return
            if deadline is not None and time.monotonic() >= deadline:
                yield {"event": "timeout", "done": len(seen),
                       "shards": total}
                return
            if self.stopping.wait(self.poll_s):
                yield {"event": "stopped", "done": len(seen),
                       "shards": total}
                return


class _Handler(socketserver.StreamRequestHandler):
    """One connection: NDJSON request lines in, NDJSON records out."""

    def _emit(self, rec: dict) -> bool:
        try:
            self.wfile.write(
                json.dumps(rec, sort_keys=True,
                           separators=(",", ":")).encode("utf-8") + b"\n"
            )
            self.wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False  # client went away; only this handler dies

    def handle(self) -> None:
        service: ReproService = self.server.service  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                req = json.loads(line)
                if not isinstance(req, dict):
                    raise ValueError("request must be a JSON object")
            except (json.JSONDecodeError, ValueError) as exc:
                if not self._emit(_error("protocol", f"bad request line: {exc}")):
                    return
                continue
            try:
                for rec in service.dispatch(req):
                    if not self._emit(rec):
                        return
            except _Shutdown:
                self._emit({"ok": True, "op": "shutdown",
                            "v": PROTOCOL_VERSION})
                service.stopping.set()
                # shutdown() must not be called from the handler thread
                # it would deadlock waiting for.
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                return
            except Exception as exc:  # pragma: no cover - defensive
                log.exception("service: request failed: %r", req)
                if not self._emit(_error("internal", repr(exc), str(req.get("op")))):
                    return


class _ServerMixin:
    daemon_threads = True
    allow_reuse_address = True

    def handle_error(self, request, client_address):  # noqa: D102
        exc = sys.exc_info()[1]
        if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
            return  # watch client hung up mid-stream: routine
        log.warning("service: connection error from %s: %r",
                    client_address, exc)


class _TCPServer(_ServerMixin, socketserver.ThreadingTCPServer):
    pass


class _UnixServer(_ServerMixin, socketserver.ThreadingUnixStreamServer):
    pass


def make_server(service: ReproService, address: Union[str, Path]):
    """Bind a threading NDJSON server for ``service`` on ``address``.

    A stale Unix socket file (left by a SIGKILLed daemon) is unlinked
    and rebound; a non-socket file at that path is refused.
    """
    kind, target = parse_address(address)
    if kind == "unix":
        path = Path(target)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            if stat_mod.S_ISSOCK(os.stat(path).st_mode):
                path.unlink()
            else:
                raise ServiceError(
                    f"{path} exists and is not a socket; refusing to bind"
                )
        server = _UnixServer(str(path), _Handler)
    else:
        server = _TCPServer(target, _Handler)
    server.service = service  # type: ignore[attr-defined]
    return server


def serve(
    root: Union[str, Path],
    address: Union[str, Path],
    ttl_s: float = LEASE_TTL_S,
    poll_s: float = 0.2,
    ready: Optional[Callable[[object], None]] = None,
) -> int:
    """Run the daemon until shutdown (op or Ctrl-C).  Blocking."""
    service = ReproService(root, ttl_s=ttl_s, poll_s=poll_s)
    server = make_server(service, address)
    kind, target = parse_address(address)
    if kind == "tcp":
        bound = server.server_address
        log.info("serving on tcp:%s:%d root=%s", bound[0], bound[1], root)
    else:
        log.info("serving on unix:%s root=%s", target, root)
    if ready is not None:
        ready(server)
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        service.stopping.set()
        server.server_close()
        if kind == "unix":
            try:
                Path(target).unlink()
            except FileNotFoundError:
                pass
    return 0


# --------------------------------------------------------------------
# Client
# --------------------------------------------------------------------

class ServiceClient:
    """Line-oriented NDJSON client for the service daemon.

    One connection per call — requests are independent, and a broken
    ``watch`` stream never poisons a later ``status``.
    """

    def __init__(self, address: Union[str, Path], timeout_s: float = 30.0):
        self.address = parse_address(address)
        self.timeout_s = timeout_s

    def _connect(self, timeout_s: Optional[float]) -> socket.socket:
        kind, target = self.address
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout_s)
            sock.connect(str(target))
            return sock
        return socket.create_connection(target, timeout=timeout_s)

    def request(self, payload: dict) -> dict:
        """One request line, one response record."""
        sock = self._connect(self.timeout_s)
        try:
            fh = sock.makefile("rwb")
            fh.write(json.dumps(payload).encode("utf-8") + b"\n")
            fh.flush()
            line = fh.readline()
            if not line:
                raise ServiceError("service closed the connection")
            return json.loads(line)
        finally:
            sock.close()

    def stream(self, payload: dict) -> Iterator[dict]:
        """One request line, a stream of response records until EOF."""
        timeout_s = payload.get("timeout_s")
        sock = self._connect(None if timeout_s is None else timeout_s + 10.0)
        try:
            fh = sock.makefile("rwb")
            fh.write(json.dumps(payload).encode("utf-8") + b"\n")
            fh.flush()
            for line in fh:
                yield json.loads(line)
        finally:
            sock.close()

    # -- convenience wrappers -----------------------------------------

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def submit(
        self,
        jobs: Sequence[Union[SimulationJob, dict]],
        shard_size: int = DEFAULT_SHARD_SIZE,
        label: str = "",
    ) -> dict:
        dicts = [
            j.to_dict() if isinstance(j, SimulationJob) else j for j in jobs
        ]
        return self.request({
            "op": "submit", "jobs": dicts,
            "shard_size": shard_size, "label": label,
        })

    def status(self, batch: Optional[str] = None) -> dict:
        req: Dict[str, object] = {"op": "status"}
        if batch is not None:
            req["batch"] = batch
        return self.request(req)

    #: ``watch`` stream records after which no more will ever arrive.
    TERMINAL_EVENTS = frozenset({"done", "timeout", "stopped"})

    def watch(
        self,
        batch: str,
        results: bool = True,
        timeout_s: Optional[float] = None,
    ) -> Iterator[dict]:
        """Stream a batch's progress records until a terminal event.

        The daemon keeps the connection open for further requests after
        the stream ends, so termination is detected here: the iterator
        stops after ``done``/``timeout``/``stopped`` or an error record.
        """
        req: Dict[str, object] = {
            "op": "watch", "batch": batch, "results": results,
        }
        if timeout_s is not None:
            req["timeout_s"] = timeout_s
        for rec in self.stream(req):
            yield rec
            if rec.get("event") in self.TERMINAL_EVENTS or rec.get("ok") is False:
                return

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})


def wait_for_service(
    address: Union[str, Path],
    timeout_s: float = 10.0,
    interval_s: float = 0.05,
) -> dict:
    """Ping until the daemon answers; raises TimeoutError otherwise."""
    client = ServiceClient(address, timeout_s=max(interval_s, 1.0))
    deadline = time.monotonic() + timeout_s
    last: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            pong = client.ping()
            if pong.get("ok"):
                return pong
        except (OSError, ServiceError, json.JSONDecodeError) as exc:
            last = exc
        time.sleep(interval_s)
    raise TimeoutError(
        f"no service on {format_address(parse_address(address))} "
        f"after {timeout_s}s (last error: {last!r})"
    )
