"""Design-space sweep utilities.

Thin, reusable wrappers for the sensitivity studies of Section VI-B and
the extra ablations: vary one configuration knob, re-simulate, collect a
metric.  Used by ``benchmarks/test_ablations.py`` and the examples.

Sweeps are expressed as :class:`SimulationJob` batches with explicit
``SystemConfig`` overrides and evaluated through a shared
:class:`Runner`, so they ride the same executor (``--jobs``) and
persistent cache as the figure experiments instead of owning a private
simulation path.  Passing ``batch_dir`` journals the sweep through the
sharded batch scheduler (see ``harness/batch.py``): a killed sweep
resumes from its last completed shard instead of restarting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.config import MemoryMode, SystemConfig, default_config
from repro.gpu.gpu import RunResult
from repro.harness.executor import RunConfig, SimulationJob
from repro.harness.runner import Runner


@dataclass(frozen=True)
class SweepPoint:
    """One (knob value, result) pair of a sweep."""

    value: float
    result: RunResult


def sweep_jobs(
    platform: str,
    workload: str,
    mode: MemoryMode,
    values: Sequence[float],
    mutate: Callable[[SystemConfig, float], SystemConfig],
    sizing: RunConfig,
) -> List[SimulationJob]:
    """The job batch a sweep needs: one config override per knob value."""
    return [
        SimulationJob(
            platform, workload, mode, sizing, cfg=mutate(default_config(mode), v)
        )
        for v in values
    ]


def sweep_config(
    platform: str,
    workload: str,
    mode: MemoryMode,
    values: Sequence[float],
    mutate: Callable[[SystemConfig, float], SystemConfig],
    sizing: Optional[RunConfig] = None,
    runner: Optional[Runner] = None,
    batch_dir: Optional[Union[str, Path]] = None,
) -> List[SweepPoint]:
    """Run ``platform`` on ``workload`` once per knob value.

    ``mutate(cfg, value)`` returns the modified configuration; traces
    are regenerated per point because page size or footprint may change.
    Pass a ``runner`` to share its executor, memo and persistent cache
    with the rest of the harness, or ``batch_dir`` to journal the sweep
    through the sharded batch scheduler (resumable after a kill).
    """
    if runner is not None and batch_dir is not None:
        raise ValueError("pass either runner or batch_dir, not both")
    sizing = sizing or RunConfig(num_warps=48, accesses_per_warp=48)
    runner = runner or Runner(sizing, batch_dir=batch_dir)
    jobs = sweep_jobs(platform, workload, mode, values, mutate, sizing)
    results = runner.run_jobs(jobs)
    return [SweepPoint(v, results[job]) for v, job in zip(values, jobs)]


def sweep_hot_threshold(
    platform: str = "Ohm-base",
    workload: str = "backp",
    thresholds: Sequence[int] = (6, 14, 28, 56),
    sizing: Optional[RunConfig] = None,
    runner: Optional[Runner] = None,
    batch_dir: Optional[Union[str, Path]] = None,
) -> List[SweepPoint]:
    """Planar migration aggressiveness sweep."""
    return sweep_config(
        platform,
        workload,
        MemoryMode.PLANAR,
        thresholds,
        lambda cfg, v: replace(cfg, hetero=replace(cfg.hetero, hot_threshold=int(v))),
        sizing,
        runner,
        batch_dir,
    )


def sweep_waveguides(
    platform: str = "Ohm-base",
    workload: str = "GRAMS",
    counts: Sequence[int] = (1, 2, 4, 8),
    sizing: Optional[RunConfig] = None,
    runner: Optional[Runner] = None,
    batch_dir: Optional[Union[str, Path]] = None,
) -> List[SweepPoint]:
    """Fig. 20a's knob as a reusable sweep."""
    return sweep_config(
        platform,
        workload,
        MemoryMode.PLANAR,
        counts,
        lambda cfg, v: cfg.with_waveguides(int(v)),
        sizing,
        runner,
        batch_dir,
    )


def sweep_xpoint_read_latency(
    platform: str = "Ohm-BW",
    workload: str = "pagerank",
    latencies_ns: Sequence[float] = (95.0, 190.0, 380.0, 760.0),
    sizing: Optional[RunConfig] = None,
    runner: Optional[Runner] = None,
    batch_dir: Optional[Union[str, Path]] = None,
) -> List[SweepPoint]:
    """How sensitive is Ohm-GPU to the NVM technology's read latency?

    (A next-generation XPoint would halve it; a pessimistic one doubles
    it — the kind of what-if the paper's conclusions should survive.)
    """
    return sweep_config(
        platform,
        workload,
        MemoryMode.PLANAR,
        latencies_ns,
        lambda cfg, v: replace(cfg, xpoint=replace(cfg.xpoint, read_ns=float(v))),
        sizing,
        runner,
        batch_dir,
    )
