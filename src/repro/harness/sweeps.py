"""Design-space sweep utilities.

Thin, reusable wrappers for the sensitivity studies of Section VI-B and
the extra ablations: vary one configuration knob, re-simulate, collect a
metric.  Used by ``benchmarks/test_ablations.py`` and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from repro.config import MemoryMode, SystemConfig, default_config
from repro.core.platforms import PLATFORMS
from repro.gpu.gpu import GpuModel, RunResult
from repro.harness.runner import RunConfig
from repro.workloads.registry import generate_traces, get_workload


@dataclass(frozen=True)
class SweepPoint:
    """One (knob value, result) pair of a sweep."""

    value: float
    result: RunResult


def _simulate(
    platform: str,
    workload: str,
    cfg: SystemConfig,
    sizing: RunConfig,
) -> RunResult:
    spec = get_workload(workload)
    traces = generate_traces(
        spec,
        spec.scaled_footprint(cfg.scale_down),
        num_warps=sizing.num_warps,
        accesses_per_warp=sizing.accesses_per_warp,
        line_bytes=cfg.gpu.line_bytes,
        page_bytes=cfg.hetero.page_bytes,
        seed=sizing.seed,
    )
    return GpuModel(PLATFORMS[platform], cfg, spec, traces).run()


def sweep_config(
    platform: str,
    workload: str,
    mode: MemoryMode,
    values: Sequence[float],
    mutate: Callable[[SystemConfig, float], SystemConfig],
    sizing: Optional[RunConfig] = None,
) -> List[SweepPoint]:
    """Run ``platform`` on ``workload`` once per knob value.

    ``mutate(cfg, value)`` returns the modified configuration; traces
    are regenerated per point because page size or footprint may change.
    """
    sizing = sizing or RunConfig(num_warps=48, accesses_per_warp=48)
    points = []
    for value in values:
        cfg = mutate(default_config(mode), value)
        points.append(SweepPoint(value, _simulate(platform, workload, cfg, sizing)))
    return points


def sweep_hot_threshold(
    platform: str = "Ohm-base",
    workload: str = "backp",
    thresholds: Sequence[int] = (6, 14, 28, 56),
    sizing: Optional[RunConfig] = None,
) -> List[SweepPoint]:
    """Planar migration aggressiveness sweep."""
    return sweep_config(
        platform,
        workload,
        MemoryMode.PLANAR,
        thresholds,
        lambda cfg, v: replace(cfg, hetero=replace(cfg.hetero, hot_threshold=int(v))),
        sizing,
    )


def sweep_waveguides(
    platform: str = "Ohm-base",
    workload: str = "GRAMS",
    counts: Sequence[int] = (1, 2, 4, 8),
    sizing: Optional[RunConfig] = None,
) -> List[SweepPoint]:
    """Fig. 20a's knob as a reusable sweep."""
    return sweep_config(
        platform,
        workload,
        MemoryMode.PLANAR,
        counts,
        lambda cfg, v: cfg.with_waveguides(int(v)),
        sizing,
    )


def sweep_xpoint_read_latency(
    platform: str = "Ohm-BW",
    workload: str = "pagerank",
    latencies_ns: Sequence[float] = (95.0, 190.0, 380.0, 760.0),
    sizing: Optional[RunConfig] = None,
) -> List[SweepPoint]:
    """How sensitive is Ohm-GPU to the NVM technology's read latency?

    (A next-generation XPoint would halve it; a pessimistic one doubles
    it — the kind of what-if the paper's conclusions should survive.)
    """
    return sweep_config(
        platform,
        workload,
        MemoryMode.PLANAR,
        latencies_ns,
        lambda cfg, v: replace(cfg, xpoint=replace(cfg.xpoint, read_ns=float(v))),
        sizing,
    )
