"""The audit sweep: invariant checks over the workload x platform matrix.

``repro audit`` drives this module.  It builds the full
workload-registry x platform (x memory-mode) job matrix, evaluates each
job through the existing executor layer with a collecting (non-strict)
:class:`~repro.sim.audit.Auditor` attached, and folds the per-job
outcomes into one report — a table for terminals plus json/csv through
the structured emitters in :mod:`repro.harness.report`.

Resumability rides the batch layer's JSONL write-ahead journal
(:func:`~repro.harness.batch.append_jsonl`): with ``--journal PATH``
the sweep executes in executor-sized waves and appends each wave's
outcomes as it lands, and a re-invocation skips jobs whose fingerprint
is already journaled — the same crash-recovery contract the sharded
batch scheduler gives simulation results (DESIGN.md section 9),
applied to audit outcomes.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.config import MemoryMode
from repro.core.platforms import PLATFORMS
from repro.gpu.gpu import GpuModel
from repro.harness.batch import append_jsonl, read_jsonl
from repro.harness.cache import job_fingerprint
from repro.harness.executor import (
    RunConfig,
    SerialExecutor,
    SimulationJob,
    traces_for,
)
from repro.sim.audit import Auditor
from repro.workloads.registry import REGISTRY, get_workload_def

log = logging.getLogger("repro.audit")

AUDIT_SCHEMA = 1

#: Row schema shared by the table printer and the json/csv emitters.
AUDIT_COLUMNS = (
    "platform",
    "workload",
    "mode",
    "checks",
    "violations",
    "ok",
    "detail",
)

#: The CI gate: small but shaped like the full sweep — every platform,
#: every trace family (Table II synthetic + graph, the parametric
#: families, a multi-tenant composition), both memory modes.
SMOKE_WORKLOADS = ("pagerank", "backp", "gemm_reuse", "stream_scan", "mix_gemm_chase")
SMOKE_SIZING = RunConfig(num_warps=24, accesses_per_warp=24)

#: Default sizing of the full sweep; big enough that every slice type
#: faults/migrates/swaps, small enough that the ~270-job matrix stays
#: in whole-minutes territory on one core.
DEFAULT_SIZING = RunConfig(num_warps=48, accesses_per_warp=32)


@dataclass(frozen=True)
class AuditOutcome:
    """One job's audit verdict (picklable: crosses worker processes)."""

    platform: str
    workload: str
    mode: str
    checks: int
    violations: Tuple[dict, ...]
    fingerprint: str

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "platform": self.platform,
            "workload": self.workload,
            "mode": self.mode,
            "checks": self.checks,
            "violations": list(self.violations),
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AuditOutcome":
        return cls(
            platform=data["platform"],
            workload=data["workload"],
            mode=data["mode"],
            checks=data["checks"],
            violations=tuple(data["violations"]),
            fingerprint=data["fingerprint"],
        )

    def to_row(self) -> dict:
        """Flat row for the table printer and the json/csv emitters."""
        detail = "; ".join(
            f"[{v['invariant']}] {v['component']}: {v['message']}"
            for v in self.violations[:3]
        )
        if len(self.violations) > 3:
            detail += f"; ... and {len(self.violations) - 3} more"
        return {
            "platform": self.platform,
            "workload": self.workload,
            "mode": self.mode,
            "checks": self.checks,
            "violations": len(self.violations),
            "ok": self.ok,
            "detail": detail,
        }


def execute_job_audited(job: SimulationJob) -> AuditOutcome:
    """Run one simulation under a collecting auditor.

    The non-strict twin of
    :func:`repro.harness.executor.execute_job` with
    ``run_cfg.validate``: instead of raising on the first run whose
    invariants fail, every violation is captured so a sweep can report
    the whole matrix.  Top-level and picklable by design — the parallel
    executor maps it across worker processes.
    """
    cfg = job.resolved_config()
    defn = get_workload_def(job.workload)
    traces = traces_for(job, cfg)
    auditor = Auditor(strict=False)
    fingerprint = ""
    try:
        model = GpuModel(
            PLATFORMS[job.platform], cfg, defn.spec, traces, auditor=auditor
        )
        fingerprint = model.run().fingerprint()
    except Exception as exc:  # noqa: BLE001 - one crashed job must not
        # kill a whole sweep: surface it as its own audit record (the
        # construction-time violations already collected stay attached).
        auditor.record(
            "run.crashed",
            f"{job.platform}/{job.workload}/{job.mode.value}",
            f"{type(exc).__name__}: {exc}",
        )
    return AuditOutcome(
        platform=job.platform,
        workload=job.workload,
        mode=job.mode.value,
        checks=auditor.checks_run,
        violations=tuple(v.to_dict() for v in auditor.violations),
        fingerprint=fingerprint,
    )


def audit_jobs(
    run_cfg: Optional[RunConfig] = None,
    platforms: Optional[Iterable[str]] = None,
    workloads: Optional[Iterable[str]] = None,
    modes: Optional[Iterable[MemoryMode]] = None,
    smoke: bool = False,
) -> List[SimulationJob]:
    """The audit matrix: workload-registry x platforms x memory modes.

    Defaults cover the *full* registry (every Table II workload, every
    parametric family variant, the composed scenarios) on every
    platform in both memory modes; ``smoke`` shrinks it to the CI gate.
    """
    if smoke:
        run_cfg = run_cfg or SMOKE_SIZING
        workloads = tuple(workloads) if workloads is not None else SMOKE_WORKLOADS
    else:
        run_cfg = run_cfg or DEFAULT_SIZING
        workloads = tuple(workloads) if workloads is not None else tuple(REGISTRY)
    platforms = tuple(platforms) if platforms is not None else tuple(PLATFORMS)
    modes = tuple(modes) if modes is not None else tuple(MemoryMode)
    for name in platforms:
        if name not in PLATFORMS:
            raise KeyError(f"unknown platform {name!r}; choose from {list(PLATFORMS)}")
    for name in workloads:
        get_workload_def(name)  # raises KeyError on unknown names
    return [
        SimulationJob(p, w, m, run_cfg)
        for w in workloads
        for p in platforms
        for m in modes
    ]


def run_audit(
    jobs: Sequence[SimulationJob],
    executor: Optional[object] = None,
    journal: Optional[Union[str, Path]] = None,
) -> List[AuditOutcome]:
    """Audit every job; outcomes in job order.

    ``journal`` makes the sweep resumable: each outcome is appended to
    the JSONL journal as it completes (keyed by the job's cache
    fingerprint), and jobs already journaled are not re-simulated.
    """
    executor = executor or SerialExecutor()
    done: Dict[str, AuditOutcome] = {}
    if journal is not None:
        for rec in read_jsonl(journal):
            if rec.get("schema") != AUDIT_SCHEMA or "key" not in rec:
                continue
            try:
                done[rec["key"]] = AuditOutcome.from_dict(rec["outcome"])
            except (KeyError, TypeError):
                log.warning("audit journal: skipping malformed record")
    keys = {job: job_fingerprint(job) for job in dict.fromkeys(jobs)}
    pending = [job for job, key in keys.items() if key not in done]
    if journal is not None and len(pending) < len(keys):
        log.info(
            "audit journal: %d/%d jobs already audited, resuming",
            len(keys) - len(pending), len(keys),
        )
    if pending:
        # With a journal, evaluate in executor-sized waves and append
        # each wave's outcomes as they land, so a killed sweep resumes
        # from its last completed wave — not from zero.  Without one,
        # a single executor call maximizes parallelism.
        chunk = len(pending)
        if journal is not None:
            chunk = max(1, 2 * getattr(executor, "max_workers", 1))
        for start in range(0, len(pending), chunk):
            wave = pending[start:start + chunk]
            outcomes = executor.run_jobs(wave, fn=execute_job_audited)
            for job, outcome in zip(wave, outcomes):
                done[keys[job]] = outcome
                if journal is not None:
                    append_jsonl(
                        journal,
                        {
                            "schema": AUDIT_SCHEMA,
                            "key": keys[job],
                            "outcome": outcome.to_dict(),
                        },
                    )
    return [done[keys[job]] for job in jobs]


def audit_report(outcomes: Sequence[AuditOutcome]) -> dict:
    """The JSON report document ``repro audit`` emits."""
    total_violations = sum(len(o.violations) for o in outcomes)
    return {
        "schema": AUDIT_SCHEMA,
        "jobs": len(outcomes),
        "checks": sum(o.checks for o in outcomes),
        "violations": total_violations,
        "ok": total_violations == 0,
        "outcomes": [o.to_dict() for o in outcomes],
    }
