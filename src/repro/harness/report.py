"""ASCII table rendering and structured (json/csv) emitters."""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def _fmt(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e6):
            return f"{cell:.2e}"
        return f"{cell:.3f}"
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> str:
    """Render a fixed-width ASCII table (the benches print these)."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_chart(
    items: Sequence[tuple[str, float]],
    width: int = 40,
    title: str = "",
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart (for figure data in terminals).

    >>> print(format_bar_chart([("a", 2.0), ("b", 1.0)], width=4))
    a 2.000 ####
    b 1.000 ##
    """
    if not items:
        raise ValueError("nothing to chart")
    if width < 1:
        raise ValueError("width must be positive")
    peak = max(v for _, v in items)
    if peak < 0:
        raise ValueError("bar values must be non-negative")
    label_w = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        if value < 0:
            raise ValueError("bar values must be non-negative")
        bar = "#" * (int(round(width * value / peak)) if peak else 0)
        lines.append(f"{label.ljust(label_w)} {value:.3f}{unit} {bar}")
    return "\n".join(lines)


def emit_json(rows: Sequence[dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render experiment rows as a JSON array (stable key order).

    ``columns`` fixes the key order and drops extras; by default each
    row is emitted as-is.
    """
    if columns is not None:
        rows = [{c: row.get(c) for c in columns} for row in rows]
    return json.dumps(list(rows), indent=2, default=str)


def emit_csv(rows: Sequence[dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render experiment rows as CSV with a header line.

    ``columns`` fixes the column set; by default the first row's keys
    define the schema (all rows of one experiment share it).
    """
    rows = list(rows)
    if columns is None:
        if not rows:
            return ""
        columns = list(rows[0])
    buf = io.StringIO()
    writer = csv.DictWriter(
        buf, fieldnames=list(columns), extrasaction="ignore", lineterminator="\n"
    )
    writer.writeheader()
    for row in rows:
        writer.writerow({c: row.get(c) for c in columns})
    return buf.getvalue()


EMITTERS = {"json": emit_json, "csv": emit_csv}
