"""Execution backend: pure job descriptions plus pluggable executors.

Layer 1 of the experiment service (see DESIGN.md).  A
:class:`SimulationJob` is a frozen, hashable, picklable value that fully
describes one simulation — (platform, workload, mode, sizing, optional
config override) — and :func:`execute_job` turns one into a
:class:`~repro.gpu.gpu.RunResult` deterministically from scratch.

Executors evaluate whole job batches.  :class:`SerialExecutor` runs them
in-process; :class:`ParallelExecutor` fans them out over a
``concurrent.futures.ProcessPoolExecutor``.  Because ``execute_job`` is
a pure function of the job, both produce bit-identical results, so the
choice is purely a wall-clock knob.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import shutil
import tempfile
from concurrent import futures
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import MemoryMode, SystemConfig, default_config
from repro.core.platforms import PLATFORMS
from repro.gpu.gpu import GpuModel, RunResult
from repro.workloads.registry import build_source, build_traces, get_workload_def
from repro.workloads.source import TraceSource
from repro.workloads.synthetic import WarpTrace
from repro.workloads.trace import (
    FileTraceSource,
    TraceMeta,
    TraceRecorder,
    save_stream,
)


@dataclass(frozen=True)
class RunConfig:
    """Simulation sizing: trade fidelity for wall-clock time.

    ``validate`` opts the run into the cross-layer invariant audit
    (``sim/audit.py``): the model is built with a strict
    :class:`~repro.sim.audit.Auditor` and any violated conservation law
    raises :class:`~repro.sim.audit.InvariantError` at the end of the
    run.  Validation never changes the simulated timeline or the
    counters — a validated run's ``RunResult`` is bit-identical to the
    un-validated one — but it is deliberately part of the job identity
    (and, when ``True``, of the cache fingerprint) so a cached
    un-validated result is never silently passed off as a validated
    run.
    """

    num_warps: int = 192
    accesses_per_warp: int = 80
    seed: int = 7
    waveguides: int = 1
    validate: bool = False

    #: Smallest ``accesses_per_warp`` that :meth:`scaled` will produce —
    #: below this a warp's access stream is too short to exercise the
    #: migration machinery at all.
    MIN_SCALED_ACCESSES = 8

    def scaled(self, factor: float) -> "RunConfig":
        """Sizing with ``accesses_per_warp`` multiplied by ``factor``.

        The product is truncated to an int and floored at
        :data:`MIN_SCALED_ACCESSES` (8), so aggressive down-scaling can
        never produce a degenerate trace.  ``scaled(1.0)`` is the
        identity whenever ``accesses_per_warp`` is already at or above
        the floor; a config below the floor is pulled *up* to it.
        """
        return replace(
            self,
            accesses_per_warp=max(
                self.MIN_SCALED_ACCESSES, int(self.accesses_per_warp * factor)
            ),
        )

    def to_dict(self) -> dict:
        data = {
            "num_warps": self.num_warps,
            "accesses_per_warp": self.accesses_per_warp,
            "seed": self.seed,
            "waveguides": self.waveguides,
        }
        # Emitted only when set: every pre-existing fingerprint, batch
        # manifest and cache entry (all written without the key) keeps
        # round-tripping to an equal RunConfig.
        if self.validate:
            data["validate"] = True
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        return cls(**data)


@dataclass(frozen=True)
class SimulationJob:
    """Pure description of one (platform, workload, mode) simulation.

    ``cfg`` overrides the mode-derived :class:`SystemConfig` entirely —
    the sweep utilities use it to vary arbitrary knobs — while the
    common case derives the Table I configuration from ``mode`` and the
    ``run_cfg.waveguides`` count.
    """

    platform: str
    workload: str
    mode: MemoryMode
    run_cfg: RunConfig = RunConfig()
    cfg: Optional[SystemConfig] = None

    def resolved_config(self) -> SystemConfig:
        """The SystemConfig this job simulates under."""
        if self.cfg is not None:
            return self.cfg
        cfg = default_config(self.mode)
        if self.run_cfg.waveguides != 1:
            cfg = cfg.with_waveguides(self.run_cfg.waveguides)
        return cfg

    def to_dict(self) -> dict:
        """JSON-ready description; batch manifests persist these."""
        return {
            "platform": self.platform,
            "workload": self.workload,
            "mode": self.mode.value,
            "run_cfg": self.run_cfg.to_dict(),
            "cfg": None if self.cfg is None else self.cfg.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationJob":
        """Inverse of :meth:`to_dict` (round-trips exactly)."""
        cfg = data.get("cfg")
        return cls(
            platform=data["platform"],
            workload=data["workload"],
            mode=MemoryMode(data["mode"]),
            run_cfg=RunConfig.from_dict(data["run_cfg"]),
            cfg=None if cfg is None else SystemConfig.from_dict(cfg),
        )


# Worker-local trace memo: regenerating a workload's traces is pure in
# (workload, footprint, sizing, geometry, seed), and a matrix reuses the
# same traces across its seven platforms, so each process keeps them.
# Bounded FIFO so sizing sweeps in one long session can't accumulate
# every trace set ever generated.
_TRACE_MEMO: Dict[Tuple, List[WarpTrace]] = {}
_TRACE_MEMO_MAX = 64

#: Per-process trace-pipeline counters: how many distinct trace sets
#: were generated (``memo_builds``), how often the memo served one back
#: (``memo_hits``), how many oversized sets were spilled to disk once
#: (``spill_builds``) and then re-streamed (``spill_hits``), and how
#: many jobs streamed straight off a recorded file (``replay_streams``).
#: A sweep whose builds stay near its distinct (workload, sizing, seed)
#: count — not its job count — is reusing traces as intended.
TRACE_STATS: Dict[str, int] = {
    "memo_builds": 0,
    "memo_hits": 0,
    "spill_builds": 0,
    "spill_hits": 0,
    "replay_streams": 0,
}

#: Above this many total ops (``num_warps * accesses_per_warp``) a job
#: streams its workload instead of materializing it through the memo:
#: the trace set is generated once per process into a chunked spill
#: file, and every job over it replays that file with bounded memory.
#: Override with the ``REPRO_STREAM_OPS_THRESHOLD`` environment
#: variable (0 streams everything).
DEFAULT_STREAM_OPS_THRESHOLD = 262_144

_SPILL_DIR: Optional[Path] = None
_SPILL_FILES: Dict[str, Path] = {}


def stream_ops_threshold() -> int:
    return int(
        os.environ.get(
            "REPRO_STREAM_OPS_THRESHOLD", str(DEFAULT_STREAM_OPS_THRESHOLD)
        )
    )


def trace_cache_stats() -> Dict[str, int]:
    """Snapshot of this process's :data:`TRACE_STATS` counters."""
    return dict(TRACE_STATS)


def _trace_key(job: SimulationJob, cfg: SystemConfig) -> Tuple:
    """Everything that determines a job's trace set.

    The resolved :class:`WorkloadDef` itself is part of the key:
    re-registering a name with different parameters (``replace=True``)
    or re-recording a trace file (its digest is a def param) can never
    serve stale traces — mirroring the result cache, which fingerprints
    the resolved def for the same reason.
    """
    defn = get_workload_def(job.workload)
    return (
        defn,
        cfg.scale_down,
        job.run_cfg.num_warps,
        job.run_cfg.accesses_per_warp,
        cfg.gpu.line_bytes,
        cfg.hetero.page_bytes,
        job.run_cfg.seed,
    )


def traces_for(job: SimulationJob, cfg: SystemConfig) -> List[WarpTrace]:
    """Materialize (memoized) the warp traces a job simulates over.

    Resolution goes through the workload registry, so every family —
    Table II, the parametric families, composed scenarios and
    ``trace:<path>`` replays — shares this one path and its memo.
    """
    key = _trace_key(job, cfg)
    if key not in _TRACE_MEMO:
        while len(_TRACE_MEMO) >= _TRACE_MEMO_MAX:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
        defn = key[0]
        TRACE_STATS["memo_builds"] += 1
        _TRACE_MEMO[key] = build_traces(
            defn,
            defn.spec.scaled_footprint(cfg.scale_down),
            num_warps=job.run_cfg.num_warps,
            accesses_per_warp=job.run_cfg.accesses_per_warp,
            line_bytes=cfg.gpu.line_bytes,
            page_bytes=cfg.hetero.page_bytes,
            seed=job.run_cfg.seed,
        )
    else:
        TRACE_STATS["memo_hits"] += 1
    return _TRACE_MEMO[key]


def _spill_path_for(key: Tuple, defn) -> Path:
    """Stable per-process spill path for one resolved trace-set key."""
    global _SPILL_DIR
    payload = json.dumps(
        [defn.fingerprint_payload(), list(key[1:])],
        sort_keys=True, separators=(",", ":"),
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]
    if _SPILL_DIR is None:
        _SPILL_DIR = Path(tempfile.mkdtemp(prefix="repro-trace-spill-"))
        atexit.register(shutil.rmtree, _SPILL_DIR, ignore_errors=True)
    return _SPILL_DIR / f"{digest}.jsonl.gz"


def source_for(
    job: SimulationJob, cfg: SystemConfig
) -> Union[List[WarpTrace], TraceSource]:
    """The access streams a job simulates over, sized for the job.

    Three regimes, one per way a trace set can dominate a sweep's
    footprint:

    * ``trace:<path>`` replays always stream straight off the file
      (never materialized — the file already holds the full stream).
    * Generated workloads at or under :func:`stream_ops_threshold`
      total ops use the materialized memo (identical to the classic
      path — small traces are cheaper to keep than to re-derive).
    * Above the threshold, the stream is generated **once per process**
      into a chunked spill file, and this job — and every later job
      with the same resolved (workload, sizing, seed) — replays that
      file with peak memory bounded by O(warps x block).

    All three produce bit-identical :class:`~repro.gpu.gpu.RunResult`
    fingerprints (the streaming parity tests pin this).
    """
    defn = get_workload_def(job.workload)
    if defn.family == "trace":
        TRACE_STATS["replay_streams"] += 1
        return FileTraceSource(dict(defn.params)["path"])
    total_ops = job.run_cfg.num_warps * job.run_cfg.accesses_per_warp
    if total_ops <= stream_ops_threshold():
        return traces_for(job, cfg)
    key = _trace_key(job, cfg)
    cache_key = repr(key)
    path = _SPILL_FILES.get(cache_key)
    if path is None:
        path = _spill_path_for(key, defn)
        source = build_source(
            defn,
            defn.spec.scaled_footprint(cfg.scale_down),
            num_warps=job.run_cfg.num_warps,
            accesses_per_warp=job.run_cfg.accesses_per_warp,
            line_bytes=cfg.gpu.line_bytes,
            page_bytes=cfg.hetero.page_bytes,
            seed=job.run_cfg.seed,
        )
        meta = TraceMeta(
            workload=defn.name,
            platform="(spill)",
            mode="(spill)",
            line_bytes=cfg.gpu.line_bytes,
            num_warps=job.run_cfg.num_warps,
            spec=defn.spec,
        )
        save_stream(path, meta, source)
        _SPILL_FILES[cache_key] = path
        TRACE_STATS["spill_builds"] += 1
    else:
        TRACE_STATS["spill_hits"] += 1
    return FileTraceSource(path)


def execute_job(job: SimulationJob) -> RunResult:
    """Run one simulation from scratch.  Deterministic in ``job``.

    With ``job.run_cfg.validate`` set, the model carries a strict
    :class:`~repro.sim.audit.Auditor`: the result is bit-identical, but
    any violated cross-layer invariant raises
    :class:`~repro.sim.audit.InvariantError` instead of returning.
    """
    cfg = job.resolved_config()
    defn = get_workload_def(job.workload)
    traces = source_for(job, cfg)
    auditor = None
    if job.run_cfg.validate:
        from repro.sim.audit import Auditor

        auditor = Auditor(strict=True)
    return GpuModel(
        PLATFORMS[job.platform], cfg, defn.spec, traces, auditor=auditor
    ).run()


def execute_job_recorded(
    job: SimulationJob,
) -> Tuple[RunResult, List[WarpTrace]]:
    """Run one simulation while recording its executed access streams.

    Returns the normal :class:`RunResult` plus the per-warp traces the
    run actually issued (tenant labels preserved).  Saving those with
    :func:`repro.workloads.trace.save_traces` and replaying them as the
    ``trace:<path>`` workload under the same configuration reproduces
    the result fingerprint bit-identically.
    """
    cfg = job.resolved_config()
    defn = get_workload_def(job.workload)
    traces = traces_for(job, cfg)
    recorder = TraceRecorder(len(traces))
    model = GpuModel(
        PLATFORMS[job.platform], cfg, defn.spec, traces, recorder=recorder
    )
    result = model.run()
    recorded = recorder.to_traces(tenants=[t.tenant for t in traces])
    return result, recorded


class SerialExecutor:
    """Evaluate jobs one after the other in the calling process."""

    def run_jobs(
        self, jobs: Sequence[SimulationJob], fn=execute_job, on_result=None
    ) -> List:
        """``fn(job)`` per job, in job order; duplicates evaluated once.

        ``fn`` defaults to :func:`execute_job`; the audit sweep passes
        :func:`repro.harness.audit.execute_job_audited` to reuse this
        layer for outcome objects other than :class:`RunResult`.

        ``on_result(job, result)``, when given, fires once per *unique*
        job as its result lands — the service worker uses it to persist
        each result and refresh its lease heartbeat mid-shard, so a
        killed worker loses at most one job of progress.  An exception
        raised by the callback aborts the remaining jobs.
        """
        memo: Dict[SimulationJob, object] = {}
        out = []
        for job in jobs:
            if job not in memo:
                memo[job] = fn(job)
                if on_result is not None:
                    on_result(job, memo[job])
            out.append(memo[job])
        return out


class ParallelExecutor:
    """Evaluate jobs concurrently across worker processes.

    Results are identical to :class:`SerialExecutor` — each job is an
    independent simulation — but a matrix finishes in roughly
    ``len(jobs) / max_workers`` of the serial time.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError("need at least one worker")
        self.max_workers = max_workers

    def run_jobs(
        self, jobs: Sequence[SimulationJob], fn=execute_job, on_result=None
    ) -> List:
        """``fn(job)`` per job, in job order; duplicates evaluated once.

        ``fn`` must be a picklable top-level callable (it crosses the
        process boundary); results must be picklable too.

        ``on_result(job, result)`` fires in the *calling* process as
        each unique job's result arrives (completion order, not job
        order).  A callback exception stops consuming results; jobs
        already in flight run to completion but their results are
        discarded.
        """
        unique = list(dict.fromkeys(jobs))
        if len(unique) <= 1 or self.max_workers == 1:
            return SerialExecutor().run_jobs(jobs, fn, on_result)
        with futures.ProcessPoolExecutor(
            max_workers=min(self.max_workers, len(unique))
        ) as pool:
            if on_result is None:
                results = dict(zip(unique, pool.map(fn, unique)))
            else:
                futs = {pool.submit(fn, job): job for job in unique}
                results = {}
                for fut in futures.as_completed(futs):
                    job = futs[fut]
                    results[job] = fut.result()
                    on_result(job, results[job])
        return [results[job] for job in jobs]


def make_executor(jobs: int = 1):
    """``jobs`` worker processes; 1 means in-process serial execution."""
    return SerialExecutor() if jobs <= 1 else ParallelExecutor(jobs)
