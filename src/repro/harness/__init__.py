"""Experiment harness: runs platform x workload x mode matrices and
regenerates every table and figure of the paper's evaluation."""

from repro.harness.runner import RunConfig, Runner
from repro.harness.report import format_table

__all__ = ["Runner", "RunConfig", "format_table"]
