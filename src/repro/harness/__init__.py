"""Experiment harness: a three-layer service (executors -> persistent
cache -> declarative registry) that runs platform x workload x mode
matrices and regenerates every table and figure of the paper's
evaluation.  See DESIGN.md."""

from repro.harness.cache import ResultCache, job_fingerprint
from repro.harness.executor import (
    ParallelExecutor,
    RunConfig,
    SerialExecutor,
    SimulationJob,
    execute_job,
    make_executor,
)
from repro.harness.registry import (
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
    run_spec,
)
from repro.harness.report import emit_csv, emit_json, format_table
from repro.harness.runner import Runner

__all__ = [
    "Runner",
    "RunConfig",
    "SimulationJob",
    "SerialExecutor",
    "ParallelExecutor",
    "execute_job",
    "make_executor",
    "ResultCache",
    "job_fingerprint",
    "ExperimentSpec",
    "ExperimentResult",
    "run_experiment",
    "run_spec",
    "format_table",
    "emit_json",
    "emit_csv",
]
