"""Experiment harness: a five-layer service (executors -> persistent
cache -> declarative registry -> sharded batch scheduler -> simulation
service daemon) that runs platform x workload x mode matrices,
regenerates every table and figure of the paper's evaluation, survives
being killed mid-batch, and serves live job traffic over a socket with
leased multi-process workers.  See DESIGN.md."""

from repro.harness.batch import (
    BatchError,
    BatchRun,
    BatchStatus,
    batch_id,
    plan_shards,
)
from repro.harness.cache import ResultCache, job_fingerprint
from repro.harness.executor import (
    ParallelExecutor,
    RunConfig,
    SerialExecutor,
    SimulationJob,
    execute_job,
    make_executor,
)
from repro.harness.registry import (
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
    run_spec,
)
from repro.harness.report import emit_csv, emit_json, format_table
from repro.harness.runner import Runner
from repro.harness.service import (
    LeaseLost,
    LeaseManager,
    ReproService,
    ServiceClient,
    ServiceError,
    WorkerStats,
    run_worker,
    serve,
    service_status,
)
from repro.harness.store import ResultStore, StoreEntry

__all__ = [
    "Runner",
    "BatchRun",
    "BatchError",
    "BatchStatus",
    "batch_id",
    "plan_shards",
    "ResultStore",
    "StoreEntry",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "LeaseManager",
    "LeaseLost",
    "WorkerStats",
    "run_worker",
    "serve",
    "service_status",
    "RunConfig",
    "SimulationJob",
    "SerialExecutor",
    "ParallelExecutor",
    "execute_job",
    "make_executor",
    "ResultCache",
    "job_fingerprint",
    "ExperimentSpec",
    "ExperimentResult",
    "run_experiment",
    "run_spec",
    "format_table",
    "emit_json",
    "emit_csv",
]
