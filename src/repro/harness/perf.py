"""Performance benchmarks for the simulation core itself.

Where the figure benchmarks measure the *modelled* system, this module
measures the *simulator*: how many engine events per second the core
loop sustains on calibrated, figure-sized jobs.  ``repro perf`` (and the
``benchmarks/perf`` pytest suite) runs these cases and writes the
results — alongside the recorded pre-optimization baseline — to
``BENCH_perf.json``, so every future PR is held to a measured standard.

Methodology: traces are generated (and memoized) and the model is
constructed before the clock starts, so a measurement covers the event
loop only; each case reports the best of ``repeats`` runs (events/sec
is noise-sensitive and the best run is the closest estimate of the
machine's capability).
Events/sec is deterministic work over wall time — the event *count* for
a case never varies, only the clock.
"""

from __future__ import annotations

import json
import platform as _platform
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import MemoryMode
from repro.core.platforms import PLATFORMS
from repro.gpu.gpu import GpuModel
from repro.harness.executor import RunConfig, SimulationJob, traces_for
from repro.workloads.registry import get_workload

#: Figure-sized jobs (the shape the experiment matrix runs at) plus
#: quick smoke variants for CI.  "headline" is the acceptance case.
_FULL_SIZING = RunConfig(num_warps=192, accesses_per_warp=96)
_SMOKE_SIZING = RunConfig(num_warps=48, accesses_per_warp=32)


@dataclass(frozen=True)
class PerfCase:
    """One calibrated workload for the simulator-speed benchmark."""

    name: str
    platform: str
    workload: str
    mode: MemoryMode
    run_cfg: RunConfig


PERF_CASES: tuple[PerfCase, ...] = (
    PerfCase("headline", "Ohm-BW", "pagerank", MemoryMode.PLANAR, _FULL_SIZING),
    PerfCase("two_level", "Ohm-base", "backp", MemoryMode.TWO_LEVEL, _FULL_SIZING),
    PerfCase("origin", "Origin", "bfsdata", MemoryMode.PLANAR, _FULL_SIZING),
    # Workload-subsystem-v2 families: a reuse-heavy dense kernel and a
    # composed multi-tenant mix (tenant attribution on the result path).
    PerfCase("gemm", "Ohm-BW", "gemm_reuse", MemoryMode.PLANAR, _FULL_SIZING),
    PerfCase("mix", "Ohm-base", "mix_gemm_chase", MemoryMode.PLANAR, _FULL_SIZING),
)

SMOKE_CASES: tuple[PerfCase, ...] = (
    PerfCase("headline_smoke", "Ohm-BW", "pagerank", MemoryMode.PLANAR, _SMOKE_SIZING),
    PerfCase("two_level_smoke", "Ohm-base", "backp", MemoryMode.TWO_LEVEL, _SMOKE_SIZING),
    PerfCase("origin_smoke", "Origin", "bfsdata", MemoryMode.PLANAR, _SMOKE_SIZING),
    PerfCase("gemm_smoke", "Ohm-BW", "gemm_reuse", MemoryMode.PLANAR, _SMOKE_SIZING),
    PerfCase("mix_smoke", "Ohm-base", "mix_gemm_chase", MemoryMode.PLANAR, _SMOKE_SIZING),
)

#: Events/sec of the event loop *before* the PR-2 hot-path overhaul
#: (pre-bound stat handles, lean run loop, compiled warp traces),
#: captured on the reference dev container with the same best-of-N
#: methodology.  Speedups reported by ``repro perf`` are relative to
#: these; on different hardware the ratio is still meaningful because
#: both sides scale with single-core speed.
BASELINE_EVENTS_PER_SEC: Dict[str, float] = {
    "headline": 81_668.9,
    "two_level": 49_484.9,
    "origin": 95_456.4,
    "headline_smoke": 83_132.4,
    "two_level_smoke": 47_798.5,
    "origin_smoke": 102_973.5,
}


@dataclass(frozen=True)
class PerfMeasurement:
    """Best-of-N timing of one case on this machine.

    ``peak_rss_bytes`` is the process's high-water resident set after
    the case ran (monotone across cases — it can only report the max so
    far) and ``trace_peak_bytes`` is the tracemalloc allocation peak of
    regenerating the case's trace set through the *streaming* pipeline
    (memo-bypassing, so it tracks what the pipeline actually costs, not
    what the memo already holds).  Both are ``None`` on platforms or
    call sites that don't measure memory — history records and the
    compare gate just skip such cases.
    """

    case: str
    platform: str
    workload: str
    mode: str
    events: int
    instructions: int
    wall_s: float
    events_per_sec: float
    repeats: int
    peak_rss_bytes: Optional[int] = None
    trace_peak_bytes: Optional[int] = None

    @property
    def baseline_events_per_sec(self) -> Optional[float]:
        return BASELINE_EVENTS_PER_SEC.get(self.case)

    @property
    def speedup_vs_baseline(self) -> Optional[float]:
        base = self.baseline_events_per_sec
        return self.events_per_sec / base if base else None

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "platform": self.platform,
            "workload": self.workload,
            "mode": self.mode,
            "events": self.events,
            "instructions": self.instructions,
            "wall_s": self.wall_s,
            "events_per_sec": self.events_per_sec,
            "repeats": self.repeats,
            "peak_rss_bytes": self.peak_rss_bytes,
            "trace_peak_bytes": self.trace_peak_bytes,
            "baseline_events_per_sec": self.baseline_events_per_sec,
            "speedup_vs_baseline": self.speedup_vs_baseline,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PerfMeasurement":
        """Inverse of :meth:`to_dict` (derived fields are recomputed)."""
        return cls(
            case=data["case"],
            platform=data["platform"],
            workload=data["workload"],
            mode=data["mode"],
            events=data["events"],
            instructions=data["instructions"],
            wall_s=data["wall_s"],
            events_per_sec=data["events_per_sec"],
            repeats=data["repeats"],
            peak_rss_bytes=data.get("peak_rss_bytes"),
            trace_peak_bytes=data.get("trace_peak_bytes"),
        )


def peak_rss_bytes() -> Optional[int]:
    """The process's lifetime peak resident set, in bytes.

    ``ru_maxrss`` is kilobytes on Linux; platforms without the
    ``resource`` module (Windows) report ``None``.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _trace_peak_bytes(case: PerfCase, cfg) -> Optional[int]:
    """Allocation peak of streaming the case's trace set, per tracemalloc.

    Builds a fresh streamed source and consumes it block by block
    without materializing — the number the constant-memory pipeline is
    accountable for.  Tracemalloc slows allocation, so this runs
    outside every timed region.
    """
    import tracemalloc

    from repro.workloads.registry import build_source, get_workload_def

    defn = get_workload_def(case.workload)
    if defn.family == "trace":
        return None  # replay streams a file; nothing is generated
    if tracemalloc.is_tracing():  # don't fight an outer profiler
        return None
    tracemalloc.start()
    try:
        source = build_source(
            defn,
            defn.spec.scaled_footprint(cfg.scale_down),
            num_warps=case.run_cfg.num_warps,
            accesses_per_warp=case.run_cfg.accesses_per_warp,
            line_bytes=cfg.gpu.line_bytes,
            page_bytes=cfg.hetero.page_bytes,
            seed=case.run_cfg.seed,
        )
        for stream in source.streams():
            while stream.next_block() is not None:
                pass
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def measure_case(case: PerfCase, repeats: int = 3) -> PerfMeasurement:
    """Time one case; returns the best (fastest) of ``repeats`` runs."""
    if repeats < 1:
        raise ValueError("need at least one repeat")
    job = SimulationJob(case.platform, case.workload, case.mode, case.run_cfg)
    cfg = job.resolved_config()
    spec = get_workload(case.workload)
    traces = traces_for(job, cfg)  # generated outside the timed region
    platform = PLATFORMS[case.platform]
    best_dt = None
    events = instructions = 0
    for _ in range(repeats):
        model = GpuModel(platform, cfg, spec, traces)
        t0 = time.perf_counter()
        result = model.run()
        dt = time.perf_counter() - t0
        events = model.engine.events_processed
        instructions = result.instructions
        if best_dt is None or dt < best_dt:
            best_dt = dt
    return PerfMeasurement(
        case=case.name,
        platform=case.platform,
        workload=case.workload,
        mode=case.mode.value,
        events=events,
        instructions=instructions,
        wall_s=best_dt,
        events_per_sec=events / best_dt if best_dt else 0.0,
        repeats=repeats,
        peak_rss_bytes=peak_rss_bytes(),
        trace_peak_bytes=_trace_peak_bytes(case, cfg),
    )


def _case_digest(case: PerfCase) -> str:
    """Digest of everything that defines a case's measured workload.

    Journal records carry this so a resumed suite can never serve a
    stale number for a case whose *definition* changed under the same
    name.  It is exactly the result cache's ``job_fingerprint`` of the
    job the case times — covering platform, the fully resolved workload
    def, mode, sizing, *and* the resolved ``SystemConfig``, so retuning
    a family's parameters or a Table I default invalidates journaled
    numbers just like it invalidates cached results.
    """
    from repro.harness.cache import job_fingerprint

    return job_fingerprint(
        SimulationJob(case.platform, case.workload, case.mode, case.run_cfg)
    )


def run_suite(
    cases: Sequence[PerfCase] = PERF_CASES,
    repeats: int = 3,
    journal: Optional[str] = None,
) -> List[PerfMeasurement]:
    """Measure every case, optionally journaling each as it completes.

    With ``journal`` set (a JSONL path, same append-only format as the
    batch scheduler's shard journal), every finished case is recorded
    immediately; a re-invocation with the same journal skips cases that
    were already measured *with the same repeat count and the same case
    definition* (see :func:`_case_digest`) and re-measures only the
    rest — an interrupted perf suite resumes instead of restarting.
    Timing methodology is unchanged: a resumed case's number is the one
    measured when it originally ran.
    """
    if journal is None:
        return [measure_case(case, repeats) for case in cases]
    from repro.harness.batch import append_jsonl, read_jsonl

    done: Dict[str, PerfMeasurement] = {}
    digests: Dict[str, str] = {}
    for rec in read_jsonl(journal):
        try:
            m = PerfMeasurement.from_dict(rec["measurement"])
            digest = rec["case_digest"]
        except (KeyError, TypeError):
            continue
        if m.repeats == repeats:
            # Last record wins: a case re-measured after its definition
            # changed must shadow the stale earlier record.
            done[m.case] = m
            digests[m.case] = digest
    out: List[PerfMeasurement] = []
    for case in cases:
        digest = _case_digest(case)
        if case.name in done and digests.get(case.name) == digest:
            out.append(done[case.name])
            continue
        m = measure_case(case, repeats)
        append_jsonl(
            journal, {"case_digest": digest, "measurement": m.to_dict()}
        )
        out.append(m)
    return out


def git_revision(root: Optional[str] = None) -> Optional[str]:
    """Short git revision of ``root`` (cwd by default), or ``None``.

    Best-effort: a missing git binary, a non-repo directory or any git
    failure degrades to ``None`` rather than failing a benchmark write.
    """
    import subprocess

    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=root,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def load_bench(path: str) -> Optional[dict]:
    """Parse a ``BENCH_perf.json`` document; ``None`` if absent/corrupt."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def history_entry(
    measurements: Sequence[PerfMeasurement],
    timestamp: Optional[str] = None,
    git_rev: Optional[str] = None,
) -> dict:
    """One append-only trajectory record: when, which code, how fast.

    The timestamp is passed in by the caller (the CLI stamps wall-clock
    time; tests pass fixed strings so records stay deterministic).
    """
    entry = {
        "timestamp": timestamp,
        "git_rev": git_rev,
        "events_per_sec": {m.case: m.events_per_sec for m in measurements},
    }
    rss = {
        m.case: m.peak_rss_bytes
        for m in measurements
        if m.peak_rss_bytes is not None
    }
    trace_peak = {
        m.case: m.trace_peak_bytes
        for m in measurements
        if m.trace_peak_bytes is not None
    }
    # Memory maps ride along only when measured, so records written by
    # older versions (or memory-less stubs) stay shaped as before.
    if rss:
        entry["peak_rss_bytes"] = rss
    if trace_peak:
        entry["trace_peak_bytes"] = trace_peak
    return entry


def bench_payload(
    measurements: Sequence[PerfMeasurement],
    history: Optional[Sequence[dict]] = None,
) -> dict:
    """The ``BENCH_perf.json`` document: before/after events per second.

    ``history`` carries the per-PR trajectory (see :func:`write_bench`);
    ``current`` is still the latest full measurement set, so existing
    readers keep working.
    """
    return {
        "benchmark": "simulation-core events/sec",
        "unit": "events_per_sec",
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "baseline": {
            "label": "pre-optimization (PR 1 simulation core)",
            "events_per_sec": dict(BASELINE_EVENTS_PER_SEC),
        },
        "current": [m.to_dict() for m in measurements],
        "history": list(history) if history else [],
    }


def write_bench(
    path: str,
    measurements: Sequence[PerfMeasurement],
    timestamp: Optional[str] = None,
    git_rev: Optional[str] = None,
) -> dict:
    """Write ``BENCH_perf.json``, appending to its ``history`` list.

    An existing document at ``path`` contributes its history (so the
    perf trajectory accumulates across PRs instead of being overwritten
    with each ``current``); the new measurements are appended as one
    :func:`history_entry` and also become the new ``current``.
    """
    prior = load_bench(path)
    history: List[dict] = []
    if prior is not None:
        prior_history = prior.get("history")
        if isinstance(prior_history, list):
            history.extend(prior_history)
    history.append(history_entry(measurements, timestamp, git_rev))
    payload = bench_payload(measurements, history)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return payload


def current_events_per_sec(payload: dict) -> Dict[str, float]:
    """``case -> events_per_sec`` from a bench document's ``current``."""
    out: Dict[str, float] = {}
    for rec in payload.get("current", []):
        try:
            out[rec["case"]] = float(rec["events_per_sec"])
        except (KeyError, TypeError, ValueError):
            continue
    return out


@dataclass(frozen=True)
class PerfComparison:
    """One case present in both sides of a bench diff."""

    case: str
    old_events_per_sec: float
    new_events_per_sec: float

    @property
    def ratio(self) -> float:
        if self.old_events_per_sec <= 0:
            return float("inf")
        return self.new_events_per_sec / self.old_events_per_sec

    def is_regression(self, threshold: float) -> bool:
        """True if the new number lost more than ``threshold`` fraction."""
        return (
            self.old_events_per_sec > 0
            and self.new_events_per_sec
            < self.old_events_per_sec * (1.0 - threshold)
        )


def compare_bench(
    old_payload: dict,
    new_payload: dict,
    threshold: float = 0.10,
) -> tuple[List[PerfComparison], List[PerfComparison]]:
    """Diff two bench documents case-by-case.

    Returns ``(comparisons, regressions)``: every case present in both
    ``current`` sections, and the subset whose events/sec dropped by
    more than ``threshold`` (default 10%).  Cases present on only one
    side are ignored — a renamed or added case is not a regression.
    """
    old_eps = current_events_per_sec(old_payload)
    new_eps = current_events_per_sec(new_payload)
    comparisons = [
        PerfComparison(case, old_eps[case], new_eps[case])
        for case in sorted(old_eps)
        if case in new_eps
    ]
    regressions = [c for c in comparisons if c.is_regression(threshold)]
    return comparisons, regressions


def current_memory_bytes(payload: dict, field: str) -> Dict[str, int]:
    """``case -> bytes`` of one memory field from a bench ``current``."""
    out: Dict[str, int] = {}
    for rec in payload.get("current", []):
        value = rec.get(field) if isinstance(rec, dict) else None
        if value is None:
            continue
        try:
            out[rec["case"]] = int(value)
        except (KeyError, TypeError, ValueError):
            continue
    return out


@dataclass(frozen=True)
class MemoryComparison:
    """One case's peak-memory delta between two bench documents."""

    case: str
    field: str
    old_bytes: int
    new_bytes: int

    @property
    def ratio(self) -> float:
        if self.old_bytes <= 0:
            return float("inf")
        return self.new_bytes / self.old_bytes

    def is_regression(self, threshold: float) -> bool:
        """True if peak memory *grew* by more than ``threshold``."""
        return (
            self.old_bytes > 0
            and self.new_bytes > self.old_bytes * (1.0 + threshold)
        )


def compare_bench_memory(
    old_payload: dict,
    new_payload: dict,
    threshold: float = 0.25,
) -> tuple[List[MemoryComparison], List[MemoryComparison]]:
    """Diff peak-memory columns of two bench documents.

    Mirrors :func:`compare_bench` but in the growth direction: a case
    regresses when either its ``trace_peak_bytes`` (the streaming
    pipeline's allocation peak — the sensitive signal) or its
    ``peak_rss_bytes`` grew by more than ``threshold`` (default 25%).
    Cases lacking memory data on either side — older bench files, or
    platforms that can't measure — are skipped, never failed.
    """
    comparisons: List[MemoryComparison] = []
    for field in ("trace_peak_bytes", "peak_rss_bytes"):
        old_mem = current_memory_bytes(old_payload, field)
        new_mem = current_memory_bytes(new_payload, field)
        comparisons.extend(
            MemoryComparison(case, field, old_mem[case], new_mem[case])
            for case in sorted(old_mem)
            if case in new_mem
        )
    regressions = [c for c in comparisons if c.is_regression(threshold)]
    return comparisons, regressions
