"""Performance benchmarks for the simulation core itself.

Where the figure benchmarks measure the *modelled* system, this module
measures the *simulator*: how many engine events per second the core
loop sustains on calibrated, figure-sized jobs.  ``repro perf`` (and the
``benchmarks/perf`` pytest suite) runs these cases and writes the
results — alongside the recorded pre-optimization baseline — to
``BENCH_perf.json``, so every future PR is held to a measured standard.

Methodology: traces are generated (and memoized) and the model is
constructed before the clock starts, so a measurement covers the event
loop only; each case reports the best of ``repeats`` runs (events/sec
is noise-sensitive and the best run is the closest estimate of the
machine's capability).
Events/sec is deterministic work over wall time — the event *count* for
a case never varies, only the clock.
"""

from __future__ import annotations

import json
import platform as _platform
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import MemoryMode
from repro.core.platforms import PLATFORMS
from repro.gpu.gpu import GpuModel
from repro.harness.executor import RunConfig, SimulationJob, traces_for
from repro.workloads.registry import get_workload

#: Figure-sized jobs (the shape the experiment matrix runs at) plus
#: quick smoke variants for CI.  "headline" is the acceptance case.
_FULL_SIZING = RunConfig(num_warps=192, accesses_per_warp=96)
_SMOKE_SIZING = RunConfig(num_warps=48, accesses_per_warp=32)


@dataclass(frozen=True)
class PerfCase:
    """One calibrated workload for the simulator-speed benchmark."""

    name: str
    platform: str
    workload: str
    mode: MemoryMode
    run_cfg: RunConfig


PERF_CASES: tuple[PerfCase, ...] = (
    PerfCase("headline", "Ohm-BW", "pagerank", MemoryMode.PLANAR, _FULL_SIZING),
    PerfCase("two_level", "Ohm-base", "backp", MemoryMode.TWO_LEVEL, _FULL_SIZING),
    PerfCase("origin", "Origin", "bfsdata", MemoryMode.PLANAR, _FULL_SIZING),
    # Workload-subsystem-v2 families: a reuse-heavy dense kernel and a
    # composed multi-tenant mix (tenant attribution on the result path).
    PerfCase("gemm", "Ohm-BW", "gemm_reuse", MemoryMode.PLANAR, _FULL_SIZING),
    PerfCase("mix", "Ohm-base", "mix_gemm_chase", MemoryMode.PLANAR, _FULL_SIZING),
)

SMOKE_CASES: tuple[PerfCase, ...] = (
    PerfCase("headline_smoke", "Ohm-BW", "pagerank", MemoryMode.PLANAR, _SMOKE_SIZING),
    PerfCase("two_level_smoke", "Ohm-base", "backp", MemoryMode.TWO_LEVEL, _SMOKE_SIZING),
    PerfCase("origin_smoke", "Origin", "bfsdata", MemoryMode.PLANAR, _SMOKE_SIZING),
    PerfCase("gemm_smoke", "Ohm-BW", "gemm_reuse", MemoryMode.PLANAR, _SMOKE_SIZING),
    PerfCase("mix_smoke", "Ohm-base", "mix_gemm_chase", MemoryMode.PLANAR, _SMOKE_SIZING),
)

#: Events/sec of the event loop *before* the PR-2 hot-path overhaul
#: (pre-bound stat handles, lean run loop, compiled warp traces),
#: captured on the reference dev container with the same best-of-N
#: methodology.  Speedups reported by ``repro perf`` are relative to
#: these; on different hardware the ratio is still meaningful because
#: both sides scale with single-core speed.
BASELINE_EVENTS_PER_SEC: Dict[str, float] = {
    "headline": 81_668.9,
    "two_level": 49_484.9,
    "origin": 95_456.4,
    "headline_smoke": 83_132.4,
    "two_level_smoke": 47_798.5,
    "origin_smoke": 102_973.5,
}


@dataclass(frozen=True)
class PerfMeasurement:
    """Best-of-N timing of one case on this machine."""

    case: str
    platform: str
    workload: str
    mode: str
    events: int
    instructions: int
    wall_s: float
    events_per_sec: float
    repeats: int

    @property
    def baseline_events_per_sec(self) -> Optional[float]:
        return BASELINE_EVENTS_PER_SEC.get(self.case)

    @property
    def speedup_vs_baseline(self) -> Optional[float]:
        base = self.baseline_events_per_sec
        return self.events_per_sec / base if base else None

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "platform": self.platform,
            "workload": self.workload,
            "mode": self.mode,
            "events": self.events,
            "instructions": self.instructions,
            "wall_s": self.wall_s,
            "events_per_sec": self.events_per_sec,
            "repeats": self.repeats,
            "baseline_events_per_sec": self.baseline_events_per_sec,
            "speedup_vs_baseline": self.speedup_vs_baseline,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PerfMeasurement":
        """Inverse of :meth:`to_dict` (derived fields are recomputed)."""
        return cls(
            case=data["case"],
            platform=data["platform"],
            workload=data["workload"],
            mode=data["mode"],
            events=data["events"],
            instructions=data["instructions"],
            wall_s=data["wall_s"],
            events_per_sec=data["events_per_sec"],
            repeats=data["repeats"],
        )


def measure_case(case: PerfCase, repeats: int = 3) -> PerfMeasurement:
    """Time one case; returns the best (fastest) of ``repeats`` runs."""
    if repeats < 1:
        raise ValueError("need at least one repeat")
    job = SimulationJob(case.platform, case.workload, case.mode, case.run_cfg)
    cfg = job.resolved_config()
    spec = get_workload(case.workload)
    traces = traces_for(job, cfg)  # generated outside the timed region
    platform = PLATFORMS[case.platform]
    best_dt = None
    events = instructions = 0
    for _ in range(repeats):
        model = GpuModel(platform, cfg, spec, traces)
        t0 = time.perf_counter()
        result = model.run()
        dt = time.perf_counter() - t0
        events = model.engine.events_processed
        instructions = result.instructions
        if best_dt is None or dt < best_dt:
            best_dt = dt
    return PerfMeasurement(
        case=case.name,
        platform=case.platform,
        workload=case.workload,
        mode=case.mode.value,
        events=events,
        instructions=instructions,
        wall_s=best_dt,
        events_per_sec=events / best_dt if best_dt else 0.0,
        repeats=repeats,
    )


def _case_digest(case: PerfCase) -> str:
    """Digest of everything that defines a case's measured workload.

    Journal records carry this so a resumed suite can never serve a
    stale number for a case whose *definition* changed under the same
    name.  It is exactly the result cache's ``job_fingerprint`` of the
    job the case times — covering platform, the fully resolved workload
    def, mode, sizing, *and* the resolved ``SystemConfig``, so retuning
    a family's parameters or a Table I default invalidates journaled
    numbers just like it invalidates cached results.
    """
    from repro.harness.cache import job_fingerprint

    return job_fingerprint(
        SimulationJob(case.platform, case.workload, case.mode, case.run_cfg)
    )


def run_suite(
    cases: Sequence[PerfCase] = PERF_CASES,
    repeats: int = 3,
    journal: Optional[str] = None,
) -> List[PerfMeasurement]:
    """Measure every case, optionally journaling each as it completes.

    With ``journal`` set (a JSONL path, same append-only format as the
    batch scheduler's shard journal), every finished case is recorded
    immediately; a re-invocation with the same journal skips cases that
    were already measured *with the same repeat count and the same case
    definition* (see :func:`_case_digest`) and re-measures only the
    rest — an interrupted perf suite resumes instead of restarting.
    Timing methodology is unchanged: a resumed case's number is the one
    measured when it originally ran.
    """
    if journal is None:
        return [measure_case(case, repeats) for case in cases]
    from repro.harness.batch import append_jsonl, read_jsonl

    done: Dict[str, PerfMeasurement] = {}
    digests: Dict[str, str] = {}
    for rec in read_jsonl(journal):
        try:
            m = PerfMeasurement.from_dict(rec["measurement"])
            digest = rec["case_digest"]
        except (KeyError, TypeError):
            continue
        if m.repeats == repeats:
            # Last record wins: a case re-measured after its definition
            # changed must shadow the stale earlier record.
            done[m.case] = m
            digests[m.case] = digest
    out: List[PerfMeasurement] = []
    for case in cases:
        digest = _case_digest(case)
        if case.name in done and digests.get(case.name) == digest:
            out.append(done[case.name])
            continue
        m = measure_case(case, repeats)
        append_jsonl(
            journal, {"case_digest": digest, "measurement": m.to_dict()}
        )
        out.append(m)
    return out


def bench_payload(measurements: Sequence[PerfMeasurement]) -> dict:
    """The ``BENCH_perf.json`` document: before/after events per second."""
    return {
        "benchmark": "simulation-core events/sec",
        "unit": "events_per_sec",
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "baseline": {
            "label": "pre-optimization (PR 1 simulation core)",
            "events_per_sec": dict(BASELINE_EVENTS_PER_SEC),
        },
        "current": [m.to_dict() for m in measurements],
    }


def write_bench(path: str, measurements: Sequence[PerfMeasurement]) -> dict:
    payload = bench_payload(measurements)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return payload
