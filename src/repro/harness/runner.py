"""Run matrices of (platform, workload, mode) simulations with caching.

One :class:`Runner` owns a :class:`RunConfig` (how big each simulation
is) and memoizes results, so the per-figure experiment functions can
share runs — Figs. 16, 17, 18 and 19 all read the same matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import MemoryMode, SystemConfig, default_config
from repro.core.platforms import PLATFORMS, Platform
from repro.gpu.gpu import GpuModel, RunResult
from repro.workloads.registry import WORKLOADS, generate_traces, get_workload
from repro.workloads.synthetic import WarpTrace

ALL_PLATFORMS = tuple(PLATFORMS)
HETERO_PLATFORMS = ("Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW", "Oracle")
ALL_WORKLOADS = tuple(WORKLOADS)


@dataclass(frozen=True)
class RunConfig:
    """Simulation sizing: trade fidelity for wall-clock time."""

    num_warps: int = 192
    accesses_per_warp: int = 80
    seed: int = 7
    waveguides: int = 1

    def scaled(self, factor: float) -> "RunConfig":
        return replace(
            self, accesses_per_warp=max(8, int(self.accesses_per_warp * factor))
        )


class Runner:
    """Memoizing simulation runner for the benchmark harness."""

    def __init__(self, run_cfg: Optional[RunConfig] = None) -> None:
        self.run_cfg = run_cfg or RunConfig()
        self._results: Dict[Tuple[str, str, str, int], RunResult] = {}
        self._traces: Dict[Tuple[str, str], List[WarpTrace]] = {}

    def _system_config(self, mode: MemoryMode) -> SystemConfig:
        cfg = default_config(mode)
        if self.run_cfg.waveguides != 1:
            cfg = cfg.with_waveguides(self.run_cfg.waveguides)
        return cfg

    def _traces_for(self, workload: str, cfg: SystemConfig) -> List[WarpTrace]:
        key = (workload, f"{cfg.scale_down}")
        if key not in self._traces:
            spec = get_workload(workload)
            self._traces[key] = generate_traces(
                spec,
                spec.scaled_footprint(cfg.scale_down),
                num_warps=self.run_cfg.num_warps,
                accesses_per_warp=self.run_cfg.accesses_per_warp,
                line_bytes=cfg.gpu.line_bytes,
                page_bytes=cfg.hetero.page_bytes,
                seed=self.run_cfg.seed,
            )
        return self._traces[key]

    def run(self, platform: str, workload: str, mode: MemoryMode) -> RunResult:
        """One simulation (cached)."""
        key = (platform, workload, mode.value, self.run_cfg.waveguides)
        if key not in self._results:
            cfg = self._system_config(mode)
            spec = get_workload(workload)
            traces = self._traces_for(workload, cfg)
            model = GpuModel(PLATFORMS[platform], cfg, spec, traces)
            self._results[key] = model.run()
        return self._results[key]

    def matrix(
        self,
        platforms: Iterable[str],
        workloads: Iterable[str],
        mode: MemoryMode,
    ) -> Dict[Tuple[str, str], RunResult]:
        return {
            (p, w): self.run(p, w, mode)
            for p in platforms
            for w in workloads
        }

    def platform(self, name: str) -> Platform:
        return PLATFORMS[name]
