"""The experiment service: memoizing front-end over executors + cache.

One :class:`Runner` owns a default :class:`RunConfig` (how big each
simulation is), an executor (how jobs are evaluated — serially or
across worker processes) and an optional persistent
:class:`~repro.harness.cache.ResultCache`.  Per-figure experiment specs
submit whole job batches through :meth:`Runner.run_jobs`, so Figs. 16,
17, 18 and 19 all read the same warm matrix, and a parallel executor
evaluates the distinct jobs concurrently.

The lookup order per job is: in-memory memo -> persistent cache ->
executor, with every executed result stored back to both.

When constructed with a ``batch_dir``, the runner routes every batch of
never-seen jobs through a journaled
:class:`~repro.harness.batch.BatchRun` instead of calling the executor
directly, so any entry point — a figure experiment, a sweep, the CLI —
becomes checkpointed and resumable without knowing about batches.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.config import MemoryMode
from repro.core.platforms import PLATFORMS, Platform
from repro.gpu.gpu import RunResult
from repro.harness.batch import DEFAULT_SHARD_SIZE, BatchRun
from repro.harness.cache import ResultCache
from repro.harness.executor import (
    ParallelExecutor,
    RunConfig,
    SerialExecutor,
    SimulationJob,
    execute_job,
    make_executor,
)
from repro.workloads.registry import WORKLOADS

__all__ = [
    "ALL_PLATFORMS",
    "HETERO_PLATFORMS",
    "ALL_WORKLOADS",
    "RunConfig",
    "Runner",
    "SimulationJob",
    "SerialExecutor",
    "ParallelExecutor",
    "execute_job",
    "make_executor",
]

ALL_PLATFORMS = tuple(PLATFORMS)
HETERO_PLATFORMS = ("Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW", "Oracle")
ALL_WORKLOADS = tuple(WORKLOADS)


class Runner:
    """Memoizing simulation service for the benchmark harness."""

    def __init__(
        self,
        run_cfg: Optional[RunConfig] = None,
        executor: Optional[object] = None,
        cache: Optional[ResultCache] = None,
        batch_dir: Optional[Union[str, Path]] = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
    ) -> None:
        self.run_cfg = run_cfg or RunConfig()
        self.executor = executor or SerialExecutor()
        self.batch_dir = Path(batch_dir) if batch_dir is not None else None
        self.shard_size = shard_size
        if cache is None and self.batch_dir is not None:
            # Batched runs must be able to merge journaled shards back,
            # so a persistent cache is not optional — default to the
            # batch root's shared one.
            cache = ResultCache(self.batch_dir / "cache")
        self.cache = cache
        self._results: Dict[SimulationJob, RunResult] = {}

    def job(
        self,
        platform: str,
        workload: str,
        mode: MemoryMode,
        run_cfg: Optional[RunConfig] = None,
    ) -> SimulationJob:
        """Job description under this runner's default sizing."""
        return SimulationJob(platform, workload, mode, run_cfg or self.run_cfg)

    def run_jobs(
        self, jobs: Sequence[SimulationJob]
    ) -> Dict[SimulationJob, RunResult]:
        """Evaluate a batch; only never-seen jobs reach the executor."""
        if self.batch_dir is not None:
            return self._run_jobs_batched(jobs)
        pending: List[SimulationJob] = []
        for job in dict.fromkeys(jobs):
            if job in self._results:
                continue
            if self.cache is not None:
                cached = self.cache.get(job)
                if cached is not None:
                    self._results[job] = cached
                    continue
            pending.append(job)
        if pending:
            for job, result in zip(pending, self.executor.run_jobs(pending)):
                self._results[job] = result
                if self.cache is not None:
                    self.cache.put(job, result)
        return {job: self._results[job] for job in jobs}

    def _run_jobs_batched(
        self, jobs: Sequence[SimulationJob]
    ) -> Dict[SimulationJob, RunResult]:
        """Route never-memoized jobs through a journaled BatchRun.

        The batch identity covers the full not-yet-memoized job set (no
        cache pre-filter), so a re-invocation after a crash opens the
        *same* batch and skips its journaled shards outright — per-job
        cache shielding happens inside the shard loop.
        """
        todo = [j for j in dict.fromkeys(jobs) if j not in self._results]
        if todo:
            batch = BatchRun.open(self.batch_dir, todo, self.shard_size)
            self._results.update(
                batch.run(executor=self.executor, cache=self.cache)
            )
        return {job: self._results[job] for job in jobs}

    def run_job(self, job: SimulationJob) -> RunResult:
        return self.run_jobs([job])[job]

    def run(self, platform: str, workload: str, mode: MemoryMode) -> RunResult:
        """One simulation (memoized, cache-aware)."""
        return self.run_job(self.job(platform, workload, mode))

    def matrix(
        self,
        platforms: Iterable[str],
        workloads: Iterable[str],
        mode: MemoryMode,
    ) -> Dict[Tuple[str, str], RunResult]:
        """A (platform x workload) matrix, evaluated as one batch."""
        cells = [(p, w) for p in platforms for w in workloads]
        results = self.run_jobs([self.job(p, w, mode) for p, w in cells])
        return {
            (p, w): results[self.job(p, w, mode)] for p, w in cells
        }

    def platform(self, name: str) -> Platform:
        return PLATFORMS[name]
