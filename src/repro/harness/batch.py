"""Sharded batch scheduler with write-ahead journaling and resume.

Layer 4 of the experiment service (see DESIGN.md section 9).  A
:class:`BatchRun` takes an arbitrary :class:`SimulationJob` list, shards
it into deterministic chunks, and executes the shards through the
existing executors while journaling every completed shard to an
append-only JSONL manifest.  Because ``execute_job`` is a pure function
of the job and every result lands in the persistent
:class:`~repro.harness.cache.ResultCache`, a killed batch — SIGKILL,
OOM, power loss — resumes exactly where it left off: journaled shards
are skipped without touching the executor, and the merged results are
bit-identical to an uninterrupted run.

Layout of a batch root directory::

    <root>/
      cache/                    shared result cache (all batches)
      b-<id16>/
        manifest.json           immutable: shard plan + job descriptions
        journal.jsonl           append-only: one record per finished shard

The batch id is a digest of the (unordered) job fingerprint set plus the
shard size, so re-submitting the same work attaches to the existing
batch instead of starting over, and submitting different work can never
collide with an unrelated journal.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.gpu.gpu import RunResult
from repro.harness.cache import ResultCache, job_fingerprint, write_json_atomic
from repro.harness.executor import SerialExecutor, SimulationJob

log = logging.getLogger("repro.batch")

#: Bump when the manifest or journal record shape changes; old batches
#: then refuse to resume instead of misinterpreting their journals.
BATCH_SCHEMA = 1

#: Default jobs per shard — small enough that a kill loses little work,
#: large enough that journal appends are not the bottleneck.
DEFAULT_SHARD_SIZE = 16

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"


class BatchError(RuntimeError):
    """A batch directory is inconsistent with the requested operation."""


# --------------------------------------------------------------------
# JSONL journal helpers (shared with harness/perf.py's resume journal)
# --------------------------------------------------------------------

def append_jsonl(path: Union[str, Path], record: dict) -> None:
    """Append one record to a JSONL journal as a single atomic write.

    The record is serialized compactly and written with one
    ``os.write`` to a file opened ``O_APPEND``, so concurrent appenders
    interleave whole lines rather than bytes.  If a previous writer was
    killed mid-line (the file does not end in a newline), a separating
    newline is prepended so the torn fragment corrupts only itself.
    """
    path = Path(path)
    # O_CREAT does not create parent directories; without this, a
    # journal path like results/perf.jsonl would lose the (expensive)
    # work done before the very first append.
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    data = line.encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        size = os.fstat(fd).st_size
        if size > 0:
            with open(path, "rb") as fh:
                fh.seek(size - 1)
                if fh.read(1) != b"\n":
                    data = b"\n" + data
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)


def read_jsonl(path: Union[str, Path]) -> List[dict]:
    """Every parseable record of a JSONL journal, in file order.

    Torn or corrupt lines (a writer killed mid-append) are skipped with
    a warning instead of poisoning the whole journal — the worst case
    is that one shard re-executes, which the result cache absorbs.
    """
    path = Path(path)
    records: List[dict] = []
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return records
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            log.warning("journal %s: skipping corrupt line %d", path, lineno)
            continue
        if isinstance(rec, dict):
            records.append(rec)
        else:
            log.warning("journal %s: skipping non-record line %d", path, lineno)
    return records


# --------------------------------------------------------------------
# Shard planning
# --------------------------------------------------------------------

def plan_shards(
    jobs: Sequence[SimulationJob], shard_size: int = DEFAULT_SHARD_SIZE
) -> Tuple[Tuple[SimulationJob, ...], ...]:
    """Deterministic shard plan: dedup (order-preserving), then chunk.

    Every unique job appears in exactly one shard; every shard except
    possibly the last holds exactly ``shard_size`` jobs.  The plan is a
    pure function of the job sequence, so planner and resumer always
    agree on what shard ``i`` contains.
    """
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    unique = list(dict.fromkeys(jobs))
    return tuple(
        tuple(unique[i : i + shard_size])
        for i in range(0, len(unique), shard_size)
    )


def _shard_digest(shard: Sequence[SimulationJob]) -> str:
    """Integrity digest of one shard's job fingerprints (order matters)."""
    h = hashlib.sha256()
    for job in shard:
        h.update(job_fingerprint(job).encode("ascii"))
    return h.hexdigest()


def batch_id(
    jobs: Sequence[SimulationJob], shard_size: int = DEFAULT_SHARD_SIZE
) -> str:
    """Stable identity of a batch: its unique job *set* plus shard size.

    Order-independent, so submitting the same matrix with jobs listed in
    a different order attaches to the same batch.
    """
    h = hashlib.sha256()
    h.update(f"schema={BATCH_SCHEMA};shard_size={shard_size};".encode("ascii"))
    for fp in sorted({job_fingerprint(j) for j in jobs}):
        h.update(fp.encode("ascii"))
    return h.hexdigest()


# --------------------------------------------------------------------
# Status records
# --------------------------------------------------------------------

@dataclass(frozen=True)
class ShardDone:
    """Progress callback payload: one shard just finished."""

    index: int
    total: int
    jobs: int
    executed: int
    wall_s: float


@dataclass(frozen=True)
class BatchStatus:
    """Point-in-time progress of one batch."""

    batch_id: str
    label: str
    total_shards: int
    completed_shards: int
    total_jobs: int
    completed_jobs: int

    @property
    def done(self) -> bool:
        return self.completed_shards == self.total_shards

    def to_row(self) -> dict:
        return {
            "batch": self.batch_id[:16],
            "label": self.label,
            "shards": f"{self.completed_shards}/{self.total_shards}",
            "jobs": f"{self.completed_jobs}/{self.total_jobs}",
            "state": "done" if self.done else "pending",
        }


# --------------------------------------------------------------------
# BatchRun
# --------------------------------------------------------------------

class BatchRun:
    """One sharded, journaled, resumable job batch on disk."""

    def __init__(
        self,
        batch_dir: Union[str, Path],
        shards: Tuple[Tuple[SimulationJob, ...], ...],
        shard_size: int,
        label: str = "",
    ) -> None:
        self.batch_dir = Path(batch_dir)
        self.shards = shards
        self.shard_size = shard_size
        self.label = label
        self.batch_id = batch_id(self.jobs, shard_size)
        # Fingerprinting resolves workload defs and builds full config
        # dicts — compute each shard's digest once per instance instead
        # of once per journal record per status()/run() call.
        self._shard_digests = tuple(_shard_digest(s) for s in shards)

    # -- construction -------------------------------------------------

    @classmethod
    def open(
        cls,
        root: Union[str, Path],
        jobs: Sequence[SimulationJob],
        shard_size: int = DEFAULT_SHARD_SIZE,
        label: str = "",
    ) -> "BatchRun":
        """Create a batch for ``jobs`` under ``root`` — or attach to it.

        The batch directory is keyed by :func:`batch_id`, so opening the
        same job set twice returns the same on-disk batch (with whatever
        progress its journal already records), which is exactly what
        ``repro batch run`` re-invoked after a crash wants.
        """
        if not jobs:
            raise BatchError("refusing to create an empty batch")
        shards = plan_shards(jobs, shard_size)
        batch = cls(
            Path(root) / f"b-{batch_id(jobs, shard_size)[:16]}",
            shards,
            shard_size,
            label,
        )
        manifest_path = batch.batch_dir / MANIFEST_NAME
        if manifest_path.exists():
            return cls.load(batch.batch_dir)
        batch.batch_dir.mkdir(parents=True, exist_ok=True)
        batch._write_manifest()
        return batch

    @classmethod
    def load(cls, batch_dir: Union[str, Path]) -> "BatchRun":
        """Attach to an existing batch directory (for status/resume)."""
        batch_dir = Path(batch_dir)
        path = batch_dir / MANIFEST_NAME
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise BatchError(f"{batch_dir} has no {MANIFEST_NAME}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise BatchError(f"unreadable manifest {path}: {exc}") from None
        if data.get("batch_schema") != BATCH_SCHEMA:
            raise BatchError(
                f"batch {batch_dir} has schema {data.get('batch_schema')!r}; "
                f"this build speaks schema {BATCH_SCHEMA}"
            )
        try:
            shards = tuple(
                tuple(SimulationJob.from_dict(j) for j in shard)
                for shard in data["shards"]
            )
            shard_size = int(data["shard_size"])
            label = data.get("label", "")
        except (KeyError, TypeError, ValueError) as exc:
            raise BatchError(f"malformed manifest {path}: {exc}") from None
        try:
            batch = cls(batch_dir, shards, shard_size, label)
        except (KeyError, OSError, ValueError) as exc:
            # batch_id fingerprints every job, which resolves its
            # workload — a deleted trace file or an unregistered name
            # must degrade to "this batch can't load", not crash
            # status/resume for the whole root.
            raise BatchError(
                f"batch {batch_dir}: cannot resolve its workloads ({exc})"
            ) from None
        if data.get("batch_id") != batch.batch_id:
            raise BatchError(
                f"batch {batch_dir}: manifest id {data.get('batch_id')!r} "
                "does not match its job set — manifest was edited or the "
                "fingerprint schema changed; delete the directory to restart"
            )
        return batch

    @classmethod
    def discover(cls, root: Union[str, Path]) -> List["BatchRun"]:
        """Every loadable batch under a root directory (sorted by id)."""
        root = Path(root)
        found = []
        if not root.is_dir():
            return found
        for sub in sorted(root.iterdir()):
            if (sub / MANIFEST_NAME).is_file():
                try:
                    found.append(cls.load(sub))
                except BatchError as exc:
                    log.warning("skipping %s: %s", sub, exc)
        return found

    def _write_manifest(self) -> None:
        payload = {
            "batch_schema": BATCH_SCHEMA,
            "batch_id": self.batch_id,
            "label": self.label,
            "shard_size": self.shard_size,
            "num_jobs": len(self.jobs),
            "shards": [[j.to_dict() for j in shard] for shard in self.shards],
        }
        write_json_atomic(
            self.batch_dir / MANIFEST_NAME, payload, indent=1, sort_keys=True
        )

    # -- introspection ------------------------------------------------

    @property
    def jobs(self) -> List[SimulationJob]:
        """Every unique job, in shard order."""
        return [job for shard in self.shards for job in shard]

    @property
    def journal_path(self) -> Path:
        return self.batch_dir / JOURNAL_NAME

    def default_cache(self) -> ResultCache:
        """The batch root's shared result cache (``<root>/cache``)."""
        return ResultCache(self.batch_dir.parent / "cache")

    def completed_shards(self) -> Dict[int, dict]:
        """Journaled shard index -> its completion record.

        A record only counts if its shard index is in range and its
        integrity digest matches the manifest's shard — a journal from
        a different plan (or a tampered one) can never mark work done
        that was not actually done for *this* batch.
        """
        done: Dict[int, dict] = {}
        for rec in read_jsonl(self.journal_path):
            idx = rec.get("shard")
            if not isinstance(idx, int) or not 0 <= idx < len(self.shards):
                log.warning("journal %s: ignoring out-of-range shard %r",
                            self.journal_path, idx)
                continue
            if rec.get("digest") != self._shard_digests[idx]:
                log.warning("journal %s: shard %d digest mismatch; will re-run",
                            self.journal_path, idx)
                continue
            done.setdefault(idx, rec)
        return done

    def status(self) -> BatchStatus:
        done = self.completed_shards()
        return BatchStatus(
            batch_id=self.batch_id,
            label=self.label,
            total_shards=len(self.shards),
            completed_shards=len(done),
            total_jobs=len(self.jobs),
            completed_jobs=sum(len(self.shards[i]) for i in done),
        )

    def pending_shards(self) -> List[int]:
        """Shard indices the journal does not cover yet, in plan order."""
        done = self.completed_shards()
        return [i for i in range(len(self.shards)) if i not in done]

    # -- execution ----------------------------------------------------

    def run_shard(
        self,
        idx: int,
        executor: Optional[object] = None,
        cache: Optional[ResultCache] = None,
        *,
        collect: Optional[Dict[SimulationJob, RunResult]] = None,
        annotate: Optional[dict] = None,
        on_result: Optional[Callable[[SimulationJob, RunResult], None]] = None,
        journaled: bool = False,
    ) -> Optional[ShardDone]:
        """Execute one shard (cache-probe first) and journal it.

        This is the single shard-execution primitive shared by
        :meth:`run` and the service worker (``harness/service.py``),
        which executes exactly the one shard it holds a lease on.

        Jobs the cache already holds are skipped (a shard whose
        executor died mid-way re-runs only its missing jobs); the rest
        go through ``executor.run_jobs``, each result is persisted to
        ``cache`` as it lands, and only then is the shard journaled —
        a journal record means "all results of this shard are durable".
        With ``journaled=True`` (the caller saw a journal record for
        this shard) and every result still cached, the shard is skipped
        entirely and ``None`` is returned.

        ``collect`` gathers every result (probed or executed) so the
        caller merges without a second cache read per job.  ``annotate``
        merges extra fields (worker id, reclaim provenance) into the
        journal record.  ``on_result(job, result)`` fires after each
        *executed* job's result is persisted — the worker's lease
        heartbeat lives there; an exception from it (e.g. the lease was
        lost) aborts the shard *before* the journal append, so a
        half-run shard is never marked done.
        """
        executor = executor or SerialExecutor()
        cache = cache if cache is not None else self.default_cache()
        shard = self.shards[idx]
        total = len(self.shards)
        t0 = time.perf_counter()
        pending = []
        for job in shard:
            result = cache.get(job)
            if result is None:
                pending.append(job)
            elif collect is not None:
                collect[job] = result
        if journaled and not pending:
            log.info("batch %s: shard %d/%d already journaled; skipping",
                     self.batch_id[:12], idx + 1, total)
            return None
        if journaled:
            log.warning(
                "batch %s: shard %d journaled but %d result(s) missing "
                "from cache %s; re-running the shard",
                self.batch_id[:12], idx, len(pending), cache.cache_dir,
            )
        if pending:
            def _persist(job: SimulationJob, result: RunResult) -> None:
                cache.put(job, result)
                if collect is not None:
                    collect[job] = result
                if on_result is not None:
                    on_result(job, result)

            if on_result is None:
                # Classic path: executors that predate the on_result
                # hook (tests subclass them) keep working unchanged.
                for job, result in zip(pending, executor.run_jobs(pending)):
                    _persist(job, result)
            else:
                executor.run_jobs(pending, on_result=_persist)
        wall = time.perf_counter() - t0
        record = {
            "shard": idx,
            "jobs": len(shard),
            "executed": len(pending),
            "digest": self._shard_digests[idx],
            "wall_s": round(wall, 6),
        }
        if annotate:
            record.update(annotate)
        append_jsonl(self.journal_path, record)
        log.info(
            "batch %s: shard %d/%d done (%d jobs, %d executed, %.2fs)",
            self.batch_id[:12], idx + 1, total, len(shard),
            len(pending), wall,
        )
        return ShardDone(idx, total, len(shard), len(pending), wall)

    def run(
        self,
        executor: Optional[object] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[Callable[[ShardDone], None]] = None,
    ) -> Dict[SimulationJob, RunResult]:
        """Execute every shard the journal does not already cover.

        Per shard this is exactly :meth:`run_shard`; journaled shards
        are skipped only after a cache probe confirms their results are
        still present — a pruned or mismatched cache directory forces a
        re-run instead of leaving the batch permanently unresumable.
        Returns the merged results of the whole batch.
        """
        executor = executor or SerialExecutor()
        # `cache or ...` would be wrong: an *empty* ResultCache is falsy
        # (it defines __len__), and silently swapping in the default
        # would strand every result outside the caller's directory.
        cache = cache if cache is not None else self.default_cache()
        done = self.completed_shards()
        merged: Dict[SimulationJob, RunResult] = {}
        for idx in range(len(self.shards)):
            shard_done = self.run_shard(
                idx, executor, cache, collect=merged, journaled=idx in done
            )
            if shard_done is not None and progress is not None:
                progress(shard_done)
        # Every result was collected on the way through (probe or
        # execution) — no second read of N cache files.
        return {job: merged[job] for job in self.jobs}

    def resume(
        self,
        executor: Optional[object] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[Callable[[ShardDone], None]] = None,
    ) -> Dict[SimulationJob, RunResult]:
        """Alias of :meth:`run` — running *is* resuming (idempotent)."""
        return self.run(executor=executor, cache=cache, progress=progress)

    def results(
        self, cache: Optional[ResultCache] = None
    ) -> Dict[SimulationJob, RunResult]:
        """Merged results of a completed batch, read from the cache.

        Raises :class:`BatchError` if any job's result is missing —
        either the batch is not finished or the cache was pruned; run
        (resume) the batch first.
        """
        cache = cache if cache is not None else self.default_cache()
        merged: Dict[SimulationJob, RunResult] = {}
        for job in self.jobs:
            result = cache.get(job)
            if result is None:
                raise BatchError(
                    f"batch {self.batch_id[:12]}: no cached result for "
                    f"{job.platform}/{job.workload}/{job.mode.value} in "
                    f"{cache.cache_dir} — wrong --cache-dir, or the entry "
                    "was pruned; resuming with this cache re-computes it"
                )
            merged[job] = result
        return merged
