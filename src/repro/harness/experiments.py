"""Experiment specs + reducers, one per evaluation figure/table (see
DESIGN.md section 5 for the figure -> spec mapping).

Each figure is declared as an :class:`ExperimentSpec`: the job matrix it
needs, a *reducer* that folds the evaluated results into the figure
payload, and a *tabulator* that flattens the payload into schema'd rows
for the json/csv exporters.  The module-level ``figureNN`` functions are
thin wrappers kept for tests, benchmarks and notebooks; they evaluate
the same specs through a :class:`Runner`, so serial, parallel and cached
execution all produce identical data.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.config import MemoryMode, default_config
from repro.core.platforms import PLATFORMS
from repro.cost.model import CostModel
from repro.energy.accounting import EnergyBreakdown, EnergyModel
from repro.harness.registry import (
    ExperimentSpec,
    JobResults,
    get_experiment,
    register,
    run_spec,
)
from repro.harness.runner import ALL_WORKLOADS, RunConfig, Runner, SimulationJob
from repro.hoststorage.gpudirect import GpuSsdSystem
from repro.optical.ber import LinkBudget, figure20b_budgets
from repro.optical.layout import (
    BASELINE_LAYOUT,
    GENERAL_LAYOUT,
    layout_for_mode,
    mode_reduction,
)
from repro.workloads.registry import get_workload

FIG16_PLATFORMS = ("Origin", "Hetero", "Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW", "Oracle")
LATENCY_PLATFORMS = ("Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW", "Oracle")
BANDWIDTH_PLATFORMS = ("Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW")
ENERGY_PLATFORMS = ("Hetero", "Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW")
FIG20A_WORKLOADS = ("backp", "GRAMS", "betw", "pagerank")
FIG20A_WAVEGUIDES = (1, 2, 4, 8)

MODES = (MemoryMode.PLANAR, MemoryMode.TWO_LEVEL)



# -- picklable spec plumbing ------------------------------------------------
#
# Spec callables must be named module-level functions, never lambdas or
# closures: registry entries are re-resolved by name inside executor
# worker processes, and reprolint R5 enforces the rule mechanically.

def _no_jobs(run_cfg: RunConfig) -> Tuple[SimulationJob, ...]:
    """Analytic figures (layout, cost, link budget) need no simulations."""
    return ()


def _rows_as_is(rows: List[dict]) -> List[dict]:
    """Identity tabulate: the reducer already emits flat rows."""
    return rows


def _payload_as_row(payload: dict) -> List[dict]:
    """Tabulate a single-dict payload as its one row."""
    return [payload]


def _fig20b_reduce(_results) -> List[LinkBudget]:
    return figure20b_budgets(default_config().optical)


def _fig20b_tabulate(budgets: List[LinkBudget]) -> List[dict]:
    return [
        {
            "label": b.label,
            "ber": b.ber,
            "received_power_mw": b.received_power_mw,
            "laser_scale": b.laser_scale,
            "reliable": b.reliable,
        }
        for b in budgets
    ]


def batch_jobs_for(
    names: Tuple[str, ...], run_cfg: RunConfig
) -> Tuple[SimulationJob, ...]:
    """The deduplicated job union of several registered experiments.

    This is the payload ``repro batch run`` shards and journals: submit
    the whole evaluation's matrix as one resumable batch, then render
    each figure instantly from the warm cache.  Order is deterministic
    (experiment order, then each spec's own job order), so the shard
    plan — and therefore the resume journal — is stable across
    invocations.
    """
    jobs: List[SimulationJob] = []
    for name in names:
        jobs.extend(get_experiment(name).jobs(run_cfg))
    return tuple(dict.fromkeys(jobs))


@dataclass
class FigureData:
    """Generic figure payload: rows keyed by (workload, platform)."""

    name: str
    mode: str
    values: Dict[Tuple[str, str], float]

    def mean_over_workloads(self, platform: str) -> float:
        vals = [v for (w, p), v in self.values.items() if p == platform]
        return sum(vals) / len(vals) if vals else 0.0


def _mode_matrix_jobs(
    platforms: Tuple[str, ...], workloads: Tuple[str, ...]
) -> "callable":
    """Standard job set: every (platform, workload) cell in both modes."""

    def jobs(run_cfg: RunConfig) -> Tuple[SimulationJob, ...]:
        return tuple(
            SimulationJob(p, w, mode, run_cfg)
            for mode in MODES
            for w in workloads
            for p in platforms
        )

    return jobs


def _figure_rows(series: str = "platform"):
    """Tabulator for the two-mode FigureData payloads."""

    def tabulate(payload: Dict[str, FigureData]) -> List[dict]:
        return [
            {"mode": mode, "workload": w, series: s, "value": v}
            for mode, fig in payload.items()
            for (w, s), v in fig.values.items()
        ]

    return tabulate


# --------------------------------------------------------------------
# Fig. 3 — GPU+SSD motivation breakdowns (analytic, no simulations)
# --------------------------------------------------------------------

def _fig3_reduce(workloads: Tuple[str, ...]):
    def reduce(_results: JobResults) -> List[dict]:
        cfg = default_config()
        system = GpuSsdSystem(cfg)
        rows = []
        for name in workloads:
            spec = get_workload(name)
            phase = system.phase_breakdown(spec)
            mem = system.memory_breakdown(spec)
            rows.append(
                {
                    "workload": name,
                    "data_move_frac": phase.data_move_frac,
                    "storage_frac": phase.storage_frac,
                    "gpu_frac": phase.gpu_frac,
                    "dma_time_frac": mem.dma_time_frac,
                    "dma_energy_frac": mem.dma_energy_frac,
                }
            )
        return rows

    return reduce


def make_fig3_spec(workloads: Tuple[str, ...] = ALL_WORKLOADS) -> ExperimentSpec:
    return ExperimentSpec(
        name="fig3",
        title="Fig. 3 — GPU+SSD execution and memory-subsystem breakdowns",
        columns=(
            "workload", "data_move_frac", "storage_frac", "gpu_frac",
            "dma_time_frac", "dma_energy_frac",
        ),
        jobs=_no_jobs,
        reduce=_fig3_reduce(workloads),
        tabulate=_rows_as_is,
    )


def figure3(workloads: Tuple[str, ...] = ALL_WORKLOADS) -> List[dict]:
    """Fig. 3a+3b: GPU+SSD execution and memory-subsystem breakdowns."""
    return run_spec(make_fig3_spec(workloads), Runner()).payload


# --------------------------------------------------------------------
# Fig. 8 — baseline migration overhead
# --------------------------------------------------------------------

def _fig8_reduce(workloads: Tuple[str, ...]):
    def reduce(results: JobResults) -> Dict[str, FigureData]:
        out = {}
        for mode in MODES:
            values: Dict[Tuple[str, str], float] = {}
            for w in workloads:
                base = results.get("Ohm-base", w, mode)
                oracle = results.get("Oracle", w, mode)
                values[(w, "migration_bw_frac")] = base.migration_bandwidth_fraction
                values[(w, "latency_vs_oracle")] = (
                    base.mean_mem_latency_ps / oracle.mean_mem_latency_ps
                    if oracle.mean_mem_latency_ps
                    else 0.0
                )
            out[mode.value] = FigureData("fig8", mode.value, values)
        return out

    return reduce


def make_fig8_spec(workloads: Tuple[str, ...] = ALL_WORKLOADS) -> ExperimentSpec:
    return ExperimentSpec(
        name="fig8",
        title="Fig. 8 — baseline migration bandwidth share and latency",
        columns=("mode", "workload", "metric", "value"),
        jobs=_mode_matrix_jobs(("Ohm-base", "Oracle"), workloads),
        reduce=_fig8_reduce(workloads),
        tabulate=_figure_rows(series="metric"),
    )


def figure8(
    runner: Runner, workloads: Tuple[str, ...] = ALL_WORKLOADS
) -> Dict[str, FigureData]:
    """Fig. 8: baseline migration bandwidth share + latency vs Oracle."""
    return run_spec(make_fig8_spec(workloads), runner).payload


# --------------------------------------------------------------------
# Fig. 16 — IPC normalized to Ohm-base
# --------------------------------------------------------------------

def _fig16_reduce(workloads: Tuple[str, ...], platforms: Tuple[str, ...]):
    def reduce(results: JobResults) -> Dict[str, FigureData]:
        out = {}
        for mode in MODES:
            values: Dict[Tuple[str, str], float] = {}
            for w in workloads:
                base = results.get("Ohm-base", w, mode)
                for p in platforms:
                    res = results.get(p, w, mode)
                    values[(w, p)] = res.performance / base.performance
            out[mode.value] = FigureData("fig16", mode.value, values)
        return out

    return reduce


def make_fig16_spec(
    workloads: Tuple[str, ...] = ALL_WORKLOADS,
    platforms: Tuple[str, ...] = FIG16_PLATFORMS,
) -> ExperimentSpec:
    needed = platforms if "Ohm-base" in platforms else platforms + ("Ohm-base",)
    return ExperimentSpec(
        name="fig16",
        title="Fig. 16 — IPC normalized to Ohm-base",
        columns=("mode", "workload", "platform", "value"),
        jobs=_mode_matrix_jobs(needed, workloads),
        reduce=_fig16_reduce(workloads, platforms),
        tabulate=_figure_rows(),
    )


def figure16(
    runner: Runner,
    workloads: Tuple[str, ...] = ALL_WORKLOADS,
    platforms: Tuple[str, ...] = FIG16_PLATFORMS,
) -> Dict[str, FigureData]:
    """Fig. 16: IPC normalized to Ohm-base, both modes."""
    return run_spec(make_fig16_spec(workloads, platforms), runner).payload


# --------------------------------------------------------------------
# Fig. 17 — mean memory latency normalized to Ohm-base
# --------------------------------------------------------------------

def _fig17_reduce(workloads: Tuple[str, ...]):
    def reduce(results: JobResults) -> Dict[str, FigureData]:
        out = {}
        for mode in MODES:
            values: Dict[Tuple[str, str], float] = {}
            for w in workloads:
                base = results.get("Ohm-base", w, mode)
                for p in LATENCY_PLATFORMS:
                    res = results.get(p, w, mode)
                    values[(w, p)] = (
                        res.mean_mem_latency_ps / base.mean_mem_latency_ps
                        if base.mean_mem_latency_ps
                        else 0.0
                    )
            out[mode.value] = FigureData("fig17", mode.value, values)
        return out

    return reduce


def make_fig17_spec(workloads: Tuple[str, ...] = ALL_WORKLOADS) -> ExperimentSpec:
    return ExperimentSpec(
        name="fig17",
        title="Fig. 17 — mean memory latency normalized to Ohm-base",
        columns=("mode", "workload", "platform", "value"),
        jobs=_mode_matrix_jobs(LATENCY_PLATFORMS, workloads),
        reduce=_fig17_reduce(workloads),
        tabulate=_figure_rows(),
    )


def figure17(
    runner: Runner, workloads: Tuple[str, ...] = ALL_WORKLOADS
) -> Dict[str, FigureData]:
    """Fig. 17: mean memory latency normalized to Ohm-base."""
    return run_spec(make_fig17_spec(workloads), runner).payload


# --------------------------------------------------------------------
# Fig. 18 — migration share of channel bandwidth
# --------------------------------------------------------------------

def _fig18_reduce(workloads: Tuple[str, ...]):
    def reduce(results: JobResults) -> Dict[str, FigureData]:
        out = {}
        for mode in MODES:
            values: Dict[Tuple[str, str], float] = {}
            for w in workloads:
                for p in BANDWIDTH_PLATFORMS:
                    res = results.get(p, w, mode)
                    values[(w, p)] = res.migration_bandwidth_fraction
            out[mode.value] = FigureData("fig18", mode.value, values)
        return out

    return reduce


def make_fig18_spec(workloads: Tuple[str, ...] = ALL_WORKLOADS) -> ExperimentSpec:
    return ExperimentSpec(
        name="fig18",
        title="Fig. 18 — migration share of channel bandwidth",
        columns=("mode", "workload", "platform", "value"),
        jobs=_mode_matrix_jobs(BANDWIDTH_PLATFORMS, workloads),
        reduce=_fig18_reduce(workloads),
        tabulate=_figure_rows(),
    )


def figure18(
    runner: Runner, workloads: Tuple[str, ...] = ALL_WORKLOADS
) -> Dict[str, FigureData]:
    """Fig. 18: fraction of channel bandwidth consumed by migration."""
    return run_spec(make_fig18_spec(workloads), runner).payload


# --------------------------------------------------------------------
# Fig. 19 — energy breakdown
# --------------------------------------------------------------------

def _fig19_reduce(workloads: Tuple[str, ...]):
    def reduce(results: JobResults) -> Dict[str, Dict[Tuple[str, str], EnergyBreakdown]]:
        out: Dict[str, Dict[Tuple[str, str], EnergyBreakdown]] = {}
        for mode in MODES:
            model = EnergyModel(default_config(mode))
            rows: Dict[Tuple[str, str], EnergyBreakdown] = {}
            for w in workloads:
                for p in ENERGY_PLATFORMS:
                    res = results.get(p, w, mode)
                    rows[(w, p)] = model.breakdown(PLATFORMS[p], res)
            out[mode.value] = rows
        return out

    return reduce


def _fig19_tabulate(payload) -> List[dict]:
    return [
        {
            "mode": mode,
            "workload": w,
            "platform": p,
            "xpoint_j": b.xpoint_j,
            "dram_dynamic_j": b.dram_dynamic_j,
            "dram_static_j": b.dram_static_j,
            "optical_j": b.optical_j,
            "electrical_j": b.electrical_j,
            "total_j": b.total_j,
        }
        for mode, rows in payload.items()
        for (w, p), b in rows.items()
    ]


def make_fig19_spec(workloads: Tuple[str, ...] = ALL_WORKLOADS) -> ExperimentSpec:
    return ExperimentSpec(
        name="fig19",
        title="Fig. 19 — energy breakdown per platform and workload",
        columns=(
            "mode", "workload", "platform", "xpoint_j", "dram_dynamic_j",
            "dram_static_j", "optical_j", "electrical_j", "total_j",
        ),
        jobs=_mode_matrix_jobs(ENERGY_PLATFORMS, workloads),
        reduce=_fig19_reduce(workloads),
        tabulate=_fig19_tabulate,
    )


def figure19(
    runner: Runner, workloads: Tuple[str, ...] = ALL_WORKLOADS
) -> Dict[str, Dict[Tuple[str, str], EnergyBreakdown]]:
    """Fig. 19: energy breakdown per platform and workload."""
    return run_spec(make_fig19_spec(workloads), runner).payload


# --------------------------------------------------------------------
# Fig. 20a — performance vs optical waveguide count
# --------------------------------------------------------------------

def _fig20a_jobs(workloads: Tuple[str, ...], counts: Tuple[int, ...]):
    def jobs(run_cfg: RunConfig) -> Tuple[SimulationJob, ...]:
        out = [
            SimulationJob("Hetero", w, MemoryMode.PLANAR, run_cfg)
            for w in workloads
        ]
        for n in counts:
            cfg_n = replace(run_cfg, waveguides=n)
            out.extend(
                SimulationJob(p, w, MemoryMode.PLANAR, cfg_n)
                for p in ("Ohm-base", "Ohm-BW")
                for w in workloads
            )
        return tuple(out)

    return jobs


def _fig20a_reduce(workloads: Tuple[str, ...], counts: Tuple[int, ...]):
    def reduce(results: JobResults) -> List[dict]:
        base_cfg = results.run_cfg
        hetero_perf = {
            w: results.get("Hetero", w, MemoryMode.PLANAR).performance
            for w in workloads
        }
        rows = []
        for n in counts:
            cfg_n = replace(base_cfg, waveguides=n)
            for p in ("Ohm-base", "Ohm-BW"):
                rel = [
                    results.get(p, w, MemoryMode.PLANAR, cfg_n).performance
                    / hetero_perf[w]
                    for w in workloads
                ]
                rows.append(
                    {
                        "waveguides": n,
                        "platform": p,
                        "norm_performance": sum(rel) / len(rel),
                    }
                )
        return rows

    return reduce


def make_fig20a_spec(
    workloads: Tuple[str, ...] = FIG20A_WORKLOADS,
    waveguide_counts: Tuple[int, ...] = FIG20A_WAVEGUIDES,
) -> ExperimentSpec:
    return ExperimentSpec(
        name="fig20a",
        title="Fig. 20a — performance vs number of optical waveguides",
        columns=("waveguides", "platform", "norm_performance"),
        jobs=_fig20a_jobs(workloads, waveguide_counts),
        reduce=_fig20a_reduce(workloads, waveguide_counts),
        tabulate=_rows_as_is,
    )


def figure20a(
    workloads: Tuple[str, ...] = FIG20A_WORKLOADS,
    waveguide_counts: Tuple[int, ...] = FIG20A_WAVEGUIDES,
    run_cfg: Optional[RunConfig] = None,
    runner: Optional[Runner] = None,
) -> List[dict]:
    """Fig. 20a: performance vs number of optical waveguides.

    Normalized to Hetero (the electrical baseline), planar mode.
    Sizing comes from ``run_cfg`` — or from ``runner.run_cfg`` when a
    shared runner is supplied instead (passing both is ambiguous).
    """
    if runner is not None and run_cfg is not None:
        raise ValueError("pass either run_cfg or runner, not both")
    runner = runner or Runner(run_cfg or RunConfig())
    return run_spec(make_fig20a_spec(workloads, waveguide_counts), runner).payload


# --------------------------------------------------------------------
# Fig. 20b — BER link budgets (analytic)
# --------------------------------------------------------------------

def make_fig20b_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="fig20b",
        title="Fig. 20b — BER of each platform/function",
        columns=("label", "ber", "received_power_mw", "laser_scale", "reliable"),
        jobs=_no_jobs,
        reduce=_fig20b_reduce,
        tabulate=_fig20b_tabulate,
    )


def figure20b() -> List[LinkBudget]:
    """Fig. 20b: BER of each platform/function."""
    return run_spec(make_fig20b_spec(), Runner()).payload


# --------------------------------------------------------------------
# Fig. 15 — MRR layout counts (analytic)
# --------------------------------------------------------------------

def _fig15_reduce(_results: JobResults) -> List[dict]:
    rows = []
    for layout in (GENERAL_LAYOUT, BASELINE_LAYOUT):
        rows.append(
            {
                "layout": layout.label,
                "transmitters": layout.transmitters,
                "receivers": layout.receivers,
                "total": layout.total,
                "reduction_vs_general": layout.reduction_vs(GENERAL_LAYOUT),
            }
        )
    for mode in MODES:
        layout = layout_for_mode(mode)
        rows.append(
            {
                "layout": layout.label,
                "transmitters": layout.transmitters,
                "receivers": layout.receivers,
                "total": layout.total,
                "reduction_vs_general": mode_reduction(mode),
            }
        )
    return rows


def make_fig15_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="fig15",
        title="Fig. 15 — MRR counts per layout",
        columns=(
            "layout", "transmitters", "receivers", "total", "reduction_vs_general",
        ),
        jobs=_no_jobs,
        reduce=_fig15_reduce,
        tabulate=_rows_as_is,
    )


def figure15() -> List[dict]:
    """Fig. 15 / Section V-C: MRR counts per layout and reductions."""
    return run_spec(make_fig15_spec(), Runner()).payload


# --------------------------------------------------------------------
# Table III — bill of materials + cost deltas (analytic)
# --------------------------------------------------------------------

def _table3_reduce(_results: JobResults) -> List[dict]:
    rows = []
    for mode in MODES:
        cost = CostModel(mode)
        bom = cost.bom
        for platform in ("Ohm-base", "Ohm-BW"):
            mrr = bom.mrr_bw if platform == "Ohm-BW" else bom.mrr_base
            rows.append(
                {
                    "mode": mode.value,
                    "platform": platform,
                    "dram_gb": bom.dram_gb,
                    "dram_price": bom.dram_price,
                    "xpoint_gb": bom.xpoint_gb,
                    "xpoint_price": bom.xpoint_price,
                    "modulators": mrr.modulators,
                    "detectors": mrr.detectors,
                    "mrr_price": mrr.price,
                    "total_cost": cost.platform_cost(platform),
                    "cost_increase": cost.cost_increase_fraction(platform),
                }
            )
    return rows


def make_table3_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="table3",
        title="Table III — bill of materials and cost deltas",
        columns=(
            "mode", "platform", "dram_gb", "dram_price", "xpoint_gb",
            "xpoint_price", "modulators", "detectors", "mrr_price",
            "total_cost", "cost_increase",
        ),
        jobs=_no_jobs,
        reduce=_table3_reduce,
        tabulate=_rows_as_is,
    )


def table3() -> List[dict]:
    """Table III: bill of materials + cost deltas."""
    return run_spec(make_table3_spec(), Runner()).payload


# --------------------------------------------------------------------
# Fig. 21 — cost-performance
# --------------------------------------------------------------------

def _fig21_reduce(workloads: Tuple[str, ...]):
    def reduce(results: JobResults) -> Dict[str, FigureData]:
        out = {}
        for mode in MODES:
            cost = CostModel(mode)
            values: Dict[Tuple[str, str], float] = {}
            for w in workloads:
                origin = results.get("Origin", w, mode)
                for p in ("Origin", "Ohm-BW", "Oracle"):
                    res = results.get(p, w, mode)
                    perf = res.performance / origin.performance
                    values[(w, p)] = cost.cost_performance(p, perf)
            out[mode.value] = FigureData("fig21", mode.value, values)
        return out

    return reduce


def make_fig21_spec(workloads: Tuple[str, ...] = ALL_WORKLOADS) -> ExperimentSpec:
    return ExperimentSpec(
        name="fig21",
        title="Fig. 21 — cost-performance ratio",
        columns=("mode", "workload", "platform", "value"),
        jobs=_mode_matrix_jobs(("Origin", "Ohm-BW", "Oracle"), workloads),
        reduce=_fig21_reduce(workloads),
        tabulate=_figure_rows(),
    )


def figure21(
    runner: Runner, workloads: Tuple[str, ...] = ALL_WORKLOADS
) -> Dict[str, FigureData]:
    """Fig. 21: cost-performance ratio of Origin / Ohm-BW / Oracle."""
    return run_spec(make_fig21_spec(workloads), runner).payload


# --------------------------------------------------------------------
# Families — beyond-Table-II workload sensitivity (workload subsystem v2)
# --------------------------------------------------------------------

FAMILY_WORKLOADS = ("gemm_reuse", "pointer_chase", "stream_scan", "mix_gemm_chase")
FAMILY_PLATFORMS = ("Origin", "Hetero", "Ohm-base", "Ohm-BW", "Oracle")
STREAM_MIX_WORKLOADS = (
    "stream_scan_r25", "stream_scan_r50", "stream_scan_r75", "stream_scan_r100",
)


def _families_jobs(run_cfg: RunConfig) -> Tuple[SimulationJob, ...]:
    jobs = [
        SimulationJob(p, w, MemoryMode.PLANAR, run_cfg)
        for w in FAMILY_WORKLOADS
        for p in FAMILY_PLATFORMS
    ]
    jobs.extend(
        SimulationJob(p, w, MemoryMode.PLANAR, run_cfg)
        for w in STREAM_MIX_WORKLOADS
        for p in ("Ohm-base", "Ohm-BW")
    )
    return tuple(jobs)


def _families_reduce(results: JobResults) -> List[dict]:
    rows = []
    for w in FAMILY_WORKLOADS + STREAM_MIX_WORKLOADS:
        platforms = (
            FAMILY_PLATFORMS if w in FAMILY_WORKLOADS else ("Ohm-base", "Ohm-BW")
        )
        base = results.get("Ohm-base", w, MemoryMode.PLANAR)
        for p in platforms:
            res = results.get(p, w, MemoryMode.PLANAR)
            rows.append(
                {
                    "workload": w,
                    "platform": p,
                    "perf_vs_base": (
                        res.performance / base.performance
                        if base.performance
                        else 0.0
                    ),
                    "mem_latency_ns": res.mean_mem_latency_ps / 1e3,
                    "migration_bw_frac": res.migration_bandwidth_fraction,
                }
            )
    return rows


def make_families_spec() -> ExperimentSpec:
    """Sensitivity sweep over the PR-3 workload families.

    Planar mode, every platform on the three parametric families plus
    the co-located multi-tenant mix, and Ohm-base/Ohm-BW across the
    streaming read:write-mix variants — does the dual-route win survive
    access regimes Table II never exercises?
    """
    return ExperimentSpec(
        name="families",
        title="Families — platform sensitivity on the parametric workload families",
        columns=(
            "workload", "platform", "perf_vs_base", "mem_latency_ns",
            "migration_bw_frac",
        ),
        jobs=_families_jobs,
        reduce=_families_reduce,
        tabulate=_rows_as_is,
    )


def families(runner: Runner) -> List[dict]:
    """Evaluate the families sensitivity sweep under ``runner``."""
    return run_spec(make_families_spec(), runner).payload


# --------------------------------------------------------------------
# Headline — abstract claims
# --------------------------------------------------------------------

def _headline_reduce(workloads: Tuple[str, ...]):
    def reduce(results: JobResults) -> dict:
        import math

        vs_origin: List[float] = []
        vs_base: List[float] = []
        for mode in MODES:
            for w in workloads:
                bw = results.get("Ohm-BW", w, mode).performance
                vs_origin.append(bw / results.get("Origin", w, mode).performance)
                vs_base.append(bw / results.get("Ohm-base", w, mode).performance)

        def geomean(xs: List[float]) -> float:
            return math.exp(sum(math.log(x) for x in xs) / len(xs))

        return {
            "speedup_vs_origin": geomean(vs_origin),
            "speedup_vs_ohm_base": geomean(vs_base),
        }

    return reduce


def make_headline_spec(workloads: Tuple[str, ...] = ALL_WORKLOADS) -> ExperimentSpec:
    return ExperimentSpec(
        name="headline",
        title="Headline — Ohm-BW vs Origin and vs Ohm-base (geomean)",
        columns=("speedup_vs_origin", "speedup_vs_ohm_base"),
        jobs=_mode_matrix_jobs(("Ohm-BW", "Origin", "Ohm-base"), workloads),
        reduce=_headline_reduce(workloads),
        tabulate=_payload_as_row,
    )


def headline(runner: Runner, workloads: Tuple[str, ...] = ALL_WORKLOADS) -> dict:
    """Abstract claim: Ohm-BW vs Origin (+181 %) and vs Ohm-base (+27 %).

    Speedups are aggregated with the geometric mean, the standard
    aggregation for performance ratios.
    """
    return run_spec(make_headline_spec(workloads), runner).payload


# Register the default-parameter spec of every figure/table.  The CLI
# and the exporters discover experiments exclusively through this
# registry; a new figure is one more ``register(make_*_spec())`` line.
for _spec_factory in (
    make_fig3_spec,
    make_fig8_spec,
    make_families_spec,
    make_fig15_spec,
    make_fig16_spec,
    make_fig17_spec,
    make_fig18_spec,
    make_fig19_spec,
    make_fig20a_spec,
    make_fig20b_spec,
    make_fig21_spec,
    make_table3_spec,
    make_headline_spec,
):
    register(_spec_factory())
