"""One function per evaluation figure/table (see DESIGN.md section 5).

Each returns plain data (rows) so benchmarks can print them and tests
can assert the paper's qualitative claims on them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import MemoryMode, default_config
from repro.cost.model import CostModel
from repro.energy.accounting import EnergyBreakdown, EnergyModel
from repro.harness.runner import ALL_WORKLOADS, RunConfig, Runner
from repro.hoststorage.gpudirect import GpuSsdSystem
from repro.optical.ber import LinkBudget, figure20b_budgets
from repro.optical.layout import (
    BASELINE_LAYOUT,
    GENERAL_LAYOUT,
    layout_for_mode,
    mode_reduction,
)
from repro.workloads.registry import WORKLOADS, get_workload

FIG16_PLATFORMS = ("Origin", "Hetero", "Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW", "Oracle")
LATENCY_PLATFORMS = ("Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW", "Oracle")
BANDWIDTH_PLATFORMS = ("Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW")
ENERGY_PLATFORMS = ("Hetero", "Ohm-base", "Auto-rw", "Ohm-WOM", "Ohm-BW")

MODES = (MemoryMode.PLANAR, MemoryMode.TWO_LEVEL)


@dataclass
class FigureData:
    """Generic figure payload: rows keyed by (workload, platform)."""

    name: str
    mode: str
    values: Dict[Tuple[str, str], float]

    def mean_over_workloads(self, platform: str) -> float:
        vals = [v for (w, p), v in self.values.items() if p == platform]
        return sum(vals) / len(vals) if vals else 0.0


def figure3(workloads: Tuple[str, ...] = ALL_WORKLOADS) -> List[dict]:
    """Fig. 3a+3b: GPU+SSD execution and memory-subsystem breakdowns."""
    cfg = default_config()
    system = GpuSsdSystem(cfg)
    rows = []
    for name in workloads:
        spec = get_workload(name)
        phase = system.phase_breakdown(spec)
        mem = system.memory_breakdown(spec)
        rows.append(
            {
                "workload": name,
                "data_move_frac": phase.data_move_frac,
                "storage_frac": phase.storage_frac,
                "gpu_frac": phase.gpu_frac,
                "dma_time_frac": mem.dma_time_frac,
                "dma_energy_frac": mem.dma_energy_frac,
            }
        )
    return rows


def figure8(
    runner: Runner, workloads: Tuple[str, ...] = ALL_WORKLOADS
) -> Dict[str, FigureData]:
    """Fig. 8: baseline migration bandwidth share + latency vs Oracle."""
    out = {}
    for mode in MODES:
        values: Dict[Tuple[str, str], float] = {}
        for w in workloads:
            base = runner.run("Ohm-base", w, mode)
            oracle = runner.run("Oracle", w, mode)
            values[(w, "migration_bw_frac")] = base.migration_bandwidth_fraction
            values[(w, "latency_vs_oracle")] = (
                base.mean_mem_latency_ps / oracle.mean_mem_latency_ps
                if oracle.mean_mem_latency_ps
                else 0.0
            )
        out[mode.value] = FigureData("fig8", mode.value, values)
    return out


def figure16(
    runner: Runner,
    workloads: Tuple[str, ...] = ALL_WORKLOADS,
    platforms: Tuple[str, ...] = FIG16_PLATFORMS,
) -> Dict[str, FigureData]:
    """Fig. 16: IPC normalized to Ohm-base, both modes."""
    out = {}
    for mode in MODES:
        values: Dict[Tuple[str, str], float] = {}
        for w in workloads:
            base = runner.run("Ohm-base", w, mode)
            for p in platforms:
                res = runner.run(p, w, mode)
                values[(w, p)] = res.performance / base.performance
        out[mode.value] = FigureData("fig16", mode.value, values)
    return out


def figure17(
    runner: Runner, workloads: Tuple[str, ...] = ALL_WORKLOADS
) -> Dict[str, FigureData]:
    """Fig. 17: mean memory latency normalized to Ohm-base."""
    out = {}
    for mode in MODES:
        values: Dict[Tuple[str, str], float] = {}
        for w in workloads:
            base = runner.run("Ohm-base", w, mode)
            for p in LATENCY_PLATFORMS:
                res = runner.run(p, w, mode)
                values[(w, p)] = (
                    res.mean_mem_latency_ps / base.mean_mem_latency_ps
                    if base.mean_mem_latency_ps
                    else 0.0
                )
        out[mode.value] = FigureData("fig17", mode.value, values)
    return out


def figure18(
    runner: Runner, workloads: Tuple[str, ...] = ALL_WORKLOADS
) -> Dict[str, FigureData]:
    """Fig. 18: fraction of channel bandwidth consumed by migration."""
    out = {}
    for mode in MODES:
        values: Dict[Tuple[str, str], float] = {}
        for w in workloads:
            for p in BANDWIDTH_PLATFORMS:
                res = runner.run(p, w, mode)
                values[(w, p)] = res.migration_bandwidth_fraction
        out[mode.value] = FigureData("fig18", mode.value, values)
    return out


def figure19(
    runner: Runner, workloads: Tuple[str, ...] = ALL_WORKLOADS
) -> Dict[str, Dict[Tuple[str, str], EnergyBreakdown]]:
    """Fig. 19: energy breakdown per platform and workload."""
    out: Dict[str, Dict[Tuple[str, str], EnergyBreakdown]] = {}
    for mode in MODES:
        cfg = default_config(mode)
        model = EnergyModel(cfg)
        rows: Dict[Tuple[str, str], EnergyBreakdown] = {}
        for w in workloads:
            for p in ENERGY_PLATFORMS:
                res = runner.run(p, w, mode)
                rows[(w, p)] = model.breakdown(runner.platform(p), res)
        out[mode.value] = rows
    return out


def figure20a(
    workloads: Tuple[str, ...] = ("backp", "GRAMS", "betw", "pagerank"),
    waveguide_counts: Tuple[int, ...] = (1, 2, 4, 8),
    run_cfg: Optional[RunConfig] = None,
) -> List[dict]:
    """Fig. 20a: performance vs number of optical waveguides.

    Normalized to Hetero (the electrical baseline), planar mode.
    """
    rows = []
    base_cfg = run_cfg or RunConfig()
    hetero_runner = Runner(base_cfg)
    hetero_perf = {
        w: hetero_runner.run("Hetero", w, MemoryMode.PLANAR).performance
        for w in workloads
    }
    for n in waveguide_counts:
        runner = Runner(
            RunConfig(
                num_warps=base_cfg.num_warps,
                accesses_per_warp=base_cfg.accesses_per_warp,
                seed=base_cfg.seed,
                waveguides=n,
            )
        )
        for p in ("Ohm-base", "Ohm-BW"):
            rel = [
                runner.run(p, w, MemoryMode.PLANAR).performance / hetero_perf[w]
                for w in workloads
            ]
            rows.append(
                {
                    "waveguides": n,
                    "platform": p,
                    "norm_performance": sum(rel) / len(rel),
                }
            )
    return rows


def figure20b() -> List[LinkBudget]:
    """Fig. 20b: BER of each platform/function."""
    return figure20b_budgets(default_config().optical)


def figure15() -> List[dict]:
    """Fig. 15 / Section V-C: MRR counts per layout and reductions."""
    rows = []
    for layout in (GENERAL_LAYOUT, BASELINE_LAYOUT):
        rows.append(
            {
                "layout": layout.label,
                "transmitters": layout.transmitters,
                "receivers": layout.receivers,
                "total": layout.total,
                "reduction_vs_general": layout.reduction_vs(GENERAL_LAYOUT),
            }
        )
    for mode in MODES:
        layout = layout_for_mode(mode)
        rows.append(
            {
                "layout": layout.label,
                "transmitters": layout.transmitters,
                "receivers": layout.receivers,
                "total": layout.total,
                "reduction_vs_general": mode_reduction(mode),
            }
        )
    return rows


def table3() -> List[dict]:
    """Table III: bill of materials + cost deltas."""
    rows = []
    for mode in MODES:
        cost = CostModel(mode)
        bom = cost.bom
        for platform in ("Ohm-base", "Ohm-BW"):
            mrr = bom.mrr_bw if platform == "Ohm-BW" else bom.mrr_base
            rows.append(
                {
                    "mode": mode.value,
                    "platform": platform,
                    "dram_gb": bom.dram_gb,
                    "dram_price": bom.dram_price,
                    "xpoint_gb": bom.xpoint_gb,
                    "xpoint_price": bom.xpoint_price,
                    "modulators": mrr.modulators,
                    "detectors": mrr.detectors,
                    "mrr_price": mrr.price,
                    "total_cost": cost.platform_cost(platform),
                    "cost_increase": cost.cost_increase_fraction(platform),
                }
            )
    return rows


def figure21(
    runner: Runner, workloads: Tuple[str, ...] = ALL_WORKLOADS
) -> Dict[str, FigureData]:
    """Fig. 21: cost-performance ratio of Origin / Ohm-BW / Oracle."""
    out = {}
    for mode in MODES:
        cost = CostModel(mode)
        values: Dict[Tuple[str, str], float] = {}
        for w in workloads:
            origin = runner.run("Origin", w, mode)
            for p in ("Origin", "Ohm-BW", "Oracle"):
                res = runner.run(p, w, mode)
                perf = res.performance / origin.performance
                values[(w, p)] = cost.cost_performance(p, perf)
        out[mode.value] = FigureData("fig21", mode.value, values)
    return out


def headline(runner: Runner, workloads: Tuple[str, ...] = ALL_WORKLOADS) -> dict:
    """Abstract claim: Ohm-BW vs Origin (+181 %) and vs Ohm-base (+27 %).

    Speedups are aggregated with the geometric mean, the standard
    aggregation for performance ratios.
    """
    import math

    vs_origin: List[float] = []
    vs_base: List[float] = []
    for mode in MODES:
        for w in workloads:
            bw = runner.run("Ohm-BW", w, mode).performance
            vs_origin.append(bw / runner.run("Origin", w, mode).performance)
            vs_base.append(bw / runner.run("Ohm-base", w, mode).performance)

    def geomean(xs: List[float]) -> float:
        return math.exp(sum(math.log(x) for x in xs) / len(xs))

    return {
        "speedup_vs_origin": geomean(vs_origin),
        "speedup_vs_ohm_base": geomean(vs_base),
    }
