"""The XPoint controller logic layer (Figure 4 / Section III-A).

Sits between the (optical or electrical) memory channel and the XPoint
media.  It owns:

* read buffer and persistent write buffer that decouple the channel
  clock from the media clock (DDR-T is asynchronous);
* address translation + Start-Gap wear levelling (no DRAM buffer);
* SECDED ECC accounting on every media access;
* the *auto-read/write* snarf capability and the *swap* DDR sequence
  generator that Ohm-GPU adds (Sections IV-B and V-A) — those entry
  points live here but are orchestrated by ``repro.core``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.config import XPointConfig
from repro.sim.engine import ns
from repro.sim.stats import Stats
from repro.xpoint.device import XPointDevice
from repro.xpoint.translation import RegionTranslator

# DDR-T handshake cost: command + ready/response message on the channel
# are modelled by the channel itself; this is the controller-side
# processing latency per request.
CONTROLLER_LATENCY_NS = 5.0


@dataclass
class BufferedOp:
    addr: int
    is_write: bool
    ready_ps: int


class XPointController:
    """Logic-layer controller stacked on the XPoint die."""

    def __init__(
        self,
        cfg: XPointConfig,
        capacity_bytes: int,
        stats: Optional[Stats] = None,
        name: str = "xpctrl",
        read_buffer_entries: int = 32,
        write_buffer_entries: int = 64,
    ) -> None:
        self.cfg = cfg
        self.stats = stats if stats is not None else Stats()
        self.name = name
        self.device = XPointDevice(cfg, capacity_bytes, self.stats, name=f"{name}.media")
        self.translator = RegionTranslator(
            capacity_bytes, cfg.row_bytes, start_gap_period=cfg.start_gap_period
        )
        self.read_buffer_entries = read_buffer_entries
        self.write_buffer_entries = write_buffer_entries
        self._write_buffer: Deque[BufferedOp] = deque()
        # Multiset of buffered addresses so the per-read write-buffer
        # membership probe is O(1) instead of scanning the deque.
        self._wbuf_addr_counts: Dict[int, int] = {}
        self._ctrl_latency_ps = ns(CONTROLLER_LATENCY_NS)
        self._busy_until_ps = 0
        counter = self.stats.counter
        self._c_gap_rotations = counter(f"{name}.gap_rotations")
        self._c_wbuf_hits = counter(f"{name}.wbuf_hits")
        self._c_ecc_decodes = counter(f"{name}.ecc_decodes")
        self._c_ecc_encodes = counter(f"{name}.ecc_encodes")
        self._c_wbuf_stalls = counter(f"{name}.wbuf_stalls")
        self._c_snarfs = counter(f"{name}.snarfs")

    def _drain_one_write(self, now_ps: int) -> None:
        """Retire the oldest buffered write to the media."""
        op = self._write_buffer.popleft()
        remaining = self._wbuf_addr_counts[op.addr] - 1
        if remaining:
            self._wbuf_addr_counts[op.addr] = remaining
        else:
            del self._wbuf_addr_counts[op.addr]
        media_addr = self.translator.translate(op.addr)
        finish = self.device.access(media_addr, True, max(now_ps, op.ready_ps))
        if self.translator.record_write(op.addr):
            # Start-Gap rotation: one extra read+write of a media row.
            gap_finish = self.device.access(media_addr, False, finish)
            self.device.access(media_addr, True, gap_finish)
            self._c_gap_rotations.add(1)

    def read(self, addr: int, now_ps: int) -> int:
        """Asynchronous (DDR-T) read; returns data-ready time (ps)."""
        start = max(now_ps, self._busy_until_ps) + self._ctrl_latency_ps
        # Write buffer hit: serve from the persistent write buffer.
        if addr in self._wbuf_addr_counts:
            self._c_wbuf_hits.add(1)
            return start
        media_addr = self.translator.translate(addr)
        finish = self.device.access(media_addr, False, start)
        self._c_ecc_decodes.add(1)
        self._busy_until_ps = start
        return finish

    def write(self, addr: int, now_ps: int) -> int:
        """Asynchronous write; returns *acceptance* time, not persist time.

        The persistent write buffer absorbs the 763 ns media write — the
        channel sees only the buffer-insert latency unless the buffer is
        full, in which case the caller stalls for one drain.
        """
        start = max(now_ps, self._busy_until_ps) + self._ctrl_latency_ps
        self._c_ecc_encodes.add(1)
        if len(self._write_buffer) >= self.write_buffer_entries:
            self._drain_one_write(start)
            self._c_wbuf_stalls.add(1)
            # Stall the channel until the drained write's slot frees.
            start = max(start, self.device.bank_busy_until(self.translator.translate(addr)))
        self._write_buffer.append(BufferedOp(addr=addr, is_write=True, ready_ps=start))
        counts = self._wbuf_addr_counts
        counts[addr] = counts.get(addr, 0) + 1
        self._busy_until_ps = start
        return start

    def flush(self, now_ps: int) -> int:
        """Drain the whole write buffer; returns completion time."""
        t = now_ps
        while self._write_buffer:
            self._drain_one_write(t)
            t = max(t, self._busy_until_ps)
        return t

    # ---- Ohm-GPU extension hooks (orchestrated by repro.core) ----

    def snarf_write(self, addr: int, now_ps: int) -> int:
        """Auto-read/write: absorb data seen on the waveguide into XPoint.

        The controller hooked command/address/data/ECC off the memory
        route, so no second channel transfer is needed; only the media
        write (buffered) happens here.
        """
        self._c_snarfs.add(1)
        return self.write(addr, now_ps)

    @property
    def write_buffer_occupancy(self) -> int:
        return len(self._write_buffer)
