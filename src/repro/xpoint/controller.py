"""The XPoint controller logic layer (Figure 4 / Section III-A).

Sits between the (optical or electrical) memory channel and the XPoint
media.  It owns:

* read buffer and persistent write buffer that decouple the channel
  clock from the media clock (DDR-T is asynchronous);
* address translation + Start-Gap wear levelling (no DRAM buffer);
* SECDED ECC accounting on every media access;
* the *auto-read/write* snarf capability and the *swap* DDR sequence
  generator that Ohm-GPU adds (Sections IV-B and V-A) — those entry
  points live here but are orchestrated by ``repro.core``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.config import XPointConfig
from repro.sim.engine import ns
from repro.sim.stats import Stats
from repro.xpoint.device import XPointDevice
from repro.xpoint.translation import RegionTranslator

# DDR-T handshake cost: command + ready/response message on the channel
# are modelled by the channel itself; this is the controller-side
# processing latency per request.
CONTROLLER_LATENCY_NS = 5.0


@dataclass(slots=True)
class BufferedOp:
    addr: int
    is_write: bool
    ready_ps: int

    @classmethod
    def from_entry(cls, entry: tuple) -> "BufferedOp":
        """View a queue entry as a record (the buffer itself stores bare
        ``(addr, ready_ps)`` tuples — everything queued is a write)."""
        addr, ready_ps = entry
        return cls(addr=addr, is_write=True, ready_ps=ready_ps)


class XPointController:
    """Logic-layer controller stacked on the XPoint die."""

    __slots__ = (
        "cfg", "stats", "name", "device", "translator",
        "read_buffer_entries", "write_buffer_entries", "_write_buffer",
        "_wbuf_addr_counts", "_ctrl_latency_ps", "_busy_until_ps",
        "_c_gap_rotations", "_c_wbuf_hits", "_c_ecc_decodes",
        "_c_ecc_encodes", "_c_wbuf_stalls", "_c_snarfs", "_cdict",
        "_k_wbuf_hits", "_k_ecc_decodes", "_k_ecc_encodes", "_translate",
        "_media_access", "_k_media_acc", "_k_media_reads",
        "_k_media_writes", "_def_reads", "_def_stall_writes", "_fp",
    )

    def __init__(
        self,
        cfg: XPointConfig,
        capacity_bytes: int,
        stats: Optional[Stats] = None,
        name: str = "xpctrl",
        read_buffer_entries: int = 32,
        write_buffer_entries: int = 64,
    ) -> None:
        self.cfg = cfg
        self.stats = stats if stats is not None else Stats()
        self.name = name
        self.device = XPointDevice(cfg, capacity_bytes, self.stats, name=f"{name}.media")
        self.translator = RegionTranslator(
            capacity_bytes, cfg.row_bytes, start_gap_period=cfg.start_gap_period
        )
        self.read_buffer_entries = read_buffer_entries
        self.write_buffer_entries = write_buffer_entries
        # Bare (addr, ready_ps) tuples — everything buffered is a write,
        # so no per-write record object is allocated on the demand path.
        self._write_buffer: Deque[tuple] = deque()
        # Multiset of buffered addresses so the per-read write-buffer
        # membership probe is O(1) instead of scanning the deque.
        self._wbuf_addr_counts: Dict[int, int] = {}
        self._ctrl_latency_ps = ns(CONTROLLER_LATENCY_NS)
        self._busy_until_ps = 0
        counter = self.stats.counter
        self._c_gap_rotations = counter(f"{name}.gap_rotations")
        self._c_wbuf_hits = counter(f"{name}.wbuf_hits")
        self._c_ecc_decodes = counter(f"{name}.ecc_decodes")
        self._c_ecc_encodes = counter(f"{name}.ecc_encodes")
        self._c_wbuf_stalls = counter(f"{name}.wbuf_stalls")
        self._c_snarfs = counter(f"{name}.snarfs")
        # Hot-path handles: read()/write() run per demand XPoint access.
        self._cdict = self.stats.counters
        self._k_wbuf_hits = self._c_wbuf_hits.name
        self._k_ecc_decodes = self._c_ecc_decodes.name
        self._k_ecc_encodes = self._c_ecc_encodes.name
        self._translate = self.translator.translate
        self._media_access = self.device.access
        # Fused-path constant pack: read()/write() inline the region
        # translate + Start-Gap remap + media bank access (identical
        # arithmetic to translator.translate + device.access), so the
        # per-access constants load as one tuple unpack instead of a
        # dozen attribute chains.  The Start-Gap registers themselves
        # mutate, so they are read from the (stable) gap objects.
        # Deferred fused-path counts: the media accesses performed by
        # the fused read/drain bodies batch here and fold into the
        # shared counters on demand (Stats.register_flush) — exact,
        # since every one is an integer-valued +1.
        self._k_media_acc = self.device._c_accesses.name
        self._k_media_reads = self.device._c_reads.name
        self._k_media_writes = self.device._c_writes.name
        self._def_reads = 0
        self._def_stall_writes = 0
        self.stats.register_flush(self._flush_deferred)
        tr = self.translator
        dev = self.device
        self._fp = (
            tr.row_bytes,
            tr.num_rows,
            tr.region_rows,
            tr._gaps,
            dev._bank_busy_until,
            dev.cfg.banks_per_device,
            dev.capacity_bytes,
            dev.read_ps,
            dev.write_ps,
            dev._c_accesses.name,
            dev._c_reads.name,
            dev._c_writes.name,
            dev.write_counts,
        )

    def _flush_deferred(self) -> None:
        """Fold batched fused-path media counts into the counters.

        Idempotent; registered with the shared :class:`Stats`, which
        runs it before any counter read (``get``/``snapshot``).
        """
        n = self._def_reads
        if n:
            self._def_reads = 0
            cd = self._cdict
            cd[self._k_media_acc] += n
            cd[self._k_media_reads] += n
            cd[self._k_ecc_decodes] += n
        n = self._def_stall_writes
        if n:
            self._def_stall_writes = 0
            cd = self._cdict
            cd[self._k_media_acc] += n
            cd[self._k_media_writes] += n

    def _drain_one_write(self, now_ps: int) -> None:
        """Retire the oldest buffered write to the media."""
        addr, ready_ps = self._write_buffer.popleft()
        remaining = self._wbuf_addr_counts[addr] - 1
        if remaining:
            self._wbuf_addr_counts[addr] = remaining
        else:
            del self._wbuf_addr_counts[addr]
        media_addr = self.translator.translate(addr)
        finish = self.device.access(media_addr, True, max(now_ps, ready_ps))
        if self.translator.record_write(addr):
            # Start-Gap rotation: copy the line adjacent to the gap into
            # the gap slot — one extra read+write, charged to the rows
            # the copy actually touches (not the triggering row, which
            # would double-charge its wear and miss the gap slot's).
            copy_read, copy_write = self.translator.rotation_copy_addrs(addr)
            gap_finish = self.device.access(copy_read, False, finish)
            self.device.access(copy_write, True, gap_finish)
            self._c_gap_rotations.add(1)

    def read(self, addr: int, now_ps: int) -> int:
        """Asynchronous (DDR-T) read; returns data-ready time (ps).

        The miss path fuses the translator (region decode + Start-Gap
        remap, bounds check elided — a logical address below media
        capacity always decodes to an in-range local line) and the
        media bank access; arithmetic and accounting are identical to
        ``translator.translate`` + ``device.access``.
        """
        busy = self._busy_until_ps
        start = (now_ps if now_ps > busy else busy) + self._ctrl_latency_ps
        # Write buffer hit: serve from the persistent write buffer.
        if addr in self._wbuf_addr_counts:
            self._cdict[self._k_wbuf_hits] += 1
            return start
        (
            row_bytes, num_rows, region_rows, gaps,
            bank_busy, num_banks, capacity, read_ps, _write_ps,
            k_acc, k_reads, _k_writes, _wcounts,
        ) = self._fp
        row = (addr // row_bytes) % num_rows
        region = row // region_rows
        gap = gaps[region]
        physical = (row - region * region_rows + gap.start) % gap.num_lines
        if physical >= gap.gap:
            physical += 1
        media_addr = (
            (region * (region_rows + 1) + physical) * row_bytes
            + addr % row_bytes
        )
        bank = (media_addr % capacity) // row_bytes % num_banks
        t = bank_busy[bank]
        if start > t:
            t = start
        finish = t + read_ps
        bank_busy[bank] = finish
        self._def_reads += 1  # media access + read + ECC decode, batched
        self._busy_until_ps = start
        return finish

    def write(self, addr: int, now_ps: int) -> int:
        """Asynchronous write; returns *acceptance* time, not persist time.

        The persistent write buffer absorbs the 763 ns media write — the
        channel sees only the buffer-insert latency unless the buffer is
        full, in which case the caller stalls for one drain.  The
        buffer-full branch fuses the drained write's translate + media
        access and the incoming write's stall-point translate
        (arithmetic identical to :meth:`_drain_one_write` followed by
        ``device.bank_busy_until(translator.translate(addr))``).
        """
        busy = self._busy_until_ps
        start = (now_ps if now_ps > busy else busy) + self._ctrl_latency_ps
        self._cdict[self._k_ecc_encodes] += 1
        if len(self._write_buffer) >= self.write_buffer_entries:
            (
                row_bytes, num_rows, region_rows, gaps,
                bank_busy, num_banks, capacity, _read_ps, write_ps,
                k_acc, _k_reads, k_writes, wcounts,
            ) = self._fp
            # Retire the oldest buffered write to the media.
            drained_addr, ready_ps = self._write_buffer.popleft()
            wbuf_counts = self._wbuf_addr_counts
            remaining = wbuf_counts[drained_addr] - 1
            if remaining:
                wbuf_counts[drained_addr] = remaining
            else:
                del wbuf_counts[drained_addr]
            row = (drained_addr // row_bytes) % num_rows
            region = row // region_rows
            gap = gaps[region]
            physical = (row - region * region_rows + gap.start) % gap.num_lines
            if physical >= gap.gap:
                physical += 1
            media_addr = (
                (region * (region_rows + 1) + physical) * row_bytes
                + drained_addr % row_bytes
            )
            media_row = (media_addr % capacity) // row_bytes
            bank = media_row % num_banks
            t = start if start > ready_ps else ready_ps
            b = bank_busy[bank]
            if b > t:
                t = b
            finish = t + write_ps
            bank_busy[bank] = finish
            self._def_stall_writes += 1  # media access + write, batched
            wcounts[media_row] += 1
            if gap.record_write():
                # Start-Gap rotation: copy the line adjacent to the gap
                # into the gap slot — charged to the rows the copy
                # actually touches (post-move registers), mirroring
                # _drain_one_write.
                base = region * (region_rows + 1)
                copy_read = (base + gap.gap) * row_bytes
                copy_write = (
                    base + (gap.gap + 1) % (gap.num_lines + 1)
                ) * row_bytes
                gap_finish = self.device.access(copy_read, False, finish)
                self.device.access(copy_write, True, gap_finish)
                self._c_gap_rotations.add(1)
            self._c_wbuf_stalls.add(1)
            # Stall the channel until the drained write's slot frees:
            # translate the *incoming* address (post-rotation registers)
            # and read its media bank's horizon.
            row = (addr // row_bytes) % num_rows
            region = row // region_rows
            gap = gaps[region]
            physical = (row - region * region_rows + gap.start) % gap.num_lines
            if physical >= gap.gap:
                physical += 1
            in_media = (
                (region * (region_rows + 1) + physical) * row_bytes
                + addr % row_bytes
            )
            horizon = bank_busy[(in_media % capacity) // row_bytes % num_banks]
            if horizon > start:
                start = horizon
        self._write_buffer.append((addr, start))
        counts = self._wbuf_addr_counts
        counts[addr] = counts.get(addr, 0) + 1
        self._busy_until_ps = start
        return start

    def flush(self, now_ps: int) -> int:
        """Drain the whole write buffer; returns completion time."""
        t = now_ps
        while self._write_buffer:
            self._drain_one_write(t)
            t = max(t, self._busy_until_ps)
        return t

    # ---- Ohm-GPU extension hooks (orchestrated by repro.core) ----

    def snarf_write(self, addr: int, now_ps: int) -> int:
        """Auto-read/write: absorb data seen on the waveguide into XPoint.

        The controller hooked command/address/data/ECC off the memory
        route, so no second channel transfer is needed; only the media
        write (buffered) happens here.
        """
        self._c_snarfs.add(1)
        return self.write(addr, now_ps)

    @property
    def write_buffer_occupancy(self) -> int:
        return len(self._write_buffer)
