"""DDR-T: the asynchronous memory-channel protocol for XPoint.

DDR (deterministic timing) cannot carry XPoint's non-deterministic
latencies, so the memory controller talks to the XPoint controller via
DDR-T (Section II-C): commands are posted, the controller goes on to
serve other requests, and the XPoint controller raises a *ready*
message when data can be transferred.  Ohm-GPU reuses the same side
band for the swap/reverse-write handshakes.

This module models the message sequencing at transaction level — each
transaction walks an explicit state machine, and violations raise, which
the tests use to pin the protocol down.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

_txn_ids = itertools.count()


class TxnState(enum.Enum):
    POSTED = "posted"  # command sent, XPoint working
    READY = "ready"  # XPoint raised the ready signal
    TRANSFERRING = "transferring"  # data on the channel
    COMPLETE = "complete"


class TxnKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    SWAP = "swap"  # Ohm-GPU's SWAP-CMD rides the same side band


@dataclass(slots=True)
class DdrTTransaction:
    """One posted command and its lifecycle."""

    kind: TxnKind
    addr: int
    posted_ps: int
    txn_id: int = field(default_factory=lambda: next(_txn_ids))
    state: TxnState = TxnState.POSTED
    ready_ps: Optional[int] = None
    complete_ps: Optional[int] = None

    @property
    def service_latency_ps(self) -> int:
        if self.complete_ps is None:
            raise ValueError(f"transaction {self.txn_id} not complete")
        return self.complete_ps - self.posted_ps


class DdrTBus:
    """Posted-transaction tracker shared by MC and XPoint controller.

    The memory controller ``post``s commands and is free to do other
    work; the XPoint controller marks them ``ready``; the memory
    controller then claims the data transfer and ``complete``s them.
    A bounded number of transactions may be outstanding — the credit
    scheme real DDR-T uses for flow control.
    """

    __slots__ = ("max_outstanding", "_live", "completed")

    def __init__(self, max_outstanding: int = 64) -> None:
        if max_outstanding < 1:
            raise ValueError("need at least one credit")
        self.max_outstanding = max_outstanding
        self._live: Dict[int, DdrTTransaction] = {}
        self.completed = 0

    def post(self, kind: TxnKind, addr: int, now_ps: int) -> DdrTTransaction:
        """Post a command; raises when out of credits."""
        if len(self._live) >= self.max_outstanding:
            raise RuntimeError("DDR-T credit exhausted: too many outstanding")
        txn = DdrTTransaction(kind=kind, addr=addr, posted_ps=now_ps)
        self._live[txn.txn_id] = txn
        return txn

    def mark_ready(self, txn: DdrTTransaction, now_ps: int) -> None:
        """XPoint controller signals the data (or swap result) is ready."""
        if txn.txn_id not in self._live:
            raise KeyError(f"unknown transaction {txn.txn_id}")
        if txn.state is not TxnState.POSTED:
            raise RuntimeError(f"ready on a {txn.state.value} transaction")
        if now_ps < txn.posted_ps:
            raise ValueError("ready before the command was posted")
        txn.state = TxnState.READY
        txn.ready_ps = now_ps

    def begin_transfer(self, txn: DdrTTransaction) -> None:
        if txn.state is not TxnState.READY:
            raise RuntimeError("transfer before the ready signal")
        txn.state = TxnState.TRANSFERRING

    def complete(self, txn: DdrTTransaction, now_ps: int) -> None:
        if txn.state is not TxnState.TRANSFERRING:
            raise RuntimeError(f"complete on a {txn.state.value} transaction")
        if txn.ready_ps is not None and now_ps < txn.ready_ps:
            raise ValueError("completion before ready")
        txn.state = TxnState.COMPLETE
        txn.complete_ps = now_ps
        del self._live[txn.txn_id]
        self.completed += 1

    @property
    def outstanding(self) -> int:
        return len(self._live)

    def ready_transactions(self) -> list[DdrTTransaction]:
        """Transactions awaiting their data transfer, oldest first."""
        ready = [t for t in self._live.values() if t.state is TxnState.READY]
        return sorted(ready, key=lambda t: t.ready_ps or 0)
