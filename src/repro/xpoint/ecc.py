"""SECDED ECC codec (Hamming + overall parity).

The XPoint controller enables ECC on media accesses (Section III-A),
and the two-level mode stores cache metadata *inside* the ECC region of
each DRAM line (Section III-B).  This codec is a real single-error-
correcting / double-error-detecting Hamming code over 64-bit words so
the metadata-in-ECC trick can be exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

DATA_BITS = 64
# Hamming code: r parity bits cover 2**r - r - 1 data bits; r = 7 covers
# 120 >= 64.  Plus one overall parity bit for double-error detection.
PARITY_BITS = 7
CODE_BITS = DATA_BITS + PARITY_BITS + 1  # 72


@dataclass(frozen=True, slots=True)
class DecodeResult:
    data: int
    corrected: bool
    double_error: bool


class SecDedCodec:
    """Encode/decode 64-bit words into 72-bit SECDED codewords."""

    __slots__ = ("_data_positions",)

    def __init__(self) -> None:
        # Positions 1..71 (1-indexed); powers of two hold parity bits.
        self._data_positions = [
            p for p in range(1, DATA_BITS + PARITY_BITS + 1) if p & (p - 1) != 0
        ]
        assert len(self._data_positions) == DATA_BITS

    def encode(self, data: int) -> int:
        if not 0 <= data < (1 << DATA_BITS):
            raise ValueError("data must fit in 64 bits")
        code = 0
        for i, pos in enumerate(self._data_positions):
            if (data >> i) & 1:
                code |= 1 << pos
        for r in range(PARITY_BITS):
            p = 1 << r
            parity = 0
            for pos in range(1, DATA_BITS + PARITY_BITS + 1):
                if pos & p and (code >> pos) & 1:
                    parity ^= 1
            code |= parity << p
        overall = bin(code).count("1") & 1
        code |= overall << 0  # overall parity in position 0
        return code

    def decode(self, code: int) -> DecodeResult:
        if not 0 <= code < (1 << CODE_BITS):
            raise ValueError("codeword must fit in 72 bits")
        syndrome = 0
        for r in range(PARITY_BITS):
            p = 1 << r
            parity = 0
            for pos in range(1, DATA_BITS + PARITY_BITS + 1):
                if pos & p and (code >> pos) & 1:
                    parity ^= 1
            if parity:
                syndrome |= p
        overall = bin(code).count("1") & 1
        corrected = False
        double_error = False
        if syndrome and overall:
            if syndrome <= DATA_BITS + PARITY_BITS:
                # Single error at position ``syndrome`` — flip it.
                code ^= 1 << syndrome
                corrected = True
            else:
                # Syndrome points outside the codeword: >2 bit corruption.
                double_error = True
        elif syndrome and not overall:
            double_error = True
        elif not syndrome and overall:
            # Error in the overall parity bit itself.
            code ^= 1
            corrected = True
        data = 0
        for i, pos in enumerate(self._data_positions):
            if (code >> pos) & 1:
                data |= 1 << i
        return DecodeResult(data=data, corrected=corrected, double_error=double_error)
