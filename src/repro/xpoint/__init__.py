"""3D XPoint substrate: device timing, controller logic layer, Start-Gap
wear levelling and SECDED ECC (Section II-C / III-A)."""

from repro.xpoint.controller import XPointController
from repro.xpoint.ddrt import DdrTBus, DdrTTransaction, TxnKind, TxnState
from repro.xpoint.device import XPointDevice
from repro.xpoint.ecc import SecDedCodec
from repro.xpoint.translation import RegionTranslator
from repro.xpoint.wear_leveling import StartGap

__all__ = [
    "XPointDevice",
    "XPointController",
    "StartGap",
    "SecDedCodec",
    "RegionTranslator",
    "DdrTBus",
    "DdrTTransaction",
    "TxnKind",
    "TxnState",
]
