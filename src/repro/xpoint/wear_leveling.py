"""Start-Gap wear levelling (Qureshi et al., MICRO'09 [55]).

Ohm-GPU adopts Start-Gap precisely because it needs **no mapping table**
in an external DRAM buffer (Section III-A): the logical→physical
translation is two registers (``start`` and ``gap``) plus modular
arithmetic.  ``N`` logical lines live in ``N + 1`` physical slots; the
empty slot (the gap) rotates one position every ``period`` writes, and
each full rotation advances ``start`` by one.
"""

from __future__ import annotations


class StartGap:
    """Algebraic Start-Gap remapper over ``num_lines`` logical lines."""

    def __init__(self, num_lines: int, period: int = 100) -> None:
        if num_lines < 1:
            raise ValueError("need at least one line")
        if period < 1:
            raise ValueError("period must be >= 1")
        self.num_lines = num_lines
        self.period = period
        self.start = 0
        self.gap = num_lines  # physical index of the empty slot
        self._writes_since_move = 0
        self.gap_moves = 0

    def translate(self, logical: int) -> int:
        """Logical line -> physical slot (in ``[0, num_lines]``).

        The published formula [55]: ``PA = (LA + Start) mod N`` and then
        ``PA += 1`` when PA is at or past the gap — the +1 never wraps,
        which keeps the map injective.
        """
        if not 0 <= logical < self.num_lines:
            raise ValueError(f"logical line {logical} out of range")
        physical = (logical + self.start) % self.num_lines
        if physical >= self.gap:
            physical += 1
        return physical

    def record_write(self) -> bool:
        """Count one write; move the gap when the period elapses.

        Returns ``True`` when a gap move happened (the caller owes the
        media one extra line copy for the rotation).
        """
        self._writes_since_move += 1
        if self._writes_since_move < self.period:
            return False
        self._writes_since_move = 0
        self._move_gap()
        return True

    def _move_gap(self) -> None:
        self.gap_moves += 1
        if self.gap == 0:
            # One full rotation completed: every line has shifted one
            # slot; the start register absorbs it and the gap rewinds.
            self.gap = self.num_lines
            self.start = (self.start + 1) % self.num_lines
        else:
            self.gap -= 1

    def mapping(self) -> list[int]:
        """Full logical→physical map (test/debug helper)."""
        return [self.translate(i) for i in range(self.num_lines)]
