"""Start-Gap wear levelling (Qureshi et al., MICRO'09 [55]).

Ohm-GPU adopts Start-Gap precisely because it needs **no mapping table**
in an external DRAM buffer (Section III-A): the logical→physical
translation is two registers (``start`` and ``gap``) plus modular
arithmetic.  ``N`` logical lines live in ``N + 1`` physical slots; the
empty slot (the gap) rotates one position every ``period`` writes, and
each full rotation advances ``start`` by one.
"""

from __future__ import annotations


class StartGap:
    """Algebraic Start-Gap remapper over ``num_lines`` logical lines."""

    __slots__ = (
        "num_lines", "period", "start", "gap", "_writes_since_move",
        "gap_moves",
    )

    def __init__(self, num_lines: int, period: int = 100) -> None:
        if num_lines < 1:
            raise ValueError("need at least one line")
        if period < 1:
            raise ValueError("period must be >= 1")
        self.num_lines = num_lines
        self.period = period
        self.start = 0
        self.gap = num_lines  # physical index of the empty slot
        self._writes_since_move = 0
        self.gap_moves = 0

    def translate(self, logical: int) -> int:
        """Logical line -> physical slot (in ``[0, num_lines]``).

        The published formula [55]: ``PA = (LA + Start) mod N`` and then
        ``PA += 1`` when PA is at or past the gap — the +1 never wraps,
        which keeps the map injective.
        """
        if not 0 <= logical < self.num_lines:
            raise ValueError(f"logical line {logical} out of range")
        physical = (logical + self.start) % self.num_lines
        if physical >= self.gap:
            physical += 1
        return physical

    def record_write(self) -> bool:
        """Count one write; move the gap when the period elapses.

        Returns ``True`` when a gap move happened (the caller owes the
        media one extra line copy for the rotation).
        """
        self._writes_since_move += 1
        if self._writes_since_move < self.period:
            return False
        self._writes_since_move = 0
        self._move_gap()
        return True

    def advance(self, writes: int) -> int:
        """Bulk-account ``writes`` writes in closed form; returns gap moves.

        Equivalent to calling :meth:`record_write` ``writes`` times —
        the registers land in the identical state — but O(1), which is
        what lets wear scenarios push millions of writes through a
        region without a Python-level loop.  The algebra: the gap's
        offset from its rewind position cycles through ``num_lines + 1``
        slots, and each completed cycle bumps ``start`` once.
        """
        if writes < 0:
            raise ValueError("writes must be >= 0")
        total = self._writes_since_move + writes
        moves = total // self.period
        self._writes_since_move = total % self.period
        if moves:
            cycle = self.num_lines + 1
            off = self.num_lines - self.gap  # moves since the last rewind
            rewinds = (off + moves) // cycle
            self.gap = self.num_lines - (off + moves) % cycle
            self.start = (self.start + rewinds) % self.num_lines
            self.gap_moves += moves
        return moves

    def rotation_copy_slots(self) -> tuple[int, int]:
        """(read_slot, write_slot) of the copy the *last* gap move did.

        Moving the gap from slot ``g`` to ``g - 1`` (or the rewind wrap
        from ``0`` to ``num_lines``) physically copies the line that
        occupied the destination slot into the previously-empty slot —
        so with post-move registers the copy read the new gap's slot and
        wrote the slot just past it.
        """
        return self.gap, (self.gap + 1) % (self.num_lines + 1)

    def _move_gap(self) -> None:
        self.gap_moves += 1
        if self.gap == 0:
            # One full rotation completed: every line has shifted one
            # slot; the start register absorbs it and the gap rewinds.
            self.gap = self.num_lines
            self.start = (self.start + 1) % self.num_lines
        else:
            self.gap -= 1

    def mapping(self) -> list[int]:
        """Full logical→physical map (test/debug helper)."""
        return [self.translate(i) for i in range(self.num_lines)]
