"""The raw XPoint storage array.

Read/write latencies come from the Optane DC PMM measurement study the
paper cites ([27]/[28]): 190 ns reads, 763 ns writes.  Banks provide
limited internal concurrency; per-cell write counts feed the
wear-levelling analysis.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.config import XPointConfig
from repro.sim.engine import ns
from repro.sim.stats import Stats


class XPointDevice:
    """Bank-parallel XPoint array with asymmetric read/write latency."""

    __slots__ = (
        "cfg", "capacity_bytes", "read_ps", "write_ps", "stats", "name",
        "_bank_busy_until", "write_counts", "_c_accesses", "_c_writes",
        "_c_reads",
    )

    def __init__(
        self,
        cfg: XPointConfig,
        capacity_bytes: int,
        stats: Optional[Stats] = None,
        name: str = "xpoint",
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.cfg = cfg
        self.capacity_bytes = capacity_bytes
        self.read_ps = ns(cfg.read_ns)
        self.write_ps = ns(cfg.write_ns)
        self.stats = stats if stats is not None else Stats()
        self.name = name
        self._bank_busy_until = [0] * cfg.banks_per_device
        self.write_counts: Dict[int, int] = defaultdict(int)
        self._c_accesses = self.stats.counter(f"{name}.accesses")
        self._c_writes = self.stats.counter(f"{name}.writes")
        self._c_reads = self.stats.counter(f"{name}.reads")

    def _bank_of(self, addr: int) -> int:
        row = (addr % self.capacity_bytes) // self.cfg.row_bytes
        return row % self.cfg.banks_per_device

    def access(self, addr: int, is_write: bool, now_ps: int) -> int:
        """Perform a media access; returns completion time (ps)."""
        bank = self._bank_of(addr)
        start = max(now_ps, self._bank_busy_until[bank])
        latency = self.write_ps if is_write else self.read_ps
        finish = start + latency
        self._bank_busy_until[bank] = finish
        self._c_accesses.add(1)
        if is_write:
            self._c_writes.add(1)
            self.write_counts[addr % self.capacity_bytes // self.cfg.row_bytes] += 1
        else:
            self._c_reads.add(1)
        return finish

    def bank_busy_until(self, addr: int) -> int:
        return self._bank_busy_until[self._bank_of(addr)]

    @property
    def max_row_writes(self) -> int:
        """Worst-case per-row write count (wear-levelling quality metric)."""
        return max(self.write_counts.values(), default=0)

    @property
    def total_writes(self) -> int:
        return sum(self.write_counts.values())
