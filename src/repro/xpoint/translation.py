"""Logical→media address translation for the XPoint logic layer.

The translator composes region decode with Start-Gap wear levelling, so
the controller never needs a DRAM-resident mapping table (Section III-A
— the design goal the paper calls out when it folds the XPoint
controller into the XPoint logic layer).
"""

from __future__ import annotations

from repro.xpoint.wear_leveling import StartGap


class RegionTranslator:
    """Splits the XPoint space into regions, each with its own Start-Gap.

    Per-region Start-Gap keeps the extra-copy overhead of a gap move
    bounded to one region row instead of the whole device.
    """

    __slots__ = ("row_bytes", "num_rows", "region_rows", "num_regions", "_gaps")

    def __init__(
        self,
        capacity_bytes: int,
        row_bytes: int,
        region_rows: int = 256,
        start_gap_period: int = 100,
    ) -> None:
        if capacity_bytes < row_bytes:
            raise ValueError("capacity smaller than one row")
        self.row_bytes = row_bytes
        self.num_rows = capacity_bytes // row_bytes
        self.region_rows = min(region_rows, self.num_rows)
        self.num_regions = (self.num_rows + self.region_rows - 1) // self.region_rows
        self._gaps = [
            StartGap(self._rows_in_region(r), period=start_gap_period)
            for r in range(self.num_regions)
        ]

    def _rows_in_region(self, region: int) -> int:
        if region < self.num_regions - 1:
            return self.region_rows
        return self.num_rows - self.region_rows * (self.num_regions - 1)

    def translate(self, addr: int) -> int:
        """Translate a logical byte address into a media byte address."""
        if addr < 0:
            raise ValueError("negative address")
        row = (addr // self.row_bytes) % self.num_rows
        offset = addr % self.row_bytes
        region = row // self.region_rows
        local = row - region * self.region_rows
        physical_local = self._gaps[region].translate(local)
        # Physical rows in a region occupy region_rows + 1 slots; regions
        # are laid out back to back in the media address space.
        media_row = region * (self.region_rows + 1) + physical_local
        return media_row * self.row_bytes + offset

    def record_write(self, addr: int) -> bool:
        """Account a write; returns True when a gap rotation occurred."""
        row = (addr // self.row_bytes) % self.num_rows
        region = row // self.region_rows
        return self._gaps[region].record_write()

    def record_writes(self, addr: int, writes: int) -> int:
        """Bulk-account ``writes`` writes landing in ``addr``'s region.

        Closed-form (:meth:`StartGap.advance`); returns the number of
        gap rotations performed.  Wear scenarios use this to age a
        region by millions of writes without a per-write loop.
        """
        row = (addr // self.row_bytes) % self.num_rows
        region = row // self.region_rows
        return self._gaps[region].advance(writes)

    def rotation_copy_addrs(self, addr: int) -> tuple[int, int]:
        """Media byte addresses (read, write) of the last gap rotation
        in ``addr``'s region.

        A rotation copies the line adjacent to the gap into the gap
        slot — *not* the row whose write triggered the move.  Call with
        post-move registers (right after ``record_write`` returns True).
        """
        row = (addr // self.row_bytes) % self.num_rows
        region = row // self.region_rows
        read_slot, write_slot = self._gaps[region].rotation_copy_slots()
        base = region * (self.region_rows + 1)
        return (
            (base + read_slot) * self.row_bytes,
            (base + write_slot) * self.row_bytes,
        )

    def region_of(self, addr: int) -> int:
        """Region index an address decodes to (audit/scenario helper)."""
        return ((addr // self.row_bytes) % self.num_rows) // self.region_rows

    @property
    def gaps(self) -> list[StartGap]:
        """Per-region Start-Gap remappers (audit/scenario access)."""
        return self._gaps

    @property
    def total_gap_moves(self) -> int:
        return sum(g.gap_moves for g in self._gaps)
