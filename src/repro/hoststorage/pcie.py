"""PCIe DMA link between the host and the GPU.

One shared resource: all memory-controller slices of the Origin
platform fault pages through the same link, so its occupancy serializes
(the "data movement overhead" of Fig. 3a/3b).
"""

from __future__ import annotations

from typing import Optional

from repro.config import HostConfig
from repro.sim.engine import us
from repro.sim.stats import Stats


class HostLink:
    """Latency + bandwidth model of the host<->GPU PCIe path."""

    def __init__(
        self,
        cfg: HostConfig,
        stats: Optional[Stats] = None,
        bandwidth_scale_down: int = 1,
    ) -> None:
        self.cfg = cfg
        self.stats = stats if stats is not None else Stats()
        self._busy_until = 0
        self.latency_ps = us(cfg.pcie_latency_us)
        # GB/s -> bytes per picosecond.
        self._bytes_per_ps = (
            cfg.pcie_bandwidth_gb_per_s * 1e9 / 1e12 / bandwidth_scale_down
        )

    def transfer(self, now_ps: int, size_bytes: int) -> int:
        """Move ``size_bytes`` over the link; returns arrival time."""
        if size_bytes <= 0:
            raise ValueError("transfer needs a positive size")
        start = max(now_ps, self._busy_until)
        duration = max(1, int(round(size_bytes / self._bytes_per_ps)))
        self._busy_until = start + duration
        done = start + duration + self.latency_ps
        self.stats.add("pcie.bytes", size_bytes)
        self.stats.add("pcie.busy_ps", duration)
        self.stats.add("pcie.transfers")
        return done

    def busy_until(self) -> int:
        return self._busy_until
