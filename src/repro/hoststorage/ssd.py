"""A Z-NAND-class SSD model [57] for the Fig. 3 testbed."""

from __future__ import annotations

from typing import Optional

from repro.config import HostConfig
from repro.sim.engine import us
from repro.sim.stats import Stats


class Ssd:
    """Flat-latency, bandwidth-limited storage device."""

    # Z-SSD class sequential bandwidth.
    BANDWIDTH_GB_PER_S = 3.2

    def __init__(self, cfg: HostConfig, stats: Optional[Stats] = None) -> None:
        self.cfg = cfg
        self.stats = stats if stats is not None else Stats()
        self.read_latency_ps = us(cfg.ssd_read_latency_us)
        self.write_latency_ps = us(cfg.ssd_write_latency_us)
        self._bytes_per_ps = self.BANDWIDTH_GB_PER_S * 1e9 / 1e12
        self._busy_until = 0

    def access(self, now_ps: int, size_bytes: int, is_write: bool) -> int:
        """Read or write ``size_bytes``; returns completion time."""
        if size_bytes <= 0:
            raise ValueError("access needs a positive size")
        start = max(now_ps, self._busy_until)
        duration = max(1, int(round(size_bytes / self._bytes_per_ps)))
        self._busy_until = start + duration
        latency = self.write_latency_ps if is_write else self.read_latency_ps
        self.stats.add("ssd.bytes", size_bytes)
        self.stats.add("ssd.busy_ps", duration + latency)
        return start + duration + latency
