"""Host-side substrate: PCIe DMA link and SSD model.

Backs the Origin platform's page faults and the Fig. 3 motivation
study of a GPU+SSD integrated system.
"""

from repro.hoststorage.pcie import HostLink
from repro.hoststorage.ssd import Ssd
from repro.hoststorage.gpudirect import GpuSsdSystem, PhaseBreakdown

__all__ = ["HostLink", "Ssd", "GpuSsdSystem", "PhaseBreakdown"]
