"""GPU + SSD integrated-system model behind the Fig. 3 motivation study.

A large-scale application whose dataset exceeds GPU memory executes as
a loop of phases: read a chunk from the SSD (*storage*), DMA it into
GPU memory over PCIe and the electrical memory channels (*data move*),
then run the kernels over it (*GPU*).  Fig. 3a reports the time split
between the three; Fig. 3b zooms into the memory subsystem and splits
DMA vs DRAM-access time plus the DMA energy fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GB, SystemConfig
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class PhaseBreakdown:
    """Execution-time split of one workload on the GPU+SSD system."""

    workload: str
    data_move_frac: float
    storage_frac: float
    gpu_frac: float

    @property
    def movement_over_compute(self) -> float:
        """(storage + data move) time relative to GPU compute time."""
        if self.gpu_frac == 0:
            return float("inf")
        return (self.data_move_frac + self.storage_frac) / self.gpu_frac


@dataclass(frozen=True)
class MemoryBreakdown:
    """Fig. 3b: DMA share of memory-subsystem time and energy."""

    workload: str
    dma_time_frac: float
    dram_time_frac: float
    dma_energy_frac: float


class GpuSsdSystem:
    """Analytic phase model of the GPU+SSD testbed (Section II-B)."""

    # Effective SSD streaming bandwidth (multi-channel Z-NAND [57]).
    SSD_BW_GB_PER_S = 12.8
    # GDDR line access (row share + column + I/O): ~5 pJ/bit over a
    # 128 B line.  DMA energy per bit comes from the electrical-channel
    # config; the split reproduces Fig. 3b's ~19 % DMA energy share.
    DRAM_ACCESS_PJ = 600.0

    def __init__(self, cfg: SystemConfig, dataset_bytes: int = 32 * GB) -> None:
        self.cfg = cfg
        self.dataset_bytes = dataset_bytes
        gpu = cfg.gpu
        self._inst_per_s = gpu.num_sms * gpu.sm_freq_ghz * 1e9

    def _compute_seconds(self, spec: WorkloadSpec) -> float:
        """Kernel time: instructions implied by APKI and data reuse."""
        accesses = self.dataset_bytes / self.cfg.gpu.line_bytes * spec.compute_reuse
        instructions = accesses * 1000.0 / spec.apki
        return instructions / self._inst_per_s

    def _data_move_seconds(self) -> float:
        """PCIe in + results out."""
        pcie = self.cfg.host.pcie_bandwidth_gb_per_s * 1e9
        return 2.0 * self.dataset_bytes / pcie

    def _storage_seconds(self) -> float:
        return self.dataset_bytes / (self.SSD_BW_GB_PER_S * 1e9)

    def phase_breakdown(self, spec: WorkloadSpec) -> PhaseBreakdown:
        """Fig. 3a row for one workload."""
        gpu = self._compute_seconds(spec)
        move = self._data_move_seconds()
        storage = self._storage_seconds()
        total = gpu + move + storage
        return PhaseBreakdown(
            workload=spec.name,
            data_move_frac=move / total,
            storage_frac=storage / total,
            gpu_frac=gpu / total,
        )

    def memory_breakdown(self, spec: WorkloadSpec) -> MemoryBreakdown:
        """Fig. 3b row: inside the GPU memory subsystem."""
        # DMA writes of the dataset through the electrical channels.
        chan_bw_bits = self.cfg.electrical.total_bandwidth_bits_per_ns * 1e9
        dma_s = self.dataset_bytes * 8 / chan_bw_bits
        # Demand DRAM accesses: reuse-weighted line accesses, ~40 ns each.
        accesses = self.dataset_bytes / self.cfg.gpu.line_bytes * spec.compute_reuse
        dram_s = accesses * 40e-9 / self.cfg.electrical.num_channels
        total = dma_s + dram_s
        # Energy: per-bit DMA energy vs per-access DRAM energy.
        dma_pj = self.dataset_bytes * 8 * self.cfg.electrical.energy_pj_per_bit
        dram_pj = accesses * self.DRAM_ACCESS_PJ
        return MemoryBreakdown(
            workload=spec.name,
            dma_time_frac=dma_s / total,
            dram_time_frac=dram_s / total,
            dma_energy_frac=dma_pj / (dma_pj + dram_pj),
        )
