"""Cost estimation (Table III) and cost-performance ratios (Fig. 21).

Memory-device prices follow the market data the paper cites ([19],
[62]); MRR counts are Table III's published values (the paper derives
them from the Fig. 15 layouts across 24 memory devices); MRR
fabrication cost follows [22]; the VCSEL source is $100; the baseline
GPU is an NVIDIA K80 at its $5,000 launch price.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import MemoryMode

K80_LAUNCH_PRICE = 5_000.0
VCSEL_PRICE = 100.0
# Fabrication cost per MRR implied by Table III ($3 for 2112 rings).
MRR_UNIT_PRICE = 3.0 / 2112.0
# $/GB implied by Table III's device prices.
DRAM_PRICE_PER_GB = 140.0 / 12.0
XPOINT_PRICE_PER_GB = 125.0 / 96.0


@dataclass(frozen=True)
class MrrCounts:
    modulators: int
    detectors: int

    @property
    def total(self) -> int:
        return self.modulators + self.detectors

    @property
    def price(self) -> float:
        return self.total * MRR_UNIT_PRICE


@dataclass(frozen=True)
class MemoryBillOfMaterials:
    """One column of Table III."""

    mode: MemoryMode
    dram_gb: int
    dram_price: float
    xpoint_gb: int
    xpoint_price: float
    mrr_base: MrrCounts  # Ohm-base
    mrr_bw: MrrCounts  # Ohm-BW

    def platform_memory_cost(self, platform_name: str) -> float:
        """Added memory-system cost for one platform."""
        devices = self.dram_price + self.xpoint_price
        if platform_name in ("Origin",):
            return 0.0  # stock K80 memory, already in the launch price
        if platform_name == "Hetero":
            return devices  # electrical channel: no photonics
        mrr = self.mrr_bw if platform_name in ("Ohm-WOM", "Ohm-BW") else self.mrr_base
        return devices + mrr.price + VCSEL_PRICE

    def oracle_memory_cost(self) -> float:
        """Oracle: DRAM at the full heterogeneous capacity."""
        capacity_gb = self.dram_gb + self.xpoint_gb
        return capacity_gb * DRAM_PRICE_PER_GB + self.mrr_base.price + VCSEL_PRICE


# Table III, planar memory column: 12 GB DRAM (1GB x 12) + 96 GB XPoint
# (8GB x 12).
PLANAR_BOM = MemoryBillOfMaterials(
    mode=MemoryMode.PLANAR,
    dram_gb=12,
    dram_price=140.0,
    xpoint_gb=96,
    xpoint_price=125.0,
    mrr_base=MrrCounts(2112, 2112),
    mrr_bw=MrrCounts(2176, 3136),
)

# Table III, two-level column: 6 GB DRAM (1GB x 6) + 384 GB XPoint
# (32GB x 12).
TWO_LEVEL_BOM = MemoryBillOfMaterials(
    mode=MemoryMode.TWO_LEVEL,
    dram_gb=6,
    dram_price=70.0,
    xpoint_gb=384,
    xpoint_price=499.0,
    mrr_base=MrrCounts(2368, 2368),
    mrr_bw=MrrCounts(2368, 4928),
)


def bom_for_mode(mode: MemoryMode) -> MemoryBillOfMaterials:
    return PLANAR_BOM if mode is MemoryMode.PLANAR else TWO_LEVEL_BOM


class CostModel:
    """Total platform cost and cost-performance ratios."""

    def __init__(self, mode: MemoryMode) -> None:
        self.mode = mode
        self.bom = bom_for_mode(mode)

    def platform_cost(self, platform_name: str) -> float:
        if platform_name == "Oracle":
            return K80_LAUNCH_PRICE + self.bom.oracle_memory_cost()
        return K80_LAUNCH_PRICE + self.bom.platform_memory_cost(platform_name)

    def cost_increase_fraction(self, platform_name: str) -> float:
        """Added cost relative to the stock K80 (paper: +7.6 % planar,
        +13.5 % two-level for Ohm-BW)."""
        return self.platform_cost(platform_name) / K80_LAUNCH_PRICE - 1.0

    def cost_performance(self, platform_name: str, performance: float) -> float:
        """Performance per normalized dollar (Fig. 21's CP ratio)."""
        return performance / (self.platform_cost(platform_name) / K80_LAUNCH_PRICE)
