"""Cost model for Table III and the Fig. 21 cost-performance analysis."""

from repro.cost.model import (
    CostModel,
    MemoryBillOfMaterials,
    PLANAR_BOM,
    TWO_LEVEL_BOM,
    K80_LAUNCH_PRICE,
)

__all__ = [
    "CostModel",
    "MemoryBillOfMaterials",
    "PLANAR_BOM",
    "TWO_LEVEL_BOM",
    "K80_LAUNCH_PRICE",
]
