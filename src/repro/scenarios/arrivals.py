"""Seeded tenant-arrival processes for open-loop scenarios.

Three canonical shapes, all driven by one ``random.Random(seed)`` so an
arrival stream is a pure function of ``(process, seed, horizon, rate)``:

* **poisson** — homogeneous: i.i.d. exponential inter-arrival gaps.
* **bursty** — on-off modulated: a square wave gates a Poisson process
  running at ``rate / on_fraction`` during on-phases, so the long-run
  mean rate still equals ``rate`` but arrivals cluster into bursts.
* **diurnal** — sinusoidal intensity ``rate * (1 + depth * sin(...))``
  realized by thinning a dominating homogeneous process — the classic
  Lewis–Shedler construction, which keeps the stream exact for any
  intensity bounded by ``rate * (1 + depth)``.

Times are integer picoseconds (the simulator's clock); rates are given
in arrivals **per picosecond** by the caller, who derives them from the
measured per-class service times so a scenario's offered load is
sizing-independent.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

ARRIVAL_KINDS = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class ArrivalProcess:
    """Declarative description of one arrival process.

    ``offered_load`` is the target long-run utilization of the scenario's
    SM capacity (0.8 = arrivals consume 80% of what the slots can serve);
    the open-loop runner converts it to an absolute rate using the
    measured mean service time.  ``period_frac`` sets the modulation
    period of bursty/diurnal shapes as a fraction of the horizon, so the
    same spec produces the same *shape* at any sizing.
    """

    kind: str = "poisson"
    offered_load: float = 0.8
    on_fraction: float = 0.25  # bursty: duty cycle of the on phase
    period_frac: float = 0.1  # bursty/diurnal: period / horizon
    depth: float = 0.9  # diurnal: modulation depth in [0, 1]

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; pick from {ARRIVAL_KINDS}"
            )
        if self.offered_load <= 0:
            raise ValueError("offered_load must be positive")
        if not 0 < self.on_fraction <= 1:
            raise ValueError("on_fraction must be in (0, 1]")
        if not 0 < self.period_frac <= 1:
            raise ValueError("period_frac must be in (0, 1]")
        if not 0 <= self.depth <= 1:
            raise ValueError("depth must be in [0, 1]")


def arrival_times_ps(
    process: ArrivalProcess, rate_per_ps: float, horizon_ps: int, seed: int
) -> List[int]:
    """Materialize every arrival in ``[0, horizon_ps)`` as integer ps.

    Deterministic for fixed arguments; the stream is generated in time
    order with a single RNG, so no reordering can change it.
    """
    if rate_per_ps <= 0:
        raise ValueError("rate must be positive")
    if horizon_ps <= 0:
        raise ValueError("horizon must be positive")
    rng = random.Random(seed)
    out: List[int] = []
    if process.kind == "poisson":
        t = 0.0
        while True:
            t += rng.expovariate(rate_per_ps)
            if t >= horizon_ps:
                break
            out.append(int(t))
    elif process.kind == "bursty":
        period = process.period_frac * horizon_ps
        on_len = process.on_fraction * period
        peak = rate_per_ps / process.on_fraction
        t = 0.0
        while True:
            t += rng.expovariate(peak)
            if t >= horizon_ps:
                break
            if (t % period) < on_len:  # square-wave gate
                out.append(int(t))
    else:  # diurnal: thinning against the peak intensity
        period = process.period_frac * horizon_ps
        peak = rate_per_ps * (1.0 + process.depth)
        t = 0.0
        while True:
            t += rng.expovariate(peak)
            if t >= horizon_ps:
                break
            intensity = rate_per_ps * (
                1.0 + process.depth * math.sin(2.0 * math.pi * t / period)
            )
            if rng.random() * peak < intensity:
                out.append(int(t))
    return out
