"""The open-loop scenario runner: arrivals, admission, SLOs, degradation.

Execution has two layers:

1. **Service measurement** — each tenant class's solo service time is
   one closed-loop :class:`SimulationJob` run through the harness
   :class:`Runner` (result cache, batch journaling, serial or parallel
   executor, streamed or materialized traces — all of PR 1/4/7's
   machinery, so measurements are cached, crash-resumable and
   bit-identical across execution strategies).
2. **Open-loop queueing** — tenants arrive by the spec's seeded process,
   queue FIFO for SM capacity slots (admission rejects arrivals once the
   queue is full), run for their measured service time stretched by the
   active degradation epoch, and report per-tenant latency percentiles,
   queueing delay and SLO violations.

Everything is integer picoseconds and every tie in the event loop is
broken by an explicit sequence number, so a scenario result — and its
SHA-256 fingerprint — is a pure function of ``(spec, RunConfig)``.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import MemoryMode
from repro.harness.executor import SimulationJob
from repro.harness.runner import Runner
from repro.scenarios.arrivals import arrival_times_ps
from repro.scenarios.degradation import Schedule, build_schedule
from repro.scenarios.spec import ScenarioSpec
from repro.sim.audit import Auditor
from repro.sim.stats import Histogram
from repro.workloads.compose import tenant_assignment

#: Sojourn/queueing histograms use this many bins per mean service time;
#: percentiles are reported at bin resolution.
BINS_PER_SERVICE = 50


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one open-loop scenario run (fingerprintable)."""

    scenario: str
    seed: int
    horizon_ps: int
    capacity_slots: int
    rate_per_ps: float
    totals: Dict[str, int]
    tenants: Dict[str, Dict[str, float]]
    degradation: Dict[str, float]
    checks_run: int = 0  # excluded from the fingerprint (validate-invariant)

    def to_dict(self) -> Dict:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "horizon_ps": self.horizon_ps,
            "capacity_slots": self.capacity_slots,
            "rate_per_ps": self.rate_per_ps,
            "totals": dict(self.totals),
            "tenants": {k: dict(v) for k, v in self.tenants.items()},
            "degradation": dict(self.degradation),
        }

    def fingerprint(self) -> str:
        """Canonical SHA-256 over the result (same idiom as RunResult)."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def _scenario_seed(spec: ScenarioSpec, run_seed: int) -> int:
    """Mix the spec's seed with the RunConfig seed (both matter)."""
    return spec.seed * 1_000_003 + run_seed


def run_scenario(
    spec: ScenarioSpec,
    runner: Optional[Runner] = None,
    validate: bool = False,
) -> ScenarioResult:
    """Run one open-loop scenario; audit it when ``validate`` is set.

    ``runner`` supplies sizing (``run_cfg``), caching, journaling and
    the executor; ``validate`` additionally audits the service-time GPU
    runs themselves (``run_cfg.validate`` is respected if already set).
    """
    runner = runner or Runner()
    run_cfg = runner.run_cfg
    validate = validate or run_cfg.validate

    # ---- layer 1: measured solo service times (cached, journaled) ----
    jobs = [
        SimulationJob(t.platform, t.workload, MemoryMode(t.mode), run_cfg)
        for t in spec.tenants
    ]
    results = runner.run_jobs(jobs)  # Dict[job, RunResult], memo/cache-aware
    service_ps = [int(results[j].exec_time_ps) for j in jobs]
    if any(s <= 0 for s in service_ps):
        raise ValueError(f"{spec.name}: a tenant class measured zero service time")

    weights = [t.weight for t in spec.tenants]
    total_w = sum(weights)
    mean_service = sum(w * s for w, s in zip(weights, service_ps)) / total_w
    mean_demand = sum(
        w * s * t.slots for w, s, t in zip(weights, service_ps, spec.tenants)
    ) / total_w
    horizon_ps = int(spec.horizon_services * mean_service)
    rate_per_ps = spec.arrivals.offered_load * spec.capacity_slots / mean_demand

    seed = _scenario_seed(spec, run_cfg.seed)
    arrivals = arrival_times_ps(spec.arrivals, rate_per_ps, horizon_ps, seed)
    classes = tenant_assignment(weights, len(arrivals)) if arrivals else []
    schedule: Optional[Schedule] = build_schedule(
        spec.degradation, spec.num_epochs, seed + 1
    )

    # ---- layer 2: the open-loop queueing simulation ------------------
    ntc = len(spec.tenants)
    slo_ps = [
        int(t.slo_multiplier * s) for t, s in zip(spec.tenants, service_ps)
    ]
    bin_width = max(1, int(mean_service) // BINS_PER_SERVICE)
    sojourn = [Histogram(bin_width) for _ in range(ntc)]
    qdelay = [Histogram(bin_width) for _ in range(ntc)]
    n_arrived = [0] * ntc
    n_rejected = [0] * ntc
    n_dispatched = [0] * ntc
    n_completed = [0] * ntc
    n_slo = [0] * ntc
    qdelay_total = [0] * ntc

    def epoch_of(t: int) -> int:
        return min(spec.num_epochs - 1, t * spec.num_epochs // horizon_ps)

    def scales(t: int) -> tuple:
        if schedule is None:
            return 1.0, 1.0
        st = schedule.state(epoch_of(t))
        return st.service_scale, st.capacity_scale

    queue: deque = deque()  # (arrival_ps, class_idx)
    running: List = []  # heap of (finish_ps, seq, class_idx, arrival_ps)
    seq = 0
    used_slots = 0
    max_used = 0
    max_queued = 0

    def dispatch(now: int) -> None:
        nonlocal seq, used_slots, max_used
        svc_scale, cap_scale = scales(now)
        eff_cap = max(1, int(spec.capacity_slots * cap_scale + 0.5))
        while queue:
            arr_ps, cls = queue[0]
            slots = spec.tenants[cls].slots
            if used_slots + slots > eff_cap:
                break  # FIFO: no skipping past the head
            queue.popleft()
            delay = now - arr_ps
            qdelay[cls].record(delay)
            qdelay_total[cls] += delay
            n_dispatched[cls] += 1
            used_slots += slots
            if used_slots > max_used:
                max_used = used_slots
            service = int(service_ps[cls] * svc_scale)
            heapq.heappush(running, (now + service, seq, cls, arr_ps))
            seq += 1

    ai = 0
    n = len(arrivals)
    while True:
        next_done = running[0][0] if running else None
        next_arr = arrivals[ai] if ai < n else None
        if next_done is not None and (next_arr is None or next_done <= next_arr):
            if next_done > horizon_ps:
                break  # everything left in `running` is in flight
            finish, _, cls, arr_ps = heapq.heappop(running)
            used_slots -= spec.tenants[cls].slots
            n_completed[cls] += 1
            total_latency = finish - arr_ps
            sojourn[cls].record(total_latency)
            if total_latency > slo_ps[cls]:
                n_slo[cls] += 1
            dispatch(finish)
        elif next_arr is not None:
            cls = classes[ai]
            ai += 1
            n_arrived[cls] += 1
            if len(queue) >= spec.queue_limit:
                n_rejected[cls] += 1
            else:
                queue.append((next_arr, cls))
                if len(queue) > max_queued:
                    max_queued = len(queue)
                dispatch(next_arr)
        else:
            break

    in_flight = [0] * ntc
    for _, _, cls, _ in running:
        in_flight[cls] += 1
    for _, cls in queue:
        in_flight[cls] += 1

    # ---- report ------------------------------------------------------
    tenants: Dict[str, Dict[str, float]] = {}
    for i, t in enumerate(spec.tenants):
        admitted = n_arrived[i] - n_rejected[i]
        tenants[t.name] = {
            "arrivals": n_arrived[i],
            "admitted": admitted,
            "rejected": n_rejected[i],
            "completed": n_completed[i],
            "in_flight": in_flight[i],
            "slo_violations": n_slo[i],
            "slo_ps": slo_ps[i],
            "service_solo_ps": service_ps[i],
            "p50_latency_ps": sojourn[i].percentile(50),
            "p99_latency_ps": sojourn[i].percentile(99),
            "p50_queue_ps": qdelay[i].percentile(50),
            "p99_queue_ps": qdelay[i].percentile(99),
            "mean_queue_ps": (
                qdelay_total[i] / n_dispatched[i] if n_dispatched[i] else 0.0
            ),
        }
    totals = {
        "arrivals": sum(n_arrived),
        "admitted": sum(n_arrived) - sum(n_rejected),
        "rejected": sum(n_rejected),
        "completed": sum(n_completed),
        "in_flight": sum(in_flight),
        "slo_violations": sum(n_slo),
        "max_slots_used": max_used,
        "max_queued": max_queued,
    }

    checks_run = 0
    if validate:
        auditor = Auditor(strict=False)
        _audit_scenario(
            auditor, spec, totals, tenants,
            sojourn, qdelay, n_dispatched, in_flight, schedule,
        )
        checks_run = auditor.checks_run
        auditor.raise_if_violations()

    return ScenarioResult(
        scenario=spec.name,
        seed=run_cfg.seed,
        horizon_ps=horizon_ps,
        capacity_slots=spec.capacity_slots,
        rate_per_ps=rate_per_ps,
        totals=totals,
        tenants=tenants,
        degradation=schedule.report() if schedule is not None else {},
        checks_run=checks_run,
    )


def _audit_scenario(
    auditor: Auditor,
    spec: ScenarioSpec,
    totals: Dict[str, int],
    tenants: Dict[str, Dict[str, float]],
    sojourn: List[Histogram],
    qdelay: List[Histogram],
    n_dispatched: List[int],
    in_flight: List[int],
    schedule: Optional[Schedule],
) -> None:
    """Open-loop conservation: every arrival is accounted for exactly once."""
    auditor.check_equal(
        "scenario.admission", spec.name,
        totals["arrivals"],
        totals["admitted"] + totals["rejected"],
        "arrivals != admitted + rejected",
    )
    auditor.check_equal(
        "scenario.completion", spec.name,
        totals["admitted"],
        totals["completed"] + totals["in_flight"],
        "admitted != completed + in-flight",
    )
    auditor.check(
        "scenario.capacity", spec.name,
        totals["max_slots_used"] <= spec.capacity_slots,
        "more slots in use than SM capacity",
        expected=spec.capacity_slots,
        actual=totals["max_slots_used"],
    )
    auditor.check(
        "scenario.queue_bound", spec.name,
        totals["max_queued"] <= spec.queue_limit,
        "queue grew past the admission limit",
        expected=spec.queue_limit,
        actual=totals["max_queued"],
    )
    for i, t in enumerate(spec.tenants):
        m = tenants[t.name]
        auditor.check_equal(
            "scenario.tenant_admission", t.name,
            m["arrivals"], m["admitted"] + m["rejected"],
            "per-tenant arrivals != admitted + rejected",
        )
        auditor.check_equal(
            "scenario.tenant_completion", t.name,
            m["admitted"], m["completed"] + m["in_flight"],
            "per-tenant admitted != completed + in-flight",
        )
        auditor.check_equal(
            "scenario.latency_samples", t.name,
            sojourn[i].count, m["completed"],
            "latency histogram count != completions",
        )
        auditor.check_equal(
            "scenario.queue_samples", t.name,
            qdelay[i].count, n_dispatched[i],
            "queueing histogram count != dispatches",
        )
        running = n_dispatched[i] - int(m["completed"])
        auditor.check(
            "scenario.dispatch_split", t.name,
            0 <= running <= in_flight[i],
            "dispatched-but-not-completed jobs outside [0, in-flight]",
            expected=in_flight[i],
            actual=running,
        )
        auditor.check(
            "scenario.slo_bound", t.name,
            m["slo_violations"] <= m["completed"],
            "more SLO violations than completions",
            expected=m["completed"],
            actual=m["slo_violations"],
        )
    if schedule is not None:
        schedule.audit(auditor)
