"""Open-loop traffic scenarios: arrivals, SLOs and degradation.

The layer that turns the closed-loop figure-reproducer into a
capacity-planning tool (ROADMAP item 4): tenants *arrive* by a seeded
process, queue for SM capacity under an admission policy, and report
per-tenant latency percentiles, queueing delay and SLO violations while
time-varying degradation schedules age the hardware models the paper
already implies — Start-Gap wear, BER drift, wavelength drift, channel
failures.  See DESIGN.md §14 and docs/SCENARIOS.md.
"""

from repro.scenarios.arrivals import ARRIVAL_KINDS, ArrivalProcess, arrival_times_ps
from repro.scenarios.degradation import (
    DEGRADATION_KINDS,
    DegradationSpec,
    build_schedule,
)
from repro.scenarios.openloop import ScenarioResult, run_scenario
from repro.scenarios.spec import (
    SCENARIOS,
    ScenarioSpec,
    TenantClass,
    get_scenario,
    register_scenario,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "arrival_times_ps",
    "DEGRADATION_KINDS",
    "DegradationSpec",
    "build_schedule",
    "ScenarioResult",
    "run_scenario",
    "SCENARIOS",
    "ScenarioSpec",
    "TenantClass",
    "get_scenario",
    "register_scenario",
]
