"""Time-varying degradation schedules for open-loop scenarios.

Each schedule divides the scenario horizon into epochs and, per epoch,
(a) drives the *real* hardware model the degradation lives in —
:class:`~repro.optical.ber.BerModel` for laser aging,
:class:`~repro.xpoint.translation.RegionTranslator`/Start-Gap for XPoint
wear, :class:`~repro.optical.dynamic.DynamicWavelengthAllocator` for
wavelength drift — and (b) folds the effect back into the queueing model
as a pair of multipliers:

* ``service_scale`` — how much longer a job dispatched in this epoch
  takes (retransmissions under BER drift, write amplification under
  wear, retuning stalls under drift);
* ``capacity_scale`` — what fraction of SM capacity is available
  (channel failures take slots away until recovery).

Schedules are declared as a frozen :class:`DegradationSpec` (so
scenario specs stay hashable/fingerprintable) and realized by
:func:`build_schedule`; realization is deterministic for a fixed
``(spec, seed, num_epochs)``.  Every schedule knows how to audit its own
conservation story under ``--validate``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import OpticalChannelConfig
from repro.optical.ber import BerModel
from repro.optical.dynamic import DynamicWavelengthAllocator
from repro.optical.power import OpticalPowerModel
from repro.sim.audit import Auditor, check_startgap
from repro.xpoint.translation import RegionTranslator

DEGRADATION_KINDS = ("ber_drift", "xpoint_wear", "channel_flap", "wavelength_drift")

#: Retransmission factor is capped here: past it the link is considered
#: dead and the scenario should be showing SLO violations, not modelling
#: ever-longer retries.
MAX_RETRANSMIT_FACTOR = 4.0


@dataclass(frozen=True)
class DegradationSpec:
    """Declarative degradation description (hashable, fingerprintable).

    ``params`` is a tuple of ``(key, value)`` pairs so the spec stays
    frozen; :func:`build_schedule` turns it back into kwargs.
    """

    kind: str
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in DEGRADATION_KINDS:
            raise ValueError(
                f"unknown degradation kind {self.kind!r}; "
                f"pick from {DEGRADATION_KINDS}"
            )

    def kwargs(self) -> Dict[str, float]:
        return dict(self.params)


@dataclass
class EpochState:
    service_scale: float = 1.0
    capacity_scale: float = 1.0


class Schedule:
    """Base: a realized degradation schedule over ``num_epochs`` epochs."""

    kind = "none"

    def __init__(self, num_epochs: int, seed: int) -> None:
        if num_epochs < 1:
            raise ValueError("need at least one epoch")
        self.num_epochs = num_epochs
        self.seed = seed
        self.epochs: List[EpochState] = []

    def state(self, epoch: int) -> EpochState:
        return self.epochs[min(epoch, self.num_epochs - 1)]

    def report(self) -> Dict[str, float]:
        """Scalar summary folded into the scenario result (sorted keys)."""
        raise NotImplementedError

    def audit(self, auditor: Auditor) -> None:
        """Kind-specific conservation checks (run under ``--validate``)."""


class BerDriftSchedule(Schedule):
    """Laser aging: received power decays, BER climbs, reads retransmit.

    Power at epoch ``e`` is ``1 - (1 - end_power_frac) * e / (E - 1)``
    of nominal; the BER comes from the calibrated receiver model and the
    service scale is the expected transmissions per line,
    ``1 / (1 - p_line)`` with ``p_line = 1 - (1 - BER)^bits_per_line``,
    capped at :data:`MAX_RETRANSMIT_FACTOR`.
    """

    kind = "ber_drift"

    def __init__(
        self,
        num_epochs: int,
        seed: int,
        end_power_frac: float = 0.25,
        bits_per_line: float = 1024,
    ) -> None:
        super().__init__(num_epochs, seed)
        if not 0 < end_power_frac <= 1:
            raise ValueError("end_power_frac must be in (0, 1]")
        cfg = OpticalChannelConfig()
        self.model = BerModel.calibrated(cfg)
        nominal_mw = OpticalPowerModel(cfg).demand_path().received_power_mw
        self.bers: List[float] = []
        for e in range(num_epochs):
            frac = 1.0 - (1.0 - end_power_frac) * (
                e / (num_epochs - 1) if num_epochs > 1 else 1.0
            )
            ber = self.model.ber(nominal_mw * frac)
            p_line = 1.0 - (1.0 - ber) ** bits_per_line
            if p_line >= 1.0 - 1.0 / MAX_RETRANSMIT_FACTOR:
                scale = MAX_RETRANSMIT_FACTOR
            else:
                scale = min(MAX_RETRANSMIT_FACTOR, 1.0 / (1.0 - p_line))
            self.bers.append(ber)
            self.epochs.append(EpochState(service_scale=scale))

    def report(self) -> Dict[str, float]:
        return {
            "ber_initial": self.bers[0],
            "ber_final": self.bers[-1],
            "retransmit_factor_final": self.epochs[-1].service_scale,
        }

    def audit(self, auditor: Auditor) -> None:
        for e, ber in enumerate(self.bers):
            auditor.check(
                "scenario.ber_range",
                f"epoch{e}",
                0.0 <= ber <= 0.5,
                "BER outside [0, 0.5]",
                expected=0.5,
                actual=ber,
            )
        auditor.check(
            "scenario.ber_monotone",
            "drift",
            all(a <= b + 1e-18 for a, b in zip(self.bers, self.bers[1:])),
            "BER decreased while power decayed",
            expected="non-decreasing",
            actual=self.bers,
        )


class XPointWearSchedule(Schedule):
    """Millions of background writes age a real Start-Gap translator.

    Each epoch pushes ``writes_per_epoch`` writes (spread round-robin
    over the regions) through :meth:`RegionTranslator.record_writes` —
    the closed-form bulk path — and the service scale follows the write
    amplification ``(writes + 2 * gap_moves) / writes`` weighted by the
    workload's write share: every gap rotation costs the media one extra
    read and one extra write.
    """

    kind = "xpoint_wear"

    def __init__(
        self,
        num_epochs: int,
        seed: int,
        writes_per_epoch: float = 2_000_000,
        write_share: float = 0.5,
        capacity_bytes: float = 1 << 22,
        row_bytes: float = 256,
        start_gap_period: float = 100,
    ) -> None:
        super().__init__(num_epochs, seed)
        if writes_per_epoch < 1:
            raise ValueError("writes_per_epoch must be >= 1")
        if not 0 <= write_share <= 1:
            raise ValueError("write_share must be in [0, 1]")
        self.translator = RegionTranslator(
            int(capacity_bytes),
            int(row_bytes),
            start_gap_period=int(start_gap_period),
        )
        self.writes_per_epoch = int(writes_per_epoch)
        self.total_writes = 0
        regions = self.translator.num_regions
        region_rows = self.translator.region_rows
        for e in range(num_epochs):
            base, extra = divmod(self.writes_per_epoch, regions)
            moves = 0
            for r in range(regions):
                # Round-robin the epoch's writes over the regions; the
                # remainder rotates with the epoch so no region is
                # systematically favoured.
                n = base + (1 if (r + e) % regions < extra else 0)
                addr = r * region_rows * int(row_bytes)
                moves += self.translator.record_writes(addr, n)
            self.total_writes += self.writes_per_epoch
            writes = self.writes_per_epoch
            amp = (writes + 2.0 * moves) / writes
            self.epochs.append(
                EpochState(service_scale=1.0 + write_share * (amp - 1.0))
            )

    def report(self) -> Dict[str, float]:
        writes = self.total_writes
        moves = self.translator.total_gap_moves
        return {
            "wear_total_writes": float(writes),
            "wear_gap_moves": float(moves),
            "wear_write_amplification": (writes + 2.0 * moves) / writes,
        }

    def audit(self, auditor: Auditor) -> None:
        # The translator aged outside any GPU run: its rotation count is
        # its own ground truth, and the register/permutation invariants
        # must hold after millions of writes.
        check_startgap(
            auditor, "scenario.wear", self.translator,
            self.translator.total_gap_moves,
        )
        period = self.translator.gaps[0].period
        auditor.check_equal(
            "scenario.wear_moves",
            "wear",
            self.translator.total_gap_moves,
            sum(
                (self._region_writes(r)) // period
                for r in range(self.translator.num_regions)
            ),
            "gap moves != per-region writes // period",
        )

    def _region_writes(self, region: int) -> int:
        """Writes this schedule pushed into ``region`` across epochs."""
        regions = self.translator.num_regions
        base, extra = divmod(self.writes_per_epoch, regions)
        total = 0
        for e in range(self.num_epochs):
            total += base + (1 if (region + e) % regions < extra else 0)
        return total


class ChannelFlapSchedule(Schedule):
    """Seeded channel failure/recovery injection.

    Each epoch, every *up* channel fails with ``fail_prob`` and every
    *down* channel recovers with ``recover_prob`` (all draws from one
    seeded RNG, in channel order).  Capacity scales with the up
    fraction; at least one channel is always kept up so the scenario
    degrades rather than deadlocks.
    """

    kind = "channel_flap"

    def __init__(
        self,
        num_epochs: int,
        seed: int,
        num_channels: float = 6,
        fail_prob: float = 0.15,
        recover_prob: float = 0.5,
    ) -> None:
        super().__init__(num_epochs, seed)
        n = int(num_channels)
        if n < 1:
            raise ValueError("need at least one channel")
        if not 0 <= fail_prob <= 1 or not 0 <= recover_prob <= 1:
            raise ValueError("probabilities must be in [0, 1]")
        rng = random.Random(seed)
        up = [True] * n
        self.failures = 0
        self.recoveries = 0
        self.up_history: List[int] = []
        for _ in range(num_epochs):
            for i in range(n):
                if up[i]:
                    if sum(up) > 1 and rng.random() < fail_prob:
                        up[i] = False
                        self.failures += 1
                elif rng.random() < recover_prob:
                    up[i] = True
                    self.recoveries += 1
            live = sum(up)
            self.up_history.append(live)
            self.epochs.append(EpochState(capacity_scale=live / n))
        self.still_down = n - sum(up)

    def report(self) -> Dict[str, float]:
        return {
            "chan_failures": float(self.failures),
            "chan_recoveries": float(self.recoveries),
            "chan_min_up": float(min(self.up_history)),
        }

    def audit(self, auditor: Auditor) -> None:
        auditor.check_equal(
            "scenario.chan_episodes",
            "flap",
            self.failures,
            self.recoveries + self.still_down,
            "failures != recoveries + channels still down",
        )
        auditor.check(
            "scenario.chan_liveness",
            "flap",
            min(self.up_history) >= 1,
            "all channels down in some epoch",
            expected=1,
            actual=min(self.up_history),
        )


class WavelengthDriftSchedule(Schedule):
    """Skewed per-epoch demand drives real allocator rebalances.

    Demands follow a seeded random walk over the controllers; each epoch
    the :class:`DynamicWavelengthAllocator` rebalances and the epoch's
    service scale charges the retuning window against the epoch length
    through ``retune_weight``.
    """

    kind = "wavelength_drift"

    def __init__(
        self,
        num_epochs: int,
        seed: int,
        total_wavelengths: float = 96,
        num_controllers: float = 6,
        retune_weight: float = 0.05,
    ) -> None:
        super().__init__(num_epochs, seed)
        self.allocator = DynamicWavelengthAllocator(
            int(total_wavelengths), int(num_controllers)
        )
        rng = random.Random(seed)
        n = int(num_controllers)
        demands = [1.0] * n
        self.retuned_total = 0
        self.share_history: List[Dict[int, int]] = []
        for _ in range(num_epochs):
            hot = rng.randrange(n)
            demands = [
                max(0.0, d * 0.5 + (10.0 if i == hot else 0.0) + rng.random())
                for i, d in enumerate(demands)
            ]
            decision = self.allocator.rebalance(demands)
            self.retuned_total += decision.retuned_wavelengths
            self.share_history.append(dict(decision.wavelengths_per_controller))
            frac = decision.retuned_wavelengths / self.allocator.total
            self.epochs.append(EpochState(service_scale=1.0 + retune_weight * frac))

    def report(self) -> Dict[str, float]:
        return {
            "drift_rebalances": float(self.allocator.rebalances),
            "drift_retuned_rings": float(self.retuned_total),
        }

    def audit(self, auditor: Auditor) -> None:
        total = self.allocator.total
        floor = self.allocator.min_per_controller
        for e, shares in enumerate(self.share_history):
            auditor.check_equal(
                "scenario.drift_conserved",
                f"epoch{e}",
                sum(shares.values()),
                total,
                "wavelength shares do not sum to the total",
            )
            auditor.check(
                "scenario.drift_floor",
                f"epoch{e}",
                min(shares.values()) >= floor,
                "a controller fell below the guaranteed minimum",
                expected=floor,
                actual=min(shares.values()),
            )


_SCHEDULES = {
    cls.kind: cls
    for cls in (
        BerDriftSchedule,
        XPointWearSchedule,
        ChannelFlapSchedule,
        WavelengthDriftSchedule,
    )
}


def build_schedule(
    spec: Optional[DegradationSpec], num_epochs: int, seed: int
) -> Optional[Schedule]:
    """Realize a declarative spec (``None`` passes through)."""
    if spec is None:
        return None
    return _SCHEDULES[spec.kind](num_epochs, seed, **spec.kwargs())
