"""Declarative open-loop scenario specs and their registry.

Mirrors the workload/experiment registries: a :class:`ScenarioSpec` is a
frozen, hashable description — arrival process, tenant-class mix,
capacity/admission policy, optional degradation schedule — registered
under a name and runnable via ``repro scenario run`` or
:func:`repro.scenarios.openloop.run_scenario`.  Everything dimensionless
is expressed relative to the *measured* per-class service time, so a
scenario keeps its shape (load, horizon, SLO) at any ``--warps/--quick``
sizing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.scenarios.arrivals import ArrivalProcess
from repro.scenarios.degradation import DegradationSpec


@dataclass(frozen=True)
class TenantClass:
    """One class of arriving tenants.

    ``weight`` sets the class's share of arrivals (weighted round-robin
    over the stream, like multi-tenant warp assignment); ``slots`` is how
    much SM capacity one job of this class occupies while running;
    ``slo_multiplier`` defines the latency SLO as a multiple of the
    class's *solo* (uncontended, undegraded) service time.
    """

    name: str
    workload: str = "stream_scan"
    platform: str = "Ohm-base"
    mode: str = "planar"
    weight: float = 1.0
    slots: int = 1
    slo_multiplier: float = 3.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be positive")
        if self.slots < 1:
            raise ValueError(f"tenant {self.name!r}: slots must be >= 1")
        if self.slo_multiplier <= 0:
            raise ValueError(
                f"tenant {self.name!r}: slo_multiplier must be positive"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete open-loop scenario (arrivals + mix + policy + decay)."""

    name: str
    title: str
    arrivals: ArrivalProcess
    tenants: Tuple[TenantClass, ...]
    horizon_services: float = 200.0  # horizon in mean solo service times
    capacity_slots: int = 8
    queue_limit: int = 64
    num_epochs: int = 10
    degradation: Optional[DegradationSpec] = None
    seed: int = 1
    summary: str = ""

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError(f"{self.name}: need at least one tenant class")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: tenant class names must be unique")
        if self.horizon_services <= 0:
            raise ValueError(f"{self.name}: horizon_services must be positive")
        if self.capacity_slots < 1:
            raise ValueError(f"{self.name}: capacity_slots must be >= 1")
        if self.queue_limit < 1:
            raise ValueError(f"{self.name}: queue_limit must be >= 1")
        if self.num_epochs < 1:
            raise ValueError(f"{self.name}: num_epochs must be >= 1")
        for t in self.tenants:
            if t.slots > self.capacity_slots:
                raise ValueError(
                    f"{self.name}: tenant {t.name!r} needs {t.slots} slots "
                    f"but capacity is {self.capacity_slots} — it could never run"
                )


SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    if spec.name in SCENARIOS and not replace:
        raise ValueError(f"scenario {spec.name!r} already registered")
    SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None


def _register_defaults() -> None:
    """Built-in scenarios (import-time, so worker processes see them)."""
    mix = (
        TenantClass("batch", workload="gemm_reuse", weight=1.0, slots=2,
                    slo_multiplier=6.0),
        TenantClass("latency", workload="pointer_chase", weight=2.0, slots=1,
                    slo_multiplier=2.5),
        TenantClass("stream", workload="stream_scan", weight=1.0, slots=1,
                    slo_multiplier=4.0),
    )
    register_scenario(ScenarioSpec(
        name="steady_poisson",
        title="Steady-state Poisson arrivals at 70% load",
        arrivals=ArrivalProcess(kind="poisson", offered_load=0.7),
        tenants=mix,
        summary="Baseline open-loop mix: three tenant classes, Poisson "
                "arrivals, no degradation — the control scenario.",
    ))
    register_scenario(ScenarioSpec(
        name="rush_hour",
        title="Bursty on-off arrivals (rush-hour traffic)",
        arrivals=ArrivalProcess(kind="bursty", offered_load=0.8,
                                on_fraction=0.25, period_frac=0.1),
        tenants=mix,
        queue_limit=32,
        summary="On-off bursts at 4x the mean rate stress admission and "
                "queueing; expect p99 and rejections to move first.",
    ))
    register_scenario(ScenarioSpec(
        name="diurnal_mix",
        title="Diurnal sinusoidal arrivals over a long horizon",
        arrivals=ArrivalProcess(kind="diurnal", offered_load=0.6,
                                period_frac=0.25, depth=0.9),
        tenants=mix,
        horizon_services=400.0,
        summary="A day-in-the-life intensity curve: troughs drain the "
                "queue, peaks push utilization past 1 transiently.",
    ))
    register_scenario(ScenarioSpec(
        name="ber_aging",
        title="Laser aging: BER drift lengthens service over the horizon",
        arrivals=ArrivalProcess(kind="poisson", offered_load=0.6),
        tenants=mix,
        degradation=DegradationSpec("ber_drift", (("end_power_frac", 0.25),)),
        summary="Received optical power decays to 25%; the calibrated "
                "BER model turns that into retransmission-stretched "
                "service times epoch by epoch.",
    ))
    register_scenario(ScenarioSpec(
        name="xpoint_wear",
        title="XPoint wear: millions of writes age Start-Gap regions",
        arrivals=ArrivalProcess(kind="poisson", offered_load=0.6),
        tenants=mix,
        degradation=DegradationSpec(
            "xpoint_wear",
            (("writes_per_epoch", 2_000_000.0), ("write_share", 0.5)),
        ),
        summary="Background write pressure drives real Start-Gap "
                "rotations (closed-form bulk aging); write amplification "
                "feeds back into service times and the translator is "
                "audited after every run.",
    ))
    register_scenario(ScenarioSpec(
        name="channel_flap",
        title="Channel failure/recovery injection under steady load",
        arrivals=ArrivalProcess(kind="poisson", offered_load=0.6),
        tenants=mix,
        degradation=DegradationSpec(
            "channel_flap",
            (("fail_prob", 0.2), ("recover_prob", 0.5)),
        ),
        summary="Seeded per-epoch channel failures shrink SM capacity "
                "until recovery; at least one channel always survives.",
    ))
    register_scenario(ScenarioSpec(
        name="wavelength_drift",
        title="Skewed demand drives dynamic wavelength rebalances",
        arrivals=ArrivalProcess(kind="poisson", offered_load=0.6),
        tenants=mix,
        degradation=DegradationSpec(
            "wavelength_drift", (("retune_weight", 0.05),)
        ),
        summary="A random-walk demand skew makes the HPCA'13 dynamic "
                "allocator rebalance each epoch; retuned rings charge a "
                "small service tax and shares are audited for "
                "conservation.",
    ))


_register_defaults()
