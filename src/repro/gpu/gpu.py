"""Top-level GPU model: SMs + warps + a platform's memory system.

``GpuModel.run`` replays every warp's trace through the event engine and
returns a :class:`RunResult` with IPC, memory latency, channel
bandwidth split and the raw stats — the quantities every evaluation
figure is built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.config import SystemConfig
from repro.core.memsystem import MemorySystem
from repro.core.platforms import Platform, build_memory_system
from repro.gpu.cache import SetAssocCache
from repro.gpu.interconnect import Interconnect
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.warp import Warp, WarpLane
from repro.sim.audit import Auditor, ValidatingEngine
from repro.sim.engine import Engine
from repro.sim.stats import Stats
from repro.workloads.source import TraceSource
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import WarpTrace
from repro.workloads.trace import TraceRecorder


@dataclass(frozen=True, slots=True)
class RunResult:
    """Metrics of one (platform, workload, mode) simulation."""

    platform: str
    workload: str
    mode: str
    instructions: int
    exec_time_ps: int
    demand_requests: int
    mean_mem_latency_ps: float
    counters: Dict[str, float]

    @property
    def ipc(self) -> float:
        """GPU-wide instructions per SM-clock cycle."""
        if self.exec_time_ps == 0:
            return 0.0
        return self.instructions / self.exec_time_ps  # per picosecond
        # (callers only ever use IPC ratios, so the time base cancels)

    @property
    def performance(self) -> float:
        """1 / execution time — what Figs. 16/20a/21 normalize."""
        return 1.0 / self.exec_time_ps if self.exec_time_ps else 0.0

    def channel_busy_ps(self, kind: str) -> float:
        """Total channel occupancy of one traffic kind over all slices."""
        return sum(
            v for k, v in self.counters.items()
            if k.endswith(f".busy_ps.{kind}") and ".route." not in k
        )

    @property
    def migration_bandwidth_fraction(self) -> float:
        """Share of *data-route* channel time spent on migration —
        the quantity of Figs. 8 and 18."""
        demand = self.channel_busy_ps("demand")
        # Only migration traffic that landed on the data route competes
        # with demand requests; memory-route transfers are free.
        migration = sum(
            v for k, v in self.counters.items() if k.endswith(".busy_ps.migration")
        )
        memory_route = sum(
            v for k, v in self.counters.items()
            if k.endswith(".busy_ps.route.memory")
        )
        migration_on_data = max(0.0, migration - memory_route)
        total = demand + migration_on_data
        return migration_on_data / total if total else 0.0

    def to_dict(self) -> dict:
        """JSON-ready payload; the persistent result cache stores this."""
        return {
            "platform": self.platform,
            "workload": self.workload,
            "mode": self.mode,
            "instructions": self.instructions,
            "exec_time_ps": self.exec_time_ps,
            "demand_requests": self.demand_requests,
            "mean_mem_latency_ps": self.mean_mem_latency_ps,
            "counters": dict(self.counters),
        }

    def fingerprint(self) -> str:
        """SHA-256 of the canonical :meth:`to_dict` JSON.

        ``repro workloads record``/``replay`` print this so a replay
        can be checked bit-identical against its recorded run; the
        golden-fingerprint regression tests freeze the same quantity.
        """
        import hashlib
        import json

        canon = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Inverse of :meth:`to_dict` (stable round-trip)."""
        return cls(
            platform=data["platform"],
            workload=data["workload"],
            mode=data["mode"],
            instructions=data["instructions"],
            exec_time_ps=data["exec_time_ps"],
            demand_requests=data["demand_requests"],
            mean_mem_latency_ps=data["mean_mem_latency_ps"],
            counters=dict(data["counters"]),
        )


class GpuModel:  # reprolint: allow(R2) once-per-run orchestrator, never allocated per event; audit/recorder seams attach run-scoped state
    """Assembles SMs and warps around a platform's memory system."""

    def __init__(
        self,
        platform: Platform,
        cfg: SystemConfig,
        spec: WorkloadSpec,
        traces: Union[List[WarpTrace], TraceSource],
        model_caches: bool = False,
        recorder: Optional[TraceRecorder] = None,
        auditor: Optional[Auditor] = None,
    ) -> None:
        # A TraceSource streams each warp's access blocks on demand
        # (bounded lookahead); a trace list is the materialized classic.
        # Both drive the same warp stepping — the golden-fingerprint
        # parity tests pin the two paths bit-identical.
        streams = traces.streams() if isinstance(traces, TraceSource) else None
        if not (streams if streams is not None else traces):
            raise ValueError("need at least one warp trace")
        if streams is not None and auditor is not None:
            # Materialized traces are audited whole at construction
            # (auditor.instrument); a streamed warp's problems surface
            # at pull time, so route them to the auditor as they appear
            # — strict mode turns the first one into an InvariantError.
            def on_problem(warp_id: int, message: str) -> None:
                auditor.record(
                    "workload.trace_wellformed", f"warp{warp_id}", message
                )
                if auditor.strict:
                    auditor.raise_if_violations()

            for stream in streams:
                stream.on_problem = on_problem
        self.platform = platform
        self.cfg = cfg
        self.spec = spec
        self.auditor = auditor
        # Zero-cost rule: the un-audited engine and channels are the
        # exact production objects — audit instrumentation is installed
        # here, at construction, never checked per event.
        self.engine = Engine() if auditor is None else ValidatingEngine(auditor)
        self.stats = Stats()
        self.memory: MemorySystem = build_memory_system(platform, cfg, self.stats)
        self.interconnect = Interconnect(stats=self.stats)
        shared_l2 = (
            SetAssocCache(cfg.gpu.l2_size, cfg.gpu.l2_ways, cfg.gpu.line_bytes, "l2")
            if model_caches
            else None
        )
        self.sms = [
            StreamingMultiprocessor(
                sm_id=i,
                engine=self.engine,
                memory=self.memory,
                interconnect=self.interconnect,
                stats=self.stats,
                freq_ghz=cfg.gpu.sm_freq_ghz,
                line_bytes=cfg.gpu.line_bytes,
                l1=(
                    SetAssocCache(cfg.gpu.l1_size, cfg.gpu.l1_ways, cfg.gpu.line_bytes, f"l1.{i}")
                    if model_caches
                    else None
                ),
                l2=shared_l2,
            )
            for i in range(cfg.gpu.num_sms)
        ]
        self._warps: List[Warp] = []
        self._remaining = 0
        for w, trace in enumerate(streams if streams is not None else traces):
            sm = self.sms[w % len(self.sms)]
            self._warps.append(Warp(w, sm, trace, self._warp_done, recorder))
        self._remaining = len(self._warps)
        # All warp events ride the engine's typed lane; the Warp objects
        # remain the inspectable per-warp surface the lane syncs into.
        self._lane = WarpLane(
            self.engine, self._warps, self.stats, self._warp_done, recorder
        )
        self._tenant_finish_ps: Dict[str, int] = {}
        if auditor is not None:
            auditor.instrument(self)

    @property
    def warps(self) -> List[Warp]:
        """The model's warps (read-only view; the audit layer walks it)."""
        return list(self._warps)

    def _warp_done(self, warp: Warp) -> None:
        self._remaining -= 1
        tenant = warp.trace.tenant
        if tenant is not None:
            self._tenant_finish_ps[tenant] = self.engine.now

    def run(self, max_events: Optional[int] = None) -> RunResult:
        # The event loop allocates almost nothing that survives a step,
        # so generational GC passes over it are pure overhead (~5% of
        # wall time); collection is suspended for the drain and restored
        # even if a callback raises.
        import gc

        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._lane.start_all()
            self.engine.run(max_events=max_events)
            self._lane.sync()
        finally:
            if gc_was_enabled:
                gc.enable()
        if self._remaining:
            raise RuntimeError(
                f"{self._remaining} warps unfinished (max_events too low?)"
            )
        instructions = sum(w.instructions_retired for w in self._warps)
        lat = self.stats.latency("mem.latency_ps")
        counters = self.stats.snapshot()
        self._attribute_tenants(counters)
        result = RunResult(
            platform=self.platform.name,
            workload=self.spec.name,
            mode=self.cfg.hetero.mode.value,
            instructions=instructions,
            exec_time_ps=self.engine.now,
            demand_requests=lat.count,
            mean_mem_latency_ps=lat.mean,
            counters=counters,
        )
        if self.auditor is not None:  # reprolint: allow(R4) post-run finish hook — runs once per run, not per event (§10.2)
            # Post-run conservation checks; a strict auditor raises
            # InvariantError here with every violation attached.
            self.auditor.finish(self, result)
        return result

    def _attribute_tenants(self, counters: Dict[str, float]) -> None:
        """Fold per-tenant aggregates into the result counters.

        Multi-tenant compositions label each warp's trace with its
        tenant; here the per-warp retirement counts become
        ``tenant.<name>.{warps,instructions,accesses,finish_ps}``
        counters so a mix reports who consumed what and when each
        tenant's last warp drained.  Unlabelled runs add nothing.
        """
        for warp in self._warps:
            tenant = warp.trace.tenant
            if tenant is None:
                continue
            prefix = f"tenant.{tenant}."
            counters[prefix + "warps"] = counters.get(prefix + "warps", 0.0) + 1
            counters[prefix + "instructions"] = (
                counters.get(prefix + "instructions", 0.0) + warp.instructions_retired
            )
            counters[prefix + "accesses"] = (
                counters.get(prefix + "accesses", 0.0) + len(warp.trace)
            )
        for tenant, finish in self._tenant_finish_ps.items():
            counters[f"tenant.{tenant}.finish_ps"] = finish
