"""Set-associative cache with LRU replacement (L1D / shared L2).

The harness drives the memory system with post-L2 traces (Table II's
APKI is a memory-level rate), so caches default to off there; the cache
model itself is exercised by the cache-enabled example and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    # Stored, not derived: counted once on entry to ``access`` while
    # hits/misses are counted per branch, so ``hits + misses ==
    # accesses`` is a real two-ledger conservation law the audit layer
    # (sim/audit.py) can actually catch drifting — a derived property
    # would make the check tautological.
    accesses: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class EvictedLine:
    addr: int
    dirty: bool


class SetAssocCache:
    """Classic set-associative write-back, write-allocate cache."""

    def __init__(self, size_bytes: int, ways: int, line_bytes: int, name: str = "cache") -> None:
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError("size must be a multiple of ways * line size")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets < 1:
            raise ValueError("cache has no sets")
        self.name = name
        self.stats = CacheStats()
        # Per set: tag -> (dirty, lru_tick); dict preserves no order, so
        # an explicit tick provides LRU.
        self._sets: List[Dict[int, Tuple[bool, int]]] = [dict() for _ in range(self.num_sets)]
        self._tick = 0

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, addr: int, is_write: bool) -> Tuple[bool, Optional[EvictedLine]]:
        """Returns ``(hit, evicted_line_or_None)``."""
        self._tick += 1
        self.stats.accesses += 1
        set_index, tag = self._locate(addr)
        ways = self._sets[set_index]
        if tag in ways:
            dirty, _ = ways[tag]
            ways[tag] = (dirty or is_write, self._tick)
            self.stats.hits += 1
            return True, None
        self.stats.misses += 1
        evicted: Optional[EvictedLine] = None
        if len(ways) >= self.ways:
            victim_tag = min(ways, key=lambda t: ways[t][1])
            dirty, _ = ways.pop(victim_tag)
            victim_line = victim_tag * self.num_sets + set_index
            evicted = EvictedLine(addr=victim_line * self.line_bytes, dirty=dirty)
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
        ways[tag] = (is_write, self._tick)
        return False, evicted

    def contains(self, addr: int) -> bool:
        set_index, tag = self._locate(addr)
        return tag in self._sets[set_index]

    def flush(self) -> List[EvictedLine]:
        """Drop everything; returns the dirty lines that need writeback."""
        dirty_lines: List[EvictedLine] = []
        for set_index, ways in enumerate(self._sets):
            for tag, (dirty, _) in ways.items():
                if dirty:
                    line = tag * self.num_sets + set_index
                    dirty_lines.append(EvictedLine(line * self.line_bytes, True))
            ways.clear()
        return dirty_lines
