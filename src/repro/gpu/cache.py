"""Set-associative cache with LRU replacement (L1D / shared L2).

The harness drives the memory system with post-L2 traces (Table II's
APKI is a memory-level rate), so caches default to off there; the cache
model itself is exercised by the cache-enabled example and the tests.

Storage is array-structured: instead of one ``tag -> (dirty, tick)``
dict per set, the cache keeps three flat parallel lists (``tags``,
``dirty``, ``lru``) indexed by ``set_index * ways + way`` plus a per-set
fill count.  The hit probe is a short integer scan over the set's
occupied span — no hashing, no per-line tuple allocations — and the
LRU victim is an integer argmin over the same span.  Replacement
behaviour is identical to the dict version: ticks are unique, so the
argmin victim is exactly the entry the dict's ``min`` would pick, and
the dirty-writeback slow path (EvictedLine construction) only runs on
an actual eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(slots=True)
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    # Stored, not derived: counted once on entry to ``access`` while
    # hits/misses are counted per branch, so ``hits + misses ==
    # accesses`` is a real two-ledger conservation law the audit layer
    # (sim/audit.py) can actually catch drifting — a derived property
    # would make the check tautological.
    accesses: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass(frozen=True, slots=True)
class EvictedLine:
    addr: int
    dirty: bool


class SetAssocCache:
    """Classic set-associative write-back, write-allocate cache."""

    __slots__ = (
        "line_bytes", "ways", "num_sets", "name", "stats",
        "_tags", "_dirty", "_lru", "_fill", "_tick",
    )

    def __init__(self, size_bytes: int, ways: int, line_bytes: int, name: str = "cache") -> None:
        if size_bytes % (ways * line_bytes) != 0:
            raise ValueError("size must be a multiple of ways * line size")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_bytes)
        if self.num_sets < 1:
            raise ValueError("cache has no sets")
        self.name = name
        self.stats = CacheStats()
        # Flat per-way arrays (see module docstring).  Only the first
        # ``_fill[s]`` ways of set ``s`` are valid, so no sentinel tag
        # is needed — negative addresses (hence negative tags) probe
        # correctly.
        n = self.num_sets * ways
        self._tags: List[int] = [0] * n
        self._dirty: List[int] = [0] * n
        self._lru: List[int] = [0] * n
        self._fill: List[int] = [0] * self.num_sets
        self._tick = 0

    def _locate(self, addr: int) -> Tuple[int, int]:
        line = addr // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, addr: int, is_write: bool) -> Tuple[bool, Optional[EvictedLine]]:
        """Returns ``(hit, evicted_line_or_None)``."""
        tick = self._tick + 1
        self._tick = tick
        stats = self.stats
        stats.accesses += 1
        line = addr // self.line_bytes
        num_sets = self.num_sets
        set_index = line % num_sets
        tag = line // num_sets
        base = set_index * self.ways
        fill = self._fill[set_index]
        tags = self._tags
        end = base + fill
        # Hit probe: integer scan over the occupied span.
        for i in range(base, end):
            if tags[i] == tag:
                if is_write:
                    self._dirty[i] = 1
                self._lru[i] = tick
                stats.hits += 1
                return True, None
        stats.misses += 1
        evicted: Optional[EvictedLine] = None
        if fill < self.ways:
            # Cold fill: claim the next free way, no victim.
            victim = end
            self._fill[set_index] = fill + 1
        else:
            # Full set: LRU argmin over the span (ticks are unique, so
            # this is the same victim the dict's ``min`` selected).
            lru = self._lru
            victim = base
            best = lru[base]
            for i in range(base + 1, end):
                v = lru[i]
                if v < best:
                    best = v
                    victim = i
            dirty = self._dirty[victim]
            victim_line = tags[victim] * num_sets + set_index
            evicted = EvictedLine(addr=victim_line * self.line_bytes, dirty=bool(dirty))
            stats.evictions += 1
            if dirty:
                stats.writebacks += 1
        tags[victim] = tag
        self._dirty[victim] = 1 if is_write else 0
        self._lru[victim] = tick
        return False, evicted

    def contains(self, addr: int) -> bool:
        set_index, tag = self._locate(addr)
        base = set_index * self.ways
        tags = self._tags
        for i in range(base, base + self._fill[set_index]):
            if tags[i] == tag:
                return True
        return False

    def set_occupancy(self, set_index: int) -> int:
        """Number of valid lines currently in ``set_index``."""
        return self._fill[set_index]

    def flush(self) -> List[EvictedLine]:
        """Drop everything; returns the dirty lines that need writeback."""
        dirty_lines: List[EvictedLine] = []
        tags = self._tags
        dirty = self._dirty
        ways = self.ways
        for set_index in range(self.num_sets):
            base = set_index * ways
            for i in range(base, base + self._fill[set_index]):
                if dirty[i]:
                    line = tags[i] * self.num_sets + set_index
                    dirty_lines.append(EvictedLine(line * self.line_bytes, True))
            self._fill[set_index] = 0
        return dirty_lines
