"""Streaming multiprocessor: an issue server shared by its warps.

The SM issues one instruction per cycle; compute bursts from different
warps serialize on this capacity.  Memory instructions go through the
(optional) L1 cache, the interconnect and the memory system; the warp
sleeps until the response timestamp.

:meth:`StreamingMultiprocessor.access_memory` is the hot entry point:
warps hand it a bare ``(addr, is_write)`` pair, so cache hits complete
without ever allocating a :class:`~repro.sim.records.MemRequest` — a
request object is built only for background L2 writebacks and for the
:meth:`submit_memory_request` compatibility wrapper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.gpu.cache import SetAssocCache
from repro.gpu.interconnect import Interconnect
from repro.sim.engine import Engine, freq_ghz_to_period_ps
from repro.sim.records import MemRequest
from repro.sim.stats import Stats

if TYPE_CHECKING:
    from repro.core.memsystem import MemorySystem

L1_HIT_LATENCY_CYCLES = 4
L2_HIT_LATENCY_CYCLES = 30


class StreamingMultiprocessor:  # reprolint: allow(R2) the fused warp drain probes sm.__dict__ to detect instance patches (gpu/warp.py uniformity check)
    """One SM: issue bandwidth + the memory path of its warps."""

    def __init__(
        self,
        sm_id: int,
        engine: Engine,
        memory: "MemorySystem",
        interconnect: Interconnect,
        stats: Stats,
        freq_ghz: float = 1.2,
        line_bytes: int = 128,
        l1: Optional[SetAssocCache] = None,
        l2: Optional[SetAssocCache] = None,
    ) -> None:
        self.sm_id = sm_id
        self.engine = engine
        self.memory = memory
        self.interconnect = interconnect
        self.stats = stats
        self.period_ps = freq_ghz_to_period_ps(freq_ghz)
        self.line_bytes = line_bytes
        self.l1 = l1
        self.l2 = l2  # shared; multiple SMs may hold the same object
        self._issue_free_at = 0
        # Pre-bound stat handles: every per-event name resolved once;
        # the busiest three are raw dict updates on constant keys.
        self._cdict = stats.counters
        self._lat_mem = stats.latency_handle("mem.latency_ps")
        self._l1_hit_ps = L1_HIT_LATENCY_CYCLES * self.period_ps
        self._l2_hit_ps = L2_HIT_LATENCY_CYCLES * self.period_ps
        self._line_bits = line_bytes * 8
        # Demand-path specialization: every demand miss moves exactly
        # one line, so the crossbar occupancy is a constant — computed
        # once here, letting the uncached fast path inline the traverse.
        self._noc_occupancy_ps = interconnect.occupancy_ps(self._line_bits)
        self._serve_addr = memory.serve_addr
        # Page-interleave routing, pre-resolved: when the memory system
        # is the real one (not a test double), the uncached fast path
        # picks the slice itself and calls its ``serve`` directly — the
        # ``serve_addr`` dispatch hop disappears from the per-event path.
        from repro.core.memsystem import MemorySystem

        self._route_inline = type(memory) is MemorySystem
        if self._route_inline:
            self._ms_slices = memory.slices
            self._ms_page_bytes = memory.page_bytes
            self._ms_num_slices = memory._num_slices
            # One-tuple constant pack for the uncached fast path: one
            # unpack replaces a dozen attribute chains per access.
            self._fp = (
                engine,
                interconnect,
                interconnect._cdict,
                self._line_bits,
                self._noc_occupancy_ps,
                interconnect.latency_ps,
                memory.slices,
                memory.page_bytes,
                memory._num_slices,
                self._cdict,
                self._lat_mem,
            )
        else:
            self._fp = None
        # Cache probes, pre-bound (caches are fixed at construction):
        # the cached path calls the probe directly instead of chasing
        # ``self.l1``/``self.l2`` per access.
        self._l1_access = l1.access if l1 is not None else None
        self._l2_access = l2.access if l2 is not None else None
        #: The warp lane's memory entry point: the uncached configuration
        #: (every perf-suite case) skips the cache probes entirely.
        self.fast_access = (
            self._access_uncached if l1 is None and l2 is None else self.access_memory
        )

    def issue_burst(self, instructions: int) -> int:
        """Claim issue slots for ``instructions``; returns finish time."""
        if instructions < 1:
            raise ValueError("a burst needs at least one instruction")
        free_at = self._issue_free_at
        now = self.engine.now
        start = now if now > free_at else free_at
        end = start + instructions * self.period_ps
        self._issue_free_at = end
        self._cdict["gpu.instructions"] += instructions
        return end

    def access_memory(self, addr: int, is_write: bool) -> int:
        """Run the memory path synchronously; returns completion time.

        Takes the bare access pair so L1 hits (the common case on
        cache-modelled runs) cost a tag probe and an add — no request
        record is allocated before the access commits to main memory.
        """
        now = self.engine.now
        l1_access = self._l1_access
        if l1_access is not None:
            hit, _ = l1_access(addr, is_write)
            if hit:
                self._cdict["gpu.l1_hits"] += 1
                return now + self._l1_hit_ps
        l2_access = self._l2_access
        if l2_access is not None:
            hit, evicted = l2_access(addr, is_write)
            if hit:
                self._cdict["gpu.l2_hits"] += 1
                return now + self._l2_hit_ps
            if evicted is not None and evicted.dirty:
                # Dirty L2 victim: write back to memory in the background.
                wb = MemRequest.demand(
                    evicted.addr, True, self.line_bytes, self.sm_id, -1, now
                )
                self.memory.serve(wb, now)
        arrive = self.interconnect.traverse(now, self._line_bits)
        complete = self.memory.serve_addr(addr, is_write, arrive)
        self._cdict["mem.demand_requests"] += 1
        self._lat_mem.record(complete - now)
        return complete

    def _access_uncached(self, addr: int, is_write: bool) -> int:
        """Demand path with no caches modelled: crossbar + memory system.

        Same arithmetic and the same counter-update order as
        :meth:`access_memory` falling through both cache probes, with
        the crossbar traverse inlined against the precomputed line
        occupancy (the ``int(round(...))`` per call goes away), the
        page-interleave routing resolved here (no ``serve_addr`` hop)
        and the latency stat updated in place (no ``record`` call).
        """
        fp = self._fp
        if fp is None:
            # Test doubles / custom memory systems: generic route.
            now = self.engine.now
            ic = self.interconnect
            busy = ic._busy_until
            start = now if now > busy else busy
            occupancy = self._noc_occupancy_ps
            ic._busy_until = start + occupancy
            noc_counters = ic._cdict
            noc_counters["noc.bits"] += self._line_bits
            noc_counters["noc.busy_ps"] += occupancy
            complete = self._serve_addr(
                addr, is_write, start + occupancy + ic.latency_ps
            )
            self._cdict["mem.demand_requests"] += 1
            value = complete - now
            lat = self._lat_mem
        else:
            (
                engine, ic, noc_counters, line_bits, occupancy,
                ic_latency, slices, page_bytes, n, cdict, lat,
            ) = fp
            now = engine.now
            busy = ic._busy_until
            start = now if now > busy else busy
            ic._busy_until = start + occupancy
            noc_counters["noc.bits"] += line_bits
            noc_counters["noc.busy_ps"] += occupancy
            if addr < 0:
                raise ValueError("negative address")
            page = addr // page_bytes
            complete = slices[page % n].serve(
                (page // n) * page_bytes + (addr - page * page_bytes),
                is_write,
                start + occupancy + ic_latency,
            )
            cdict["mem.demand_requests"] += 1
            value = complete - now
        # LatencyStat.record, inlined (same update rules).
        if lat.count == 0:
            lat.min_value = value
            lat.max_value = value
        elif value < lat.min_value:
            lat.min_value = value
        elif value > lat.max_value:
            lat.max_value = value
        lat.count += 1
        lat.total += value
        return complete

    def submit_memory_request(self, req: MemRequest) -> int:
        """Compatibility wrapper over :meth:`access_memory`."""
        complete = self.access_memory(req.addr, req.is_write)
        req.complete_ps = complete
        return complete
