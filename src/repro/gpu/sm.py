"""Streaming multiprocessor: an issue server shared by its warps.

The SM issues one instruction per cycle; compute bursts from different
warps serialize on this capacity.  Memory instructions go through the
(optional) L1 cache, the interconnect and the memory system; the warp
sleeps until the response timestamp.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.gpu.cache import SetAssocCache
from repro.gpu.interconnect import Interconnect
from repro.sim.engine import Engine, freq_ghz_to_period_ps
from repro.sim.records import MemRequest
from repro.sim.stats import Stats

if TYPE_CHECKING:
    from repro.core.memsystem import MemorySystem

L1_HIT_LATENCY_CYCLES = 4
L2_HIT_LATENCY_CYCLES = 30


class StreamingMultiprocessor:
    """One SM: issue bandwidth + the memory path of its warps."""

    def __init__(
        self,
        sm_id: int,
        engine: Engine,
        memory: "MemorySystem",
        interconnect: Interconnect,
        stats: Stats,
        freq_ghz: float = 1.2,
        line_bytes: int = 128,
        l1: Optional[SetAssocCache] = None,
        l2: Optional[SetAssocCache] = None,
    ) -> None:
        self.sm_id = sm_id
        self.engine = engine
        self.memory = memory
        self.interconnect = interconnect
        self.stats = stats
        self.period_ps = freq_ghz_to_period_ps(freq_ghz)
        self.line_bytes = line_bytes
        self.l1 = l1
        self.l2 = l2  # shared; multiple SMs may hold the same object
        self._issue_free_at = 0

    def issue_burst(self, instructions: int) -> int:
        """Claim issue slots for ``instructions``; returns finish time."""
        if instructions < 1:
            raise ValueError("a burst needs at least one instruction")
        start = max(self.engine.now, self._issue_free_at)
        end = start + instructions * self.period_ps
        self._issue_free_at = end
        self.stats.add("gpu.instructions", instructions)
        return end

    def submit_memory_request(self, req: MemRequest) -> int:
        """Run the memory path synchronously; returns completion time."""
        now = self.engine.now
        if self.l1 is not None:
            hit, _ = self.l1.access(req.addr, req.is_write)
            if hit:
                self.stats.add("gpu.l1_hits")
                return now + L1_HIT_LATENCY_CYCLES * self.period_ps
        if self.l2 is not None:
            hit, evicted = self.l2.access(req.addr, req.is_write)
            if hit:
                self.stats.add("gpu.l2_hits")
                return now + L2_HIT_LATENCY_CYCLES * self.period_ps
            if evicted is not None and evicted.dirty:
                # Dirty L2 victim: write back to memory in the background.
                wb = MemRequest(
                    addr=evicted.addr,
                    is_write=True,
                    size_bytes=self.line_bytes,
                    sm_id=self.sm_id,
                    warp_id=-1,
                    issue_ps=now,
                )
                self.memory.serve(wb, now)
        arrive = self.interconnect.traverse(now, self.line_bytes * 8)
        complete = self.memory.serve(req, arrive)
        self.stats.add("mem.demand_requests")
        self.stats.record_latency("mem.latency_ps", complete - now)
        return complete
