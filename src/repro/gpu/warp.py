"""A warp: the GPU's unit of lock-step execution.

Each warp alternates compute bursts (``gap`` instructions from its
trace) with one memory instruction.  The SM's issue server serializes
bursts from its warps; a warp blocked on memory costs nothing until its
response arrives — this is warp-level latency hiding, and it is what
converts memory-system improvements into IPC (Fig. 16).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.sim.records import MemRequest, RequestKind
from repro.workloads.synthetic import WarpTrace

if TYPE_CHECKING:
    from repro.gpu.sm import StreamingMultiprocessor


class Warp:
    """Replays one WarpTrace through its SM and the memory system."""

    def __init__(
        self,
        warp_id: int,
        sm: "StreamingMultiprocessor",
        trace: WarpTrace,
        on_done: Callable[["Warp"], None],
    ) -> None:
        self.warp_id = warp_id
        self.sm = sm
        self.trace = trace
        self.on_done = on_done
        self._cursor = 0
        self.instructions_retired = 0
        self.finished = False

    def start(self) -> None:
        self._next_burst()

    def _next_burst(self) -> None:
        if self._cursor >= len(self.trace):
            self.finished = True
            self.on_done(self)
            return
        gap = int(self.trace.gaps[self._cursor])
        burst_end = self.sm.issue_burst(gap + 1)  # +1: the memory inst
        self.instructions_retired += gap + 1
        self.sm.engine.at(burst_end, self._issue_memory)

    def _issue_memory(self) -> None:
        i = self._cursor
        req = MemRequest(
            addr=int(self.trace.addrs[i]),
            is_write=bool(self.trace.writes[i]),
            size_bytes=self.sm.line_bytes,
            sm_id=self.sm.sm_id,
            warp_id=self.warp_id,
            kind=RequestKind.DEMAND,
            issue_ps=self.sm.engine.now,
        )
        complete = self.sm.submit_memory_request(req)
        self._cursor += 1
        self.sm.engine.at(complete, self._next_burst)
